//! Regenerate every figure and headline number of the Wrht paper.
//!
//! ```text
//! repro-figures [command] [--small] [--threads=N] [--check=PATH]
//!
//! Commands:
//!   fig2         Figure 2: E-Ring / RD / O-Ring / WRHT across models & scales
//!   headline     The abstract's reduction percentages
//!   steps        Step-count law across N and m
//!   wavelengths  Wavelength requirements (tree + all-to-all)
//!   ablation-m   Group-size sensitivity (extension)
//!   ablation-w   Wavelength-budget sensitivity (extension)
//!   ablation-fit First Fit vs Best Fit RWA (extension)
//!   overlap      Layer-wise bucketed overlap (extension)
//!   variants     Wrht+ variants: depth-optimal stop, multicast, segments
//!   contention   Event-driven wavelength contention on synthetic traffic
//!   sweep        Regenerate fig2 + the grid ablations as ONE parallel
//!                campaign on both substrates (resumable via results/campaign)
//!   train        Simulator-backed training timelines: per-model iteration
//!                time with bucketed Wrht all-reduces on BOTH substrates
//!                (resumable via results/train)
//!   tenants      Multi-job tenancy: 1/2/4 concurrent training jobs sharing
//!                one substrate under fifo/fair/priority scheduling, with
//!                per-job slowdowns and Jain fairness (resumable via
//!                results/tenants)
//!   faults       Fault & degradation dynamics: 2 concurrent training jobs
//!                hit mid-run by a wavelength failure / link degradation /
//!                node failure under replan and fail-job recovery, with
//!                per-job blast radius and recovery time (resumable via
//!                results/faults)
//!   parallelism  Mixed-parallelism lowering: TP/PP/DP (+ MoE all-to-all)
//!                transformer iterations lowered to one mixed-domain DAG
//!                and executed on the composed hierarchical substrate
//!                (optical rings intra-group, electrical cluster
//!                inter-group; resumable via results/parallelism)
//!   serve        Online cluster service: open-loop Poisson arrivals of
//!                training jobs at an underload and an overload rate,
//!                under every scheduling policy and immediate /
//!                queue-bounded / load-shedding admission on both
//!                substrates, with windowed slowdown percentiles and queue
//!                depths (resumable via results/serve)
//!   bench        The fixed perf suite: wall-clock and events/sec over the
//!                frozen tenancy / incast / pipelined workloads, written to
//!                BENCH_v6.json (BENCH_v6.small.json with --small).
//!                `--check=<path>` compares against a committed baseline and
//!                fails if any case drops below 80% of its events/sec.
//!   analyze      Run the wrht-analyze determinism-invariant static analyzer
//!                over the workspace sources (src/, crates/*/src/,
//!                examples/). Exits nonzero on any finding. `--json` emits
//!                the machine-readable report on stdout instead of the
//!                table.
//!   all          Everything above except sweep, train, tenants, faults,
//!                parallelism, serve, bench and analyze (default)
//!
//! `--small` shrinks the node scales for a fast smoke run. `--threads=N`
//! caps the campaign worker count (default: available parallelism).
//! `--mode=barrier|pipelined|both` picks the `train` execution mode:
//! barrier serializes bucket all-reduces on the network, pipelined
//! overlaps them through the dependency-aware executor.
//! JSON copies of every series are written to `results/`; campaign cells,
//! combined JSON and CSV land in `results/campaign/`.
//! ```

use std::fs;
use std::path::Path;

use wrht_bench::ablations::{
    group_size_sweep, overlap_study, rwa_strategy_compare, variant_study, wavelength_sweep,
};
use wrht_bench::campaign::{
    fig2_from_campaign, run_campaign, run_fault_campaign, run_parallelism_campaign,
    run_stream_campaign, run_tenancy_campaign, run_timeline_campaign, sweep_spec,
};
use wrht_bench::contention::{run_contention, Pattern};
use wrht_bench::perf::{run_suite, BenchSuiteResult, SuiteScale};
use wrht_bench::report::{
    render_contention, render_faults, render_fig2, render_fit, render_group_size, render_headline,
    render_overlap, render_parallelism, render_streams, render_tenants, render_timeline,
    render_variants, render_wavelengths, to_json,
};
use wrht_bench::timeline::TimelineRow;
use wrht_bench::{fig2_series, headline, ExperimentConfig};
use wrht_core::dag::ExecMode;
use wrht_core::steps::{
    alltoall_wavelength_requirement, paper_step_count, surviving_reps, tree_wavelength_requirement,
};
use wrht_core::{build_plan, choose_group_size, WrhtParams};

fn write_json(dir: &Path, name: &str, payload: &str) {
    let _ = fs::create_dir_all(dir);
    let path = dir.join(name);
    if let Err(e) = fs::write(&path, payload) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

fn cmd_fig2(cfg: &ExperimentConfig, results: &Path) {
    let mut all = Vec::new();
    for model in dnn_models::paper_models() {
        let series = fig2_series(cfg, &model);
        print!("{}", render_fig2(&series));
        println!();
        all.push(series);
    }
    write_json(results, "fig2.json", &to_json(&all));
    let h = headline(&all);
    print!("{}", render_headline(&h));
    write_json(results, "headline.json", &to_json(&h));
}

fn cmd_headline(cfg: &ExperimentConfig, results: &Path) {
    let all: Vec<_> = dnn_models::paper_models()
        .iter()
        .map(|m| fig2_series(cfg, m))
        .collect();
    let h = headline(&all);
    print!("{}", render_headline(&h));
    write_json(results, "headline.json", &to_json(&h));
}

fn cmd_steps() {
    println!("== Step-count law: 2*ceil(log_m N) or 2*ceil(log_m N) - 1 ==");
    println!(
        "{:>6} {:>4} {:>10} {:>12} {:>12} {:>8}",
        "N", "m", "m* (paper)", "paper fused", "paper full", "plan"
    );
    for &n in &[128usize, 256, 512, 1024, 4096] {
        for &m in &[2usize, 4, 8, 16] {
            let w = 64;
            if tree_wavelength_requirement(m) > w {
                continue;
            }
            let plan = build_plan(n, m, w).expect("feasible plan");
            println!(
                "{:>6} {:>4} {:>10} {:>12} {:>12} {:>8}",
                n,
                m,
                surviving_reps(n, m),
                paper_step_count(n, m, true),
                paper_step_count(n, m, false),
                plan.step_count()
            );
        }
    }
    println!();
}

fn cmd_wavelengths() {
    println!("== Wavelength requirements ==");
    println!("tree step, group size m -> floor(m/2):");
    for &m in &[2usize, 4, 8, 16, 32] {
        println!("  m={m:>3}: {} wavelengths", tree_wavelength_requirement(m));
    }
    println!("all-to-all among m* reps -> ceil(m*^2/8) (Liang-Shen bound):");
    for &k in &[2usize, 4, 8, 16, 22] {
        println!(
            "  m*={k:>3}: {} wavelengths",
            alltoall_wavelength_requirement(k)
        );
    }
    println!();
}

fn cmd_ablation_m(cfg: &ExperimentConfig, results: &Path) {
    let n = *cfg.scales.last().expect("scales non-empty");
    let bytes = dnn_models::alexnet().gradient_bytes();
    let ms: Vec<usize> = (2..=32).collect();
    let points = group_size_sweep(cfg, n, bytes, &ms);
    print!("{}", render_group_size(&points, n));
    let optical = cfg.optical(n);
    if let Ok((m, _, cost)) =
        choose_group_size(&WrhtParams::auto(n, cfg.wavelengths), &optical, bytes)
    {
        println!(
            "optimizer picks m = {m} at {:.3} ms (AlexNet gradient)",
            cost.total_s() * 1e3
        );
    }
    println!();
    write_json(results, "ablation_group_size.json", &to_json(&points));
}

fn cmd_ablation_w(cfg: &ExperimentConfig, results: &Path) {
    let n = cfg.scales[cfg.scales.len() / 2];
    let bytes = dnn_models::vgg16().gradient_bytes();
    let ws = [1usize, 2, 4, 8, 16, 32, 64];
    let points = wavelength_sweep(cfg, n, bytes, &ws);
    print!("{}", render_wavelengths(&points, n));
    println!();
    write_json(results, "ablation_wavelengths.json", &to_json(&points));
}

fn cmd_ablation_fit(cfg: &ExperimentConfig, results: &Path) {
    let n = *cfg.scales.last().expect("scales non-empty");
    let mut out = Vec::new();
    for model in dnn_models::paper_models() {
        let c = rwa_strategy_compare(cfg, n, model.gradient_bytes());
        println!("[{}]", model.name);
        print!("{}", render_fit(&c, n));
        out.push((model.name.clone(), c));
    }
    println!();
    write_json(results, "ablation_fit.json", &to_json(&out));
}

fn cmd_overlap(cfg: &ExperimentConfig, results: &Path) {
    let n = cfg.scales[0];
    let points: Vec<_> = dnn_models::paper_models()
        .iter()
        .map(|m| overlap_study(cfg, m, n, 25 << 20))
        .collect();
    print!("{}", render_overlap(&points, n));
    println!();
    write_json(results, "overlap.json", &to_json(&points));
}

fn cmd_variants(cfg: &ExperimentConfig, results: &Path) {
    let n = cfg.scales[cfg.scales.len() / 2];
    let points: Vec<_> = dnn_models::paper_models()
        .iter()
        .map(|m| variant_study(cfg, m, n))
        .collect();
    print!("{}", render_variants(&points, n));
    println!();
    write_json(results, "variants.json", &to_json(&points));
}

fn cmd_sweep(cfg: &ExperimentConfig, results: &Path, threads: usize, models: &[dnn_models::Model]) {
    let spec = sweep_spec(cfg, models, 2023);
    let sink = results.join("campaign");
    println!(
        "== Campaign sweep: {} cells over {} worker thread(s) ==",
        spec.cells.len(),
        threads
    );
    let report = run_campaign(&spec, threads, Some(&sink));
    let infeasible = report.results.iter().filter(|r| r.error.is_some()).count();
    println!(
        "{} cells finished ({infeasible} infeasible); sink: {}",
        report.results.len(),
        sink.display()
    );
    println!();

    let named: Vec<(&str, u64)> = models
        .iter()
        .map(|m| (m.name.as_str(), m.gradient_bytes()))
        .collect();
    let series = fig2_from_campaign(&report.results, &named, &cfg.scales, cfg.wavelengths);
    for s in &series {
        print!("{}", render_fig2(s));
        println!();
    }
    write_json(&sink, "fig2.json", &to_json(&series));
    let h = headline(&series);
    print!("{}", render_headline(&h));
    write_json(&sink, "headline.json", &to_json(&h));
}

fn cmd_train(
    cfg: &ExperimentConfig,
    results: &Path,
    threads: usize,
    models: &[dnn_models::Model],
    modes: &[ExecMode],
) {
    let n = *cfg.scales.first().expect("scales non-empty");
    let spec = wrht_bench::campaign::train_spec(cfg, models, n, 2023, modes);
    let bucket_bytes = spec.cells.first().map_or(25 << 20, |c| c.bucket_bytes);
    let sink = results.join("train");
    let mode_labels: Vec<&str> = modes.iter().map(|m| m.label()).collect();
    println!(
        "== Training-timeline campaign: {} cells ({}) over {} worker thread(s) ==",
        spec.cells.len(),
        mode_labels.join("+"),
        threads
    );
    let report = run_timeline_campaign(&spec, threads, Some(&sink));
    let infeasible = report.results.iter().filter(|r| r.error.is_some()).count();
    println!(
        "{} cells finished ({infeasible} infeasible); sink: {}",
        report.results.len(),
        sink.display()
    );
    println!();
    let rows: Vec<TimelineRow> = report
        .results
        .iter()
        .filter(|r| r.error.is_none())
        .map(TimelineRow::from)
        .collect();
    print!("{}", render_timeline(&rows, n, bucket_bytes));
    println!();
    write_json(&sink, "train_rows.json", &to_json(&rows));
}

fn cmd_tenants(
    cfg: &ExperimentConfig,
    results: &Path,
    threads: usize,
    models: &[dnn_models::Model],
) {
    let n = *cfg.scales.first().expect("scales non-empty");
    let spec = wrht_bench::campaign::tenants_spec(cfg, models, n, 2023);
    let sink = results.join("tenants");
    println!(
        "== Tenancy campaign: {} cells over {} worker thread(s) ==",
        spec.cells.len(),
        threads
    );
    let report = run_tenancy_campaign(&spec, threads, Some(&sink));
    let infeasible = report.results.iter().filter(|r| r.error.is_some()).count();
    println!(
        "{} cells finished ({infeasible} infeasible); sink: {}",
        report.results.len(),
        sink.display()
    );
    println!();
    print!("{}", render_tenants(&report.results, n));
    println!();
    write_json(&sink, "tenant_rows.json", &to_json(&report.results));
}

fn cmd_faults(
    cfg: &ExperimentConfig,
    results: &Path,
    threads: usize,
    models: &[dnn_models::Model],
) {
    let n = *cfg.scales.first().expect("scales non-empty");
    let spec = wrht_bench::campaign::faults_spec(cfg, models, n, 2023);
    let sink = results.join("faults");
    println!(
        "== Fault campaign: {} cells over {} worker thread(s) ==",
        spec.cells.len(),
        threads
    );
    let report = run_fault_campaign(&spec, threads, Some(&sink));
    println!(
        "   {} cells finished; sink: {}",
        report.results.len(),
        sink.display()
    );
    println!();
    print!("{}", render_faults(&report.results, n));
    println!();
    write_json(&sink, "fault_rows.json", &to_json(&report.results));
}

fn cmd_parallelism(cfg: &ExperimentConfig, results: &Path, threads: usize) {
    let spec = wrht_bench::campaign::parallelism_spec(cfg, 2023);
    let sink = results.join("parallelism");
    println!(
        "== Mixed-parallelism campaign: {} cells over {} worker thread(s) ==",
        spec.cells.len(),
        threads
    );
    let report = run_parallelism_campaign(&spec, threads, Some(&sink));
    let infeasible = report.results.iter().filter(|r| r.error.is_some()).count();
    println!(
        "{} cells finished ({infeasible} infeasible); sink: {}",
        report.results.len(),
        sink.display()
    );
    println!();
    print!("{}", render_parallelism(&report.results));
    println!();
    write_json(&sink, "parallelism_rows.json", &to_json(&report.results));
}

fn cmd_serve(cfg: &ExperimentConfig, results: &Path, threads: usize, models: &[dnn_models::Model]) {
    let n = *cfg.scales.first().expect("scales non-empty");
    let spec = wrht_bench::campaign::serve_spec(cfg, models, n, 2023);
    let sink = results.join("serve");
    println!(
        "== Open-loop service campaign: {} cells over {} worker thread(s) ==",
        spec.cells.len(),
        threads
    );
    let report = run_stream_campaign(&spec, threads, Some(&sink));
    let infeasible = report.results.iter().filter(|r| r.error.is_some()).count();
    println!(
        "{} cells finished ({infeasible} infeasible); sink: {}",
        report.results.len(),
        sink.display()
    );
    println!();
    print!("{}", render_streams(&report.results, n));
    println!();
    write_json(&sink, "stream_rows.json", &to_json(&report.results));
}

/// Run the fixed perf suite and write `BENCH_v6[.small].json` into
/// `out_dir`. With `check`, compare events/sec against the committed
/// baseline at that path; returns `false` when a case regressed below 80%.
fn cmd_bench(small: bool, check: Option<&Path>, out_dir: &Path) -> bool {
    let (scale, suite, file) = if small {
        (SuiteScale::small(), "small", "BENCH_v6.small.json")
    } else {
        (SuiteScale::full(), "full", "BENCH_v6.json")
    };
    // Load the baseline before running (and writing): `--check` may point
    // at the very file this run is about to overwrite.
    let baseline: Option<BenchSuiteResult> = match check {
        None => None,
        Some(base_path) => match fs::read_to_string(base_path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str(&s).map_err(|e| e.to_string()))
        {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", base_path.display());
                return false;
            }
        },
    };
    let milestone = "open-loop stream engine (online arrivals through the running kernel)";
    let result = run_suite(scale, suite, milestone).expect("the frozen perf suite executes");
    println!("== Fixed perf suite ({suite}) ==");
    println!(
        "{:<24} {:>6} {:>10} {:>12} {:>12} {:>14}",
        "case", "nodes", "transfers", "wall_s", "sim_events", "events/s"
    );
    for c in &result.cases {
        println!(
            "{:<24} {:>6} {:>10} {:>12.6} {:>12} {:>14.0}",
            c.name, c.nodes, c.transfers, c.wall_s, c.sim_events, c.events_per_sec
        );
    }
    println!(
        "aggregate: {:.0} events/s over {} cases",
        result.aggregate_events_per_sec(),
        result.cases.len()
    );
    write_json(out_dir, file, &to_json(&result));
    println!("wrote {}", out_dir.join(file).display());

    let (Some(base_path), Some(baseline)) = (check, baseline) else {
        return true;
    };
    let violations = result.regressions_vs(&baseline, 0.8);
    if violations.is_empty() {
        println!("bench check ok vs {} (threshold 80%)", base_path.display());
        true
    } else {
        for v in &violations {
            eprintln!("bench regression: {v}");
        }
        false
    }
}

/// Run the determinism-invariant static analyzer over the workspace rooted
/// at `root`; returns `false` when any finding (or an I/O error) surfaces.
fn cmd_analyze(root: &Path, json: bool) -> bool {
    let analysis = match wrht_analyze::analyze_workspace(root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analyze: cannot scan workspace at {}: {e}", root.display());
            return false;
        }
    };
    if analysis.files_scanned == 0 {
        eprintln!(
            "analyze: no source files under {} (run from the workspace root)",
            root.display()
        );
        return false;
    }
    if json {
        print!("{}", wrht_analyze::render_json(&analysis));
    } else {
        print!("{}", wrht_analyze::render_table(&analysis));
    }
    analysis.is_clean()
}

fn cmd_contention(cfg: &ExperimentConfig, results: &Path) {
    let n = *cfg.scales.first().expect("scales non-empty");
    // A narrow budget makes the contention the stepped model hides visible.
    let w = 4;
    let mut narrow = cfg.clone();
    narrow.wavelengths = w;
    let optical = narrow.optical(n);
    let reports: Vec<_> = [
        Pattern::Permutation,
        Pattern::UniformRandom,
        Pattern::Incast,
    ]
    .into_iter()
    .map(|p| run_contention(&optical, p, 2 * n, 16 << 20, 2023))
    .collect();
    print!("{}", render_contention(&reports, n, w));
    println!();
    write_json(results, "contention.json", &to_json(&reports));
}

/// Dispatch one CLI command; returns `false` for unknown commands.
fn run_command(
    cmd: &str,
    cfg: &ExperimentConfig,
    results: &Path,
    threads: usize,
    modes: &[ExecMode],
) -> bool {
    match cmd {
        "sweep" => cmd_sweep(cfg, results, threads, &dnn_models::paper_models()),
        "train" => cmd_train(cfg, results, threads, &dnn_models::paper_models(), modes),
        "tenants" => cmd_tenants(cfg, results, threads, &dnn_models::paper_models()),
        "faults" => cmd_faults(cfg, results, threads, &dnn_models::paper_models()),
        "serve" => cmd_serve(cfg, results, threads, &dnn_models::paper_models()),
        "parallelism" => cmd_parallelism(cfg, results, threads),
        "fig2" => cmd_fig2(cfg, results),
        "headline" => cmd_headline(cfg, results),
        "steps" => cmd_steps(),
        "wavelengths" => cmd_wavelengths(),
        "ablation-m" => cmd_ablation_m(cfg, results),
        "ablation-w" => cmd_ablation_w(cfg, results),
        "ablation-fit" => cmd_ablation_fit(cfg, results),
        "overlap" => cmd_overlap(cfg, results),
        "variants" => cmd_variants(cfg, results),
        "contention" => cmd_contention(cfg, results),
        "all" => {
            cmd_fig2(cfg, results);
            println!();
            cmd_steps();
            cmd_wavelengths();
            cmd_ablation_m(cfg, results);
            cmd_ablation_w(cfg, results);
            cmd_ablation_fit(cfg, results);
            cmd_overlap(cfg, results);
            cmd_variants(cfg, results);
            cmd_contention(cfg, results);
        }
        _ => return false,
    }
    true
}

/// Parse `--mode=barrier|pipelined|both` (default: barrier).
fn parse_modes(value: Option<&str>) -> Option<Vec<ExecMode>> {
    match value {
        None | Some("barrier") => Some(vec![ExecMode::Barrier]),
        Some("pipelined") => Some(vec![ExecMode::Pipelined]),
        Some("both") => Some(vec![ExecMode::Barrier, ExecMode::Pipelined]),
        Some(_) => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let threads = args
        .iter()
        .find_map(|a| a.strip_prefix("--threads="))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
        })
        .max(1);
    let mode_arg = args.iter().find_map(|a| a.strip_prefix("--mode="));
    let check = args
        .iter()
        .find_map(|a| a.strip_prefix("--check="))
        .map(Path::new);
    let Some(modes) = parse_modes(mode_arg) else {
        eprintln!(
            "unknown --mode '{}'; expected barrier, pipelined or both",
            mode_arg.unwrap_or_default()
        );
        std::process::exit(2);
    };
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or("all", String::as_str);
    if mode_arg.is_some() && cmd != "train" {
        eprintln!(
            "warning: --mode only affects the `train` command; `{cmd}` ignores it \
             (the sweep's barrier-vs-pipelined ablation cells are built in)"
        );
    }
    if cmd == "analyze" {
        let json = args.iter().any(|a| a == "--json");
        if !cmd_analyze(Path::new("."), json) {
            std::process::exit(1);
        }
        return;
    }
    if cmd == "bench" {
        if !cmd_bench(small, check, Path::new(".")) {
            std::process::exit(1);
        }
        return;
    }
    if check.is_some() {
        eprintln!("warning: --check only affects the `bench` command; `{cmd}` ignores it");
    }
    let cfg = if small {
        ExperimentConfig::small()
    } else {
        ExperimentConfig::default()
    };

    if !run_command(cmd, &cfg, Path::new("results"), threads, &modes) {
        eprintln!("unknown command '{cmd}'; see the binary docs for usage");
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A configuration far smaller than `--small`, for fast unit tests.
    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            scales: vec![16, 32],
            ..ExperimentConfig::default()
        }
    }

    fn temp_results(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("repro-figures-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn headline_command_runs_and_writes_json_on_a_tiny_config() {
        let results = temp_results("headline");
        assert!(run_command(
            "headline",
            &tiny_cfg(),
            &results,
            1,
            &[ExecMode::Barrier]
        ));
        let json = fs::read_to_string(results.join("headline.json"))
            .expect("headline.json must be written");
        assert!(json.contains("vs_oring_pct"));
        let _ = fs::remove_dir_all(&results);
    }

    #[test]
    fn steps_and_wavelengths_commands_run_without_config() {
        let results = temp_results("laws");
        assert!(run_command(
            "steps",
            &tiny_cfg(),
            &results,
            1,
            &[ExecMode::Barrier]
        ));
        assert!(run_command(
            "wavelengths",
            &tiny_cfg(),
            &results,
            1,
            &[ExecMode::Barrier]
        ));
        let _ = fs::remove_dir_all(&results);
    }

    #[test]
    fn bench_command_writes_the_versioned_suite_and_checks_baselines() {
        let out = temp_results("bench");
        fs::create_dir_all(&out).unwrap();
        assert!(cmd_bench(true, None, &out));
        let path = out.join("BENCH_v6.small.json");
        let json = fs::read_to_string(&path).expect("BENCH_v6.small.json must be written");
        let result: BenchSuiteResult = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(result.format, wrht_bench::perf::BENCH_FORMAT);
        assert_eq!(result.suite, "small");
        assert!(result.cases.iter().all(|c| c.sim_events > 0));

        // A baseline slower than anything we can measure always passes...
        let mut easy = result.clone();
        for c in &mut easy.cases {
            c.events_per_sec = 1e-3;
        }
        let easy_path = out.join("easy.json");
        fs::write(&easy_path, to_json(&easy)).unwrap();
        assert!(cmd_bench(true, Some(&easy_path), &out));

        // ...an unreachable one always fails, and a missing one fails loudly.
        let mut hard = result.clone();
        for c in &mut hard.cases {
            c.events_per_sec = 1e18;
        }
        let hard_path = out.join("hard.json");
        fs::write(&hard_path, to_json(&hard)).unwrap();
        assert!(!cmd_bench(true, Some(&hard_path), &out));
        assert!(!cmd_bench(true, Some(&out.join("missing.json")), &out));

        // The CI shape: baseline path == output path. The baseline must be
        // read before this run's results overwrite it, so an unreachable
        // committed baseline still fails the check.
        fs::write(&path, to_json(&hard)).unwrap();
        assert!(!cmd_bench(true, Some(&path), &out));
        let _ = fs::remove_dir_all(&out);
    }

    #[test]
    fn analyze_command_gates_on_findings() {
        let root = temp_results("analyze");
        let src = root.join("crates").join("demo").join("src");
        fs::create_dir_all(&src).unwrap();
        fs::write(src.join("lib.rs"), "pub fn id(x: u64) -> u64 {\n    x\n}\n").unwrap();
        assert!(cmd_analyze(&root, false), "clean tree must pass");
        fs::write(src.join("lib.rs"), "use std::collections::HashMap;\n").unwrap();
        assert!(!cmd_analyze(&root, true), "R1 violation must gate");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unknown_commands_are_rejected() {
        let results = temp_results("unknown");
        assert!(!run_command(
            "not-a-command",
            &tiny_cfg(),
            &results,
            1,
            &[ExecMode::Barrier]
        ));
        assert!(
            !results.exists(),
            "rejected commands must not create output directories"
        );
    }

    #[test]
    fn train_command_runs_the_timeline_campaign_on_both_substrates() {
        let results = temp_results("train");
        cmd_train(
            &tiny_cfg(),
            &results,
            2,
            &[dnn_models::googlenet()],
            &[ExecMode::Barrier],
        );
        let sink = results.join("train");
        let rows = fs::read_to_string(sink.join("train_rows.json")).expect("train_rows.json");
        assert!(rows.contains("GoogLeNet"));
        assert!(rows.contains("\"substrate\":\"optical\"") || rows.contains("optical"));
        let csv = fs::read_to_string(sink.join("train.csv")).expect("train campaign CSV");
        assert_eq!(csv.lines().count(), 3); // header + 2 substrates
        assert!(csv.contains("electrical") && csv.contains("optical"));
        // Resumable: a second run reuses the sink without changing output.
        cmd_train(
            &tiny_cfg(),
            &results,
            1,
            &[dnn_models::googlenet()],
            &[ExecMode::Barrier],
        );
        let rows2 = fs::read_to_string(sink.join("train_rows.json")).unwrap();
        assert_eq!(rows, rows2);
        let _ = fs::remove_dir_all(&results);
    }

    #[test]
    fn tenants_command_runs_the_tenancy_campaign_and_resumes() {
        let results = temp_results("tenants");
        cmd_tenants(&tiny_cfg(), &results, 2, &[dnn_models::googlenet()]);
        let sink = results.join("tenants");
        let rows = fs::read_to_string(sink.join("tenant_rows.json")).expect("tenant_rows.json");
        assert!(rows.contains("GoogLeNet"));
        assert!(rows.contains("\"fairness_index\""));
        let csv = fs::read_to_string(sink.join("tenants.csv")).expect("tenants campaign CSV");
        // 3 job counts × 3 policies × 2 substrates + header.
        assert_eq!(csv.lines().count(), 19);
        assert!(csv.contains("fifo") && csv.contains("fair") && csv.contains("priority"));
        // Resumable: a second run reuses the sink without changing output.
        cmd_tenants(&tiny_cfg(), &results, 1, &[dnn_models::googlenet()]);
        let rows2 = fs::read_to_string(sink.join("tenant_rows.json")).unwrap();
        assert_eq!(rows, rows2);
        let _ = fs::remove_dir_all(&results);
    }

    #[test]
    fn faults_command_runs_the_fault_campaign_and_resumes() {
        let results = temp_results("faults");
        cmd_faults(&tiny_cfg(), &results, 2, &[dnn_models::googlenet()]);
        let sink = results.join("faults");
        let rows = fs::read_to_string(sink.join("fault_rows.json")).expect("fault_rows.json");
        assert!(rows.contains("GoogLeNet"));
        assert!(rows.contains("\"degraded_ratio\""));
        assert!(rows.contains("\"recovery_s\""));
        let csv = fs::read_to_string(sink.join("faults.csv")).expect("faults campaign CSV");
        // 3 scenarios × 2 recovery policies × 2 substrates + header.
        assert_eq!(csv.lines().count(), 13);
        assert!(csv.contains("wavelength-down") && csv.contains("node-down"));
        assert!(csv.contains("replan") && csv.contains("fail-job"));
        // Resumable: a second run reuses the sink without changing output.
        cmd_faults(&tiny_cfg(), &results, 1, &[dnn_models::googlenet()]);
        let rows2 = fs::read_to_string(sink.join("fault_rows.json")).unwrap();
        assert_eq!(rows, rows2);
        let _ = fs::remove_dir_all(&results);
    }

    #[test]
    fn serve_command_runs_the_stream_campaign_and_resumes() {
        let results = temp_results("serve");
        cmd_serve(&tiny_cfg(), &results, 2, &[dnn_models::googlenet()]);
        let sink = results.join("serve");
        let rows = fs::read_to_string(sink.join("stream_rows.json")).expect("stream_rows.json");
        assert!(rows.contains("GoogLeNet"));
        assert!(rows.contains("\"peak_queue_depth\""));
        assert!(rows.contains("\"slowdown_p99\""));
        let csv = fs::read_to_string(sink.join("serve.csv")).expect("serve campaign CSV");
        // 2 rates × 3 policies × 3 admissions × 2 substrates + header.
        assert_eq!(csv.lines().count(), 37);
        assert!(csv.contains("immediate") && csv.contains("queue:2") && csv.contains("reject:4"));
        // Resumable: a second run reuses the sink without changing output.
        cmd_serve(&tiny_cfg(), &results, 1, &[dnn_models::googlenet()]);
        let rows2 = fs::read_to_string(sink.join("stream_rows.json")).unwrap();
        assert_eq!(rows, rows2);
        let _ = fs::remove_dir_all(&results);
    }

    #[test]
    fn parallelism_command_runs_the_composed_campaign_and_resumes() {
        let results = temp_results("parallelism");
        cmd_parallelism(&tiny_cfg(), &results, 2);
        let sink = results.join("parallelism");
        let rows =
            fs::read_to_string(sink.join("parallelism_rows.json")).expect("parallelism_rows.json");
        assert!(rows.contains("GPT2-small") && rows.contains("BERT-large"));
        assert!(rows.contains("\"intra_transfers\"") && rows.contains("\"inter_transfers\""));
        let csv =
            fs::read_to_string(sink.join("parallelism.csv")).expect("parallelism campaign CSV");
        // 2 transformer models × 4 parallelism shapes + header.
        assert_eq!(csv.lines().count(), 9);
        // Resumable: a second run reuses the sink without changing output.
        cmd_parallelism(&tiny_cfg(), &results, 1);
        let rows2 = fs::read_to_string(sink.join("parallelism_rows.json")).unwrap();
        assert_eq!(rows, rows2);
        let _ = fs::remove_dir_all(&results);
    }

    #[test]
    fn sweep_command_regenerates_fig2_through_the_campaign_engine() {
        let results = temp_results("sweep");
        cmd_sweep(&tiny_cfg(), &results, 2, &[dnn_models::googlenet()]);
        let sink = results.join("campaign");
        let fig2 = fs::read_to_string(sink.join("fig2.json")).expect("campaign fig2.json");
        assert!(fig2.contains("GoogLeNet"));
        assert!(fs::read_to_string(sink.join("headline.json"))
            .expect("campaign headline.json")
            .contains("vs_oring_pct"));
        let csv = fs::read_to_string(sink.join("sweep.csv")).expect("campaign CSV");
        assert!(csv.lines().count() > 20);
        assert!(csv.contains("electrical") && csv.contains("optical"));
        let _ = fs::remove_dir_all(&results);
    }
}
