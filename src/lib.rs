//! # wrht — workspace facade
//!
//! Umbrella crate for the Wrht (Dai et al., PPoPP'23) reproduction: it
//! re-exports the six member crates so downstream users can depend on one
//! crate, and it hosts the cross-crate integration suites (`tests/`), the
//! runnable `examples/` and the `repro-figures` binary.
//!
//! ```
//! use wrht::core::prelude::*;
//! use wrht::optical::OpticalConfig;
//!
//! let outcome = plan_and_simulate(
//!     &WrhtParams::auto(16, 8),
//!     &OpticalConfig::new(16, 8),
//!     1 << 20,
//! )
//! .unwrap();
//! assert!(outcome.simulated_time_s > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use collectives;
pub use dnn_models as models;
pub use electrical_sim as electrical;
pub use optical_sim as optical;
pub use wrht_bench as bench;
pub use wrht_core as core;
