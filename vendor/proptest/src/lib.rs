//! Vendored minimal stand-in for [proptest](https://proptest-rs.github.io/).
//!
//! The build environment is offline, so this crate reimplements the slice of
//! proptest this workspace uses: the `proptest!` macro (with
//! `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`/`prop_oneof!`, range/tuple/`Just`/`prop_map` strategies and
//! the `collection::vec`/`collection::hash_set` generators.
//!
//! Differences from upstream, chosen for a bounded offline test pyramid:
//! cases are generated from a deterministic per-test RNG (seeded by the test
//! name, so failures reproduce), there is no shrinking (the failing inputs
//! are printed verbatim), and `prop_assume!` counts the case as passed
//! rather than resampling.

// Vendored stand-in: exempt from the workspace's determinism lint
// posture (clippy.toml disallowed-types/methods mirror wrht-analyze,
// which never scans vendor/).
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

pub mod strategy;

pub use strategy::{Just, Strategy, Union};

/// Deterministic random source handed to strategies.
pub mod rng {
    /// SplitMix64 generator; deterministic per test.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from a test name (FNV-1a hash) so each test gets a stable,
        /// distinct stream.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h)
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let x = self.next_u64();
                if x < zone {
                    return x % bound;
                }
            }
        }
    }
}

/// Test-runner configuration (`ProptestConfig`).
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; keep the offline pyramid snappy.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s; duplicates collapse, so the set may be
    /// smaller than the drawn size (as in upstream proptest).
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate hash sets whose elements come from `element`.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Driver behind the generated test bodies. `case` returns the inputs'
/// debug rendering and the property outcome for one sampled case.
pub fn run_proptest<F>(config: &test_runner::ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut rng::TestRng) -> (String, Result<(), String>),
{
    let mut rng = rng::TestRng::from_name(name);
    for i in 0..config.cases {
        let (inputs, outcome) = case(&mut rng);
        if let Err(msg) = outcome {
            panic!("property `{name}` failed at case {i} with inputs {inputs}: {msg}");
        }
    }
}

/// The `proptest!` block macro: doc comments + `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Internal: expand each `fn` in a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$fm:meta])*
        fn $name:ident ( $($args:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$fm])*
        fn $name() {
            let __config = $cfg;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                let __vals = ( $( $crate::Strategy::sample(&($strat), __rng) ,)+ );
                let __inputs = ::std::format!("{:?}", &__vals);
                let __outcome: ::std::result::Result<(), ::std::string::String> = {
                    let ( $($args ,)+ ) = __vals;
                    #[allow(clippy::redundant_closure_call)]
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                };
                (__inputs, __outcome)
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert inside a property; failure reports the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), __l, __r
            ));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
}

/// Skip cases whose inputs don't satisfy a precondition. The vendored
/// runner counts the case as passed instead of resampling.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Choose uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(::std::vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}
