//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::rng::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Box a strategy for storage in a [`Union`] (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Uniform choice between strategies of one value type.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

/// Build a [`Union`] (used by `prop_oneof!`).
pub fn union<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    Union { options }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}
