//! Vendored minimal stand-in for the `rand` crate (the build environment is
//! offline). Provides the 0.9-style API surface this workspace uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`] and
//! [`seq::SliceRandom::shuffle`], over a deterministic xoshiro256**
//! generator seeded via SplitMix64.

use std::ops::Range;

/// Types that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of randomness.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniformly sample from a half-open range.
    fn random_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }
}

/// Integer types samplable from a `Range` (uniform via rejection sampling).
pub trait SampleRange: Copy {
    /// Sample uniformly from `[range.start, range.end)`.
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u64) - (range.start as u64);
                // Rejection sampling for exact uniformity.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let x = rng.next_u64();
                    if x < zone {
                        return range.start + (x % span) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffle the slice uniformly.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn range_and_shuffle_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
        }
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle is a no-op with ~1/50! chance"
        );
    }
}
