//! Vendored minimal stand-in for `serde_json` over the stand-in `serde`
//! value model: compact and pretty writers plus a strict recursive-descent
//! parser. Numbers round-trip exactly (floats are emitted with Rust's
//! shortest-round-trip formatting and re-parsed with `str::parse::<f64>`).

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Error raised by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serialize a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = JsonParser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_delimited(out, indent, depth, '[', ']', items.len(), |out, i| {
                write_value(out, &items[i], indent, depth + 1);
            })
        }
        Value::Map(entries) => {
            write_delimited(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, depth + 1);
            });
        }
    }
}

fn write_delimited(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // `{}` omits the decimal point for integral floats; keep the value a
        // float in JSON so round-trips preserve the number's flavour.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // serde_json serializes non-finite floats as null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{lit}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::I64(1), Value::F64(2.5)])),
            ("b".into(), Value::Str("x\"y\n".into())),
            ("c".into(), Value::Bool(true)),
            ("d".into(), Value::Null),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.0f64, 1.0, -4.0, 1e-9, std::f64::consts::PI, 2.5e300] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }
}
