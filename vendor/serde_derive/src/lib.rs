//! Vendored minimal `#[derive(Serialize, Deserialize)]` for the stand-in
//! `serde` crate.
//!
//! Supports non-generic structs (named, tuple, unit) and enums (unit, tuple
//! and struct variants), which covers every derived type in this workspace.
//! The token stream is parsed by hand because `syn`/`quote` are unavailable
//! in the offline build environment.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Parser {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn new(input: TokenStream) -> Self {
        Parser {
            tokens: input.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip `#[...]`, `#![...]` attributes and doc comments.
    fn skip_attributes(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1;
                    if let Some(TokenTree::Punct(p)) = self.peek() {
                        if p.as_char() == '!' {
                            self.pos += 1;
                        }
                    }
                    // The bracketed attribute body.
                    if let Some(TokenTree::Group(_)) = self.peek() {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }
}

/// Split a token sequence on top-level commas. "Top level" accounts for
/// angle-bracket depth (`Vec<(A, B)>` styles) — groups are single tokens so
/// only `<`/`>` puncts need tracking.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Parse one field-or-variant segment's leading name (after attrs + vis).
fn segment_leading_ident(seg: &[TokenTree]) -> Option<(String, usize)> {
    let mut p = Parser {
        tokens: seg.to_vec(),
        pos: 0,
    };
    p.skip_attributes();
    p.skip_visibility();
    let start = p.pos;
    match p.next() {
        Some(TokenTree::Ident(id)) => Some((id.to_string(), start)),
        _ => None,
    }
}

fn parse_named_fields(group_tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for seg in split_top_level_commas(group_tokens) {
        if seg.is_empty() {
            continue;
        }
        let (name, _) =
            segment_leading_ident(&seg).ok_or_else(|| "expected field name".to_string())?;
        names.push(name);
    }
    Ok(names)
}

fn count_tuple_fields(group_tokens: &[TokenTree]) -> usize {
    split_top_level_commas(group_tokens)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .count()
}

fn parse_variants(group_tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for seg in split_top_level_commas(group_tokens) {
        if seg.is_empty() {
            continue;
        }
        let mut p = Parser {
            tokens: seg,
            pos: 0,
        };
        p.skip_attributes();
        let name = p.expect_ident()?;
        let fields = match p.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantFields::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantFields::Named(parse_named_fields(&inner)?)
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<(String, Kind), String> {
    let mut p = Parser::new(input);
    p.skip_attributes();
    p.skip_visibility();
    let keyword = p.expect_ident()?;
    let name = p.expect_ident()?;
    if let Some(TokenTree::Punct(pu)) = p.peek() {
        if pu.as_char() == '<' {
            return Err(format!(
                "derive on generic type `{name}` is not supported by the vendored serde"
            ));
        }
    }
    match keyword.as_str() {
        "struct" => match p.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok((name, Kind::NamedStruct(parse_named_fields(&inner)?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok((name, Kind::TupleStruct(count_tuple_fields(&inner))))
            }
            Some(TokenTree::Punct(pu)) if pu.as_char() == ';' => Ok((name, Kind::UnitStruct)),
            other => Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match p.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok((name, Kind::Enum(parse_variants(&inner)?)))
            }
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

/// Derive the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, kind) = match parse_item(input) {
        Ok(x) => x,
        Err(e) => return compile_error(&e),
    };
    let body = match &kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({vn:?}), \
                              ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                  ::serde::Value::Seq(::std::vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                  ::serde::Value::Map(::std::vec![{}]))])",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Derive the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, kind) = match parse_item(input) {
        Ok(x) => x,
        Err(e) => return compile_error(&e),
    };
    let body = match &kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(__m, {f:?})?"))
                .collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected object for `{name}`\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(__s.get({i}).ok_or_else(|| \
                         ::serde::DeError::custom(\"tuple too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected array for `{name}`\"))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__s.get({i})\
                                         .ok_or_else(|| ::serde::DeError::custom(\
                                         \"tuple variant too short\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let __s = __inner.as_seq().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected array\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn}({})) }},",
                                inits.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(__mm, {f:?})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let __mm = __inner.as_map().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected object\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }}) }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                     return match __s {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::custom(\
                             ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                     }};\n\
                 }}\n\
                 if let ::std::option::Option::Some(__m) = __v.as_map() {{\n\
                     if __m.len() == 1 {{\n\
                         let (__k, __inner) = &__m[0];\n\
                         return match __k.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                         }};\n\
                     }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::DeError::custom(\
                     \"expected enum representation for `{name}`\"))",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .unwrap()
}
