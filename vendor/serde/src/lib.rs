//! Vendored minimal stand-in for [serde](https://serde.rs).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of serde it actually uses: `Serialize` /
//! `Deserialize` traits over a self-describing [`Value`] data model, plus
//! `#[derive(Serialize, Deserialize)]` for plain (non-generic) structs and
//! enums. The JSON conventions mirror upstream serde so swapping the real
//! crates back in is a manifest-only change:
//!
//! * named struct → object; newtype struct → the inner value
//! * unit enum variant → `"Variant"`
//! * newtype/tuple/struct enum variant → `{"Variant": ...}`
//! * `Range` → `{"start": .., "end": ..}`; tuples → arrays

// Vendored stand-in: exempt from the workspace's determinism lint
// posture (clippy.toml disallowed-types/methods mirror wrht-analyze,
// which never scans vendor/).
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::ops::Range;

/// A self-describing tree of serialized data (the `serde_json::Value` model,
/// with object key order preserved for deterministic output).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a string, if this is a string value.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as an object's key/value pairs, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array, if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Error produced when a [`Value`] cannot be converted to the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Create an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Helper used by derived code: pull a named field out of an object.
pub fn field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(DeError::custom(format!("missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => return Err(DeError::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => {
                        i64::try_from(n).map_err(|_| DeError::custom("integer overflow"))?
                    }
                    _ => return Err(DeError::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::F64(x) => Ok(x as $t),
                    Value::I64(n) => Ok(n as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::custom("array of unexpected length"))
    }
}

impl<T: Serialize> Serialize for Range<T> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("start".to_string(), self.start.to_value()),
            ("end".to_string(), self.end.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for Range<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let map = v
            .as_map()
            .ok_or_else(|| DeError::custom("expected range object"))?;
        Ok(field::<T>(map, "start")?..field::<T>(map, "end")?)
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq().ok_or_else(|| DeError::custom("expected tuple array"))?;
                Ok(($($t::from_value(
                    seq.get($n).ok_or_else(|| DeError::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::I64(n) => n.to_string(),
        Value::U64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
