//! Vendored minimal stand-in for [criterion](https://bheisler.github.io/criterion.rs/book/).
//!
//! The build environment is offline; this crate supplies the macro/API
//! surface the workspace's benches use (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`) with a simple mean-of-samples
//! wall-clock timer instead of criterion's statistical machinery.

// Vendored stand-in: exempt from the workspace's determinism lint
// posture (clippy.toml disallowed-types/methods mirror wrht-analyze,
// which never scans vendor/).
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::time::Instant;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a stand-alone benchmark (no group).
    pub fn bench_function<S, F>(&mut self, name: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), 10, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one benchmark within the group.
    pub fn bench_function<S, F>(&mut self, name: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Finish the group (provided for API compatibility; a no-op).
    pub fn finish(self) {}
}

/// Timer handle passed to the benchmarked closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Run the routine repeatedly, recording wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let min = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().copied().fold(0.0f64, f64::max);
    println!(
        "{name:<50} time: [{} {} {}]",
        format_time(min),
        format_time(mean),
        format_time(max)
    );
}

fn format_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
