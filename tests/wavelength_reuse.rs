//! The paper's core thesis, observed in traces: Wrht *reuses* wavelengths
//! across link-disjoint groups, which is exactly what lets a step finish
//! with `⌊m/2⌋` channels regardless of how many groups transmit.

// Test-only code: assertions compare sets, never iterate them into results,
// so hash ordering cannot leak. wrht-analyze exempts test code for the same
// reason.
#![allow(clippy::disallowed_types)]

use optical_sim::trace::run_stepped_traced;
use optical_sim::{OpticalConfig, RingSimulator, Strategy};
use std::collections::HashSet;
use wrht_core::lower::to_optical_schedule;
use wrht_core::plan::build_plan;

#[test]
fn first_level_reuses_wavelengths_across_groups() {
    let n = 64;
    let m = 8;
    let w = 16;
    let plan = build_plan(n, m, w).unwrap();
    let sched = to_optical_schedule(&plan, 1 << 20);
    let mut sim = RingSimulator::new(OpticalConfig::new(n, w));
    let (_, trace) = run_stepped_traced(&mut sim, &sched, Strategy::FirstFit).unwrap();

    let level0 = trace.step(0);
    // 64/8 = 8 groups, 7 senders each.
    assert_eq!(level0.len(), 8 * 7);

    // Distinct wavelengths used across the WHOLE step never exceed the
    // per-group requirement * lanes — the groups all reuse the same set.
    let all_lambdas: HashSet<usize> = level0
        .iter()
        .flat_map(|e| e.lambdas.iter().copied())
        .collect();
    let per_group_budget = plan.levels[0].lambda_requirement * plan.levels[0].lanes;
    assert!(
        all_lambdas.len() <= per_group_budget,
        "step uses {} distinct lambdas, budget {per_group_budget}",
        all_lambdas.len()
    );

    // At least two different groups use the same wavelength (the reuse).
    let mut groups_per_lambda: std::collections::HashMap<usize, HashSet<usize>> =
        std::collections::HashMap::new();
    for e in &level0 {
        // Group index = receiver's group = dst / m at level 0.
        let group = e.dst / m;
        for &l in &e.lambdas {
            groups_per_lambda.entry(l).or_default().insert(group);
        }
    }
    assert!(
        groups_per_lambda.values().any(|gs| gs.len() >= 2),
        "no wavelength was reused across groups"
    );
}

#[test]
fn oring_trace_shows_single_wavelength() {
    use wrht_core::baselines::oring_schedule;
    let n = 16;
    let sched = oring_schedule(n, 1600, 4);
    let mut sim = RingSimulator::new(OpticalConfig::new(n, 8));
    let (_, trace) = run_stepped_traced(&mut sim, &sched, Strategy::FirstFit).unwrap();
    let lambdas: HashSet<usize> = trace
        .entries
        .iter()
        .flat_map(|e| e.lambdas.iter().copied())
        .collect();
    // The paper's complaint about Ring on optical: one wavelength, ever.
    assert_eq!(lambdas, HashSet::from([0]));
}

#[test]
fn group_sides_travel_in_opposite_directions() {
    use optical_sim::topology::Direction;
    let plan = build_plan(32, 5, 8).unwrap();
    let sched = to_optical_schedule(&plan, 1 << 16);
    let mut sim = RingSimulator::new(OpticalConfig::new(32, 8));
    let (_, trace) = run_stepped_traced(&mut sim, &sched, Strategy::FirstFit).unwrap();
    for e in trace.step(0) {
        // Left-side members sit below their representative and transmit
        // clockwise; right-side members above it transmit counter-clockwise.
        if e.src < e.dst {
            assert_eq!(e.direction, Direction::Clockwise);
        } else {
            assert_eq!(e.direction, Direction::CounterClockwise);
        }
    }
}
