//! Campaign-engine determinism: the chunked work-stealing fan-out must not
//! leak scheduling nondeterminism into results. A parallel run over 8
//! threads serializes byte-identically to the serial run, and a resumed run
//! reuses the sink byte-for-byte.

use std::fs;
use wrht_bench::campaign::{fig2_from_campaign, run_campaign, sweep_spec};
use wrht_bench::report::to_json;
use wrht_bench::ExperimentConfig;

#[test]
fn parallel_campaign_json_is_byte_identical_to_serial() {
    let cfg = ExperimentConfig::small();
    let spec = sweep_spec(&cfg, &[dnn_models::googlenet()], 2023);
    let serial = run_campaign(&spec, 1, None);
    let parallel = run_campaign(&spec, 8, None);
    assert_eq!(
        to_json(&serial),
        to_json(&parallel),
        "thread count must not change campaign output"
    );
    // The sweep grid actually exercised both fabrics and produced fig2.
    let named = [(spec.cells[0].model.as_str(), spec.cells[0].gradient_bytes)];
    let series = fig2_from_campaign(&serial.results, &named, &cfg.scales, cfg.wavelengths);
    assert_eq!(series.len(), 1);
    assert_eq!(series[0].rows.len(), cfg.scales.len());
}

#[test]
fn resumed_campaign_reuses_the_sink_byte_for_byte() {
    let cfg = ExperimentConfig {
        scales: vec![16],
        ..ExperimentConfig::small()
    };
    let spec = sweep_spec(&cfg, &[dnn_models::googlenet()], 7);
    let dir = std::env::temp_dir().join(format!("wrht-campaign-resume-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let first = run_campaign(&spec, 4, Some(&dir));
    let resumed = run_campaign(&spec, 1, Some(&dir));
    assert_eq!(to_json(&first), to_json(&resumed));
    let _ = fs::remove_dir_all(&dir);
}
