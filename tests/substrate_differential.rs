//! Differential testing of the two execution substrates.
//!
//! Where the optical and electrical models coincide — lanes = 1 (a single
//! wavelength per transmission, no reuse pressure), matched link bandwidth,
//! zero propagation/latency — the stepped optical simulator and the
//! barrier-stepped fluid model must time the *same* schedule identically,
//! per step and in total, and both must match the closed-form step law
//! `overhead + max_transfer_bytes / B`.
//!
//! Configurations are randomized from fixed seeds so failures reproduce.

use collectives::halving_doubling::halving_doubling;
use collectives::rd::recursive_doubling;
use collectives::ring::ring_allreduce;
use collectives::Schedule;
use optical_sim::OpticalConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wrht_core::baselines::run_collective;
use wrht_core::cost::predict_time_s;
use wrht_core::lower::to_optical_schedule;
use wrht_core::plan::build_plan;
use wrht_core::substrate::{ElectricalSubstrate, OpticalSubstrate, RunReport, Substrate};

const BYTES_PER_ELEM: usize = 4;

/// One randomized coinciding-physics configuration.
struct Config {
    n: usize,
    elems: usize,
    bandwidth_bps: f64,
    overhead_s: f64,
}

fn random_config(rng: &mut StdRng) -> Config {
    Config {
        n: rng.random_range(2..24),
        elems: rng.random_range(1..5_000),
        bandwidth_bps: [1e9, 2.5e9, 12.5e9][rng.random_range(0..3)],
        overhead_s: [0.0, 1e-6, 5e-6][rng.random_range(0..3)],
    }
}

/// The coinciding-physics substrate pair: same bandwidth, zero
/// latency/propagation, same per-step overhead, one wavelength per
/// transfer (the schedule's transfers all use `lanes = 1`).
fn substrate_pair(cfg: &Config) -> (OpticalSubstrate, ElectricalSubstrate) {
    let optical = OpticalSubstrate::new(
        OpticalConfig::new(cfg.n, cfg.n.max(2))
            .with_lambda_bandwidth(cfg.bandwidth_bps)
            .with_message_overhead(cfg.overhead_s)
            .with_hop_propagation(0.0),
    )
    .expect("valid optical config");
    let electrical = ElectricalSubstrate::new(
        electrical_sim::topology::star_cluster(cfg.n, cfg.bandwidth_bps, 0.0),
        cfg.overhead_s,
    );
    (optical, electrical)
}

/// Closed-form per-step times: `overhead + max_transfer_bytes / B` for
/// non-empty steps, 0 for empty ones (both runners skip them entirely).
fn closed_form_steps(schedule: &Schedule, cfg: &Config) -> Vec<f64> {
    schedule
        .step_transfers(BYTES_PER_ELEM)
        .iter()
        .map(|step| {
            let max_bytes = step
                .iter()
                .map(|&(_, _, b)| b)
                .filter(|&b| b > 0)
                .max()
                .unwrap_or(0);
            if max_bytes == 0 {
                0.0
            } else {
                cfg.overhead_s + max_bytes as f64 / cfg.bandwidth_bps
            }
        })
        .collect()
}

fn assert_steps_agree(tag: &str, a: &RunReport, b: &RunReport, expected: &[f64]) {
    assert_eq!(a.step_count(), b.step_count(), "{tag}: step counts differ");
    assert_eq!(a.step_count(), expected.len(), "{tag}: closed-form shape");
    for (i, ((sa, sb), want)) in a.steps.iter().zip(&b.steps).zip(expected).enumerate() {
        let scale = want.max(1e-30);
        assert!(
            (sa.duration_s - sb.duration_s).abs() / scale < 1e-9,
            "{tag} step {i}: optical {} vs electrical {}",
            sa.duration_s,
            sb.duration_s
        );
        assert!(
            (sa.duration_s - want).abs() / scale < 1e-9,
            "{tag} step {i}: optical {} vs closed form {want}",
            sa.duration_s
        );
    }
    let total: f64 = expected.iter().sum();
    assert!(
        (a.total_time_s - b.total_time_s).abs() / total.max(1e-30) < 1e-9,
        "{tag}: totals {} vs {}",
        a.total_time_s,
        b.total_time_s
    );
}

fn check_algorithm(tag: &str, schedule: &Schedule, cfg: &Config) {
    let (mut optical, mut electrical) = substrate_pair(cfg);
    let o = run_collective(&mut optical, schedule, BYTES_PER_ELEM, 1).expect("optical run");
    let e = run_collective(&mut electrical, schedule, BYTES_PER_ELEM, 1).expect("electrical run");
    let expected = closed_form_steps(schedule, cfg);
    assert_steps_agree(tag, &o, &e, &expected);
}

#[test]
fn ring_schedules_agree_across_substrates_and_with_closed_forms() {
    let mut rng = StdRng::seed_from_u64(2023);
    for case in 0..12 {
        let cfg = random_config(&mut rng);
        let sched = ring_allreduce(cfg.n, cfg.elems);
        check_algorithm(&format!("ring case {case} (n={})", cfg.n), &sched, &cfg);
    }
}

#[test]
fn halving_doubling_schedules_agree_across_substrates() {
    let mut rng = StdRng::seed_from_u64(31);
    for case in 0..12 {
        let cfg = random_config(&mut rng);
        let sched = halving_doubling(cfg.n, cfg.elems);
        check_algorithm(&format!("hd case {case} (n={})", cfg.n), &sched, &cfg);
    }
}

#[test]
fn recursive_doubling_schedules_agree_across_substrates() {
    let mut rng = StdRng::seed_from_u64(77);
    for case in 0..12 {
        let cfg = random_config(&mut rng);
        let sched = recursive_doubling(cfg.n, cfg.elems);
        check_algorithm(&format!("rd case {case} (n={})", cfg.n), &sched, &cfg);
    }
}

/// The divisible-payload ring all-reduce additionally matches the
/// Patarasuk–Yuan closed form `2(n-1)(overhead + (S/n)/B)` on BOTH fabrics.
#[test]
fn ring_total_matches_patarasuk_yuan_formula_on_both_substrates() {
    let mut rng = StdRng::seed_from_u64(404);
    for _ in 0..8 {
        let mut cfg = random_config(&mut rng);
        cfg.elems = cfg.n * rng.random_range(1..2_000); // divisible payload
        let sched = ring_allreduce(cfg.n, cfg.elems);
        let (mut optical, mut electrical) = substrate_pair(&cfg);
        let chunk = (cfg.elems / cfg.n * BYTES_PER_ELEM) as f64;
        let expected = (2 * (cfg.n - 1)) as f64 * (cfg.overhead_s + chunk / cfg.bandwidth_bps);
        for report in [
            run_collective(&mut optical, &sched, BYTES_PER_ELEM, 1).unwrap(),
            run_collective(&mut electrical, &sched, BYTES_PER_ELEM, 1).unwrap(),
        ] {
            assert!(
                (report.total_time_s - expected).abs() / expected < 1e-9,
                "{}: {} vs closed form {expected}",
                report.substrate,
                report.total_time_s
            );
        }
    }
}

/// Wrht plans on the optical substrate match the analytic `predict_time_s`
/// model per step and in total, over randomized feasible configurations.
#[test]
fn wrht_optical_runs_match_predict_time_closed_form() {
    let mut rng = StdRng::seed_from_u64(9);
    for case in 0..12 {
        let n = rng.random_range(2..120);
        let m = rng.random_range(2..10usize);
        let w = (m / 2).max(1) + rng.random_range(0..8);
        let bytes = rng.random_range(1u64..4096) * 1024;
        let Ok(plan) = build_plan(n, m, w) else {
            continue;
        };
        let config = OpticalConfig::new(n.max(2), w);
        let predicted = predict_time_s(&plan, &config, bytes);
        let mut optical = OpticalSubstrate::new(config).unwrap();
        let report = optical
            .execute(&to_optical_schedule(&plan, bytes))
            .expect("feasible plan executes");
        assert_eq!(report.step_count(), predicted.per_step_s.len());
        for (i, (step, want)) in report.steps.iter().zip(&predicted.per_step_s).enumerate() {
            assert!(
                (step.duration_s - want).abs() / want.max(1e-30) < 1e-9,
                "case {case} (n={n} m={m} w={w}) step {i}: {} vs {}",
                step.duration_s,
                want
            );
        }
        assert!(
            (report.total_time_s - predicted.total_s()).abs() / predicted.total_s().max(1e-30)
                < 1e-9,
            "case {case}: total {} vs predicted {}",
            report.total_time_s,
            predicted.total_s()
        );
    }
}
