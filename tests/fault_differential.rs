//! Differential testing of the fault pipeline.
//!
//! Pins the tentpole contracts of `Substrate::execute_dag_faulted`:
//!
//! * **zero-fault bit-exactness** — an empty [`FaultScript`] reproduces the
//!   clean `execute_dag` run **bit-exactly** on BOTH substrates, for random
//!   collective schedules and every recovery policy (the faulted entry
//!   points delegate to the untouched clean code paths);
//! * **vacuous faults are no-ops** — a fault scheduled after the last
//!   completion, a wavelength `Down`/`Up` pair resolved before any affected
//!   transfer starts, and a capacity "degrade" to factor 1.0 all leave the
//!   per-transfer timings bit-identical to the clean run;
//! * **monotonicity** — adding a real fault never *decreases* the effective
//!   makespan (infinite when any transfer failed) under `FailJob` /
//!   `RetryAfter`, scoped to ample wavelengths where capacity loss cannot
//!   reshuffle grants into a faster schedule;
//! * **campaign determinism** — the fault campaign axis serializes
//!   byte-identically across worker thread counts and resumes from its
//!   sink.

use collectives::halving_doubling::halving_doubling;
use collectives::rd::recursive_doubling;
use collectives::ring::ring_allreduce;
use collectives::Schedule;
use electrical_sim::topology::star_cluster;
use optical_sim::OpticalConfig;
use proptest::prelude::*;
use wrht_bench::campaign::{faults_spec, run_fault_campaign};
use wrht_bench::report::to_json;
use wrht_bench::ExperimentConfig;
use wrht_core::baselines::lower_collective_to_optical;
use wrht_core::dag::DepSchedule;
use wrht_core::fault::{FaultKind, FaultPolicy, FaultRunReport, FaultScript};
use wrht_core::substrate::{DagRunReport, ElectricalSubstrate, OpticalSubstrate, Substrate};

const BYTES_PER_ELEM: usize = 4;

type Builder = fn(usize, usize) -> Schedule;

const ALGORITHMS: [(&str, Builder); 3] = [
    ("ring", ring_allreduce as Builder),
    ("hd", halving_doubling as Builder),
    ("rd", recursive_doubling as Builder),
];

const POLICIES: [FaultPolicy; 3] = [
    FaultPolicy::FailJob,
    FaultPolicy::RetryAfter(0.25),
    FaultPolicy::Replan,
];

fn substrate_pair(
    n: usize,
    wavelengths: usize,
    bandwidth_bps: f64,
    overhead_s: f64,
) -> (OpticalSubstrate, ElectricalSubstrate) {
    let optical = OpticalSubstrate::new(
        OpticalConfig::new(n, wavelengths)
            .with_lambda_bandwidth(bandwidth_bps)
            .with_message_overhead(overhead_s)
            .with_hop_propagation(0.0),
    )
    .expect("valid optical config");
    let electrical = ElectricalSubstrate::new(star_cluster(n, bandwidth_bps, 0.0), overhead_s);
    (optical, electrical)
}

/// Assert a faulted run is the clean run, bit for bit, with no casualties.
fn assert_noop(clean: &DagRunReport, faulted: &FaultRunReport, context: &str) {
    assert_eq!(
        faulted.makespan_s.to_bits(),
        clean.makespan_s.to_bits(),
        "{context}: faulted makespan {} vs clean {}",
        faulted.makespan_s,
        clean.makespan_s
    );
    assert_eq!(faulted.transfers.len(), clean.transfers.len(), "{context}");
    for (i, (f, c)) in faulted.transfers.iter().zip(&clean.transfers).enumerate() {
        assert!(f.completed, "{context}: transfer {i} not completed");
        assert_eq!(f.aborts, 0, "{context}: transfer {i} aborted");
        assert_eq!(
            f.start_s.to_bits(),
            c.start_s.to_bits(),
            "{context}: transfer {i} start {} vs {}",
            f.start_s,
            c.start_s
        );
        assert_eq!(
            f.finish_s.to_bits(),
            c.finish_s.to_bits(),
            "{context}: transfer {i} finish {} vs {}",
            f.finish_s,
            c.finish_s
        );
    }
    assert_eq!(faulted.first_impact_s, None, "{context}");
    assert_eq!(faulted.total_aborts(), 0, "{context}");
    assert_eq!(faulted.failed_transfers(), 0, "{context}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// An empty fault script is bit-exact with the clean entry point on
    /// both substrates, for every classic collective and recovery policy.
    #[test]
    fn empty_script_is_bit_exact_with_the_clean_run(
        n in 2usize..12,
        elems in 1usize..20_000,
        bw_idx in 0usize..3,
        ov_idx in 0usize..3,
    ) {
        let bandwidth = [1e9, 2.5e9, 12.5e9][bw_idx];
        let overhead = [0.0, 1e-6, 5e-6][ov_idx];
        for (name, build) in ALGORITHMS {
            let sched = lower_collective_to_optical(&build(n, elems), BYTES_PER_ELEM, 1);
            let dag = DepSchedule::from_steps(&sched);
            for policy in POLICIES {
                let (mut optical, mut electrical) =
                    substrate_pair(n, n.max(2), bandwidth, overhead);
                for substrate in [&mut optical as &mut dyn Substrate, &mut electrical] {
                    let clean = substrate.execute_dag(&dag).expect("clean dag");
                    let faulted = substrate
                        .execute_dag_faulted(&dag, &FaultScript::new(), policy)
                        .expect("faulted dag");
                    assert_noop(&clean, &faulted, &format!("{}/{name}", clean.substrate));
                }
            }
        }
    }

    /// A fault scheduled strictly after the last completion changes
    /// nothing: the event drains against an empty fabric. Chained buckets
    /// with a positive gradient-ready offset keep the electrical run on
    /// the event engine (the barrier fast path is a different composition).
    #[test]
    fn post_completion_fault_changes_nothing(
        n in 2usize..10,
        elems in 1usize..10_000,
        ready_ms in 1u32..5,
        pol_idx in 0usize..3,
    ) {
        let sched = lower_collective_to_optical(&ring_allreduce(n, elems), BYTES_PER_ELEM, 1);
        let buckets = vec![(0.0, sched.clone()), (f64::from(ready_ms) * 1e-3, sched)];
        let (dag, _) = DepSchedule::chain(&buckets);
        let policy = POLICIES[pol_idx];
        let (mut optical, mut electrical) = substrate_pair(n, n.max(2), 1e9, 1e-6);

        let clean = optical.execute_dag(&dag).expect("optical clean");
        let late = clean.makespan_s * 2.0 + 1.0;
        let script = FaultScript::new().with(late, FaultKind::WavelengthDown { lane: 0 });
        let faulted = optical
            .execute_dag_faulted(&dag, &script, policy)
            .expect("optical late fault");
        assert_noop(&clean, &faulted, "optical/late");

        let clean = electrical.execute_dag(&dag).expect("electrical clean");
        let late = clean.makespan_s * 2.0 + 1.0;
        let script = FaultScript::new().with(
            late,
            FaultKind::LinkDegrade { link: 0, factor: 0.25 },
        );
        let faulted = electrical
            .execute_dag_faulted(&dag, &script, policy)
            .expect("electrical late fault");
        assert_noop(&clean, &faulted, "electrical/late");
    }

    /// A wavelength `Down` repaired by `Up` before any affected transfer
    /// starts is a no-op, and so is the electrical analogue (a degrade
    /// fully restored before the first release).
    #[test]
    fn down_then_up_before_any_start_is_a_noop(
        n in 2usize..10,
        elems in 1usize..10_000,
        pol_idx in 0usize..3,
    ) {
        let sched = lower_collective_to_optical(&ring_allreduce(n, elems), BYTES_PER_ELEM, 1);
        // Every transfer releases at 1.0 s; the fault window closes at 0.5 s.
        let (dag, _) = DepSchedule::chain(&[(1.0, sched)]);
        let policy = POLICIES[pol_idx];
        let (mut optical, mut electrical) = substrate_pair(n, n.max(2), 1e9, 1e-6);

        let clean = optical.execute_dag(&dag).expect("optical clean");
        let script = FaultScript::new()
            .with(0.2, FaultKind::WavelengthDown { lane: 0 })
            .with(0.5, FaultKind::WavelengthUp { lane: 0 });
        let faulted = optical
            .execute_dag_faulted(&dag, &script, policy)
            .expect("optical down/up");
        assert_noop(&clean, &faulted, "optical/down-up");

        let clean = electrical.execute_dag(&dag).expect("electrical clean");
        let script = FaultScript::new()
            .with(0.2, FaultKind::LinkDegrade { link: 0, factor: 0.25 })
            .with(0.5, FaultKind::LinkDegrade { link: 0, factor: 1.0 });
        let faulted = electrical
            .execute_dag_faulted(&dag, &script, policy)
            .expect("electrical degrade/restore");
        assert_noop(&clean, &faulted, "electrical/degrade-restore");
    }

    /// Degrading a link to capacity factor 1.0 is bit-exact with no fault
    /// at all: the runner drops the no-op instead of letting an extra
    /// kernel instant split fluid intervals.
    #[test]
    fn unit_degrade_factor_is_bit_exact_with_no_fault(
        n in 2usize..10,
        elems in 1usize..10_000,
        ready_ms in 1u32..5,
        frac_pct in 10u32..90,
        pol_idx in 0usize..3,
    ) {
        let frac = f64::from(frac_pct) / 100.0;
        let sched = lower_collective_to_optical(&ring_allreduce(n, elems), BYTES_PER_ELEM, 1);
        let buckets = vec![(0.0, sched.clone()), (f64::from(ready_ms) * 1e-3, sched)];
        let (dag, _) = DepSchedule::chain(&buckets);
        let policy = POLICIES[pol_idx];
        let (mut optical, mut electrical) = substrate_pair(n, n.max(2), 1e9, 1e-6);

        let clean = electrical.execute_dag(&dag).expect("electrical clean");
        let script = FaultScript::new().with(
            frac * clean.makespan_s,
            FaultKind::LinkDegrade { link: 0, factor: 1.0 },
        );
        let faulted = electrical
            .execute_dag_faulted(&dag, &script, policy)
            .expect("electrical unit degrade");
        assert_noop(&clean, &faulted, "electrical/unit-degrade");

        // Link events have no optical meaning at any factor.
        let clean = optical.execute_dag(&dag).expect("optical clean");
        let script = FaultScript::new().with(
            frac * clean.makespan_s,
            FaultKind::LinkDegrade { link: 0, factor: 0.25 },
        );
        let faulted = optical
            .execute_dag_faulted(&dag, &script, policy)
            .expect("optical link degrade");
        assert_noop(&clean, &faulted, "optical/link-degrade");
    }

    /// Adding a fault never *decreases* the effective makespan (infinite
    /// when any transfer failed) under `FailJob` / `RetryAfter`. Scoped to
    /// ample wavelengths (2n): with spare lanes a wavelength loss can only
    /// abort in-flight transfers — it cannot reshuffle waiting grants into
    /// a faster schedule.
    #[test]
    fn faults_never_decrease_effective_makespan(
        n in 2usize..10,
        elems in 100usize..20_000,
        frac_pct in 5u32..95,
        backoff_ms in 0u32..10,
        fail_job in proptest::bool::ANY,
    ) {
        let frac = f64::from(frac_pct) / 100.0;
        let sched = lower_collective_to_optical(&ring_allreduce(n, elems), BYTES_PER_ELEM, 1);
        let (dag, _) = DepSchedule::chain(&[(0.0, sched)]);
        let policy = if fail_job {
            FaultPolicy::FailJob
        } else {
            FaultPolicy::RetryAfter(f64::from(backoff_ms) * 1e-3)
        };
        let (mut optical, mut electrical) = substrate_pair(n, 2 * n, 1e9, 1e-6);

        let clean = optical.execute_dag(&dag).expect("optical clean");
        let script = FaultScript::new().with(
            frac * clean.makespan_s,
            FaultKind::WavelengthDown { lane: 0 },
        );
        let faulted = optical
            .execute_dag_faulted(&dag, &script, policy)
            .expect("optical mid-run fault");
        prop_assert!(
            faulted.effective_makespan_s() >= clean.makespan_s * (1.0 - 1e-12),
            "optical: effective {} < clean {}",
            faulted.effective_makespan_s(),
            clean.makespan_s
        );

        // Electrically a node loss either fails transfers (infinite
        // effective makespan) or — landing after every completion — is a
        // no-op; either way the effective makespan cannot shrink.
        let clean = electrical.execute_dag(&dag).expect("electrical clean");
        let script = FaultScript::new().with(
            frac * clean.makespan_s,
            FaultKind::NodeDown { node: n / 2 },
        );
        let faulted = electrical
            .execute_dag_faulted(&dag, &script, FaultPolicy::FailJob)
            .expect("electrical mid-run fault");
        prop_assert!(
            faulted.effective_makespan_s() >= clean.makespan_s * (1.0 - 1e-12),
            "electrical: effective {} < clean {}",
            faulted.effective_makespan_s(),
            clean.makespan_s
        );
    }
}

/// The fault campaign axis is deterministic across worker thread counts
/// and resumes byte-identically from its sink.
#[test]
fn fault_campaign_is_thread_count_invariant_and_resumable() {
    let cfg = ExperimentConfig {
        scales: vec![8],
        ..ExperimentConfig::default()
    };
    let spec = faults_spec(&cfg, &dnn_models::paper_models(), 8, 41);
    let serial = run_fault_campaign(&spec, 1, None);
    let parallel = run_fault_campaign(&spec, 8, None);
    assert_eq!(to_json(&serial), to_json(&parallel));

    let dir = std::env::temp_dir().join(format!("wrht-fault-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let first = run_fault_campaign(&spec, 4, Some(&dir));
    let resumed = run_fault_campaign(&spec, 2, Some(&dir));
    assert_eq!(to_json(&first), to_json(&resumed));
    assert_eq!(to_json(&first), to_json(&serial));
    let _ = std::fs::remove_dir_all(&dir);
}
