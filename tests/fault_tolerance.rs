//! Fault-tolerance extension: re-planning the all-reduce over survivors
//! after node failures, end to end.

use collectives::execute;
use collectives::ring::ring_allreduce;
use optical_sim::{OpticalConfig, RingSimulator, Strategy};
use proptest::prelude::*;
use wrht_core::baselines::lower_collective_to_optical;
use wrht_core::dag::DepSchedule;
use wrht_core::fault::{FaultKind, FaultPolicy, FaultScript};
use wrht_core::lower::{to_logical_schedule, to_optical_schedule};
use wrht_core::plan::build_plan_over;
use wrht_core::substrate::{OpticalSubstrate, Substrate};

/// Execute a survivor plan logically and check every survivor ends with
/// the sum over survivors only (failed nodes neither contribute nor
/// receive).
fn check_survivor_allreduce(ring_n: usize, survivors: &[usize], m: usize, w: usize) {
    let plan = build_plan_over(ring_n, survivors, m, w).unwrap();
    let elems = 5;
    let sched = to_logical_schedule(&plan, elems);
    // Unique contributions per (node, elem).
    let inputs: Vec<Vec<f64>> = (0..ring_n)
        .map(|node| (0..elems).map(|i| (node * elems + i + 1) as f64).collect())
        .collect();
    let outputs = execute(&sched, &inputs);
    for &s in survivors {
        assert_eq!(
            outputs[s].len(),
            elems,
            "survivor {s} buffer truncated (ring {ring_n}, m {m}, w {w})"
        );
        for (i, &got) in outputs[s].iter().enumerate() {
            let want: f64 = survivors
                .iter()
                .map(|&node| (node * elems + i + 1) as f64)
                .sum();
            assert_eq!(
                got, want,
                "survivor {s} elem {i} (ring {ring_n}, m {m}, w {w})"
            );
        }
    }
    // Failed nodes keep their original buffers (nothing writes to them).
    for node in 0..ring_n {
        if !survivors.contains(&node) {
            assert_eq!(
                outputs[node], inputs[node],
                "failed node {node} was touched"
            );
        }
    }
}

#[test]
fn survivor_allreduce_after_specific_failures() {
    let survivors: Vec<usize> = (0..32).filter(|p| ![0, 7, 8, 30].contains(p)).collect();
    check_survivor_allreduce(32, &survivors, 4, 8);
}

#[test]
fn survivor_plans_simulate_within_budget() {
    let survivors: Vec<usize> = (0..64).filter(|p| p % 5 != 0).collect();
    let w = 8;
    let plan = build_plan_over(64, &survivors, 4, w).unwrap();
    let sched = to_optical_schedule(&plan, 1 << 20);
    let mut sim = RingSimulator::new(OpticalConfig::new(64, w));
    let report = sim.run_stepped(&sched, Strategy::FirstFit).unwrap();
    assert!(report.stats.peak_wavelengths() <= w);
    assert!(report.total_time_s > 0.0);
}

/// End-to-end survivor re-planning through `execute_dag_faulted`: a node
/// dies mid-run under `Replan`, every transfer touching it is failed with
/// its dependents released (the drain still terminates and survivors'
/// transfers complete), and the survivor set then re-plans via
/// `build_plan_over` into a clean run on the same substrate.
#[test]
fn mid_run_node_loss_replans_over_survivors() {
    let n = 16;
    let victim = 5;
    let dag = DepSchedule::from_steps(&lower_collective_to_optical(&ring_allreduce(n, 4096), 4, 1));
    let mut substrate = OpticalSubstrate::new(
        OpticalConfig::new(n, n)
            .with_lambda_bandwidth(1e9)
            .with_message_overhead(1e-6)
            .with_hop_propagation(0.0),
    )
    .expect("valid optical config");

    let clean = substrate.execute_dag(&dag).expect("clean run");
    let script =
        FaultScript::new().with(0.4 * clean.makespan_s, FaultKind::NodeDown { node: victim });
    let faulted = substrate
        .execute_dag_faulted(&dag, &script, FaultPolicy::Replan)
        .expect("faulted run terminates");

    // The node loss lands mid-run, so at least one transfer on the victim
    // must fail — and ONLY transfers with a victim endpoint may fail:
    // Replan releases their dependents so the rest of the ring drains.
    assert!(faulted.failed_transfers() > 0, "fault landed in a gap");
    for (i, (timing, dep)) in faulted.transfers.iter().zip(dag.transfers()).enumerate() {
        let touches_victim = dep.transfer.src.0 == victim || dep.transfer.dst.0 == victim;
        if !touches_victim {
            assert!(timing.completed, "survivor transfer {i} did not complete");
        }
        if !timing.completed {
            assert!(
                touches_victim,
                "transfer {i} failed without a victim endpoint"
            );
        }
    }
    assert!(faulted.first_impact_s.is_some());

    // Re-plan over the survivors and run the new plan cleanly end to end.
    let survivors: Vec<usize> = (0..n).filter(|&p| p != victim).collect();
    let plan = build_plan_over(n, &survivors, 4, 8).expect("survivor plan");
    let replanned = DepSchedule::from_steps(&to_optical_schedule(&plan, 4096));
    let report = substrate.execute_dag(&replanned).expect("replanned run");
    assert!(report.makespan_s.is_finite() && report.makespan_s > 0.0);
    // And the survivor plan is numerically a survivor-only all-reduce.
    check_survivor_allreduce(n, &survivors, 4, 8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any survivor subset yields a correct survivor-only all-reduce.
    #[test]
    fn random_failure_sets_still_allreduce(
        ring_n in 4usize..48,
        failures in proptest::collection::hash_set(0usize..48, 0..6),
        m in 2usize..6,
        w in 1usize..16,
    ) {
        prop_assume!(m / 2 <= w);
        let survivors: Vec<usize> = (0..ring_n)
            .filter(|p| !failures.contains(p))
            .collect();
        prop_assume!(!survivors.is_empty());
        check_survivor_allreduce(ring_n, &survivors, m, w);
    }
}
