//! Failure injection: invalid configurations and schedules must surface as
//! typed errors, never panics, across every crate boundary.

use collectives::ring::ring_allreduce;
use collectives::{Op, Schedule, Step, TransferSpec};
use electrical_sim::prelude::*;
use optical_sim::prelude::*;
use wrht_core::baselines::lower_collective_to_optical;
use wrht_core::dag::DepSchedule;
use wrht_core::fault::{FaultError, FaultKind, FaultPolicy, FaultScript};
use wrht_core::substrate::{ElectricalSubstrate, OpticalSubstrate, Substrate};
use wrht_core::{plan_and_simulate, WrhtError, WrhtParams};

#[test]
fn optical_rejects_bad_configurations() {
    assert!(RingSimulator::try_new(OpticalConfig::new(1, 4)).is_err());
    assert!(RingSimulator::try_new(OpticalConfig::new(8, 0)).is_err());
    assert!(
        RingSimulator::try_new(OpticalConfig::new(8, 4).with_lambda_bandwidth(f64::NAN)).is_err()
    );
}

#[test]
fn optical_rejects_bad_transfers_in_schedules() {
    let mut sim = RingSimulator::new(OpticalConfig::new(8, 4));
    // Node out of range.
    let bad = StepSchedule::from_steps(vec![vec![Transfer::shortest(NodeId(0), NodeId(99), 10)]]);
    assert!(matches!(
        sim.run_stepped(&bad, Strategy::FirstFit),
        Err(OpticalError::NodeOutOfRange { .. })
    ));
    // Self transfer.
    let bad = StepSchedule::from_steps(vec![vec![Transfer::shortest(NodeId(3), NodeId(3), 10)]]);
    assert!(matches!(
        sim.run_stepped(&bad, Strategy::FirstFit),
        Err(OpticalError::SelfTransfer(_))
    ));
    // Zero lanes.
    let bad = StepSchedule::from_steps(vec![vec![
        Transfer::shortest(NodeId(0), NodeId(1), 10).with_lanes(0)
    ]]);
    assert!(matches!(
        sim.run_stepped(&bad, Strategy::FirstFit),
        Err(OpticalError::ZeroLanes)
    ));
    // Wavelength exhaustion (nested senders exceed the budget).
    let nested: Vec<Transfer> = (0..6)
        .map(|i| Transfer::directed(NodeId(i), NodeId(6), 10, optical_sim::Direction::Clockwise))
        .collect();
    assert!(matches!(
        sim.run_stepped(&StepSchedule::from_steps(vec![nested]), Strategy::FirstFit),
        Err(OpticalError::WavelengthsExhausted { .. })
    ));
}

#[test]
fn electrical_rejects_bad_flows() {
    let net = star_cluster(4, 1e9, 0.0);
    assert!(matches!(
        net.route(0, 9),
        Err(NetError::HostOutOfRange { .. })
    ));
    let mut sim = FluidSimulator::new(net);
    sim.submit(FlowSpec::new(2, 2, 10));
    assert!(matches!(sim.run(), Err(NetError::SelfFlow(2))));
}

#[test]
fn wrht_rejects_infeasible_requests() {
    let cfg = OpticalConfig::new(64, 2);
    // m = 63 needs 31 wavelengths.
    assert!(matches!(
        plan_and_simulate(&WrhtParams::fixed(64, 2, 63), &cfg, 1 << 20),
        Err(WrhtError::GroupSizeNeedsMoreWavelengths { .. })
    ));
    // m = 1 is never a tree.
    assert!(matches!(
        plan_and_simulate(&WrhtParams::fixed(64, 2, 1), &cfg, 1 << 20),
        Err(WrhtError::GroupSizeTooSmall(1))
    ));
}

#[test]
fn malformed_fault_scripts_surface_typed_errors() {
    let n = 8;
    let dag = DepSchedule::from_steps(&lower_collective_to_optical(&ring_allreduce(n, 64), 4, 1));
    let mut optical = OpticalSubstrate::new(OpticalConfig::new(n, 4)).expect("optical substrate");
    let mut electrical = ElectricalSubstrate::new(star_cluster(n, 1e9, 0.0), 0.0);
    let policy = FaultPolicy::Replan;

    // NaN timestamps are rejected with the event index, on both substrates.
    let nan = FaultScript::new().with(f64::NAN, FaultKind::NodeDown { node: 0 });
    assert!(matches!(
        optical.execute_dag_faulted(&dag, &nan, policy),
        Err(WrhtError::Fault(FaultError::BadTimestamp { index: 0, .. }))
    ));
    assert!(matches!(
        electrical.execute_dag_faulted(&dag, &nan, policy),
        Err(WrhtError::Fault(FaultError::BadTimestamp { index: 0, .. }))
    ));

    // A lane beyond the waveguide is an optical validation error; the
    // electrical substrate has no lanes to bound-check against.
    let wide = FaultScript::new().with(0.5, FaultKind::WavelengthDown { lane: 64 });
    assert!(matches!(
        optical.execute_dag_faulted(&dag, &wide, policy),
        Err(WrhtError::Fault(FaultError::LaneOutOfRange {
            lane: 64,
            wavelengths: 4,
            ..
        }))
    ));

    // Repairing a lane that never failed is malformed everywhere the
    // script is lane-aware.
    let phantom = FaultScript::new().with(0.5, FaultKind::WavelengthUp { lane: 1 });
    assert!(matches!(
        optical.execute_dag_faulted(&dag, &phantom, policy),
        Err(WrhtError::Fault(FaultError::UpWithoutDown { lane: 1, .. }))
    ));

    // Node indices are bounded on both substrates.
    let ghost = FaultScript::new().with(0.5, FaultKind::NodeDown { node: n + 3 });
    assert!(matches!(
        optical.execute_dag_faulted(&dag, &ghost, policy),
        Err(WrhtError::Fault(FaultError::NodeOutOfRange { .. }))
    ));
    assert!(matches!(
        electrical.execute_dag_faulted(&dag, &ghost, policy),
        Err(WrhtError::Fault(FaultError::NodeOutOfRange { .. }))
    ));

    // A rejected script must not poison the substrate: a clean run after
    // the errors is still fine.
    assert!(optical.execute_dag(&dag).is_ok());
    assert!(electrical.execute_dag(&dag).is_ok());
}

#[test]
fn schedule_validation_catches_structural_corruption() {
    let mut s = Schedule::new(4, 8, "corrupt");
    s.push_step(Step::new(vec![TransferSpec::new(0, 4, 0..8, Op::Copy)]));
    assert!(s.validate().is_err());

    let mut s = Schedule::new(4, 8, "corrupt");
    s.push_step(Step::new(vec![TransferSpec::new(0, 1, 5..99, Op::Copy)]));
    assert!(s.validate().is_err());

    let mut s = Schedule::new(4, 8, "corrupt");
    s.push_step(Step::new(vec![
        TransferSpec::new(0, 2, 0..4, Op::Copy),
        TransferSpec::new(1, 2, 3..6, Op::Copy),
    ]));
    assert!(s.validate().is_err());
}

#[test]
fn errors_format_without_panicking() {
    // Exercise Display on representative errors of each crate.
    let es: Vec<Box<dyn std::error::Error>> = vec![
        Box::new(OpticalError::RingTooSmall(1)),
        Box::new(NetError::NoRoute { src: 0, dst: 1 }),
        Box::new(WrhtError::NoFeasiblePlan {
            n: 4,
            wavelengths: 0,
        }),
    ];
    for e in es {
        assert!(!e.to_string().is_empty());
    }
}
