//! Differential testing of the composed hierarchical substrate.
//!
//! Pins the tentpole contracts of [`wrht_core::hierarchy::ComposedSubstrate`]:
//!
//! * a **single-group** hierarchy collapses to today's flat runs
//!   **bit-exactly**, on BOTH substrate orders (optical-intra /
//!   electrical-inter and the reverse), for random collective DAGs and
//!   random physics — the composed layer must be a pure refactor when
//!   there is nothing to compose;
//! * on **multi-group** hierarchies with random mixed-domain DAGs, the
//!   cross-fabric co-simulation never deadlocks: every run completes, and
//!   every transfer starts only after its release time and after every
//!   dependency — including dependencies that live on the *other*
//!   fabric — has finished;
//! * the composed makespan is never below the **per-fabric critical
//!   path**: the longest dependency chain priced with each transfer's
//!   *uncontended, isolated* duration on its own fabric (contention and
//!   cross-fabric stitching can only add time);
//! * composed execution is deterministic: same DAG, bit-identical reports.

use collectives::halving_doubling::halving_doubling;
use collectives::rd::recursive_doubling;
use collectives::ring::ring_allreduce;
use collectives::Schedule;
use electrical_sim::topology::star_cluster;
use optical_sim::{NodeId, OpticalConfig, Transfer};
use proptest::prelude::*;
use wrht_core::baselines::lower_collective_to_optical;
use wrht_core::dag::{DepSchedule, DepTransfer};
use wrht_core::hierarchy::{ComposedSubstrate, Domain, FabricSpec, HierSpec};
use wrht_core::substrate::{ElectricalSubstrate, OpticalSubstrate, Substrate};

const BYTES_PER_ELEM: usize = 4;

type Builder = fn(usize, usize) -> Schedule;

const ALGORITHMS: [(&str, Builder); 3] = [
    ("ring", ring_allreduce as Builder),
    ("hd", halving_doubling as Builder),
    ("rd", recursive_doubling as Builder),
];

fn optical_spec(n: usize, bandwidth_bps: f64, overhead_s: f64) -> FabricSpec {
    FabricSpec::optical(
        OpticalConfig::new(n, n.max(2))
            .with_lambda_bandwidth(bandwidth_bps)
            .with_message_overhead(overhead_s)
            .with_hop_propagation(0.0),
    )
}

fn electrical_spec(n: usize, bandwidth_bps: f64, overhead_s: f64) -> FabricSpec {
    FabricSpec::electrical(star_cluster(n, bandwidth_bps, 0.0), overhead_s)
}

/// A random mixed-domain DAG over `spec`: endpoints drawn from the seed
/// vectors, a sparse back-edge dependency structure, staggered releases.
fn random_hier_dag(
    spec: HierSpec,
    len: usize,
    src_seeds: &[usize],
    dst_seeds: &[usize],
    dep_seeds: &[usize],
    byte_seeds: &[usize],
) -> DepSchedule {
    let nodes = spec.nodes();
    let mut transfers = Vec::with_capacity(len);
    for i in 0..len {
        let src = src_seeds[i] % nodes;
        let dst = (src + 1 + dst_seeds[i] % (nodes - 1)) % nodes;
        let mut deps = Vec::new();
        if i > 0 && !dep_seeds[i].is_multiple_of(4) {
            deps.push(dep_seeds[i] % i);
            let second = (dep_seeds[i] / 7) % i;
            if second != deps[0] && dep_seeds[i].is_multiple_of(3) {
                deps.push(second);
                deps.sort_unstable();
            }
        }
        transfers.push(DepTransfer {
            transfer: Transfer::shortest(
                NodeId(src),
                NodeId(dst),
                (byte_seeds[i] as u64 + 1) << 10,
            ),
            deps,
            release_s: (dep_seeds[i] % 3) as f64 * 1e-5,
            stage: i,
        });
    }
    DepSchedule::from_transfers(transfers).expect("generated DAG is topologically ordered")
}

/// The uncontended duration of each transfer on its own fabric: a fresh
/// isolated substrate runs a one-transfer DAG (intra transfers rebased to
/// group-local ids on a single group's fabric).
fn isolated_durations(
    spec: HierSpec,
    dag: &DepSchedule,
    domains: &[Domain],
    intra: &dyn Fn() -> Box<dyn Substrate>,
    inter: &dyn Fn() -> Box<dyn Substrate>,
) -> Vec<f64> {
    dag.transfers()
        .iter()
        .zip(domains)
        .map(|(t, d)| {
            let (mut substrate, transfer) = match d {
                Domain::Intra { .. } => (
                    intra(),
                    Transfer {
                        src: NodeId(spec.local(t.transfer.src.0)),
                        dst: NodeId(spec.local(t.transfer.dst.0)),
                        ..t.transfer.clone()
                    },
                ),
                Domain::Inter => (inter(), t.transfer.clone()),
            };
            let solo = DepSchedule::from_transfers(vec![DepTransfer {
                transfer,
                deps: vec![],
                release_s: 0.0,
                stage: 0,
            }])
            .expect("one-transfer DAG is valid");
            let report = substrate.execute_dag(&solo).expect("isolated run");
            report.transfers[0].finish_s - report.transfers[0].start_s
        })
        .collect()
}

/// Longest dependency chain priced with per-transfer isolated durations —
/// a safe lower bound on any execution honoring deps and releases.
fn critical_path_lower_bound(dag: &DepSchedule, iso: &[f64]) -> f64 {
    let mut finish_lb = vec![0.0f64; dag.len()];
    let mut best = 0.0f64;
    for (i, t) in dag.transfers().iter().enumerate() {
        let mut start = t.release_s;
        for &d in &t.deps {
            start = start.max(finish_lb[d]);
        }
        finish_lb[i] = start + iso[i];
        best = best.max(finish_lb[i]);
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A one-group hierarchy is a pure delegation: the composed substrate
    /// reproduces the flat substrate's DAG report bit-exactly on BOTH
    /// substrate orders, for every classic collective and random physics.
    #[test]
    fn single_group_collapses_to_flat_runs_on_both_orders(
        n in 2usize..16,
        elems in 1usize..20_000,
        bw_idx in 0usize..3,
        ov_idx in 0usize..3,
    ) {
        let bandwidth = [1e9, 2.5e9, 12.5e9][bw_idx];
        let overhead = [0.0, 1e-6, 5e-6][ov_idx];
        let spec = HierSpec::new(1, n).expect("valid one-group spec");
        for (name, build) in ALGORITHMS {
            let sched = lower_collective_to_optical(&build(n, elems), BYTES_PER_ELEM, 1);
            let dag = DepSchedule::from_steps(&sched);

            // Order 1: optical intra, electrical inter — collapses to the
            // flat optical substrate.
            let mut composed = ComposedSubstrate::new(
                spec,
                optical_spec(n, bandwidth, overhead),
                electrical_spec(n, bandwidth, overhead),
            )
            .expect("valid composed substrate");
            let FabricSpec::Optical { config, .. } = optical_spec(n, bandwidth, overhead) else {
                unreachable!()
            };
            let mut flat_optical =
                OpticalSubstrate::new(config).expect("valid optical config");
            prop_assert_eq!(
                composed.execute_dag(&dag).expect("composed optical-intra"),
                flat_optical.execute_dag(&dag).expect("flat optical"),
                "algorithm {} must collapse bit-exactly (optical intra)", name
            );

            // Order 2: electrical intra, optical inter — collapses to the
            // flat electrical substrate.
            let mut composed = ComposedSubstrate::new(
                spec,
                electrical_spec(n, bandwidth, overhead),
                optical_spec(n, bandwidth, overhead),
            )
            .expect("valid composed substrate");
            let mut flat_electrical =
                ElectricalSubstrate::new(star_cluster(n, bandwidth, 0.0), overhead);
            prop_assert_eq!(
                composed.execute_dag(&dag).expect("composed electrical-intra"),
                flat_electrical.execute_dag(&dag).expect("flat electrical"),
                "algorithm {} must collapse bit-exactly (electrical intra)", name
            );
        }
    }

    /// Random mixed-domain DAGs on multi-group hierarchies: the co-sim
    /// completes (no deadlock), honors every release and cross-fabric
    /// dependency at event granularity, never beats the per-fabric
    /// critical path, and is bit-deterministic — on both substrate orders.
    #[test]
    fn composed_runs_honor_cross_fabric_dependencies(
        groups in 2usize..4,
        group_size in 2usize..5,
        len in 1usize..28,
        src_seeds in proptest::collection::vec(0usize..1_000, 28..29),
        dst_seeds in proptest::collection::vec(0usize..1_000, 28..29),
        dep_seeds in proptest::collection::vec(0usize..1_000, 28..29),
        byte_seeds in proptest::collection::vec(0usize..4_096, 28..29),
        electrical_intra in proptest::bool::ANY,
    ) {
        let spec = HierSpec::new(groups, group_size).expect("valid spec");
        let nodes = spec.nodes();
        let dag = random_hier_dag(spec, len, &src_seeds, &dst_seeds, &dep_seeds, &byte_seeds);
        let domains = spec.domains(&dag).expect("endpoints in range");
        let (bandwidth, overhead) = (1e9, 1e-6);

        let (intra, inter) = if electrical_intra {
            (
                electrical_spec(group_size, bandwidth, overhead),
                optical_spec(nodes, bandwidth, overhead),
            )
        } else {
            (
                optical_spec(group_size, bandwidth, overhead),
                electrical_spec(nodes, bandwidth, overhead),
            )
        };
        let mut composed = ComposedSubstrate::new(spec, intra.clone(), inter.clone())
            .expect("valid composed substrate");
        let report = composed.execute_dag(&dag).expect("co-sim must not deadlock");
        prop_assert_eq!(report.transfers.len(), dag.len());

        // Gates: start >= release and >= every dependency's finish, even
        // when the dependency ran on the other fabric.
        for (i, t) in dag.transfers().iter().enumerate() {
            let w = report.transfers[i];
            prop_assert!(w.finish_s >= w.start_s, "transfer {i} runs forward in time");
            prop_assert!(
                w.start_s >= t.release_s - 1e-12,
                "transfer {i} started {} before its release {}", w.start_s, t.release_s
            );
            for &d in &t.deps {
                prop_assert!(
                    w.start_s >= report.transfers[d].finish_s - 1e-12,
                    "transfer {i} ({}) started at {} before dep {d} ({}) finished at {}",
                    domains[i].label(), w.start_s,
                    domains[d].label(), report.transfers[d].finish_s
                );
            }
        }
        let max_finish = report
            .transfers
            .iter()
            .fold(0.0f64, |m, w| m.max(w.finish_s));
        prop_assert!((report.makespan_s - max_finish).abs() < 1e-12);

        // The composed makespan can only exceed the per-fabric critical
        // path (isolated, uncontended durations along dependency chains).
        let iso = isolated_durations(
            spec,
            &dag,
            &domains,
            &|| intra.substrate().expect("intra fabric builds"),
            &|| inter.substrate().expect("inter fabric builds"),
        );
        let bound = critical_path_lower_bound(&dag, &iso);
        prop_assert!(
            report.makespan_s >= bound - 1e-9,
            "composed makespan {} beat the critical-path bound {}", report.makespan_s, bound
        );

        // Bit-determinism on a fresh composed substrate.
        let mut again = ComposedSubstrate::new(spec, intra, inter).expect("valid substrate");
        let report2 = again.execute_dag(&dag).expect("deterministic rerun");
        prop_assert_eq!(report, report2);
    }
}
