//! End-to-end pipeline tests: the Figure 2 machinery at reduced scale.

use wrht_bench::report::to_json;
use wrht_bench::{fig2_row, fig2_series, headline, ExperimentConfig, Fig2Series};

#[test]
fn fig2_rows_are_finite_positive_and_ordered() {
    let cfg = ExperimentConfig::small();
    for model in dnn_models::paper_models() {
        let series = fig2_series(&cfg, &model);
        assert_eq!(series.rows.len(), cfg.scales.len());
        for r in &series.rows {
            for (name, v) in [
                ("e_ring", r.e_ring_s),
                ("rd", r.rd_s),
                ("o_ring", r.o_ring_s),
                ("wrht", r.wrht_s),
            ] {
                assert!(v.is_finite() && v > 0.0, "{}: {name} = {v}", model.name);
            }
            assert!(r.wrht_m >= 2);
            assert!(r.wrht_steps >= 1);
        }
    }
}

#[test]
fn headline_lands_in_the_paper_ballpark_at_scale() {
    // One full-scale cell: N = 128 is the paper's smallest scale and runs
    // in seconds. The shape must hold: Wrht beats everything, O-Ring and RD
    // are the slow ones.
    let cfg = ExperimentConfig::default();
    let model = dnn_models::resnet50();
    let r = fig2_row(&cfg, 128, model.gradient_bytes());
    assert!(r.wrht_s < r.e_ring_s, "wrht must beat E-Ring at n=128");
    assert!(r.wrht_s < r.rd_s, "wrht must beat RD at n=128");
    assert!(r.wrht_s < r.o_ring_s, "wrht must beat O-Ring at n=128");
    let reduction_vs_oring = 1.0 - r.wrht_s / r.o_ring_s;
    assert!(
        reduction_vs_oring > 0.5,
        "expected a large win vs O-Ring, got {:.1}%",
        reduction_vs_oring * 100.0
    );
}

#[test]
fn fig2_json_round_trips() {
    let cfg = ExperimentConfig::small();
    let series = vec![fig2_series(&cfg, &dnn_models::googlenet())];
    let json = to_json(&series);
    let back: Vec<Fig2Series> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, series);
    let h = headline(&series);
    assert!(h.vs_oring_pct > 0.0);
}

#[test]
fn scales_sweep_monotonicity_shapes() {
    // RD time grows with log2(n) full-buffer rounds; E-Ring bandwidth term
    // is scale-free so its growth comes only from per-step overheads.
    let cfg = ExperimentConfig::small();
    let s = fig2_series(&cfg, &dnn_models::alexnet());
    for w in s.rows.windows(2) {
        assert!(w[1].rd_s > w[0].rd_s, "RD must grow with n");
        let e_growth = w[1].e_ring_s / w[0].e_ring_s;
        assert!(e_growth < 1.5, "E-Ring growth should be modest: {e_growth}");
    }
}
