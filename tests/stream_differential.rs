//! Differential testing of the open-loop stream engine.
//!
//! Pins the tentpole contracts of `Substrate::execute_stream`:
//!
//! * **closed-set equivalence** — a `Trace` stream whose arrivals are all
//!   pre-known reproduces the closed [`Substrate::execute_jobs`] run
//!   **bit-exactly** on BOTH substrates, for every [`SchedPolicy`], random
//!   collective schedules and random physics (the "one execution engine"
//!   guarantee: the closed path is just a pre-scheduled stream);
//! * **checkpoint transparency** — pausing at an arbitrary arrival count,
//!   round-tripping the [`StreamCheckpoint`] through JSON and resuming
//!   yields a report byte-identical to the uninterrupted run;
//! * **campaign determinism** — the `StreamSweep` axis serializes
//!   byte-identically across worker thread counts and resumes from a
//!   partially populated `scell-*` sink.

use collectives::halving_doubling::halving_doubling;
use collectives::rd::recursive_doubling;
use collectives::ring::ring_allreduce;
use collectives::Schedule;
use electrical_sim::topology::star_cluster;
use optical_sim::OpticalConfig;
use proptest::prelude::*;
use wrht_bench::campaign::{run_stream_campaign, serve_spec};
use wrht_bench::report::to_json;
use wrht_bench::ExperimentConfig;
use wrht_core::baselines::lower_collective_to_optical;
use wrht_core::stream::{
    ArrivalProcess, StreamCheckpoint, StreamSpec, StreamTemplate, STREAM_CHECKPOINT_VERSION,
};
use wrht_core::substrate::{ElectricalSubstrate, OpticalSubstrate, Substrate};
use wrht_core::tenancy::{Job, JobWorkload, SchedPolicy, TenancySpec};

const BYTES_PER_ELEM: usize = 4;

type Builder = fn(usize, usize) -> Schedule;

const ALGORITHMS: [(&str, Builder); 3] = [
    ("ring", ring_allreduce as Builder),
    ("hd", halving_doubling as Builder),
    ("rd", recursive_doubling as Builder),
];

fn substrate_pair(
    n: usize,
    bandwidth_bps: f64,
    overhead_s: f64,
) -> (OpticalSubstrate, ElectricalSubstrate) {
    let optical = OpticalSubstrate::new(
        OpticalConfig::new(n, n.max(2))
            .with_lambda_bandwidth(bandwidth_bps)
            .with_message_overhead(overhead_s)
            .with_hop_propagation(0.0),
    )
    .expect("valid optical config");
    let electrical = ElectricalSubstrate::new(star_cluster(n, bandwidth_bps, 0.0), overhead_s);
    (optical, electrical)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Closed-set equivalence: a `Trace` stream with pre-known arrivals is
    /// bit-exact with `execute_jobs` for every policy on both substrates,
    /// for random collectives, job counts, arrival gaps and physics.
    #[test]
    fn pre_known_trace_stream_matches_execute_jobs_bit_exactly(
        n in 2usize..12,
        elems in 1usize..10_000,
        jobs in 1usize..6,
        gap_us in 0u32..2_000,
        alg_idx in 0usize..3,
        bw_idx in 0usize..2,
        ov_idx in 0usize..2,
    ) {
        let bandwidth = [1e9, 2.5e9][bw_idx];
        let overhead = [0.0, 1e-6][ov_idx];
        let (name, build) = ALGORITHMS[alg_idx];
        let sched = lower_collective_to_optical(&build(n, elems), BYTES_PER_ELEM, 1);
        let arrivals: Vec<f64> = (0..jobs)
            .map(|j| j as f64 * f64::from(gap_us) * 1e-6)
            .collect();
        // Distinct priorities so Priority/FairShare order differently from Fifo.
        let priorities = [3u32, 1, 4, 1, 5, 9];

        for policy in SchedPolicy::ALL {
            let mut closed = TenancySpec::new(policy);
            for (j, &a) in arrivals.iter().enumerate() {
                closed = closed.with_job(
                    Job::steps(format!("j{j}"), a, sched.clone()).with_priority(priorities[j]),
                );
            }
            // One template per closed job: arrival j instantiates template
            // j % templates, so the stream replays the identical job set.
            let mut stream = StreamSpec::new(
                ArrivalProcess::Trace { arrivals_s: arrivals.clone() },
                policy,
            )
            .with_retained_jobs(true);
            for (j, &p) in priorities.iter().enumerate().take(jobs) {
                stream = stream.with_template(
                    StreamTemplate::new(format!("j{j}"), JobWorkload::Steps(sched.clone()))
                        .with_priority(p),
                );
            }

            let (mut optical, mut electrical) = substrate_pair(n, bandwidth, overhead);
            let subs: [&mut dyn Substrate; 2] = [&mut optical, &mut electrical];
            for sub in subs {
                let c = sub.execute_jobs(&closed).expect("closed run");
                let s = sub.execute_stream(&stream).expect("stream run");
                let tag = format!("{name} n={n} {policy:?} on {}", c.substrate);
                // The closed electrical path keeps a stepped fast path for
                // barrier-shaped DAGs whose event accounting is coarser
                // than the event engine's (timing stays bit-exact). Only
                // compare kernel event counts when both sides ran the
                // shared engine: always on optical, and on electrical
                // whenever the fast path was skipped (it reports
                // `peak_rate_bps == 0` for every job).
                let closed_used_engine = c.substrate == "optical"
                    || c.jobs.iter().any(|j| j.peak_rate_bps > 0.0);
                if closed_used_engine {
                    prop_assert_eq!(s.events, c.events, "{}: events", tag);
                }
                prop_assert_eq!(
                    s.makespan_s.to_bits(),
                    c.makespan_s.to_bits(),
                    "{}: makespan",
                    tag
                );
                prop_assert_eq!(s.completed as usize, c.jobs.len(), "{}: completed", tag);
                let mut by_idx = s.jobs.clone();
                by_idx.sort_by_key(|j| j.job);
                for (sj, cj) in by_idx.iter().zip(&c.jobs) {
                    prop_assert_eq!(sj.start_s.to_bits(), cj.start_s.to_bits(), "{}: start", tag);
                    prop_assert_eq!(sj.finish_s.to_bits(), cj.finish_s.to_bits(), "{}: finish", tag);
                    prop_assert_eq!(
                        sj.makespan_s.to_bits(),
                        cj.makespan_s.to_bits(),
                        "{}: job makespan",
                        tag
                    );
                    prop_assert_eq!(
                        sj.slowdown.to_bits(),
                        cj.slowdown.to_bits(),
                        "{}: slowdown",
                        tag
                    );
                }
            }
        }
    }

    /// Checkpoint transparency: pause a Poisson stream at a random arrival
    /// count, round-trip the snapshot through JSON, resume, and require the
    /// final report byte-identical to the uninterrupted run — on both
    /// substrates.
    #[test]
    fn checkpoint_resume_at_a_random_instant_is_byte_identical(
        n in 2usize..8,
        elems in 1usize..4_000,
        pause in 1u64..8,
        seed in 0u64..1_000,
        alg_idx in 0usize..3,
    ) {
        let (_, build) = ALGORITHMS[alg_idx];
        let sched = lower_collective_to_optical(&build(n, elems), BYTES_PER_ELEM, 1);
        let spec = StreamSpec::new(
            ArrivalProcess::Poisson { rate_hz: 5_000.0, count: 8, seed },
            SchedPolicy::Fifo,
        )
        .with_template(StreamTemplate::new("t", JobWorkload::Steps(sched)))
        .with_window(1e-3)
        .with_retained_jobs(true);

        let (mut optical, mut electrical) = substrate_pair(n, 1e9, 1e-6);
        let subs: [&mut dyn Substrate; 2] = [&mut optical, &mut electrical];
        for sub in subs {
            let full = sub.execute_stream(&spec).expect("uninterrupted run");
            let ck = sub
                .execute_stream_until(&spec, Some(pause))
                .expect("paused run")
                .checkpoint()
                .expect("pause < count must yield a checkpoint");
            prop_assert_eq!(ck.version, STREAM_CHECKPOINT_VERSION);
            prop_assert_eq!(ck.arrivals_seen, pause);
            let json = serde_json::to_string(&ck).expect("checkpoint serializes");
            let back: StreamCheckpoint =
                serde_json::from_str(&json).expect("checkpoint deserializes");
            prop_assert_eq!(&back, &ck, "checkpoint must survive a JSON round-trip");
            let resumed = sub
                .resume_stream(&spec, &back, None)
                .expect("resumed run")
                .report()
                .expect("resume to completion");
            prop_assert_eq!(
                to_json(&resumed),
                to_json(&full),
                "resumed report must be byte-identical on {}",
                full.substrate
            );
        }
    }
}

/// The stream campaign serializes byte-identically across thread counts
/// and resumes from a partially populated `scell-*` sink.
#[test]
fn stream_campaign_is_thread_count_invariant_and_resumable() {
    let cfg = ExperimentConfig {
        scales: vec![8],
        ..ExperimentConfig::default()
    };
    let mut spec = serve_spec(&cfg, &dnn_models::paper_models(), 8, 41);
    // Trim to a fast but representative subset: the overload rate, every
    // policy and admission rule, both substrates.
    spec.cells.retain(|c| c.rate_hz > 100.0);
    for c in &mut spec.cells {
        c.arrivals = 4;
    }
    let serial = run_stream_campaign(&spec, 1, None);
    let parallel = run_stream_campaign(&spec, 8, None);
    assert_eq!(to_json(&serial), to_json(&parallel));

    let dir = std::env::temp_dir().join(format!("wrht-stream-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let first = run_stream_campaign(&spec, 4, Some(&dir));
    let resumed = run_stream_campaign(&spec, 2, Some(&dir));
    assert_eq!(to_json(&first), to_json(&resumed));
    assert_eq!(to_json(&first), to_json(&serial));
    let _ = std::fs::remove_dir_all(&dir);
}
