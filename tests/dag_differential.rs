//! Differential testing of dependency-aware (DAG) execution.
//!
//! Pins the tentpole contracts of `Substrate::execute_dag`:
//!
//! * a DAG with **barrier-shaped** dependency edges
//!   ([`DepSchedule::from_steps`]) agrees **bit-exactly** with the stepped
//!   [`Substrate::execute`] on BOTH substrates, for random ring /
//!   halving-doubling / recursive-doubling schedules and random physics;
//! * the **pipelined** lowering ([`DepSchedule::pipelined_from_steps`])
//!   is never slower than the barrier execution for linear costs
//!   (zero per-message overheads);
//! * the electrical **event-driven** engine agrees with the barrier fast
//!   path on barrier DAGs, and its **incremental** max-min solver does
//!   measurably less work than the full-resolve reference on a 128-host
//!   incast while matching it bit-exactly;
//! * DAG execution is deterministic: same schedule, bit-identical reports.

use collectives::halving_doubling::halving_doubling;
use collectives::rd::recursive_doubling;
use collectives::ring::ring_allreduce;
use collectives::Schedule;
use electrical_sim::flow::FlowSpec;
use electrical_sim::runner::{run_dag, run_dag_event_driven, DagFlow};
use electrical_sim::sim::{run_flows, run_flows_full_resolve};
use electrical_sim::topology::star_cluster;
use optical_sim::OpticalConfig;
use proptest::prelude::*;
use wrht_core::baselines::lower_collective_to_optical;
use wrht_core::dag::DepSchedule;
use wrht_core::substrate::{ElectricalSubstrate, OpticalSubstrate, Substrate};

const BYTES_PER_ELEM: usize = 4;

type Builder = fn(usize, usize) -> Schedule;

const ALGORITHMS: [(&str, Builder); 3] = [
    ("ring", ring_allreduce as Builder),
    ("hd", halving_doubling as Builder),
    ("rd", recursive_doubling as Builder),
];

fn substrate_pair(
    n: usize,
    bandwidth_bps: f64,
    overhead_s: f64,
) -> (OpticalSubstrate, ElectricalSubstrate) {
    let optical = OpticalSubstrate::new(
        OpticalConfig::new(n, n.max(2))
            .with_lambda_bandwidth(bandwidth_bps)
            .with_message_overhead(overhead_s)
            .with_hop_propagation(0.0),
    )
    .expect("valid optical config");
    let electrical = ElectricalSubstrate::new(star_cluster(n, bandwidth_bps, 0.0), overhead_s);
    (optical, electrical)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Barrier-shaped DAGs reproduce the stepped totals bit-exactly on
    /// BOTH substrates for every classic collective, including ragged
    /// element counts and non-power-of-two node counts.
    #[test]
    fn barrier_dag_is_bit_exact_on_both_substrates(
        n in 2usize..20,
        elems in 1usize..40_000,
        bw_idx in 0usize..3,
        ov_idx in 0usize..3,
    ) {
        let bandwidth = [1e9, 2.5e9, 12.5e9][bw_idx];
        let overhead = [0.0, 1e-6, 5e-6][ov_idx];
        for (name, build) in ALGORITHMS {
            let sched = lower_collective_to_optical(&build(n, elems), BYTES_PER_ELEM, 1);
            let dag = DepSchedule::from_steps(&sched);
            prop_assert!(dag.is_barrier_shaped());
            let (mut optical, mut electrical) = substrate_pair(n, bandwidth, overhead);

            let stepped = optical.execute(&sched).expect("optical stepped");
            let event = optical.execute_dag(&dag).expect("optical dag");
            prop_assert_eq!(
                event.makespan_s.to_bits(), stepped.total_time_s.to_bits(),
                "optical {}: dag {} vs stepped {}", name, event.makespan_s, stepped.total_time_s
            );

            let stepped = electrical.execute(&sched).expect("electrical stepped");
            let event = electrical.execute_dag(&dag).expect("electrical dag");
            prop_assert_eq!(
                event.makespan_s.to_bits(), stepped.total_time_s.to_bits(),
                "electrical {}: dag {} vs stepped {}", name, event.makespan_s, stepped.total_time_s
            );
        }
    }

    /// With linear costs (no per-message overhead), pipelining can only
    /// remove barrier wait wherever transfers run at a schedule-independent
    /// rate: on the optical substrate every transfer always serializes at
    /// full lane bandwidth, so the pipelined makespan never exceeds the
    /// barrier total for any of the classic collectives. On the electrical
    /// fluid substrate the same holds for the ring (a node's pipelined
    /// sends stay serialized by their own dependencies, so no extra
    /// sharing arises); for halving/recursive doubling with remainder
    /// nodes, max-min fair sharing can throttle the critical chain when
    /// unequal steps overlap, so the barrier total is *not* a per-flow
    /// upper bound there — that case is intentionally not asserted.
    #[test]
    fn pipelined_is_never_slower_for_linear_costs(
        n in 2usize..20,
        elems in 1usize..40_000,
    ) {
        for (name, build) in ALGORITHMS {
            let sched = lower_collective_to_optical(&build(n, elems), BYTES_PER_ELEM, 1);
            let dag = DepSchedule::pipelined_from_steps(&sched);
            let (mut optical, mut electrical) = substrate_pair(n, 2.5e9, 0.0);

            let barrier = optical.execute(&sched).expect("optical stepped").total_time_s;
            let pipelined = optical.execute_dag(&dag).expect("optical dag").makespan_s;
            prop_assert!(
                pipelined <= barrier * (1.0 + 1e-12) + 1e-15,
                "optical {}: pipelined {} > barrier {}", name, pipelined, barrier
            );

            if name == "ring" {
                let barrier = electrical.execute(&sched).expect("electrical stepped").total_time_s;
                let pipelined = electrical.execute_dag(&dag).expect("electrical dag").makespan_s;
                prop_assert!(
                    pipelined <= barrier * (1.0 + 1e-12) + 1e-15,
                    "electrical {}: pipelined {} > barrier {}", name, pipelined, barrier
                );
            }
        }
    }

    /// The electrical event-driven engine agrees with the barrier fast
    /// path (which composes per-stage fluid runs) to FP noise when forced
    /// onto barrier-shaped DAGs.
    #[test]
    fn event_engine_agrees_with_barrier_fast_path(
        n in 2usize..16,
        elems in 1usize..20_000,
    ) {
        let net = star_cluster(n, 1e9, 0.0);
        let sched = lower_collective_to_optical(&ring_allreduce(n, elems), BYTES_PER_ELEM, 1);
        let dag = DepSchedule::from_steps(&sched);
        let flows: Vec<DagFlow> = dag
            .transfers()
            .iter()
            .map(|t| DagFlow {
                src: t.transfer.src.0,
                dst: t.transfer.dst.0,
                bytes: t.transfer.bytes,
                release_s: t.release_s,
                deps: t.deps.clone(),
                stage: t.stage,
            })
            .collect();
        let fast = run_dag(&net, &flows, 1e-6).expect("fast path");
        let event = run_dag_event_driven(&net, &flows, 1e-6).expect("event engine");
        prop_assert!(fast.barrier_fast_path && !event.barrier_fast_path);
        let scale = fast.makespan_s.max(1e-30);
        prop_assert!(
            (fast.makespan_s - event.makespan_s).abs() / scale < 1e-9,
            "fast {} vs event {}", fast.makespan_s, event.makespan_s
        );
    }

    /// DAG execution is deterministic: running the same schedule twice
    /// yields bit-identical reports on both substrates.
    #[test]
    fn dag_execution_is_deterministic(n in 2usize..16, elems in 1usize..20_000) {
        let sched = lower_collective_to_optical(&halving_doubling(n, elems), BYTES_PER_ELEM, 1);
        let dag = DepSchedule::pipelined_from_steps(&sched);
        let (mut optical, mut electrical) = substrate_pair(n, 1e9, 1e-6);
        let a = optical.execute_dag(&dag).expect("optical a");
        let b = optical.execute_dag(&dag).expect("optical b");
        prop_assert_eq!(&a, &b);
        let a = electrical.execute_dag(&dag).expect("electrical a");
        let b = electrical.execute_dag(&dag).expect("electrical b");
        prop_assert_eq!(&a, &b);
    }

    /// The incremental engine matches the full-resolve reference
    /// bit-exactly on random released flow sets while doing no more
    /// solver work.
    #[test]
    fn incremental_fluid_engine_matches_full_resolve(
        n in 2usize..16,
        pairs in proptest::collection::vec((0usize..16, 0usize..16, 1u64..1_000_000), 1..24),
    ) {
        let net = star_cluster(n, 1e9, 500e-9);
        let specs: Vec<FlowSpec> = pairs
            .iter()
            .enumerate()
            .filter(|(_, &(s, d, _))| s % n != d % n)
            .map(|(i, &(s, d, bytes))| {
                FlowSpec::released_at(s % n, d % n, bytes, (i % 5) as f64 * 1e-4)
            })
            .collect();
        prop_assume!(!specs.is_empty());
        let incremental = run_flows(&net, &specs).expect("incremental");
        let full = run_flows_full_resolve(&net, &specs).expect("full resolve");
        prop_assert_eq!(incremental.makespan_s.to_bits(), full.makespan_s.to_bits());
        for (a, b) in incremental.flows.iter().zip(&full.flows) {
            prop_assert_eq!(a.finish_s.to_bits(), b.finish_s.to_bits());
        }
        prop_assert!(incremental.solver_work <= full.solver_work);
    }
}

/// The acceptance-criterion measurement: on a 128-host incast with
/// staggered flow sizes (127 completion events), the incremental engine
/// does measurably less progressive-filling work than the full-resolve
/// reference — while agreeing bit-exactly.
#[test]
fn incremental_solver_reduces_work_on_128_host_incast() {
    let n = 128;
    let net = star_cluster(n, 12.5e9, 500e-9);
    let specs: Vec<FlowSpec> = (1..n)
        .map(|i| FlowSpec::new(i, 0, (1 << 16) + (i as u64) * 4096))
        .collect();
    let incremental = run_flows(&net, &specs).expect("incremental");
    let full = run_flows_full_resolve(&net, &specs).expect("full resolve");
    assert_eq!(incremental.makespan_s.to_bits(), full.makespan_s.to_bits());
    for (a, b) in incremental.flows.iter().zip(&full.flows) {
        assert_eq!(a.finish_s.to_bits(), b.finish_s.to_bits());
    }
    assert!(
        incremental.solver_work < full.solver_work,
        "incremental {} must beat full {}",
        incremental.solver_work,
        full.solver_work
    );
    println!(
        "128-host incast solver work: full={} incremental={} ({:.1}% of full)",
        full.solver_work,
        incremental.solver_work,
        100.0 * incremental.solver_work as f64 / full.solver_work as f64
    );
}

/// Chained bucket DAGs: two disjoint buckets pipeline concurrently and the
/// second bucket's transfers never start before their release.
#[test]
fn chained_buckets_overlap_on_the_wire() {
    use optical_sim::sim::StepSchedule;
    use optical_sim::{NodeId, Transfer};
    let bucket_a = StepSchedule::from_steps(vec![vec![Transfer::shortest(
        NodeId(0),
        NodeId(1),
        1_000_000,
    )]]);
    let bucket_b = StepSchedule::from_steps(vec![vec![Transfer::shortest(
        NodeId(4),
        NodeId(5),
        1_000_000,
    )]]);
    let (dag, ranges) = DepSchedule::chain(&[(0.0, bucket_a), (2e-4, bucket_b)]);
    assert_eq!(ranges.len(), 2);
    let (mut optical, mut electrical) = substrate_pair(8, 1e9, 0.0);
    for report in [
        optical.execute_dag(&dag).unwrap(),
        electrical.execute_dag(&dag).unwrap(),
    ] {
        // Bucket B starts at its release (2e-4) and runs concurrently
        // with A: makespan ≈ 2e-4 + 1 ms, far below the serialized 2 ms.
        assert!(
            (report.transfers[1].start_s - 2e-4).abs() < 1e-12,
            "{}: start {}",
            report.substrate,
            report.transfers[1].start_s
        );
        assert!(
            (report.makespan_s - 1.2e-3).abs() < 1e-9,
            "{}: makespan {}",
            report.substrate,
            report.makespan_s
        );
    }
}
