//! Differential testing of the multi-job tenancy engine.
//!
//! Pins the tentpole contracts of `Substrate::execute_jobs`:
//!
//! * **serial equivalence** — a cluster of ONE job, under every
//!   [`SchedPolicy`], reproduces a direct `execute_dag` of the job's own
//!   schedule **bit-exactly** on BOTH substrates, for random collective
//!   schedules, random physics and every workload shape (steps, chained
//!   buckets, raw DAGs);
//! * **determinism** — the tenancy campaign axis serializes byte-identically
//!   across worker thread counts and resumes from its sink;
//! * **fairness sanity** — two identical jobs arriving together finish
//!   within epsilon of each other under `FairShare`, and the Jain index of
//!   a symmetric cluster is ~1;
//! * **count contracts** — `generate_traffic` returns exactly the requested
//!   transfer count for all three patterns (the fixed generator bugs).

use collectives::halving_doubling::halving_doubling;
use collectives::rd::recursive_doubling;
use collectives::ring::ring_allreduce;
use collectives::Schedule;
use electrical_sim::topology::star_cluster;
use optical_sim::OpticalConfig;
use proptest::prelude::*;
use wrht_bench::campaign::{run_tenancy_campaign, tenants_spec};
use wrht_bench::contention::{generate_traffic, Pattern};
use wrht_bench::report::to_json;
use wrht_bench::ExperimentConfig;
use wrht_core::baselines::lower_collective_to_optical;
use wrht_core::dag::DepSchedule;
use wrht_core::substrate::{ElectricalSubstrate, OpticalSubstrate, Substrate};
use wrht_core::tenancy::{Job, SchedPolicy, TenancySpec};

const BYTES_PER_ELEM: usize = 4;

type Builder = fn(usize, usize) -> Schedule;

const ALGORITHMS: [(&str, Builder); 3] = [
    ("ring", ring_allreduce as Builder),
    ("hd", halving_doubling as Builder),
    ("rd", recursive_doubling as Builder),
];

fn substrate_pair(
    n: usize,
    bandwidth_bps: f64,
    overhead_s: f64,
) -> (OpticalSubstrate, ElectricalSubstrate) {
    let optical = OpticalSubstrate::new(
        OpticalConfig::new(n, n.max(2))
            .with_lambda_bandwidth(bandwidth_bps)
            .with_message_overhead(overhead_s)
            .with_hop_propagation(0.0),
    )
    .expect("valid optical config");
    let electrical = ElectricalSubstrate::new(star_cluster(n, bandwidth_bps, 0.0), overhead_s);
    (optical, electrical)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Serial equivalence: one tenant under every policy is bit-exact with
    /// a direct `execute_dag` on both substrates, for step-synchronous
    /// workloads of every classic collective.
    #[test]
    fn single_tenant_steps_match_execute_dag_bit_exactly(
        n in 2usize..16,
        elems in 1usize..20_000,
        bw_idx in 0usize..3,
        ov_idx in 0usize..3,
    ) {
        let bandwidth = [1e9, 2.5e9, 12.5e9][bw_idx];
        let overhead = [0.0, 1e-6, 5e-6][ov_idx];
        for (name, build) in ALGORITHMS {
            let sched = lower_collective_to_optical(&build(n, elems), BYTES_PER_ELEM, 1);
            let dag = DepSchedule::from_steps(&sched);
            for policy in SchedPolicy::ALL {
                let spec = TenancySpec::new(policy)
                    .with_job(Job::steps("solo", 0.0, sched.clone()));
                let (mut optical, mut electrical) = substrate_pair(n, bandwidth, overhead);

                let direct = optical.execute_dag(&dag).expect("optical dag");
                let cluster = optical.execute_jobs(&spec).expect("optical cluster");
                prop_assert_eq!(
                    cluster.makespan_s.to_bits(), direct.makespan_s.to_bits(),
                    "optical {}/{}: cluster {} vs direct {}",
                    name, policy, cluster.makespan_s, direct.makespan_s
                );
                prop_assert_eq!(cluster.jobs[0].slowdown.to_bits(), 1.0f64.to_bits());

                let direct = electrical.execute_dag(&dag).expect("electrical dag");
                let cluster = electrical.execute_jobs(&spec).expect("electrical cluster");
                prop_assert_eq!(
                    cluster.makespan_s.to_bits(), direct.makespan_s.to_bits(),
                    "electrical {}/{}: cluster {} vs direct {}",
                    name, policy, cluster.makespan_s, direct.makespan_s
                );
            }
        }
    }

    /// Serial equivalence for bucketed training workloads: the chained
    /// bucket DAG (gradient-ready releases, no cross-bucket edges) must
    /// also be reproduced bit-exactly by a single-tenant cluster.
    #[test]
    fn single_tenant_buckets_match_execute_dag_bit_exactly(
        n in 2usize..12,
        elems in 1usize..10_000,
        ready_ms in 0u32..5,
    ) {
        let sched = lower_collective_to_optical(
            &ring_allreduce(n, elems), BYTES_PER_ELEM, 1);
        let buckets = vec![
            (0.0, sched.clone()),
            (f64::from(ready_ms) * 1e-3, sched.clone()),
        ];
        let (dag, _) = DepSchedule::chain(&buckets);
        for policy in SchedPolicy::ALL {
            let spec = TenancySpec::new(policy)
                .with_job(Job::training("train", 0.0, buckets.clone()));
            let (mut optical, mut electrical) = substrate_pair(n, 1e9, 1e-6);
            for substrate in [&mut optical as &mut dyn Substrate, &mut electrical] {
                let direct = substrate.execute_dag(&dag).expect("direct chain");
                let cluster = substrate.execute_jobs(&spec).expect("cluster chain");
                prop_assert_eq!(
                    cluster.makespan_s.to_bits(), direct.makespan_s.to_bits(),
                    "{}/{}: cluster {} vs direct {}",
                    cluster.substrate, policy, cluster.makespan_s, direct.makespan_s
                );
                prop_assert_eq!(cluster.jobs[0].transfers, direct.transfers.len());
                prop_assert_eq!(
                    cluster.jobs[0].finish_s.to_bits(),
                    direct.makespan_s.to_bits()
                );
            }
        }
    }

    /// Two identical jobs arriving together under FairShare finish within
    /// epsilon of each other, on both substrates, for random payloads.
    #[test]
    fn identical_fair_share_tenants_finish_together(
        n in 4usize..12,
        elems in 1usize..20_000,
    ) {
        let sched = lower_collective_to_optical(
            &ring_allreduce(n, elems), BYTES_PER_ELEM, 1);
        let spec = TenancySpec::new(SchedPolicy::FairShare)
            .with_job(Job::steps("a", 0.0, sched.clone()))
            .with_job(Job::steps("b", 0.0, sched));
        // Wavelengths cover both tenants (2 rings of lane 1 per segment).
        let mut optical = OpticalSubstrate::new(
            OpticalConfig::new(n, 2 * n)
                .with_lambda_bandwidth(1e9)
                .with_message_overhead(0.0)
                .with_hop_propagation(0.0),
        ).expect("valid optical config");
        let mut electrical = ElectricalSubstrate::new(star_cluster(n, 1e9, 0.0), 0.0);
        for substrate in [&mut optical as &mut dyn Substrate, &mut electrical] {
            let report = substrate.execute_jobs(&spec).expect("cluster run");
            let (f0, f1) = (report.jobs[0].finish_s, report.jobs[1].finish_s);
            prop_assert!(
                (f0 - f1).abs() <= 1e-9 * f0.max(f1).max(1e-30),
                "{}: {} vs {}", report.substrate, f0, f1
            );
            prop_assert!(report.fairness_index > 0.999,
                "{}: fairness {}", report.substrate, report.fairness_index);
        }
    }
}

/// The tenancy campaign axis is deterministic across worker thread counts
/// and resumes byte-identically from its sink.
#[test]
fn tenancy_campaign_is_thread_count_invariant_and_resumable() {
    let cfg = ExperimentConfig {
        scales: vec![8],
        ..ExperimentConfig::default()
    };
    let mut spec = tenants_spec(&cfg, &dnn_models::paper_models(), 8, 41);
    // Trim to a fast but representative subset: every policy, both
    // substrates, 1 and 2 jobs.
    spec.cells.retain(|c| c.jobs <= 2);
    let serial = run_tenancy_campaign(&spec, 1, None);
    let parallel = run_tenancy_campaign(&spec, 8, None);
    assert_eq!(to_json(&serial), to_json(&parallel));

    let dir = std::env::temp_dir().join(format!("wrht-tenancy-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let first = run_tenancy_campaign(&spec, 4, Some(&dir));
    let resumed = run_tenancy_campaign(&spec, 2, Some(&dir));
    assert_eq!(to_json(&first), to_json(&resumed));
    assert_eq!(to_json(&first), to_json(&serial));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The fixed traffic generator honours the requested transfer count for
/// all three patterns (acceptance criterion of the contention satellites).
#[test]
fn traffic_generator_honours_requested_counts() {
    for n in [2usize, 4, 16, 64] {
        for count in [1usize, n - 1, n, 2 * n, 4 * n] {
            for seed in [0u64, 7, 2023] {
                let p = generate_traffic(Pattern::Permutation, n, count, 64, seed);
                assert_eq!(p.len(), count.min(n), "permutation n={n} count={count}");
                assert!(p.iter().all(|(_, t)| t.src != t.dst));
                let u = generate_traffic(Pattern::UniformRandom, n, count, 64, seed);
                assert_eq!(u.len(), count, "uniform n={n} count={count}");
                let i = generate_traffic(Pattern::Incast, n, count, 64, seed);
                assert_eq!(i.len(), count, "incast n={n} count={count}");
                assert!(i.iter().all(|(_, t)| t.dst.0 == 0 && t.src.0 != 0));
            }
        }
    }
}
