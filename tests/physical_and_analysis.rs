//! Integration of the physical-layer model and schedule analysis with
//! Wrht plans at paper scales.

use collectives::analysis::analyze;
use optical_sim::physical::PhysicalModel;
use optical_sim::topology::RingTopology;
use wrht_core::lower::{to_logical_schedule, to_optical_schedule};
use wrht_core::plan::build_plan;

/// Every transfer of every Figure-2 Wrht plan fits the default (TeraRack-
/// consistent) optical power budget — the longest lightpaths are the
/// all-to-all arcs between representatives, about N/2 hops.
#[test]
fn paper_scale_plans_fit_the_default_power_budget() {
    let model = PhysicalModel::default();
    for n in [128usize, 256] {
        let topo = RingTopology::new(n);
        for m in [2usize, 5, 8] {
            let plan = build_plan(n, m, 64).unwrap();
            let sched = to_optical_schedule(&plan, 1 << 20);
            model
                .validate_schedule(&topo, &sched)
                .unwrap_or_else(|e| panic!("n={n} m={m}: {e}"));
        }
    }
}

/// A deliberately starved budget rejects the long all-to-all arcs but
/// accepts the short first-level transfers.
#[test]
fn starved_budget_rejects_long_arcs_only() {
    let tight = PhysicalModel {
        launch_dbm: 0.0,
        sensitivity_dbm: -10.0,
        bypass_loss_db: 1.0,
        add_drop_loss_db: 4.0,
        fibre_loss_per_hop_db: 0.0,
        margin_db: 1.0,
    };
    assert_eq!(tight.max_hops(), 6);
    let n = 256;
    let topo = RingTopology::new(n);
    let plan = build_plan(n, 8, 64).unwrap();
    let sched = to_optical_schedule(&plan, 1 << 20);
    // Level 0 transfers span at most floor(8/2) = 4 hops: fine.
    let first_level = optical_sim::StepSchedule::from_steps(vec![sched.steps()[0].clone()]);
    tight.validate_schedule(&topo, &first_level).unwrap();
    // The full schedule contains longer arcs and must fail.
    assert!(tight.validate_schedule(&topo, &sched).is_err());
}

/// Wrht's logical schedule has the hierarchical signature: latency-optimal
/// step counts, but representative nodes carry more traffic than leaves.
#[test]
fn wrht_schedule_analysis_signature() {
    let n = 128;
    let plan = build_plan(n, 4, 16).unwrap();
    let sched = to_logical_schedule(&plan, 1000);
    let a = analyze(&sched);

    // Far fewer steps than the ring's 2(n-1).
    assert!(a.steps <= 9, "steps = {}", a.steps);
    assert!(a.latency_optimality(n) < 2.0);

    // Load concentrates: the busiest node sends several full buffers while
    // a leaf sends exactly one.
    let min_sent = a.sent_per_node.iter().copied().min().unwrap();
    assert_eq!(min_sent, 1000, "a leaf sends its buffer once");
    assert!(a.send_imbalance() > 1.5);

    // Leaves are active in exactly two steps (their reduce + broadcast).
    let leaf_active = a.active_steps_per_node.iter().copied().min().unwrap();
    assert_eq!(leaf_active, 2);
}

/// Bandwidth-vs-latency positioning across all algorithms, paper scale.
#[test]
fn algorithm_positioning_is_as_theory_predicts() {
    use collectives::halving_doubling::halving_doubling;
    use collectives::rd::recursive_doubling;
    use collectives::ring::ring_allreduce;
    let n = 64;
    let elems = 6400;

    let ring = analyze(&ring_allreduce(n, elems));
    let rd = analyze(&recursive_doubling(n, elems));
    let hd = analyze(&halving_doubling(n, elems));

    // Ring: bandwidth-optimal, latency-poor.
    assert!(ring.bandwidth_optimality(n, elems) <= rd.bandwidth_optimality(n, elems));
    assert!(ring.latency_optimality(n) > rd.latency_optimality(n));
    // Halving-doubling sits between: near-bandwidth-optimal at 2 log n steps.
    assert!(hd.bandwidth_optimality(n, elems) < 1.2);
    assert!(hd.latency_optimality(n) <= 2.0 + 1e-9);
}
