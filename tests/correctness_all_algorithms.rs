//! Cross-crate correctness: every all-reduce schedule in the repository —
//! the baselines and Wrht itself — must compute an exact element-wise sum
//! on every node, for arbitrary node counts, buffer lengths, group sizes
//! and wavelength budgets.

use collectives::halving_doubling::halving_doubling;
use collectives::rd::recursive_doubling;
use collectives::ring::ring_allreduce;
use collectives::tree::binomial_tree;
use collectives::verify_allreduce;
use proptest::prelude::*;
use wrht_core::lower::to_logical_schedule;
use wrht_core::plan::build_plan;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_is_always_an_allreduce(n in 1usize..40, elems in 1usize..200) {
        verify_allreduce(&ring_allreduce(n, elems)).unwrap();
    }

    #[test]
    fn recursive_doubling_is_always_an_allreduce(n in 1usize..40, elems in 1usize..200) {
        verify_allreduce(&recursive_doubling(n, elems)).unwrap();
    }

    #[test]
    fn halving_doubling_is_always_an_allreduce(n in 1usize..40, elems in 1usize..200) {
        verify_allreduce(&halving_doubling(n, elems)).unwrap();
    }

    #[test]
    fn binomial_tree_is_always_an_allreduce(n in 1usize..40, elems in 1usize..200) {
        verify_allreduce(&binomial_tree(n, elems)).unwrap();
    }

    #[test]
    fn wrht_is_always_an_allreduce(
        n in 1usize..200,
        m in 2usize..12,
        w in 1usize..32,
        elems in 1usize..64,
    ) {
        // Only feasible (m, w) combinations build plans.
        prop_assume!(m / 2 <= w);
        let plan = build_plan(n, m, w).unwrap();
        let sched = to_logical_schedule(&plan, elems);
        verify_allreduce(&sched).unwrap();
    }

    #[test]
    fn wrht_wavelength_accounting_is_within_budget(
        n in 2usize..300,
        m in 2usize..16,
        w in 1usize..64,
    ) {
        prop_assume!(m / 2 <= w);
        let plan = build_plan(n, m, w).unwrap();
        // Every tree level's lambda requirement fits, and the measured
        // all-to-all requirement fits too.
        prop_assert!(plan.peak_lambda_requirement() <= w.max(1));
        for level in &plan.levels {
            prop_assert!(level.lambda_requirement * level.lanes <= w.max(level.lambda_requirement));
        }
    }

    #[test]
    fn wrht_step_count_obeys_paper_law_bounds(
        n in 2usize..2048,
        m in 2usize..16,
    ) {
        // With the minimal wavelength budget for the tree, the plan's step
        // count never exceeds the paper's 2*ceil(log_m N) and is at least 1.
        let w = (m / 2).max(1);
        let plan = build_plan(n, m, w).unwrap();
        let upper = wrht_core::steps::paper_step_count(n, m, false);
        prop_assert!(plan.step_count() >= 1);
        prop_assert!(
            plan.step_count() <= upper.max(1),
            "n={n} m={m}: {} > {}",
            plan.step_count(),
            upper
        );
    }
}

#[test]
fn wrht_exact_paper_example_scales() {
    // The Figure 2 grid itself, at every (scale, m in small set).
    for n in [128usize, 256, 512, 1024] {
        for m in [2usize, 4, 8] {
            let plan = build_plan(n, m, 64).unwrap();
            let sched = to_logical_schedule(&plan, 16);
            verify_allreduce(&sched).unwrap_or_else(|e| panic!("n={n} m={m}: {e}"));
        }
    }
}
