//! Differential tests: the simulator-backed training timeline
//! (`wrht_core::timeline` driven through `wrht_bench::timeline`) against
//! the analytic bucket-overlap model
//! (`dnn_models::training::simulate_iteration`).
//!
//! When `simulate_iteration`'s cost callback *is* the substrate (lower the
//! bucket, execute it, return the simulated duration), the two models share
//! every float operation and must agree **bit-exactly**. When the callback
//! is the analytic Wrht cost model, they must agree to simulator precision
//! (the cost model mirrors the stepped simulator to ~1e-9 relative).

use dnn_models::bucket::bucketize;
use dnn_models::training::simulate_iteration;
use dnn_models::{Layer, Model};
use optical_sim::Strategy;
use proptest::prelude::*;
use wrht_bench::campaign::Algorithm;
use wrht_bench::timeline::{iteration_model, lower_allreduce, model_timeline};
use wrht_bench::{ExperimentConfig, SubstrateKind};
use wrht_core::dag::ExecMode;
use wrht_core::substrate::OpticalSubstrate;
use wrht_core::timeline::{execute_timeline, TimelineBucket};
use wrht_core::{choose_group_size, WrhtParams};

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig {
        scales: vec![16],
        ..ExperimentConfig::default()
    }
}

/// The analytic iteration priced by *executing* each bucket on a fresh
/// substrate — the matched cost model for exact agreement.
fn analytic_with_executed_callback(
    cfg: &ExperimentConfig,
    model: &Model,
    n: usize,
    bucket_bytes: u64,
    algorithm: Algorithm,
    kind: SubstrateKind,
) -> dnn_models::training::OverlapReport {
    let buckets = bucketize(&model.layers, bucket_bytes);
    let im = iteration_model(model);
    simulate_iteration(&model.layers, &buckets, im, |bytes| {
        let (schedule, _) = lower_allreduce(cfg, algorithm, n, bytes).expect("lowering");
        let mut substrate = cfg
            .try_substrate(kind, n, Strategy::FirstFit)
            .expect("substrate");
        substrate
            .execute(&schedule)
            .expect("execution")
            .total_time_s
    })
}

#[test]
fn timeline_is_bit_identical_to_analytic_with_executed_callback() {
    let cfg = tiny_cfg();
    let model = dnn_models::googlenet();
    for kind in [SubstrateKind::Optical, SubstrateKind::Electrical] {
        for algorithm in [Algorithm::Wrht, Algorithm::Ring] {
            let timeline = model_timeline(
                &cfg,
                &model,
                16,
                4 << 20,
                algorithm,
                kind,
                Strategy::FirstFit,
                ExecMode::Barrier,
            )
            .expect("timeline");
            let analytic =
                analytic_with_executed_callback(&cfg, &model, 16, 4 << 20, algorithm, kind);
            assert_eq!(timeline.bucket_count(), analytic.bucket_times.len());
            for (b, &(ready, start, finish)) in timeline.buckets.iter().zip(&analytic.bucket_times)
            {
                assert_eq!(b.ready_s, ready, "{kind:?}/{algorithm:?} ready");
                assert_eq!(b.start_s, start, "{kind:?}/{algorithm:?} start");
                assert_eq!(b.finish_s, finish, "{kind:?}/{algorithm:?} finish");
            }
            assert_eq!(timeline.overlapped_s, analytic.overlapped_s);
            assert_eq!(timeline.sequential_s, analytic.sequential_s);
            assert_eq!(timeline.hidden_fraction, analytic.hidden_fraction);
        }
    }
}

#[test]
fn wrht_timeline_agrees_with_the_analytic_cost_model() {
    // The acceptance differential: per-bucket agreement between the
    // simulator-backed timeline and `simulate_iteration` priced by the
    // *closed-form* Wrht cost model (which mirrors the stepped simulator).
    let cfg = tiny_cfg();
    let n = 16;
    let model = dnn_models::googlenet();
    let optical = cfg.optical(n);
    let buckets = bucketize(&model.layers, 4 << 20);
    let im = iteration_model(&model);
    let analytic = simulate_iteration(&model.layers, &buckets, im, |bytes| {
        choose_group_size(&WrhtParams::auto(n, cfg.wavelengths), &optical, bytes)
            .map(|(_, _, cost)| cost.total_s())
            .expect("feasible plan")
    });
    let timeline = model_timeline(
        &cfg,
        &model,
        n,
        4 << 20,
        Algorithm::Wrht,
        SubstrateKind::Optical,
        Strategy::FirstFit,
        ExecMode::Barrier,
    )
    .expect("timeline");

    assert_eq!(timeline.bucket_count(), analytic.bucket_times.len());
    for (b, &(ready, start, finish)) in timeline.buckets.iter().zip(&analytic.bucket_times) {
        assert_eq!(b.ready_s, ready);
        let rel = |a: f64, e: f64| (a - e).abs() / e.max(1e-30);
        assert!(rel(b.start_s, start) < 1e-9, "{} vs {start}", b.start_s);
        assert!(rel(b.finish_s, finish) < 1e-9, "{} vs {finish}", b.finish_s);
    }
    let rel = (timeline.overlapped_s - analytic.overlapped_s).abs() / analytic.overlapped_s;
    assert!(rel < 1e-9, "overlapped drifted by {rel}");
    let rel = (timeline.sequential_s - analytic.sequential_s).abs() / analytic.sequential_s;
    assert!(rel < 1e-9, "sequential drifted by {rel}");
    assert!((timeline.hidden_fraction - analytic.hidden_fraction).abs() < 1e-6);
}

#[test]
fn hidden_fraction_helpers_agree_across_crates() {
    // `wrht_core::timeline` keeps a dependency-free copy of the formula in
    // `dnn_models::training`; pin them equal over the degenerate matrix.
    let inputs = [
        (0.0, 0.0),
        (0.0, 1.0),
        (1.0, 0.0),
        (2.0, 1.0),
        (1.0, 2.0),
        (1e-300, 5.0),
        (3.0, -1.0),
        (f64::INFINITY, f64::INFINITY),
        (f64::INFINITY, 0.0),
        (f64::NAN, 0.0),
        (1.0, f64::INFINITY),
    ];
    for &(total, exposed) in &inputs {
        let a = wrht_core::timeline::hidden_comm_fraction(total, exposed);
        let b = dnn_models::training::hidden_comm_fraction(total, exposed);
        assert_eq!(a, b, "diverged on ({total}, {exposed})");
        assert!((0.0..=1.0).contains(&a));
    }
}

#[test]
fn more_bandwidth_never_increases_iteration_time() {
    let model = dnn_models::googlenet();
    for kind in [SubstrateKind::Optical, SubstrateKind::Electrical] {
        let mut last = f64::INFINITY;
        for scale in [1.0, 2.0, 4.0, 8.0] {
            let mut cfg = tiny_cfg();
            cfg.lambda_bandwidth_bps *= scale;
            cfg.electrical_port_bps *= scale;
            let t = model_timeline(
                &cfg,
                &model,
                16,
                4 << 20,
                Algorithm::Wrht,
                kind,
                Strategy::FirstFit,
                ExecMode::Barrier,
            )
            .expect("timeline");
            assert!(
                t.overlapped_s <= last * (1.0 + 1e-9),
                "{kind:?}: bandwidth x{scale} slowed the iteration: {} > {last}",
                t.overlapped_s
            );
            assert!(t.overlapped_s >= t.compute_s);
            last = t.overlapped_s;
        }
    }
}

#[test]
fn overlap_never_loses_to_sequential_for_linear_costs() {
    // Engine-level property: with a cost linear in bytes (zero overheads,
    // one transfer per bucket), the per-bucket durations sum exactly to
    // the fused cost, so overlapping can never lose to the sequential
    // baseline regardless of ready times or compute length.
    let mut substrate = OpticalSubstrate::new(
        optical_sim::OpticalConfig::new(8, 4)
            .with_lambda_bandwidth(1e9)
            .with_message_overhead(0.0)
            .with_hop_propagation(0.0),
    )
    .unwrap();
    let lower = |bytes: u64| {
        Ok(optical_sim::sim::StepSchedule::from_steps(vec![vec![
            optical_sim::request::Transfer::shortest(
                optical_sim::NodeId(0),
                optical_sim::NodeId(1),
                bytes,
            ),
        ]]))
    };
    for compute_ms in [0.0, 1.0, 5.0, 50.0] {
        let buckets: Vec<TimelineBucket> = (0..6)
            .map(|i| TimelineBucket::new(500_000 + 700_000 * i, compute_ms * 1e-3 * i as f64 / 6.0))
            .collect();
        let t = execute_timeline(&mut substrate, &buckets, compute_ms * 1e-3, lower).unwrap();
        assert!(
            t.overlapped_s <= t.sequential_s + 1e-12,
            "compute={compute_ms}ms: overlapped {} > sequential {}",
            t.overlapped_s,
            t.sequential_s
        );
        assert!(t.overlapped_s >= t.compute_s);
        assert!((0.0..=1.0).contains(&t.hidden_fraction));
    }
}

#[test]
fn zero_parameter_models_yield_compute_only_timelines() {
    // End-to-end version of the training.rs bugfix: a model with no
    // trainable parameters produces no buckets and a compute-only
    // timeline on an actual substrate — no panic, no NaN.
    let model = Model {
        name: "Frozen".into(),
        layers: vec![Layer::batch_norm("bn0", 0), Layer::batch_norm("bn1", 0)],
        paper_reported_params: 1,
    };
    let cfg = tiny_cfg();
    for kind in [SubstrateKind::Optical, SubstrateKind::Electrical] {
        let t = model_timeline(
            &cfg,
            &model,
            16,
            1 << 20,
            Algorithm::Wrht,
            kind,
            Strategy::FirstFit,
            ExecMode::Barrier,
        )
        .expect("compute-only timeline");
        assert_eq!(t.bucket_count(), 0);
        assert_eq!(t.overlapped_s, t.compute_s);
        assert_eq!(t.sequential_s, t.compute_s);
        assert_eq!(t.hidden_fraction, 1.0);
        assert_eq!(t.total_comm_s, 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random layer stacks and bucket budgets: the engine and the analytic
    /// iteration agree bit-exactly when the callback executes the same
    /// lowered schedule (ring all-reduce on the electrical cluster — the
    /// cheapest executable cost model).
    #[test]
    fn random_models_agree_with_executed_callback(
        params in proptest::collection::vec(1usize..200_000, 1..10),
        bucket_kb in 16u64..2048,
    ) {
        let layers: Vec<Layer> = params
            .iter()
            .enumerate()
            .map(|(i, &p)| Layer::linear(&format!("l{i}"), p, 1))
            .collect();
        let model = Model {
            name: "Rand".into(),
            layers,
            paper_reported_params: 1,
        };
        let cfg = ExperimentConfig { scales: vec![8], ..ExperimentConfig::default() };
        let n = 8;
        let bucket_bytes = bucket_kb << 10;
        let timeline = model_timeline(
            &cfg, &model, n, bucket_bytes,
            Algorithm::Ring, SubstrateKind::Electrical, Strategy::FirstFit,
            ExecMode::Barrier,
        ).expect("timeline");
        let analytic = analytic_with_executed_callback(
            &cfg, &model, n, bucket_bytes, Algorithm::Ring, SubstrateKind::Electrical,
        );
        prop_assert_eq!(timeline.bucket_count(), analytic.bucket_times.len());
        for (b, &(ready, start, finish)) in timeline.buckets.iter().zip(&analytic.bucket_times) {
            prop_assert_eq!(b.ready_s, ready);
            prop_assert_eq!(b.start_s, start);
            prop_assert_eq!(b.finish_s, finish);
        }
        prop_assert_eq!(timeline.overlapped_s, analytic.overlapped_s);
        prop_assert_eq!(timeline.sequential_s, analytic.sequential_s);
        prop_assert_eq!(timeline.hidden_fraction, analytic.hidden_fraction);
        prop_assert!((0.0..=1.0).contains(&timeline.hidden_fraction));
    }

    /// Monotonicity under bandwidth for arbitrary bucket budgets.
    #[test]
    fn bandwidth_monotonicity_holds_for_random_budgets(bucket_kb in 64u64..8192) {
        let model = dnn_models::googlenet();
        let mut last = f64::INFINITY;
        for scale in [1.0, 4.0] {
            let mut cfg = ExperimentConfig { scales: vec![8], ..ExperimentConfig::default() };
            cfg.lambda_bandwidth_bps *= scale;
            let t = model_timeline(
                &cfg, &model, 8, bucket_kb << 10,
                Algorithm::Wrht, SubstrateKind::Optical, Strategy::FirstFit,
            ExecMode::Barrier,
        ).expect("timeline");
            prop_assert!(t.overlapped_s <= last * (1.0 + 1e-9));
            last = t.overlapped_s;
        }
    }
}
