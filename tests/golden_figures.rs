//! Golden-file regression tests for the `fig2` / `headline` JSON payloads.
//!
//! The simulators are pure IEEE-754 arithmetic with no platform-dependent
//! ordering, so the rendered JSON is bit-stable; any drift in the timing
//! models, lowering or serialization shows up as a golden diff.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! WRHT_BLESS=1 cargo test --test golden_figures
//! ```

use std::fs;
use std::path::PathBuf;
use wrht_bench::report::to_json;
use wrht_bench::timeline::timeline_table;
use wrht_bench::{fig2_series, headline, ExperimentConfig};

/// A fixed reduced-scale grid: small enough to run in milliseconds, large
/// enough to cover both substrates, the optimizer and the all-to-all stop.
fn golden_cfg() -> ExperimentConfig {
    ExperimentConfig {
        scales: vec![16, 32],
        ..ExperimentConfig::default()
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `actual` against the checked-in golden, or regenerate it when
/// the `WRHT_BLESS` environment variable is set.
fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("WRHT_BLESS").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("create tests/golden");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run `WRHT_BLESS=1 cargo test --test golden_figures`",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; if intentional, re-bless with \
         `WRHT_BLESS=1 cargo test --test golden_figures`"
    );
}

#[test]
fn fig2_json_matches_golden() {
    let series = fig2_series(&golden_cfg(), &dnn_models::googlenet());
    assert_matches_golden("fig2_googlenet.json", &to_json(&series));
}

#[test]
fn train_timeline_json_matches_golden() {
    // The simulator-backed `train` table: GoogLeNet (the smallest model)
    // on both substrates at 16 nodes with 4 MB buckets. Bit-stable like
    // the fig2 payloads; re-bless with `WRHT_BLESS=1` after intentional
    // timing-model changes.
    let rows = timeline_table(&golden_cfg(), &[dnn_models::googlenet()], 16, 4 << 20);
    assert_eq!(rows.len(), 2, "both substrates must produce a row");
    assert_matches_golden("train_googlenet.json", &to_json(&rows));
}

#[test]
fn fault_campaign_json_matches_golden() {
    // The `faults` figure: per-job blast radius and recovery time for a
    // wavelength failure, a link degradation and a node failure (each at
    // 25% of the clean makespan) under replan and fail-job recovery, on
    // both substrates. Pins the whole fault pipeline — script scheduling
    // through the shared kernel, abort/re-grant on the optical ring,
    // incremental re-solve on the electrical cluster, and the blast-radius
    // diff — bit-exactly.
    let spec =
        wrht_bench::campaign::faults_spec(&golden_cfg(), &[dnn_models::googlenet()], 16, 2023);
    let report = wrht_bench::campaign::run_fault_campaign(&spec, 1, None);
    assert!(
        report.results.iter().all(|r| r.error.is_none()),
        "every golden fault cell must execute"
    );
    // ≥1 wavelength-failure and ≥1 link-degradation scenario per substrate.
    for kind in ["optical", "electrical"] {
        for scenario in ["wavelength-down", "link-degrade"] {
            assert!(
                report.results.iter().any(|r| {
                    r.cell.substrate.label() == kind
                        && r.cell.scenario.label().starts_with(scenario)
                }),
                "missing {scenario} cell on {kind}"
            );
        }
    }
    assert_matches_golden("faults_googlenet.json", &to_json(&report));
}

#[test]
fn stream_campaign_json_matches_golden() {
    // The `serve` figure at reduced scale: a Poisson arrival stream of
    // GoogLeNet jobs through the running kernel under every scheduling
    // policy and admission rule, on both substrates. Pins the open-loop
    // engine end to end — arrival generation, admission queueing and
    // shedding, windowed metrics, streaming percentiles and Jain fairness
    // — bit-exactly. Trimmed to the overload rate so the queue-depth and
    // reject admission paths actually differentiate.
    let mut spec =
        wrht_bench::campaign::serve_spec(&golden_cfg(), &[dnn_models::googlenet()], 16, 2023);
    spec.cells.retain(|c| c.rate_hz > 100.0);
    for c in &mut spec.cells {
        c.arrivals = 6;
    }
    let report = wrht_bench::campaign::run_stream_campaign(&spec, 1, None);
    assert!(
        report.results.iter().all(|r| r.error.is_none()),
        "every golden stream cell must execute"
    );
    assert!(
        report
            .results
            .iter()
            .any(|r| r.rejected > 0 && r.admitted + r.rejected == r.arrivals),
        "the overload grid must shed load somewhere"
    );
    assert_matches_golden("serve_googlenet.json", &to_json(&report));
}

#[test]
fn parallelism_campaign_json_matches_golden() {
    // The `parallelism` figure: GPT-2 small lowered under every default
    // TP/PP/DP (+ MoE) shape to one mixed-domain DAG and executed on the
    // composed hierarchical substrate (optical rings intra-group, the
    // electrical cluster inter-group). Pins the whole hierarchy pipeline —
    // parallelism IR lowering, fabric-domain tagging, per-group engine
    // instantiation and the cross-fabric co-sim event loop — bit-exactly.
    let mut spec = wrht_bench::campaign::parallelism_spec(&golden_cfg(), 2023);
    spec.cells.retain(|c| c.model == "GPT2-small");
    assert!(!spec.cells.is_empty(), "GPT-2 shapes must be in the grid");
    let report = wrht_bench::campaign::run_parallelism_campaign(&spec, 1, None);
    assert!(
        report.results.iter().all(|r| r.error.is_none()),
        "every golden parallelism cell must execute"
    );
    // The default grid must exercise both a flat (TP-only, intra-only)
    // shape and composed shapes with inter-group DP / MoE traffic.
    assert!(
        report
            .results
            .iter()
            .any(|r| r.groups == 1 && r.inter_transfers == 0),
        "missing the flat TP-only shape"
    );
    assert!(
        report
            .results
            .iter()
            .any(|r| r.cell.moe_experts > 0 && r.inter_transfers > 0 && r.intra_transfers > 0),
        "missing a mixed-domain MoE shape"
    );
    assert_matches_golden("parallelism_gpt2.json", &to_json(&report));
}

#[test]
fn headline_json_matches_golden() {
    let cfg = golden_cfg();
    let all: Vec<_> = [dnn_models::googlenet(), dnn_models::alexnet()]
        .iter()
        .map(|m| fig2_series(&cfg, m))
        .collect();
    assert_matches_golden("headline.json", &to_json(&headline(&all)));
}
