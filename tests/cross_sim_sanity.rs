//! Cross-simulator sanity: closed-form timing laws must agree with the
//! discrete simulators, and the two substrates must agree with each other
//! where their models coincide.

use collectives::ring::ring_allreduce;
use electrical_sim::runner::{run_steps, StepTransfer};
use electrical_sim::topology::star_cluster;
use optical_sim::{OpticalConfig, RingSimulator, Strategy};
use wrht_core::baselines::oring_schedule;
use wrht_core::cost::predict_time_s;
use wrht_core::lower::to_optical_schedule;
use wrht_core::plan::build_plan;

/// O-Ring in the optical simulator equals the Patarasuk–Yuan closed form
/// `2(n-1) (alpha + (S/n)/B + P)` when chunks divide evenly.
#[test]
fn oring_matches_closed_form_across_scales() {
    for n in [4usize, 16, 64] {
        let elems = n * 1000;
        let bpe = 4;
        let alpha = 2e-7;
        let prop = 3e-9;
        let bw = 2.5e9;
        let cfg = OpticalConfig::new(n, 8)
            .with_lambda_bandwidth(bw)
            .with_message_overhead(alpha)
            .with_hop_propagation(prop);
        let mut sim = RingSimulator::new(cfg);
        let t = sim
            .run_stepped(&oring_schedule(n, elems, bpe), Strategy::FirstFit)
            .unwrap()
            .total_time_s;
        let chunk_bytes = (elems / n * bpe) as f64;
        let expected = (2 * (n - 1)) as f64 * (alpha + chunk_bytes / bw + prop);
        assert!(
            (t - expected).abs() / expected < 1e-9,
            "n={n}: {t} vs {expected}"
        );
    }
}

/// The electrical ring all-reduce over a star cluster equals
/// `2(n-1) (overhead + 2 latency + (S/n)/B)` — every step is a clean
/// neighbour shift with no port contention.
#[test]
fn electrical_ring_matches_closed_form() {
    let n = 16;
    let elems = 16_000;
    let bpe = 4;
    let bw = 12.5e9;
    let lat = 5e-7;
    let overhead = 5e-6;
    let net = star_cluster(n, bw, lat);
    let steps: Vec<Vec<StepTransfer>> = ring_allreduce(n, elems)
        .step_transfers(bpe)
        .into_iter()
        .map(|s| {
            s.into_iter()
                .map(|(src, dst, bytes)| StepTransfer { src, dst, bytes })
                .collect()
        })
        .collect();
    let t = run_steps(&net, &steps, overhead).unwrap().total_time_s;
    let chunk = (elems / n * bpe) as f64;
    let expected = (2 * (n - 1)) as f64 * (overhead + 2.0 * lat + chunk / bw);
    assert!((t - expected).abs() / expected < 1e-9, "{t} vs {expected}");
}

/// Wrht's analytic cost model agrees with the stepped optical simulator to
/// machine precision over a parameter sweep.
#[test]
fn wrht_prediction_equals_simulation_over_sweep() {
    for (n, m, w, bytes) in [
        (32usize, 2usize, 4usize, 1u64 << 20),
        (64, 4, 8, 3 << 20),
        (128, 6, 16, 10 << 20),
        (256, 9, 64, 25 << 20),
        (200, 5, 32, 7 << 20),
    ] {
        let plan = build_plan(n, m, w).unwrap();
        let cfg = OpticalConfig::new(n, w);
        let predicted = predict_time_s(&plan, &cfg, bytes).total_s();
        let mut sim = RingSimulator::new(cfg);
        let simulated = sim
            .run_stepped(&to_optical_schedule(&plan, bytes), Strategy::FirstFit)
            .unwrap()
            .total_time_s;
        assert!(
            (predicted - simulated).abs() / simulated < 1e-9,
            "n={n} m={m} w={w}: {predicted} vs {simulated}"
        );
    }
}

/// With identical bandwidth, zero latencies and a single wavelength, the
/// optical ring and the electrical ring time the same ring all-reduce
/// identically — the substrates' bandwidth models coincide.
#[test]
fn substrates_agree_on_identical_physics() {
    let n = 8;
    let elems = 8_000;
    let bpe = 4;
    let bw = 1e9;

    let ocfg = OpticalConfig::new(n, 1)
        .with_lambda_bandwidth(bw)
        .with_message_overhead(0.0)
        .with_hop_propagation(0.0);
    let mut osim = RingSimulator::new(ocfg);
    let optical_t = osim
        .run_stepped(&oring_schedule(n, elems, bpe), Strategy::FirstFit)
        .unwrap()
        .total_time_s;

    let net = electrical_sim::topology::ring(n, bw, 0.0);
    let steps: Vec<Vec<StepTransfer>> = ring_allreduce(n, elems)
        .step_transfers(bpe)
        .into_iter()
        .map(|s| {
            s.into_iter()
                .map(|(src, dst, bytes)| StepTransfer { src, dst, bytes })
                .collect()
        })
        .collect();
    let electrical_t = run_steps(&net, &steps, 0.0).unwrap().total_time_s;

    assert!(
        (optical_t - electrical_t).abs() / electrical_t < 1e-9,
        "optical {optical_t} vs electrical {electrical_t}"
    );
}

/// Event-driven and stepped optical execution agree when a schedule's steps
/// are released sequentially.
#[test]
fn event_driven_agrees_with_stepped_for_sequential_release() {
    let n = 16;
    let w = 8;
    let bytes = 1u64 << 20;
    let plan = build_plan(n, 4, w).unwrap();
    let sched = to_optical_schedule(&plan, bytes);
    let cfg = OpticalConfig::new(n, w);
    let mut sim = RingSimulator::new(cfg);
    let stepped = sim.run_stepped(&sched, Strategy::FirstFit).unwrap();

    // Release each step exactly when the stepped run says it starts: the
    // event-driven makespan must match the stepped total.
    let mut released = Vec::new();
    let mut t = 0.0;
    for (i, step) in sched.steps().iter().enumerate() {
        for tr in step {
            released.push((t, tr.clone()));
        }
        t += stepped.stats.steps[i].duration_s;
    }
    let event = sim.run_event_driven(&released).unwrap();
    assert!(
        (event.makespan_s - stepped.total_time_s).abs() / stepped.total_time_s < 1e-9,
        "event {} vs stepped {}",
        event.makespan_s,
        stepped.total_time_s
    );
}
