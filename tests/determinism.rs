//! Determinism: identical inputs must produce bit-identical results across
//! repeated runs — a prerequisite for reproducible experiment tables.

use optical_sim::{OpticalConfig, RingSimulator, Strategy};
use wrht_bench::report::to_json;
use wrht_bench::{fig2_row, ExperimentConfig};
use wrht_core::lower::to_optical_schedule;
use wrht_core::plan::build_plan;
use wrht_core::{plan_and_simulate, WrhtParams};

#[test]
fn plans_are_deterministic() {
    let a = build_plan(100, 7, 16).unwrap();
    let b = build_plan(100, 7, 16).unwrap();
    assert_eq!(a, b);
    assert_eq!(to_json(&a), to_json(&b));
}

#[test]
fn simulations_are_deterministic() {
    let cfg = OpticalConfig::new(64, 8);
    let plan = build_plan(64, 4, 8).unwrap();
    let sched = to_optical_schedule(&plan, 1 << 20);
    let mut sim = RingSimulator::new(cfg);
    let r1 = sim.run_stepped(&sched, Strategy::FirstFit).unwrap();
    let r2 = sim.run_stepped(&sched, Strategy::FirstFit).unwrap();
    assert_eq!(r1, r2);
    assert_eq!(r1.total_time_s.to_bits(), r2.total_time_s.to_bits());
}

#[test]
fn end_to_end_outcomes_are_deterministic() {
    let cfg = OpticalConfig::paper_defaults(64);
    let params = WrhtParams::auto(64, 64);
    let a = plan_and_simulate(&params, &cfg, 10 << 20).unwrap();
    let b = plan_and_simulate(&params, &cfg, 10 << 20).unwrap();
    assert_eq!(a, b);
}

#[test]
fn fig2_cells_are_deterministic() {
    let cfg = ExperimentConfig::small();
    let bytes = dnn_models::googlenet().gradient_bytes();
    let a = fig2_row(&cfg, 32, bytes);
    let b = fig2_row(&cfg, 32, bytes);
    assert_eq!(a, b);
    assert_eq!(a.e_ring_s.to_bits(), b.e_ring_s.to_bits());
    assert_eq!(a.wrht_s.to_bits(), b.wrht_s.to_bits());
}

#[test]
fn event_driven_runs_are_deterministic() {
    use optical_sim::NodeId;
    use optical_sim::Transfer;
    let cfg = OpticalConfig::new(16, 2);
    let mut sim = RingSimulator::new(cfg);
    let released: Vec<(f64, Transfer)> = (0..16)
        .map(|i| {
            (
                (i % 3) as f64 * 1e-6,
                Transfer::shortest(NodeId(i), NodeId((i + 5) % 16), 1 << 16),
            )
        })
        .collect();
    let a = sim.run_event_driven(&released).unwrap();
    let b = sim.run_event_driven(&released).unwrap();
    assert_eq!(a, b);
}
