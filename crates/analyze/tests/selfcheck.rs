//! Self-hosting gate: the analyzer runs over the live workspace it ships
//! in, and the workspace must be finding-free. This is the same check CI's
//! `analyze` job runs through `repro-figures analyze`; keeping it in the
//! test suite means a plain `cargo test` refuses regressions too.

use std::path::Path;
use wrht_analyze::analyze_workspace;

#[test]
fn the_live_workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = analyze_workspace(&root).expect("workspace is readable");
    assert!(analysis.files_scanned > 50, "walker lost the workspace");
    assert!(
        analysis.is_clean(),
        "determinism findings in the live workspace:\n{}",
        wrht_analyze::render_table(&analysis)
    );
    // Every suppression in the tree carries an audited reason (malformed
    // pragmas would have surfaced as P0 findings above); there are a known
    // handful, not a creeping blanket.
    assert!(
        analysis.suppressions >= 2,
        "the sanctioned perf-harness clock sites must be pragma'd"
    );
    assert!(
        analysis.suppressions < 40,
        "suppression creep: audit before adding more pragmas"
    );
}
