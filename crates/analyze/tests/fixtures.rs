//! Fixture suite: every rule has at least one firing and one silent
//! fixture, and the tricky scanner cases (strings, comments, `#[cfg(test)]`
//! regions, malformed pragmas) are pinned down as data, not prose.
//!
//! Fixture files live in `tests/fixtures/` (not direct children of
//! `tests/`), so cargo never compiles them — they only exist as analyzer
//! input. Each is analyzed under a *virtual* workspace path to exercise the
//! path-scoped rules (R5 kernel/core, f32 in sim crates).

use wrht_analyze::analyze_source;

/// Analyze `source` as if it lived at `path`; return `(rule id, line)`
/// pairs in report order.
fn findings(path: &str, source: &str) -> Vec<(String, usize)> {
    let (found, _) = analyze_source(path, source);
    found
        .into_iter()
        .map(|f| (f.rule.id().to_string(), f.line))
        .collect()
}

fn expect(path: &str, source: &str, expected: &[(&str, usize)]) {
    let got = findings(path, source);
    let want: Vec<(String, usize)> = expected
        .iter()
        .map(|(r, l)| ((*r).to_string(), *l))
        .collect();
    assert_eq!(got, want, "findings mismatch for {path}");
}

#[test]
fn r1_hash_collections_fire_in_live_code_only() {
    expect(
        "crates/collectives/src/fixture.rs",
        include_str!("fixtures/r1_fail.rs"),
        &[("R1", 2), ("R1", 3), ("R1", 6)],
    );
    expect(
        "crates/collectives/src/fixture.rs",
        include_str!("fixtures/r1_pass.rs"),
        &[],
    );
}

#[test]
fn r2_ambient_time_fires_in_live_code_only() {
    expect(
        "src/fixture.rs",
        include_str!("fixtures/r2_fail.rs"),
        &[("R2", 2), ("R2", 5), ("R2", 6), ("R2", 8)],
    );
    expect("src/fixture.rs", include_str!("fixtures/r2_pass.rs"), &[]);
}

#[test]
fn r3_raw_spawn_fires_but_scoped_threads_pass() {
    expect(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/r3_fail.rs"),
        &[("R3", 5)],
    );
    expect(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/r3_pass.rs"),
        &[],
    );
}

#[test]
fn r4_float_order_fires_on_calls_and_f32_state() {
    expect(
        "crates/optical-sim/src/fixture.rs",
        include_str!("fixtures/r4_fail.rs"),
        &[("R4", 6), ("R4", 11)],
    );
    expect(
        "crates/optical-sim/src/fixture.rs",
        include_str!("fixtures/r4_pass.rs"),
        &[],
    );
}

#[test]
fn r5_no_panic_applies_only_under_kernel_and_core() {
    let src = include_str!("fixtures/r5_scoped.rs");
    // The same source under a kernel path: every panic path is a finding.
    expect(
        "crates/kernel/src/fixture.rs",
        src,
        &[("R5", 6), ("R5", 7), ("R5", 9), ("R5", 12)],
    );
    expect(
        "crates/core/src/fixture.rs",
        src,
        &[("R5", 6), ("R5", 7), ("R5", 9), ("R5", 12)],
    );
    // Outside the typed-error crates the same code is allowed.
    expect("crates/bench/src/fixture.rs", src, &[]);
}

#[test]
fn r6_float_eq_fires_on_bare_equality_only() {
    expect(
        "crates/electrical-sim/src/fixture.rs",
        include_str!("fixtures/r6_fail.rs"),
        &[("R6", 4), ("R6", 8), ("R6", 12)],
    );
    expect(
        "crates/electrical-sim/src/fixture.rs",
        include_str!("fixtures/r6_pass.rs"),
        &[],
    );
}

#[test]
fn reasoned_pragmas_suppress_and_count() {
    let (found, suppressed) = analyze_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/pragma_pass.rs"),
    );
    assert!(found.is_empty(), "unexpected findings: {found:?}");
    assert_eq!(suppressed, 2, "both pragma forms must count as audited");
}

#[test]
fn malformed_pragmas_are_findings_and_suppress_nothing() {
    expect(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/pragma_fail.rs"),
        &[
            ("P0", 5),
            ("R6", 6),
            ("P0", 10),
            ("R6", 11),
            ("P0", 15),
            ("R6", 16),
        ],
    );
}
