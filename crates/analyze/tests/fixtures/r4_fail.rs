//! R4 must fire on partial_cmp call chains and f32 simulation state.

pub fn pick(costs: &[(usize, f64)]) -> Option<usize> {
    costs
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .map(|c| c.0)
}

pub struct State {
    pub time: f32,
}
