//! R1 must fire on hash collections in live code.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn tally(keys: &[usize]) -> usize {
    let mut seen: HashSet<usize> = HashSet::new();
    for &k in keys {
        seen.insert(k);
    }
    seen.len()
}
