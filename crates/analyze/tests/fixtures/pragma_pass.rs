//! Well-formed, reasoned pragmas must suppress findings — standalone on
//! the line above, and trailing on the offending line itself.

pub fn coalesce(time: f64, other: f64) -> bool {
    // wrht-analyze: allow(r6, reason = "bit-equality contract: both operands are normalized at schedule time")
    time == other
}

pub fn sentinel(release_s: f64) -> bool {
    release_s != 0.0 // wrht-analyze: allow(float-eq, reason = "exact-zero sentinel written as a literal")
}
