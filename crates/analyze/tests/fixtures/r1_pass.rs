//! R1 must stay silent: ordered collections in live code, and HashMap
//! mentioned only in comments, strings, and test code.
use std::collections::BTreeMap;

// A comment saying HashMap is fine.
pub fn tally(keys: &[usize]) -> BTreeMap<usize, usize> {
    let mut counts = BTreeMap::new();
    let _doc = "prefer BTreeMap over HashMap";
    let _raw = r#"even raw "HashMap" strings"#;
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_hash() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.len(), 1);
    }
}
