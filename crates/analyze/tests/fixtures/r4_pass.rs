//! R4 must stay silent: total_cmp in live code, a PartialOrd impl's
//! required method definition, and partial_cmp mentioned in comments,
//! strings and test code.
use std::cmp::Ordering;

// partial_cmp in a comment is fine.
pub fn pick(costs: &[(usize, f64)]) -> Option<usize> {
    let _doc = "never .partial_cmp( in live code";
    costs
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|c| c.0)
}

pub struct Entry {
    time: f64,
    seq: u64,
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.time.total_cmp(&other.time).then(self.seq.cmp(&other.seq)))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_partial_cmp() {
        assert_eq!(1.0f64.partial_cmp(&2.0), Some(std::cmp::Ordering::Less));
    }
}
