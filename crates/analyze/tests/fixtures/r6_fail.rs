//! R6 must fire on bare f64 equality over float-typed operands.

pub fn same_instant(time: f64, other_s: f64) -> bool {
    time == other_s
}

pub fn is_sentinel(release_s: f64) -> bool {
    release_s != 0.0
}

pub fn literal_check(x: f64) -> bool {
    x == 1.5e3
}
