//! R3 must stay silent: scoped threads in live code, spawn only in
//! comments, strings and test code.

// std::thread::spawn is banned; scope joins deterministically.
pub fn fan_out(chunks: &[&[usize]]) -> usize {
    let mut total = 0;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|c| scope.spawn(move || c.len()))
            .collect();
        for h in handles {
            total += h.join().unwrap_or(0);
        }
    });
    let _doc = r"raw thread::spawn in a string";
    total
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spawn() {
        let h = std::thread::spawn(|| 1);
        assert_eq!(h.join().unwrap(), 1);
    }
}
