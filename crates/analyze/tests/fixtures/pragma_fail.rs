//! Malformed pragmas are findings themselves (P0) and suppress nothing:
//! a reason is mandatory, must be non-empty, and the rule must exist.

pub fn missing_reason(time: f64, other: f64) -> bool {
    // wrht-analyze: allow(r6)
    time == other
}

pub fn empty_reason(release_s: f64) -> bool {
    // wrht-analyze: allow(r6, reason = "")
    release_s != 0.0
}

pub fn unknown_rule(now_s: f64) -> bool {
    // wrht-analyze: allow(r9, reason = "no such rule")
    now_s == 0.0
}
