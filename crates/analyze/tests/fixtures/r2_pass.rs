//! R2 must stay silent: simulated time only, Instant confined to comments,
//! strings and test code.

// The kernel clock replaces Instant everywhere in live code.
pub fn advance(now_s: f64, dt_s: f64) -> f64 {
    let _doc = "no Instant::now() here, honest";
    now_s + dt_s
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_time_themselves() {
        let t0 = Instant::now();
        assert!(t0.elapsed().as_secs_f64() >= 0.0);
    }
}
