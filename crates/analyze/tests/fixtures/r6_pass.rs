//! R6 must stay silent: bit-equality via to_bits, integer comparisons,
//! ordering operators, and float equality confined to test code.

pub fn same_instant(time: f64, other_s: f64) -> bool {
    time.to_bits() == other_s.to_bits()
}

pub fn count_ready(steps: &[usize], now_s: f64, deadline_s: f64) -> usize {
    let mut ready = 0;
    for &s in steps {
        if s == 0 || s % 2 == 1 {
            ready += 1;
        }
    }
    if now_s <= deadline_s && ready >= 1 {
        ready
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_compare_exactly() {
        assert!(super::count_ready(&[0], 1.0, 2.0) == 1 && 0.5 + 0.25 == 0.75);
    }
}
