//! R2 must fire on ambient clocks and entropy in live code.
use std::time::Instant;

pub fn stamp() -> f64 {
    let t0 = Instant::now();
    let wall = std::time::SystemTime::now();
    let _ = wall;
    let _state = std::hash::RandomState::new();
    t0.elapsed().as_secs_f64()
}
