//! R5 fires on panic paths only under the kernel/core scope: this same
//! file is analyzed twice, once under a kernel path (findings expected)
//! and once under a bench path (silence expected).

pub fn head(values: &[u64]) -> u64 {
    let first = values.first().unwrap();
    let second = values.get(1).expect("two values");
    if *first == 0 {
        panic!("zero head");
    }
    if *second == 0 {
        unreachable!("checked above");
    }
    *first + *second
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_anywhere() {
        assert_eq!(super::head(&[1, 2]).checked_add(0).unwrap(), 3);
    }
}
