//! R3 must fire on raw thread spawns in live code.

pub fn fan_out(n: usize) {
    for _ in 0..n {
        let h = std::thread::spawn(|| {});
        h.join().ok();
    }
}
