//! # wrht-analyze — determinism-invariant static analysis for the workspace
//!
//! Every headline property of this reproduction — byte-identical
//! parallel-vs-serial campaigns, bit-exact single-tenant equivalence, the
//! f64 bit-equality coalescing contract in the shared kernel, byte-identical
//! checkpoint/resume — rests on *source-level* invariants: no hash-ordered
//! iteration, no ambient clocks or entropy, no float-order hazards. The
//! differential and golden suites catch violations only after the fact (and
//! only when the hasher seed happens to betray them); this crate catches
//! them at commit time.
//!
//! The analyzer is a hand-rolled token scanner ([`scan`]) — comments,
//! strings and char literals are masked, `#[cfg(test)]`/`mod tests` regions
//! are exempt — plus a rule engine ([`rules`]) enforcing six invariants:
//!
//! | id | name | invariant |
//! |----|------|-----------|
//! | R1 | `hash-collections` | no `HashMap`/`HashSet` in non-test code |
//! | R2 | `ambient-time` | no `Instant`/`SystemTime`/`RandomState` |
//! | R3 | `raw-thread-spawn` | no unscoped `std::thread::spawn` |
//! | R4 | `float-order` | no `partial_cmp` chains, no `f32` sim state |
//! | R5 | `no-panic` | no `unwrap`/`expect`/`panic!` in kernel/core |
//! | R6 | `float-eq` | no bare f64 `==`/`!=` outside bit-contract sites |
//!
//! Deliberate exceptions are audited in place:
//!
//! ```text
//! let same = a.time == b.time; // wrht-analyze: allow(r6, reason = "bit-equality coalescing contract")
//! ```
//!
//! A pragma without a reason string is itself a finding (`P0 bad-pragma`).
//!
//! ```
//! use wrht_analyze::{analyze_source, RuleId};
//!
//! let (findings, _) = analyze_source(
//!     "crates/core/src/demo.rs",
//!     "use std::collections::HashMap;\n",
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, RuleId::HashCollections);
//! assert_eq!(findings[0].line, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod rules;
pub mod scan;
pub mod walk;

use std::io;
use std::path::Path;

pub use report::{render_json, render_table};
pub use rules::{analyze_source, rule_table, Finding, RuleId, RuleInfo};
pub use scan::{scan, Pragma, Scan};

/// The result of analyzing a whole workspace.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All surviving findings, sorted by (file, line, column, rule).
    pub findings: Vec<Finding>,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Number of findings suppressed by well-formed, reasoned pragmas.
    pub suppressions: usize,
}

impl Analysis {
    /// True when the workspace is clean (zero findings).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Analyze every `.rs` file under `root`'s `src/`, `crates/*/src/` and
/// `examples/` directories.
///
/// # Errors
/// Propagates filesystem errors (unreadable directories or files).
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let files = walk::workspace_files(root)?;
    let mut findings = Vec::new();
    let mut suppressions = 0usize;
    let files_scanned = files.len();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        // Normalize to forward slashes so rule scoping and reports are
        // platform-independent.
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let (mut file_findings, file_suppressions) = analyze_source(&rel_str, &source);
        findings.append(&mut file_findings);
        suppressions += file_suppressions;
    }
    report::sort_findings(&mut findings);
    Ok(Analysis {
        findings,
        files_scanned,
        suppressions,
    })
}
