//! Rendering: the human-readable finding table and the machine-readable
//! JSON document (hand-rolled — the analyzer is dependency-free).

use crate::rules::{rule_table, Finding};
use crate::Analysis;
use std::fmt::Write as _;

/// Render the analysis as a human-readable report.
#[must_use]
pub fn render_table(analysis: &Analysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "wrht-analyze: {} file(s) scanned, {} finding(s), {} audited suppression(s)",
        analysis.files_scanned,
        analysis.findings.len(),
        analysis.suppressions
    );
    if analysis.findings.is_empty() {
        let _ = writeln!(out, "determinism invariants hold: no findings");
        return out;
    }
    let _ = writeln!(out);
    for f in &analysis.findings {
        let _ = writeln!(
            out,
            "{:<3} {:<16} {}:{}:{}",
            f.rule.id(),
            f.rule.name(),
            f.file,
            f.line,
            f.column
        );
        let _ = writeln!(out, "    {}", f.message);
        if !f.snippet.is_empty() {
            let _ = writeln!(out, "    > {}", f.snippet);
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "suppress an audited exception with: // wrht-analyze: allow(<rule>, reason = \"...\")"
    );
    out
}

/// Render the analysis as a JSON document.
#[must_use]
pub fn render_json(analysis: &Analysis) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", analysis.files_scanned);
    let _ = writeln!(out, "  \"suppressions\": {},", analysis.suppressions);
    out.push_str("  \"rules\": [\n");
    let rules = rule_table();
    for (i, r) in rules.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"id\": {}, \"name\": {}, \"summary\": {}}}{}",
            json_string(r.id),
            json_string(r.name),
            json_string(r.summary),
            if i + 1 < rules.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"findings\": [\n");
    for (i, f) in analysis.findings.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"rule\": {}, \"name\": {}, \"file\": {}, \"line\": {}, \"column\": {}, \
             \"message\": {}, \"snippet\": {}}}{}",
            json_string(f.rule.id()),
            json_string(f.rule.name()),
            json_string(&f.file),
            f.line,
            f.column,
            json_string(&f.message),
            json_string(&f.snippet),
            if i + 1 < analysis.findings.len() {
                ","
            } else {
                ""
            }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Escape a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Sort findings into the canonical (file, line, column, rule) order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.column.cmp(&b.column))
            .then(a.rule.cmp(&b.rule))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    fn sample() -> Analysis {
        Analysis {
            findings: vec![Finding {
                file: "crates/x/src/a.rs".to_string(),
                line: 3,
                column: 7,
                rule: RuleId::HashCollections,
                message: "no \"hash\" maps".to_string(),
                snippet: "let m = HashMap::new();".to_string(),
            }],
            files_scanned: 2,
            suppressions: 1,
        }
    }

    #[test]
    fn table_lists_findings_and_counts() {
        let t = render_table(&sample());
        assert!(t.contains("2 file(s) scanned, 1 finding(s), 1 audited suppression(s)"));
        assert!(t.contains("R1  hash-collections crates/x/src/a.rs:3:7"));
    }

    #[test]
    fn clean_table_says_so() {
        let a = Analysis {
            findings: vec![],
            files_scanned: 5,
            suppressions: 0,
        };
        assert!(render_table(&a).contains("no findings"));
    }

    #[test]
    fn json_escapes_and_includes_rule_table() {
        let j = render_json(&sample());
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("no \\\"hash\\\" maps"));
        assert!(j.contains("\"id\": \"R6\""));
        // Well-formed enough for the vendored parser used by CI consumers.
        assert!(j.trim_end().ends_with('}'));
    }
}
