//! The token scanner: masks comments, string literals and char literals out
//! of a Rust source file, extracts `wrht-analyze` suppression pragmas from
//! the comments, and maps which lines belong to test code.
//!
//! The scanner is deliberately not a full lexer: it only needs to answer
//! "is this byte part of executable, non-test code?" reliably. It handles
//! nested block comments, escape sequences, raw strings with arbitrary hash
//! fences (`r#".."#`), byte strings, raw identifiers (`r#type`), and the
//! char-literal-vs-lifetime ambiguity (`'a'` vs `&'a str`).

/// The canonical lowercase rule keys a pragma may name (ids and names).
pub const RULE_KEYS: [(&str, &str); 6] = [
    ("r1", "hash-collections"),
    ("r2", "ambient-time"),
    ("r3", "raw-thread-spawn"),
    ("r4", "float-order"),
    ("r5", "no-panic"),
    ("r6", "float-eq"),
];

/// A parsed, well-formed suppression pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// Canonical rule id (`"r1"`..`"r6"`) the pragma suppresses.
    pub rule: String,
    /// The audit reason given for the suppression (always non-empty).
    pub reason: String,
    /// 1-based line the pragma comment sits on.
    pub line: usize,
    /// 1-based line the pragma suppresses: its own line for a trailing
    /// comment, the next line carrying code for a standalone comment.
    pub applies_to: usize,
}

/// A malformed pragma: still a finding, never a suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaError {
    /// 1-based line of the offending comment.
    pub line: usize,
    /// Human-readable description of what is wrong.
    pub message: String,
}

/// Result of scanning one source file.
#[derive(Debug, Clone)]
pub struct Scan {
    /// The source with comments, strings and char literals blanked out
    /// (newlines preserved, so line/column structure is unchanged).
    pub masked: String,
    /// `test_lines[i]` is true when 1-based line `i + 1` is inside a
    /// `#[cfg(test)]` item, a `#[test]` item or a `mod tests { .. }` block.
    pub test_lines: Vec<bool>,
    /// Well-formed suppression pragmas, in source order.
    pub pragmas: Vec<Pragma>,
    /// Malformed pragmas, in source order.
    pub pragma_errors: Vec<PragmaError>,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Blank a byte range of the mask, preserving line breaks.
fn blank(masked: &mut [u8], range: std::ops::Range<usize>) {
    for b in &mut masked[range] {
        if *b != b'\n' && *b != b'\r' {
            *b = b' ';
        }
    }
}

/// Scan `source`, producing the masked text, pragma list and test-line map.
#[must_use]
pub fn scan(source: &str) -> Scan {
    let bytes = source.as_bytes();
    let len = bytes.len();
    let mut masked = bytes.to_vec();
    // (byte offset of the `//`, comment text without the `//`).
    let mut comments: Vec<(usize, String)> = Vec::new();

    let mut i = 0;
    while i < len {
        match bytes[i] {
            b'/' if i + 1 < len && bytes[i + 1] == b'/' => {
                let start = i;
                while i < len && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push((start, source[start + 2..i].to_string()));
                blank(&mut masked, start..i);
            }
            b'/' if i + 1 < len && bytes[i + 1] == b'*' => {
                let start = i;
                i += 2;
                let mut depth = 1usize;
                while i < len && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < len && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < len && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut masked, start..i);
            }
            b'"' => {
                i = mask_plain_string(source, &mut masked, i);
            }
            b'r' | b'b' if i == 0 || !is_ident_byte(bytes[i - 1]) => {
                i = mask_prefixed(source, &mut masked, i);
            }
            b'\'' => {
                i = mask_char_or_lifetime(source, &mut masked, i);
            }
            _ => i += 1,
        }
    }

    let line_starts = compute_line_starts(source);
    let masked_str = String::from_utf8(masked).unwrap_or_default();
    let test_lines = mark_test_lines(&masked_str, &line_starts);
    let (pragmas, pragma_errors) = collect_pragmas(&masked_str, &line_starts, &comments);

    Scan {
        masked: masked_str,
        test_lines,
        pragmas,
        pragma_errors,
    }
}

/// Mask a `"…"` string starting at the opening quote; returns the index
/// just past the closing quote.
fn mask_plain_string(source: &str, masked: &mut [u8], start: usize) -> usize {
    let bytes = source.as_bytes();
    let len = bytes.len();
    let mut i = start + 1;
    while i < len {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let end = i.min(len);
    blank(masked, start..end);
    end
}

/// Handle a token starting with `r` or `b`: raw strings (`r".."`,
/// `r#".."#`), byte strings (`b".."`, `br#".."#`) and raw identifiers
/// (`r#type`, left unmasked). Returns the index to resume scanning from.
fn mask_prefixed(source: &str, masked: &mut [u8], start: usize) -> usize {
    let bytes = source.as_bytes();
    let len = bytes.len();
    let mut i = start;
    let mut raw = false;
    if bytes[i] == b'b' {
        i += 1;
        if i < len && bytes[i] == b'r' {
            raw = true;
            i += 1;
        }
    } else {
        // bytes[start] == b'r'
        raw = true;
        i += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while i < len && bytes[i] == b'#' {
            hashes += 1;
            i += 1;
        }
        if i < len && bytes[i] == b'"' {
            // Raw (byte) string: runs until `"` followed by `hashes` hashes.
            i += 1;
            while i < len {
                if bytes[i] == b'"' && source.as_bytes()[i + 1..].starts_with(&vec![b'#'; hashes]) {
                    i += 1 + hashes;
                    break;
                }
                i += 1;
            }
            blank(masked, start..i.min(len));
            return i.min(len);
        }
        // `r#ident` raw identifier or a bare `r`/`br` identifier: not a
        // string, leave unmasked and resume right after the prefix char so
        // the identifier is scanned as ordinary code.
        return start + 1;
    }
    // `b'..'` byte char or `b".."` byte string.
    if i < len && bytes[i] == b'"' {
        return mask_plain_string(source, masked, i);
    }
    if i < len && bytes[i] == b'\'' {
        return mask_char_or_lifetime(source, masked, i);
    }
    start + 1
}

/// Distinguish a char literal from a lifetime at a `'`; masks char
/// literals, leaves lifetimes intact.
fn mask_char_or_lifetime(source: &str, masked: &mut [u8], start: usize) -> usize {
    let bytes = source.as_bytes();
    let len = bytes.len();
    if start + 1 >= len {
        return start + 1;
    }
    if bytes[start + 1] == b'\\' {
        // Escaped char literal: scan to the closing quote.
        let mut i = start + 2;
        while i < len && bytes[i] != b'\'' {
            // `'\\'` — the escape consumes the next byte.
            if bytes[i] == b'\\' {
                i += 1;
            }
            i += 1;
        }
        let end = (i + 1).min(len);
        blank(masked, start..end);
        return end;
    }
    // One (possibly multi-byte) char followed by a closing quote?
    if let Some(c) = source[start + 1..].chars().next() {
        let close = start + 1 + c.len_utf8();
        if c != '\'' && close < len && bytes[close] == b'\'' {
            blank(masked, start..close + 1);
            return close + 1;
        }
    }
    // A lifetime (or label): leave it alone.
    start + 1
}

/// Byte offsets at which each line starts (index 0 → line 1).
fn compute_line_starts(source: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in source.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Map a byte offset to a 1-based line number.
fn line_of(line_starts: &[usize], offset: usize) -> usize {
    match line_starts.binary_search(&offset) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

/// Mark the lines covered by `#[cfg(test)]` items, `#[test]` items and
/// `mod tests { .. }` blocks in the masked source.
fn mark_test_lines(masked: &str, line_starts: &[usize]) -> Vec<bool> {
    let mut test = vec![false; line_starts.len()];
    let bytes = masked.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let region = if bytes[i] == b'#' {
            test_attribute_end(masked, i).map(|attr_end| (i, item_end(masked, attr_end)))
        } else if masked[i..].starts_with("mod")
            && (i == 0 || !is_ident_byte(bytes[i - 1]))
            && is_mod_tests(masked, i)
        {
            Some((i, item_end(masked, i + 3)))
        } else {
            None
        };
        if let Some((start, end)) = region {
            let first = line_of(line_starts, start);
            let last = line_of(line_starts, end.saturating_sub(1).max(start));
            for line in first..=last {
                if line - 1 < test.len() {
                    test[line - 1] = true;
                }
            }
            i = end.max(i + 1);
        } else {
            i += 1;
        }
    }
    test
}

/// If a `#[cfg(test)]` or `#[test]` attribute begins at `at`, return the
/// offset just past its closing `]`.
fn test_attribute_end(masked: &str, at: usize) -> Option<usize> {
    let mut i = at + 1;
    i = skip_ws(masked, i);
    if !masked[i..].starts_with('[') {
        return None;
    }
    i = skip_ws(masked, i + 1);
    if masked[i..].starts_with("cfg") {
        i = skip_ws(masked, i + 3);
        if !masked[i..].starts_with('(') {
            return None;
        }
        i = skip_ws(masked, i + 1);
        if !masked[i..].starts_with("test") {
            return None;
        }
        i = skip_ws(masked, i + 4);
        if !masked[i..].starts_with(')') {
            return None;
        }
        i = skip_ws(masked, i + 1);
    } else if masked[i..].starts_with("test") {
        i = skip_ws(masked, i + 4);
    } else {
        return None;
    }
    masked[i..].starts_with(']').then_some(i + 1)
}

/// Does `mod` at `at` introduce a module literally named `tests`?
fn is_mod_tests(masked: &str, at: usize) -> bool {
    let i = skip_ws(masked, at + 3);
    let rest = &masked[i..];
    rest.starts_with("tests")
        && !rest[5..]
            .bytes()
            .next()
            .is_some_and(|b| is_ident_byte(b) || b == b':')
}

fn skip_ws(s: &str, mut i: usize) -> usize {
    let b = s.as_bytes();
    while i < b.len() && (b[i] as char).is_whitespace() {
        i += 1;
    }
    i
}

/// From the end of an attribute (or a `mod` keyword), find the end of the
/// item it applies to: the matching `}` of its first top-level brace block,
/// or the first top-level `;` for brace-less items.
fn item_end(masked: &str, from: usize) -> usize {
    let bytes = masked.as_bytes();
    let len = bytes.len();
    let mut depth = 0i64;
    let mut i = from;
    while i < len {
        match bytes[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b';' if depth == 0 => return i + 1,
            b'{' => {
                // Brace-match the item body.
                let mut braces = 1i64;
                i += 1;
                while i < len && braces > 0 {
                    match bytes[i] {
                        b'{' => braces += 1,
                        b'}' => braces -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            _ => {}
        }
        i += 1;
    }
    len
}

/// Parse every comment for the `wrht-analyze:` pragma grammar:
/// `// wrht-analyze: allow(<rule>, reason = "<why>")`.
fn collect_pragmas(
    masked: &str,
    line_starts: &[usize],
    comments: &[(usize, String)],
) -> (Vec<Pragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    let masked_lines: Vec<&str> = masked.split('\n').collect();
    for (offset, text) in comments {
        // Doc comments: strip the third `/` or the `!` before matching.
        let body = text.trim_start_matches(['/', '!']).trim();
        let Some(rest) = body.strip_prefix("wrht-analyze:") else {
            continue;
        };
        let line = line_of(line_starts, *offset);
        match parse_allow(rest.trim()) {
            Ok((rule, reason)) => {
                let applies_to = pragma_target(&masked_lines, line_starts, *offset, line);
                pragmas.push(Pragma {
                    rule,
                    reason,
                    line,
                    applies_to,
                });
            }
            Err(message) => errors.push(PragmaError { line, message }),
        }
    }
    (pragmas, errors)
}

/// Parse `allow(<rule>, reason = "<why>")`; returns (canonical id, reason).
fn parse_allow(s: &str) -> Result<(String, String), String> {
    let inner = s
        .strip_prefix("allow(")
        .and_then(|r| r.trim_end().strip_suffix(')'))
        .ok_or_else(|| {
            "expected `allow(<rule>, reason = \"...\")` after `wrht-analyze:`".to_string()
        })?;
    let (rule_part, reason_part) = inner
        .split_once(',')
        .ok_or_else(|| "missing `, reason = \"...\"` — every suppression is audited".to_string())?;
    let key = rule_part.trim().to_ascii_lowercase();
    let rule = RULE_KEYS
        .iter()
        .find(|(id, name)| *id == key || *name == key)
        .map(|(id, _)| (*id).to_string())
        .ok_or_else(|| format!("unknown rule `{}`", rule_part.trim()))?;
    let reason_rhs = reason_part
        .trim()
        .strip_prefix("reason")
        .map(|r| r.trim_start())
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| "expected `reason = \"...\"`".to_string())?;
    let quoted = reason_rhs.trim();
    let reason = quoted
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| "reason must be a double-quoted string".to_string())?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty — say why the exception is sound".to_string());
    }
    Ok((rule, reason.trim().to_string()))
}

/// The line a pragma suppresses: its own line when code precedes the
/// comment, otherwise the next line with any masked (code) content.
fn pragma_target(
    masked_lines: &[&str],
    line_starts: &[usize],
    comment_offset: usize,
    line: usize,
) -> usize {
    let col = comment_offset - line_starts[line - 1];
    let before = masked_lines
        .get(line - 1)
        .map_or("", |l| &l[..col.min(l.len())]);
    if !before.trim().is_empty() {
        return line;
    }
    for (idx, content) in masked_lines.iter().enumerate().skip(line) {
        if !content.trim().is_empty() {
            return idx + 1;
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let s = scan("let a = 1; // HashMap here\n/* Instant\nSystemTime */ let b = 2;\n");
        assert!(!s.masked.contains("HashMap"));
        assert!(!s.masked.contains("Instant"));
        assert!(s.masked.contains("let a = 1;"));
        assert!(s.masked.contains("let b = 2;"));
        assert_eq!(s.masked.lines().count(), 3);
    }

    #[test]
    fn masks_nested_block_comments() {
        let s = scan("/* outer /* HashMap */ still */ code()\n");
        assert!(!s.masked.contains("HashMap"));
        assert!(!s.masked.contains("still"));
        assert!(s.masked.contains("code()"));
    }

    #[test]
    fn masks_strings_and_raw_strings() {
        let s = scan(r##"let x = "HashMap"; let y = r#"thread::spawn "quoted""#; f();"##);
        assert!(!s.masked.contains("HashMap"));
        assert!(!s.masked.contains("spawn"));
        assert!(s.masked.contains("f();"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let s = scan(r#"let x = "a\"HashMap\"b"; g();"#);
        assert!(!s.masked.contains("HashMap"));
        assert!(s.masked.contains("g();"));
    }

    #[test]
    fn char_literals_mask_but_lifetimes_survive() {
        let s = scan("fn f<'a>(x: &'a str) -> char { let q = '\"'; let h = 'H'; q }");
        assert!(s.masked.contains("fn f<'a>(x: &'a str)"));
        assert!(!s.masked.contains("'H'"));
        // The quote char literal must not open a string.
        assert!(s.masked.contains("q }"));
    }

    #[test]
    fn raw_identifiers_are_not_strings() {
        let s = scan("let r#type = 1; let b = r#type + 1; HashMap::new();");
        assert!(s.masked.contains("HashMap::new()"));
    }

    #[test]
    fn cfg_test_modules_are_test_lines() {
        let src =
            "pub fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\npub fn after() {}\n";
        let s = scan(src);
        assert!(!s.test_lines[0]);
        assert!(s.test_lines[1] && s.test_lines[2] && s.test_lines[3] && s.test_lines[4]);
        assert!(!s.test_lines[5]);
    }

    #[test]
    fn bare_mod_tests_is_test_code() {
        let s = scan("mod tests {\n    fn t() {}\n}\nfn live() {}\n");
        assert!(s.test_lines[0] && s.test_lines[1] && s.test_lines[2]);
        assert!(!s.test_lines[3]);
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let s = scan("#[cfg(not(test))]\nfn live() {}\n");
        assert!(!s.test_lines[0]);
        assert!(!s.test_lines[1]);
    }

    #[test]
    fn modest_identifier_is_not_mod_tests() {
        let s = scan("fn modest() {}\nlet mod_tests = 1;\nmod testsuite {}\nfn live() {}\n");
        assert!(s.test_lines.iter().all(|t| !t));
    }

    #[test]
    fn pragma_parses_with_rule_id_or_name() {
        let src = "// wrht-analyze: allow(r1, reason = \"seed map\")\nuse x;\n\
                   let a = 1; // wrht-analyze: allow(float-eq, reason = \"bit contract\")\n";
        let s = scan(src);
        assert_eq!(s.pragmas.len(), 2);
        assert_eq!(s.pragmas[0].rule, "r1");
        assert_eq!(s.pragmas[0].applies_to, 2);
        assert_eq!(s.pragmas[1].rule, "r6");
        assert_eq!(s.pragmas[1].applies_to, 3);
        assert!(s.pragma_errors.is_empty());
    }

    #[test]
    fn pragma_without_reason_is_an_error() {
        let s = scan("// wrht-analyze: allow(r1)\nuse x;\n");
        assert!(s.pragmas.is_empty());
        assert_eq!(s.pragma_errors.len(), 1);
        assert!(s.pragma_errors[0].message.contains("reason"));
    }

    #[test]
    fn pragma_with_unknown_rule_or_empty_reason_is_an_error() {
        let s = scan(
            "// wrht-analyze: allow(r9, reason = \"x\")\n// wrht-analyze: allow(r1, reason = \"\")\nuse x;\n",
        );
        assert!(s.pragmas.is_empty());
        assert_eq!(s.pragma_errors.len(), 2);
    }

    #[test]
    fn standalone_pragma_skips_blank_lines_to_its_target() {
        let s = scan("// wrht-analyze: allow(r2, reason = \"timing\")\n\n\nuse std::x;\n");
        assert_eq!(s.pragmas[0].applies_to, 4);
    }
}
