//! Deterministic workspace walker: every `.rs` file under `src/`,
//! `crates/*/src/` and `examples/`, visited in sorted order so the report
//! (and its JSON artifact) is byte-stable across runs and machines.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Collect the workspace-relative paths of every source file the analyzer
/// covers, sorted lexicographically.
///
/// # Errors
/// Propagates filesystem errors from reading directories; missing roots
/// (e.g. a checkout without `examples/`) are skipped silently.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut roots: Vec<PathBuf> = vec![root.join("src"), root.join("examples")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crates: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        crates.sort();
        for c in crates {
            let src = c.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    let mut files = Vec::new();
    for r in roots {
        if r.is_dir() {
            collect_rs(&r, &mut files)?;
        }
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|f| f.strip_prefix(root).map(Path::to_path_buf).ok())
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_this_workspace_sorted_and_relative() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_files(&root).expect("workspace is readable");
        assert!(files.len() > 50, "found only {} files", files.len());
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
        assert!(files.iter().all(|f| f.is_relative()));
        // Covers all three root kinds, including this crate itself.
        assert!(files.iter().any(|f| f.starts_with("src")));
        assert!(files.iter().any(|f| f.starts_with("examples")));
        assert!(files.iter().any(|f| f.starts_with("crates/analyze/src")));
        // Never test suites, benches or vendored stand-ins.
        assert!(!files.iter().any(|f| f.starts_with("tests")));
        assert!(!files.iter().any(|f| f.starts_with("vendor")));
        assert!(!files.iter().any(|f| {
            f.components()
                .any(|c| c.as_os_str() == "tests" || c.as_os_str() == "benches")
        }));
    }
}
