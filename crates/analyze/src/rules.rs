//! The determinism-invariant rules and the per-file rule engine.
//!
//! Each rule is a textual detector over the masked source (comments,
//! strings and char literals already blanked by [`crate::scan`]), scoped to
//! the workspace paths where its invariant applies, and suppressible line
//! by line through the audited `// wrht-analyze: allow(rule, reason = "…")`
//! pragma.

use crate::scan::scan;

/// Identifier of one rule (or of the pragma grammar itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// R1: no `HashMap`/`HashSet` — iteration order leaks hasher seeds.
    HashCollections,
    /// R2: no wall-clock or ambient-entropy APIs in simulation code.
    AmbientTime,
    /// R3: no unscoped `std::thread::spawn`.
    RawThreadSpawn,
    /// R4: float-order hazards — `partial_cmp` chains and `f32` state.
    FloatOrder,
    /// R5: no `unwrap`/`expect`/`panic!` in `wrht-kernel`/`wrht-core`.
    NoPanic,
    /// R6: bare f64 `==`/`!=` outside the documented bit-equality sites.
    FloatEq,
    /// A malformed suppression pragma (missing/empty reason, unknown rule).
    BadPragma,
}

impl RuleId {
    /// Short id rendered in tables (`R1`..`R6`, `P0`).
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Self::HashCollections => "R1",
            Self::AmbientTime => "R2",
            Self::RawThreadSpawn => "R3",
            Self::FloatOrder => "R4",
            Self::NoPanic => "R5",
            Self::FloatEq => "R6",
            Self::BadPragma => "P0",
        }
    }

    /// Lowercase pragma key (`r1`..`r6`) for suppression matching.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Self::HashCollections => "r1",
            Self::AmbientTime => "r2",
            Self::RawThreadSpawn => "r3",
            Self::FloatOrder => "r4",
            Self::NoPanic => "r5",
            Self::FloatEq => "r6",
            Self::BadPragma => "p0",
        }
    }

    /// Human-readable rule name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::HashCollections => "hash-collections",
            Self::AmbientTime => "ambient-time",
            Self::RawThreadSpawn => "raw-thread-spawn",
            Self::FloatOrder => "float-order",
            Self::NoPanic => "no-panic",
            Self::FloatEq => "float-eq",
            Self::BadPragma => "bad-pragma",
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column of the first offending token.
    pub column: usize,
    /// The violated rule.
    pub rule: RuleId,
    /// What is wrong and what to use instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Static description of a rule, for tables and docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// `R1`..`R6`.
    pub id: &'static str,
    /// Kebab-case name, also accepted by pragmas.
    pub name: &'static str,
    /// One-line rationale.
    pub summary: &'static str,
}

/// The rule table, in id order.
#[must_use]
pub fn rule_table() -> [RuleInfo; 6] {
    [
        RuleInfo {
            id: "R1",
            name: "hash-collections",
            summary: "HashMap/HashSet iteration order depends on RandomState; \
                      use BTreeMap, slab ids or a sorted Vec",
        },
        RuleInfo {
            id: "R2",
            name: "ambient-time",
            summary: "Instant/SystemTime/RandomState read ambient machine state; \
                      only wrht-bench's timing helper may measure wall time",
        },
        RuleInfo {
            id: "R3",
            name: "raw-thread-spawn",
            summary: "std::thread::spawn escapes the scoped campaign executor; \
                      use std::thread::scope",
        },
        RuleInfo {
            id: "R4",
            name: "float-order",
            summary: "partial_cmp on float keys panics or silently equates NaN; \
                      use total_cmp (and f64, never f32, for simulator state)",
        },
        RuleInfo {
            id: "R5",
            name: "no-panic",
            summary: "wrht-kernel and wrht-core return typed errors; \
                      unwrap/expect/panic! are reserved for documented invariants",
        },
        RuleInfo {
            id: "R6",
            name: "float-eq",
            summary: "bare f64 ==/!= is only sanctioned at the documented \
                      bit-equality coalescing sites; compare to_bits() or use an epsilon",
        },
    ]
}

/// Paths (workspace-relative, forward slashes) where R5 applies: the crates
/// whose public contract is typed errors.
const NO_PANIC_SCOPE: [&str; 2] = ["crates/kernel/src/", "crates/core/src/"];

/// Paths where `f32` in state is an R4 hazard: everything that feeds the
/// bit-exact differential and golden suites.
const F32_SCOPE: [&str; 4] = [
    "crates/kernel/src/",
    "crates/core/src/",
    "crates/optical-sim/src/",
    "crates/electrical-sim/src/",
];

fn in_scope(path: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| path.starts_with(p))
}

/// Analyze one file's source text under its workspace-relative path.
///
/// Findings are ordered by (line, column, rule). Suppressed findings are
/// dropped; the count of applied suppressions is returned alongside.
#[must_use]
pub fn analyze_source(path: &str, source: &str) -> (Vec<Finding>, usize) {
    let sc = scan(source);
    let source_lines: Vec<&str> = source.split('\n').collect();
    let mut raw: Vec<Finding> = Vec::new();

    for err in &sc.pragma_errors {
        raw.push(Finding {
            file: path.to_string(),
            line: err.line,
            column: 1,
            rule: RuleId::BadPragma,
            message: format!("malformed wrht-analyze pragma: {}", err.message),
            snippet: snippet(&source_lines, err.line),
        });
    }

    for (idx, masked_line) in sc.masked.split('\n').enumerate() {
        let line_no = idx + 1;
        if sc.test_lines.get(idx).copied().unwrap_or(false) {
            continue;
        }
        check_line(path, masked_line, line_no, &source_lines, &mut raw);
    }

    let mut suppressed = 0usize;
    raw.retain(|f| {
        let hit = f.rule != RuleId::BadPragma
            && sc
                .pragmas
                .iter()
                .any(|p| p.applies_to == f.line && p.rule == f.rule.key());
        if hit {
            suppressed += 1;
        }
        !hit
    });
    raw.sort_by(|a, b| {
        a.line
            .cmp(&b.line)
            .then(a.column.cmp(&b.column))
            .then(a.rule.cmp(&b.rule))
    });
    (raw, suppressed)
}

fn snippet(source_lines: &[&str], line: usize) -> String {
    source_lines
        .get(line - 1)
        .map_or(String::new(), |l| l.trim().to_string())
}

/// Run every in-scope detector over one masked line; at most one finding
/// per (rule, line) so repeated tokens do not flood the report.
fn check_line(
    path: &str,
    masked_line: &str,
    line_no: usize,
    source_lines: &[&str],
    out: &mut Vec<Finding>,
) {
    let mut push = |rule: RuleId, column: usize, message: String| {
        out.push(Finding {
            file: path.to_string(),
            line: line_no,
            column,
            rule,
            message,
            snippet: snippet(source_lines, line_no),
        });
    };

    if let Some(col) = first_word(masked_line, &["HashMap", "HashSet"]) {
        push(
            RuleId::HashCollections,
            col,
            "hashed collection in simulator/kernel code: iteration order depends on the \
             hasher seed; use BTreeMap, slab indices or a sorted Vec"
                .to_string(),
        );
    }
    if let Some(col) = first_word(masked_line, &["Instant", "SystemTime", "RandomState"]) {
        push(
            RuleId::AmbientTime,
            col,
            "wall-clock / ambient-entropy API: simulation results must be a pure function \
             of inputs; only wrht_bench::perf's timing helper may measure wall time"
                .to_string(),
        );
    }
    if let Some(col) = find_substr(masked_line, "thread::spawn") {
        push(
            RuleId::RawThreadSpawn,
            col,
            "raw std::thread::spawn: unscoped threads escape the deterministic campaign \
             executor; use std::thread::scope"
                .to_string(),
        );
    }
    if let Some(col) = find_substr(masked_line, ".partial_cmp(") {
        push(
            RuleId::FloatOrder,
            col,
            "partial_cmp on float keys either panics on NaN or silently equates it, \
             making orderings input-dependent; use f64::total_cmp"
                .to_string(),
        );
    } else if in_scope(path, &F32_SCOPE) {
        if let Some(col) = first_word(masked_line, &["f32"]) {
            push(
                RuleId::FloatOrder,
                col,
                "f32 in simulator state: the differential and golden suites are bit-exact \
                 in f64; single precision breaks cross-substrate equivalence"
                    .to_string(),
            );
        }
    }
    if in_scope(path, &NO_PANIC_SCOPE) {
        let panics: [&str; 6] = [
            ".unwrap()",
            ".expect(",
            "panic!",
            "unreachable!",
            "todo!",
            "unimplemented!",
        ];
        if let Some(col) = panics.iter().find_map(|p| find_substr(masked_line, p)) {
            push(
                RuleId::NoPanic,
                col,
                "panic path in a typed-error crate: return WrhtError/KernelError, or \
                 pragma-annotate a documented invariant"
                    .to_string(),
            );
        }
    }
    if let Some(col) = float_eq_hit(masked_line) {
        push(
            RuleId::FloatEq,
            col,
            "bare f64 equality: exact comparison is only sanctioned at the documented \
             bit-equality coalescing sites; compare to_bits(), use an epsilon, or \
             pragma-annotate the contract"
                .to_string(),
        );
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// First word-boundary occurrence of any of `words`; 1-based column.
fn first_word(line: &str, words: &[&str]) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut best: Option<usize> = None;
    for word in words {
        let mut from = 0;
        while let Some(rel) = line[from..].find(word) {
            let at = from + rel;
            let pre_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
            let end = at + word.len();
            let post_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
            if pre_ok && post_ok {
                best = Some(best.map_or(at, |b: usize| b.min(at)));
                break;
            }
            from = at + 1;
        }
    }
    best.map(|c| c + 1)
}

/// First plain substring occurrence; 1-based column.
fn find_substr(line: &str, pat: &str) -> Option<usize> {
    line.find(pat).map(|c| c + 1)
}

/// Detect a bare float `==`/`!=`: either operand is a float literal, an
/// `f64::`/`f32::` constant path, or an identifier whose final segment is a
/// seconds-typed name (`time`, `now`, `*_s`). Returns the 1-based column of
/// the operator.
fn float_eq_hit(line: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let op = &line[i..i + 2];
        let is_eq = op == "==";
        let is_ne = op == "!=";
        if !(is_eq || is_ne) {
            i += 1;
            continue;
        }
        // Exclude `<=`, `>=`, `=>`-adjacent and chained `=` forms.
        let prev = if i == 0 { b' ' } else { bytes[i - 1] };
        let next = bytes.get(i + 2).copied().unwrap_or(b' ');
        if (is_eq && matches!(prev, b'<' | b'>' | b'=' | b'!')) || next == b'=' {
            i += 2;
            continue;
        }
        let left = left_operand(&line[..i]);
        let right = right_operand(&line[i + 2..]);
        if is_floatish(left) || is_floatish(right) {
            return Some(i + 1);
        }
        i += 2;
    }
    None
}

/// The token ending immediately before the operator.
fn left_operand(before: &str) -> &str {
    let trimmed = before.trim_end();
    let bytes = trimmed.as_bytes();
    let mut start = bytes.len();
    while start > 0 {
        let b = bytes[start - 1];
        if is_ident_byte(b) || matches!(b, b'.' | b':' | b'[' | b']') {
            start -= 1;
        } else {
            break;
        }
    }
    &trimmed[start..]
}

/// The token starting immediately after the operator.
fn right_operand(after: &str) -> &str {
    let trimmed = after.trim_start();
    let bytes = trimmed.as_bytes();
    let mut end = 0;
    if bytes.first() == Some(&b'-') {
        end = 1;
    }
    while end < bytes.len() {
        let b = bytes[end];
        if is_ident_byte(b) || matches!(b, b'.' | b':' | b'[' | b']') {
            end += 1;
        } else {
            break;
        }
    }
    &trimmed[..end]
}

/// Is this operand token a float literal, float constant path, or a
/// seconds-named identifier?
fn is_floatish(token: &str) -> bool {
    if token.is_empty() {
        return false;
    }
    if is_float_literal(token) {
        return true;
    }
    if token.contains("f64::") || token.contains("f32::") {
        return true;
    }
    // Final path/field segment heuristic: this workspace names every
    // seconds-typed f64 with an `_s` suffix (or `time`/`now`).
    let seg = token
        .rsplit(['.', ':'])
        .next()
        .unwrap_or(token)
        .trim_end_matches(']');
    seg == "time" || seg == "now" || (seg.len() > 2 && seg.ends_with("_s"))
}

/// `0.0`, `1.5e3`, `1e9`, `2.`, `-0.25_f64`, `1f64` — but not `1`, `a.0`.
fn is_float_literal(token: &str) -> bool {
    let t = token.strip_prefix('-').unwrap_or(token);
    let t = t
        .strip_suffix("f64")
        .or_else(|| t.strip_suffix("f32"))
        .map(|s| s.strip_suffix('_').unwrap_or(s))
        .unwrap_or(t);
    let bytes = t.as_bytes();
    if bytes.is_empty() || !bytes[0].is_ascii_digit() {
        return false;
    }
    let mut saw_dot_or_exp = false;
    // A `f64`/`f32` suffix was stripped if `t` differs from the
    // sign-stripped token.
    let had_suffix = token.strip_prefix('-').unwrap_or(token) != t;
    for &b in bytes {
        match b {
            b'0'..=b'9' | b'_' => {}
            b'.' => saw_dot_or_exp = true,
            b'e' | b'E' => saw_dot_or_exp = true,
            b'+' | b'-' => {}
            _ => return false,
        }
    }
    saw_dot_or_exp || had_suffix
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        analyze_source(path, src).0
    }

    #[test]
    fn r1_fires_on_hash_collections_and_not_in_strings() {
        let f = findings("crates/core/src/x.rs", "use std::collections::HashMap;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::HashCollections);
        assert!(findings("crates/core/src/x.rs", "let s = \"HashMap\";\n").is_empty());
    }

    #[test]
    fn r4_fires_on_partial_cmp_call_but_not_its_definition() {
        let f = findings("src/x.rs", "v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n");
        assert_eq!(f[0].rule, RuleId::FloatOrder);
        assert!(findings(
            "src/x.rs",
            "fn partial_cmp(&self, other: &Self) -> Option<Ordering> { None }\n"
        )
        .is_empty());
    }

    #[test]
    fn r5_is_scoped_to_kernel_and_core() {
        let src = "let x = y.unwrap();\n";
        assert_eq!(findings("crates/kernel/src/x.rs", src).len(), 1);
        assert_eq!(findings("crates/core/src/x.rs", src).len(), 1);
        assert!(findings("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn r6_literal_and_identifier_heuristics() {
        assert_eq!(findings("src/x.rs", "if x == 0.0 {}\n").len(), 1);
        assert_eq!(findings("src/x.rs", "if x != 1.5e3 {}\n").len(), 1);
        assert_eq!(findings("src/x.rs", "if a == f64::INFINITY {}\n").len(), 1);
        assert_eq!(
            findings("src/x.rs", "self.time == other.time\n").len(),
            1,
            "seconds-named fields are float-compared"
        );
        assert_eq!(findings("src/x.rs", "if t.release_s != 0.0 {}\n").len(), 1);
    }

    #[test]
    fn r6_ignores_integer_and_bitwise_comparisons() {
        assert!(findings("src/x.rs", "if count == 0 {}\n").is_empty());
        assert!(findings("src/x.rs", "if i % 2 == 1 {}\n").is_empty());
        assert!(findings("src/x.rs", "if a.to_bits() == b.to_bits() {}\n").is_empty());
        assert!(findings("src/x.rs", "if x <= 0.5 { f(); }\n").is_empty());
        assert!(findings("src/x.rs", "let f = |a: u32| a; f(2); x >= 1.0;\n").is_empty());
        assert!(findings("src/x.rs", "if in_service == 0 {}\n").is_empty());
    }

    #[test]
    fn suppression_requires_matching_rule() {
        let src =
            "// wrht-analyze: allow(r1, reason = \"audited\")\nuse std::collections::HashMap;\n";
        let (f, suppressed) = analyze_source("src/x.rs", src);
        assert!(f.is_empty());
        assert_eq!(suppressed, 1);
        // A pragma for the wrong rule does not suppress.
        let src =
            "// wrht-analyze: allow(r2, reason = \"audited\")\nuse std::collections::HashMap;\n";
        let (f, suppressed) = analyze_source("src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(suppressed, 0);
    }

    #[test]
    fn malformed_pragma_is_a_finding_and_does_not_suppress() {
        let src = "// wrht-analyze: allow(r1)\nuse std::collections::HashMap;\n";
        let (f, suppressed) = analyze_source("src/x.rs", src);
        assert_eq!(suppressed, 0);
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|x| x.rule == RuleId::BadPragma));
        assert!(f.iter().any(|x| x.rule == RuleId::HashCollections));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t() { let x = 0.0; assert!(x == 0.0); }\n}\n";
        assert!(findings("crates/core/src/x.rs", src).is_empty());
    }
}
