//! Data-plane property tests: every algorithm must compute the **exact**
//! element-wise sum — not merely look right on timing — for non-power-of-two
//! node counts and ragged chunk sizes (elems not divisible by n, fewer
//! elements than nodes, single elements).

use collectives::executor::{execute, verify_allreduce};
use collectives::halving_doubling::halving_doubling;
use collectives::rd::recursive_doubling;
use collectives::ring::ring_allreduce;
use collectives::tree::binomial_tree;
use collectives::Schedule;
use proptest::prelude::*;

type Builder = fn(usize, usize) -> Schedule;

const ALGORITHMS: [(&str, Builder); 4] = [
    ("ring", ring_allreduce as Builder),
    ("rd", recursive_doubling as Builder),
    ("hd", halving_doubling as Builder),
    ("tree", binomial_tree as Builder),
];

/// Deterministic pseudo-random integral inputs: integers keep f64 addition
/// exact, so the expected sums can be compared bit-for-bit.
fn pseudo_random_inputs(n: usize, elems: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed | 1;
    let mut next = move || {
        // SplitMix64 step, reduced to small exact integers.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) % 1_000
    };
    (0..n)
        .map(|_| (0..elems).map(|_| next() as f64).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every algorithm is a correct all-reduce for arbitrary (including
    /// non-power-of-two) node counts and ragged element counts. The
    /// verifier feeds distinguishable inputs, so duplicated as well as
    /// dropped contributions are caught.
    #[test]
    fn all_algorithms_compute_the_exact_sum(n in 1usize..40, elems in 1usize..120) {
        for (name, build) in ALGORITHMS {
            let sched = build(n, elems);
            if let Err(e) = verify_allreduce(&sched) {
                return Err(format!("{name}(n={n}, elems={elems}): {e}"));
            }
        }
    }

    /// Executing on pseudo-random integral buffers also yields the exact
    /// element-wise sum at every node — the data plane is correct for
    /// arbitrary values, not just the verifier's canonical pattern.
    #[test]
    fn random_integral_buffers_reduce_exactly(
        n in 1usize..24,
        elems in 1usize..80,
        seed in 0u64..1_000_000,
    ) {
        let inputs = pseudo_random_inputs(n, elems, seed);
        let expected: Vec<f64> = (0..elems)
            .map(|i| inputs.iter().map(|buf| buf[i]).sum())
            .collect();
        for (name, build) in ALGORITHMS {
            let outputs = execute(&build(n, elems), &inputs);
            for (node, out) in outputs.iter().enumerate() {
                prop_assert_eq!(
                    out, &expected,
                    "{}(n={}, elems={}, seed={}): node {} diverges",
                    name, n, elems, seed, node
                );
            }
        }
    }

    /// Ragged extremes: more nodes than elements forces empty chunks in the
    /// chunked algorithms; they must still reduce exactly.
    #[test]
    fn more_nodes_than_elements_still_reduces(n in 2usize..48, elems in 1usize..8) {
        for (name, build) in ALGORITHMS {
            let sched = build(n, elems);
            if let Err(e) = verify_allreduce(&sched) {
                return Err(format!("{name}(n={n}, elems={elems}): {e}"));
            }
        }
    }

    /// Structural sanity rides along: every generated schedule validates
    /// (no write conflicts, in-range nodes and chunks).
    #[test]
    fn schedules_validate_structurally(n in 1usize..40, elems in 1usize..120) {
        for (name, build) in ALGORITHMS {
            let sched = build(n, elems);
            if let Err(e) = sched.validate() {
                return Err(format!("{name}(n={n}, elems={elems}): {e}"));
            }
        }
    }
}
