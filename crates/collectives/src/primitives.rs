//! The component collectives all-reduce decomposes into: reduce-scatter,
//! all-gather, reduce and broadcast — each with a ring implementation and a
//! logical verifier. Wrht's stages are exactly a (hierarchical) reduce
//! followed by a broadcast; these primitives let downstream users compose
//! custom pipelines and let tests check stage semantics in isolation.

use crate::chunks::chunk_range;
use crate::executor::execute;
use crate::schedule::{Op, Schedule, Step, TransferSpec};

/// Ring reduce-scatter: after `n-1` steps node `i` holds the fully reduced
/// chunk `(i+1) mod n` (the first half of ring all-reduce).
#[must_use]
pub fn ring_reduce_scatter(n: usize, elems: usize) -> Schedule {
    let mut sched = Schedule::new(n, elems, format!("ring-reduce-scatter(n={n})"));
    if n < 2 {
        return sched;
    }
    for k in 0..n - 1 {
        let mut step = Step::default();
        for i in 0..n {
            let chunk = (i + n - (k % n)) % n;
            let range = chunk_range(elems, n, chunk);
            if !range.is_empty() {
                step.transfers
                    .push(TransferSpec::new(i, (i + 1) % n, range, Op::ReduceInto));
            }
        }
        sched.push_step(step);
    }
    sched
}

/// Ring all-gather assuming node `i` owns chunk `(i+1) mod n`
/// (the second half of ring all-reduce).
#[must_use]
pub fn ring_allgather(n: usize, elems: usize) -> Schedule {
    let mut sched = Schedule::new(n, elems, format!("ring-allgather(n={n})"));
    if n < 2 {
        return sched;
    }
    for k in 0..n - 1 {
        let mut step = Step::default();
        for i in 0..n {
            let chunk = (i + 1 + n - (k % n)) % n;
            let range = chunk_range(elems, n, chunk);
            if !range.is_empty() {
                step.transfers
                    .push(TransferSpec::new(i, (i + 1) % n, range, Op::Copy));
            }
        }
        sched.push_step(step);
    }
    sched
}

/// Binomial-tree reduce to `root` (every node's buffer summed into root).
#[must_use]
pub fn tree_reduce(n: usize, elems: usize, root: usize) -> Schedule {
    assert!(root < n.max(1), "root must be a valid node");
    let mut sched = Schedule::new(n, elems, format!("tree-reduce(n={n},root={root})"));
    if n < 2 {
        return sched;
    }
    // Work in a rotated index space where the root is 0.
    let phys = |v: usize| (v + root) % n;
    let rounds = usize::BITS as usize - (n - 1).leading_zeros() as usize;
    for d in 0..rounds {
        let dist = 1 << d;
        let mut step = Step::default();
        let mut j = dist;
        while j < n {
            if (j / dist) % 2 == 1 {
                step.transfers.push(TransferSpec::new(
                    phys(j),
                    phys(j - dist),
                    0..elems,
                    Op::ReduceInto,
                ));
            }
            j += dist;
        }
        if !step.transfers.is_empty() {
            sched.push_step(step);
        }
    }
    sched
}

/// Binomial-tree broadcast from `root`.
#[must_use]
pub fn tree_broadcast(n: usize, elems: usize, root: usize) -> Schedule {
    assert!(root < n.max(1), "root must be a valid node");
    let mut sched = Schedule::new(n, elems, format!("tree-broadcast(n={n},root={root})"));
    if n < 2 {
        return sched;
    }
    let phys = |v: usize| (v + root) % n;
    let rounds = usize::BITS as usize - (n - 1).leading_zeros() as usize;
    for d in (0..rounds).rev() {
        let dist = 1 << d;
        let mut step = Step::default();
        let mut j = 0;
        while j + dist < n {
            if (j / dist) % 2 == 0 {
                step.transfers.push(TransferSpec::new(
                    phys(j),
                    phys(j + dist),
                    0..elems,
                    Op::Copy,
                ));
            }
            j += dist;
        }
        if !step.transfers.is_empty() {
            sched.push_step(step);
        }
    }
    sched
}

/// Verify a reduce-scatter: node `owner(c)` must end with the summed chunk
/// `c`; `owner` maps chunk index to the node that should hold it.
pub fn verify_reduce_scatter(
    schedule: &Schedule,
    owner: impl Fn(usize) -> usize,
) -> Result<(), String> {
    schedule.validate().map_err(|e| e.to_string())?;
    let (n, elems) = (schedule.n, schedule.elems);
    let inputs: Vec<Vec<f64>> = (0..n)
        .map(|node| (0..elems).map(|i| (node * elems + i + 1) as f64).collect())
        .collect();
    let outputs = execute(schedule, &inputs);
    for c in 0..n {
        let holder = owner(c);
        for i in chunk_range(elems, n, c) {
            let want: f64 = (0..n).map(|node| (node * elems + i + 1) as f64).sum();
            let got = outputs[holder][i];
            if got != want {
                return Err(format!(
                    "'{}': chunk {c} elem {i} at node {holder}: got {got}, want {want}",
                    schedule.name
                ));
            }
        }
    }
    Ok(())
}

/// Verify a reduce: `root` must end with the element-wise sum.
pub fn verify_reduce(schedule: &Schedule, root: usize) -> Result<(), String> {
    schedule.validate().map_err(|e| e.to_string())?;
    let (n, elems) = (schedule.n, schedule.elems);
    let inputs: Vec<Vec<f64>> = (0..n)
        .map(|node| (0..elems).map(|i| (node * elems + i + 1) as f64).collect())
        .collect();
    let outputs = execute(schedule, &inputs);
    for (i, &got) in outputs[root].iter().enumerate() {
        let want: f64 = (0..n).map(|node| (node * elems + i + 1) as f64).sum();
        if got != want {
            return Err(format!(
                "'{}': elem {i} at root {root}: got {got}, want {want}",
                schedule.name
            ));
        }
    }
    Ok(())
}

/// Verify a broadcast: every node must end with root's original buffer.
pub fn verify_broadcast(schedule: &Schedule, root: usize) -> Result<(), String> {
    schedule.validate().map_err(|e| e.to_string())?;
    let (n, elems) = (schedule.n, schedule.elems);
    let inputs: Vec<Vec<f64>> = (0..n)
        .map(|node| (0..elems).map(|i| (node * elems + i + 1) as f64).collect())
        .collect();
    let want = inputs[root].clone();
    let outputs = execute(schedule, &inputs);
    for (node, out) in outputs.iter().enumerate() {
        if out != &want {
            return Err(format!(
                "'{}': node {node} did not receive root {root}'s buffer",
                schedule.name
            ));
        }
    }
    Ok(())
}

/// Concatenate two schedules over the same `(n, elems)` into one.
#[must_use]
pub fn concat(a: &Schedule, b: &Schedule, name: impl Into<String>) -> Schedule {
    assert_eq!(a.n, b.n, "node counts must match");
    assert_eq!(a.elems, b.elems, "element counts must match");
    let mut out = Schedule::new(a.n, a.elems, name);
    out.steps.extend(a.steps.iter().cloned());
    out.steps.extend(b.steps.iter().cloned());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::verify_allreduce;

    #[test]
    fn reduce_scatter_ownership() {
        for n in 2..=9 {
            let s = ring_reduce_scatter(n, 36);
            verify_reduce_scatter(&s, |c| (c + n - 1) % n).unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn reduce_scatter_plus_allgather_is_allreduce() {
        for n in 2..=9 {
            let rs = ring_reduce_scatter(n, 30);
            let ag = ring_allgather(n, 30);
            let full = concat(&rs, &ag, format!("composed-ring(n={n})"));
            verify_allreduce(&full).unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn tree_reduce_collects_at_any_root() {
        for n in [2usize, 5, 8, 13] {
            for root in [0, n / 2, n - 1] {
                verify_reduce(&tree_reduce(n, 8, root), root)
                    .unwrap_or_else(|e| panic!("n={n} root={root}: {e}"));
            }
        }
    }

    #[test]
    fn tree_broadcast_reaches_everyone_from_any_root() {
        for n in [2usize, 5, 8, 13] {
            for root in [0, n / 2, n - 1] {
                verify_broadcast(&tree_broadcast(n, 8, root), root)
                    .unwrap_or_else(|e| panic!("n={n} root={root}: {e}"));
            }
        }
    }

    #[test]
    fn reduce_plus_broadcast_is_allreduce() {
        for n in [3usize, 6, 12] {
            let root = n / 3;
            let full = concat(
                &tree_reduce(n, 10, root),
                &tree_broadcast(n, 10, root),
                "reduce+bcast",
            );
            verify_allreduce(&full).unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn verifiers_reject_wrong_schedules() {
        // A broadcast is not a reduce.
        assert!(verify_reduce(&tree_broadcast(4, 4, 0), 0).is_err());
        // A reduce is not a broadcast.
        assert!(verify_broadcast(&tree_reduce(4, 4, 0), 0).is_err());
        // Reduce-scatter with the wrong ownership map fails.
        let s = ring_reduce_scatter(4, 16);
        assert!(verify_reduce_scatter(&s, |c| c).is_err());
    }

    #[test]
    fn single_node_primitives_are_empty() {
        assert_eq!(ring_reduce_scatter(1, 8).step_count(), 0);
        assert_eq!(ring_allgather(1, 8).step_count(), 0);
        assert_eq!(tree_reduce(1, 8, 0).step_count(), 0);
        assert_eq!(tree_broadcast(1, 8, 0).step_count(), 0);
    }

    #[test]
    #[should_panic(expected = "root must be a valid node")]
    fn invalid_root_panics() {
        let _ = tree_reduce(4, 8, 9);
    }

    #[test]
    #[should_panic(expected = "node counts must match")]
    fn concat_checks_shapes() {
        let _ = concat(&ring_allgather(4, 8), &ring_allgather(5, 8), "bad");
    }
}
