//! Quantitative schedule analysis: volumes, balance and optimality ratios.
//!
//! The classic all-reduce lower bounds: every node must send at least
//! `(n−1)/n · S` elements during reduce-scatter-equivalent work and the
//! same again for all-gather-equivalent work (bandwidth bound `2S(n−1)/n`),
//! and any algorithm needs at least `⌈log₂ n⌉` communication rounds
//! (latency bound). These metrics quantify where each algorithm sits.
//!
//! ```
//! use collectives::analysis::analyze;
//! use collectives::ring::ring_allreduce;
//!
//! let a = analyze(&ring_allreduce(16, 1600));
//! assert_eq!(a.steps, 2 * (16 - 1));
//! assert!(a.bandwidth_optimality(16, 1600) < 1.01); // ring is bandwidth-optimal
//! assert!(a.latency_optimality(16) > 2.0); // but latency-poor
//! ```

use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};

/// Aggregated metrics of one schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleAnalysis {
    /// Number of communication steps (latency proxy).
    pub steps: usize,
    /// Elements sent by each node over the whole schedule.
    pub sent_per_node: Vec<usize>,
    /// Elements received by each node.
    pub received_per_node: Vec<usize>,
    /// Largest number of concurrent transfers in any step.
    pub peak_step_width: usize,
    /// Steps in which each node participates (sender or receiver).
    pub active_steps_per_node: Vec<usize>,
}

impl ScheduleAnalysis {
    /// Heaviest sender's total volume.
    #[must_use]
    pub fn max_sent(&self) -> usize {
        self.sent_per_node.iter().copied().max().unwrap_or(0)
    }

    /// Ratio of the heaviest sender's volume to the bandwidth lower bound
    /// `2·elems·(n−1)/n`; 1.0 means bandwidth-optimal (ring), larger means
    /// the algorithm trades bandwidth for latency (recursive doubling).
    #[must_use]
    pub fn bandwidth_optimality(&self, n: usize, elems: usize) -> f64 {
        if n < 2 || elems == 0 {
            return 1.0;
        }
        let bound = 2.0 * elems as f64 * (n as f64 - 1.0) / n as f64;
        self.max_sent() as f64 / bound
    }

    /// Ratio of the step count to the latency lower bound `⌈log₂ n⌉`.
    #[must_use]
    pub fn latency_optimality(&self, n: usize) -> f64 {
        if n < 2 {
            return 1.0;
        }
        let bound = (usize::BITS - (n - 1).leading_zeros()) as f64;
        self.steps as f64 / bound
    }

    /// Send-volume imbalance: max/mean over nodes (1.0 = perfectly even).
    #[must_use]
    pub fn send_imbalance(&self) -> f64 {
        let total: usize = self.sent_per_node.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.sent_per_node.len() as f64;
        self.max_sent() as f64 / mean
    }
}

/// Compute all metrics for a schedule.
#[must_use]
pub fn analyze(schedule: &Schedule) -> ScheduleAnalysis {
    let n = schedule.n;
    let mut sent = vec![0usize; n];
    let mut received = vec![0usize; n];
    let mut active = vec![0usize; n];
    let mut peak = 0;
    for step in &schedule.steps {
        peak = peak.max(step.transfers.len());
        let mut touched = vec![false; n];
        for t in &step.transfers {
            sent[t.src] += t.elems();
            received[t.dst] += t.elems();
            touched[t.src] = true;
            touched[t.dst] = true;
        }
        for (node, &hit) in touched.iter().enumerate() {
            if hit {
                active[node] += 1;
            }
        }
    }
    ScheduleAnalysis {
        steps: schedule.step_count(),
        sent_per_node: sent,
        received_per_node: received,
        peak_step_width: peak,
        active_steps_per_node: active,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::halving_doubling::halving_doubling;
    use crate::rd::recursive_doubling;
    use crate::ring::ring_allreduce;
    use crate::tree::binomial_tree;

    #[test]
    fn ring_is_bandwidth_optimal_but_latency_poor() {
        let n = 16;
        let elems = 1600;
        let a = analyze(&ring_allreduce(n, elems));
        let bw = a.bandwidth_optimality(n, elems);
        assert!((bw - 1.0).abs() < 0.01, "ring bw ratio {bw}");
        assert!(a.latency_optimality(n) > 5.0); // 30 steps vs log2 16 = 4
        assert!((a.send_imbalance() - 1.0).abs() < 1e-9); // perfectly even
    }

    #[test]
    fn recursive_doubling_is_latency_optimal_but_bandwidth_poor() {
        let n = 16;
        let elems = 1600;
        let a = analyze(&recursive_doubling(n, elems));
        assert!((a.latency_optimality(n) - 1.0).abs() < 1e-9); // 4 steps
                                                               // Sends log2(n) * S: ratio = 4 / (2*15/16) ~= 2.13.
        assert!(a.bandwidth_optimality(n, elems) > 2.0);
    }

    #[test]
    fn halving_doubling_is_close_to_both_bounds() {
        let n = 16;
        let elems = 1600;
        let a = analyze(&halving_doubling(n, elems));
        assert!((a.latency_optimality(n) - 2.0).abs() < 1e-9); // 2 log2 n
        assert!(a.bandwidth_optimality(n, elems) < 1.1);
    }

    #[test]
    fn tree_concentrates_load_at_the_root() {
        let n = 16;
        let elems = 160;
        let a = analyze(&binomial_tree(n, elems));
        // Root (node 0) receives log2(n) full buffers in reduce and sends
        // log2(n) in broadcast: heavily imbalanced.
        assert!(a.send_imbalance() > 1.5);
        assert_eq!(a.received_per_node[0], 4 * elems);
    }

    #[test]
    fn conservation_sent_equals_received() {
        for sched in [
            ring_allreduce(9, 90),
            recursive_doubling(9, 90),
            halving_doubling(9, 90),
            binomial_tree(9, 90),
        ] {
            let a = analyze(&sched);
            let sent: usize = a.sent_per_node.iter().sum();
            let recv: usize = a.received_per_node.iter().sum();
            assert_eq!(sent, recv, "{}", sched.name);
            assert_eq!(sent, sched.total_elems_moved());
        }
    }

    #[test]
    fn empty_schedule_analysis() {
        let a = analyze(&ring_allreduce(1, 10));
        assert_eq!(a.steps, 0);
        assert_eq!(a.max_sent(), 0);
        assert_eq!(a.send_imbalance(), 1.0);
        assert_eq!(a.bandwidth_optimality(1, 10), 1.0);
    }
}
