//! Binomial-tree all-reduce: reduce to a root, then broadcast.
//!
//! The electrical ancestor of Wrht's hierarchical tree — `⌈log2 n⌉` rounds
//! of pairwise reduction followed by the mirror broadcast. Works for any
//! `n`, any root-free node count (root is node 0).

use crate::schedule::{Op, Schedule, Step, TransferSpec};

/// Build a binomial-tree all-reduce (root at node 0).
#[must_use]
pub fn binomial_tree(n: usize, elems: usize) -> Schedule {
    let mut sched = Schedule::new(n, elems, format!("binomial-tree(n={n})"));
    if n < 2 {
        return sched;
    }
    let rounds = usize::BITS as usize - (n - 1).leading_zeros() as usize; // ceil(log2 n)

    // Reduce: at round d, nodes that are odd multiples of 2^d send their
    // whole buffer to the even multiple 2^d below them.
    for d in 0..rounds {
        let dist = 1 << d;
        let mut step = Step::default();
        let mut j = dist;
        while j < n {
            if (j / dist) % 2 == 1 {
                step.transfers
                    .push(TransferSpec::new(j, j - dist, 0..elems, Op::ReduceInto));
            }
            j += dist;
        }
        if !step.transfers.is_empty() {
            sched.push_step(step);
        }
    }

    // Broadcast: mirror image.
    for d in (0..rounds).rev() {
        let dist = 1 << d;
        let mut step = Step::default();
        let mut j = 0;
        while j + dist < n {
            if (j / dist) % 2 == 0 {
                step.transfers
                    .push(TransferSpec::new(j, j + dist, 0..elems, Op::Copy));
            }
            j += dist;
        }
        if !step.transfers.is_empty() {
            sched.push_step(step);
        }
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::verify_allreduce;

    #[test]
    fn correct_for_many_sizes() {
        for n in 1..=17 {
            verify_allreduce(&binomial_tree(n, 8)).unwrap();
        }
    }

    #[test]
    fn step_count_is_2_ceil_log2() {
        assert_eq!(binomial_tree(8, 4).step_count(), 6);
        assert_eq!(binomial_tree(2, 4).step_count(), 2);
        // Non-powers still have 2*ceil(log2 n) rounds with work in each.
        assert_eq!(binomial_tree(5, 4).step_count(), 6);
    }

    #[test]
    fn root_holds_sum_after_reduce_half() {
        let n = 8;
        let elems = 4;
        let sched = binomial_tree(n, elems);
        // Execute only the reduce half.
        let mut reduce_only = Schedule::new(n, elems, "half");
        for s in &sched.steps[..sched.step_count() / 2] {
            reduce_only.push_step(s.clone());
        }
        let inputs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64; elems]).collect();
        let out = crate::executor::execute(&reduce_only, &inputs);
        let want = (0..n).map(|i| i as f64).sum::<f64>();
        assert_eq!(out[0], vec![want; elems]);
    }

    #[test]
    fn validates() {
        binomial_tree(12, 16).validate().unwrap();
    }
}
