//! The schedule intermediate representation shared by all algorithms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// What the receiver does with an arriving chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Element-wise add into the destination range (reduction).
    ReduceInto,
    /// Overwrite the destination range (gather/broadcast).
    Copy,
}

/// One point-to-point transfer: `src` sends its elements `range` to `dst`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferSpec {
    /// Sending node.
    pub src: usize,
    /// Receiving node.
    pub dst: usize,
    /// Element range (same indices on both sides).
    pub range: Range<usize>,
    /// Receiver-side operation.
    pub op: Op,
}

impl TransferSpec {
    /// Convenience constructor.
    #[must_use]
    pub fn new(src: usize, dst: usize, range: Range<usize>, op: Op) -> Self {
        Self {
            src,
            dst,
            range,
            op,
        }
    }

    /// Number of elements moved.
    #[must_use]
    pub fn elems(&self) -> usize {
        self.range.len()
    }
}

/// A step: transfers that start together; the step ends when all complete.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Step {
    /// The step's transfers.
    pub transfers: Vec<TransferSpec>,
}

impl Step {
    /// Step from a transfer list.
    #[must_use]
    pub fn new(transfers: Vec<TransferSpec>) -> Self {
        Self { transfers }
    }
}

/// Validation failures for schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A transfer referenced a node `>= n`.
    NodeOutOfRange {
        /// Step index.
        step: usize,
        /// Offending node.
        node: usize,
    },
    /// A transfer sends a node to itself.
    SelfTransfer {
        /// Step index.
        step: usize,
        /// The node.
        node: usize,
    },
    /// A chunk range exceeds the buffer length.
    RangeOutOfBounds {
        /// Step index.
        step: usize,
        /// Offending range end.
        end: usize,
        /// Buffer length.
        elems: usize,
    },
    /// Two transfers in one step write overlapping ranges at one node.
    WriteConflict {
        /// Step index.
        step: usize,
        /// Destination node with conflicting writes.
        node: usize,
    },
    /// The schedule needs at least one node.
    NoNodes,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NodeOutOfRange { step, node } => {
                write!(f, "step {step}: node {node} out of range")
            }
            ScheduleError::SelfTransfer { step, node } => {
                write!(f, "step {step}: node {node} sends to itself")
            }
            ScheduleError::RangeOutOfBounds { step, end, elems } => {
                write!(f, "step {step}: range end {end} beyond buffer of {elems}")
            }
            ScheduleError::WriteConflict { step, node } => {
                write!(f, "step {step}: conflicting writes at node {node}")
            }
            ScheduleError::NoNodes => write!(f, "schedule must involve at least one node"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A complete collective schedule over `n` nodes holding `elems` elements.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Number of participating nodes.
    pub n: usize,
    /// Elements per node buffer.
    pub elems: usize,
    /// The steps, in execution order.
    pub steps: Vec<Step>,
    /// Human-readable algorithm name (for reports).
    pub name: String,
}

impl Schedule {
    /// New empty schedule.
    #[must_use]
    pub fn new(n: usize, elems: usize, name: impl Into<String>) -> Self {
        Self {
            n,
            elems,
            steps: Vec::new(),
            name: name.into(),
        }
    }

    /// Append a step.
    pub fn push_step(&mut self, step: Step) {
        self.steps.push(step);
    }

    /// Number of steps.
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Total elements transferred over the whole schedule.
    #[must_use]
    pub fn total_elems_moved(&self) -> usize {
        self.steps
            .iter()
            .flat_map(|s| &s.transfers)
            .map(TransferSpec::elems)
            .sum()
    }

    /// Largest number of elements any single node sends in one step
    /// (the serialization bottleneck of that step).
    #[must_use]
    pub fn max_send_per_node_per_step(&self) -> usize {
        let mut worst = 0;
        for step in &self.steps {
            let mut sent = vec![0usize; self.n];
            for t in &step.transfers {
                sent[t.src] += t.elems();
            }
            worst = worst.max(sent.iter().copied().max().unwrap_or(0));
        }
        worst
    }

    /// Per-step transfers as `(src, dst, bytes)` triples given an element
    /// width — the lowering used by the network simulators.
    #[must_use]
    pub fn step_transfers(&self, bytes_per_elem: usize) -> Vec<Vec<(usize, usize, u64)>> {
        self.steps
            .iter()
            .map(|s| {
                s.transfers
                    .iter()
                    .map(|t| (t.src, t.dst, (t.elems() * bytes_per_elem) as u64))
                    .collect()
            })
            .collect()
    }

    /// The same schedule re-addressed onto `members`: rank `r` of this
    /// schedule becomes node `members[r]`. Used to embed a collective over
    /// a subgroup (a tensor-parallel group, a data-parallel slice) into a
    /// larger deployment's node space. `members.len()` must equal
    /// [`Schedule::n`]; member ids need not be contiguous but must be
    /// distinct for the result to validate against the wider node count.
    ///
    /// # Panics
    /// Panics if `members.len() != self.n`.
    #[must_use]
    pub fn over_members(&self, members: &[usize]) -> Schedule {
        assert_eq!(
            members.len(),
            self.n,
            "member table must cover every rank of the schedule"
        );
        let max = members.iter().copied().max().map_or(0, |m| m + 1);
        Schedule {
            n: max,
            elems: self.elems,
            steps: self
                .steps
                .iter()
                .map(|s| {
                    Step::new(
                        s.transfers
                            .iter()
                            .map(|t| {
                                TransferSpec::new(
                                    members[t.src],
                                    members[t.dst],
                                    t.range.clone(),
                                    t.op,
                                )
                            })
                            .collect(),
                    )
                })
                .collect(),
            name: self.name.clone(),
        }
    }

    /// Structural validation: node indices, ranges, self-sends and
    /// intra-step write conflicts.
    pub fn validate(&self) -> Result<(), ScheduleError> {
        if self.n == 0 {
            return Err(ScheduleError::NoNodes);
        }
        for (si, step) in self.steps.iter().enumerate() {
            // Writes per destination node for conflict detection.
            let mut writes: Vec<(usize, &Range<usize>)> = Vec::new();
            for t in &step.transfers {
                for node in [t.src, t.dst] {
                    if node >= self.n {
                        return Err(ScheduleError::NodeOutOfRange { step: si, node });
                    }
                }
                if t.src == t.dst {
                    return Err(ScheduleError::SelfTransfer {
                        step: si,
                        node: t.src,
                    });
                }
                if t.range.end > self.elems {
                    return Err(ScheduleError::RangeOutOfBounds {
                        step: si,
                        end: t.range.end,
                        elems: self.elems,
                    });
                }
                writes.push((t.dst, &t.range));
            }
            // Copy-writes must not overlap with any other write to the same
            // node; overlapping ReduceInto is fine (addition commutes).
            for (i, t1) in step.transfers.iter().enumerate() {
                if t1.op != Op::Copy {
                    continue;
                }
                for (j, t2) in step.transfers.iter().enumerate() {
                    if i != j
                        && t1.dst == t2.dst
                        && t1.range.start < t2.range.end
                        && t2.range.start < t1.range.end
                    {
                        return Err(ScheduleError::WriteConflict {
                            step: si,
                            node: t1.dst,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Schedule {
        let mut s = Schedule::new(2, 4, "test");
        s.push_step(Step::new(vec![TransferSpec::new(
            0,
            1,
            0..4,
            Op::ReduceInto,
        )]));
        s.push_step(Step::new(vec![TransferSpec::new(1, 0, 0..4, Op::Copy)]));
        s
    }

    #[test]
    fn valid_schedule_passes() {
        tiny().validate().unwrap();
        assert_eq!(tiny().step_count(), 2);
        assert_eq!(tiny().total_elems_moved(), 8);
    }

    #[test]
    fn lowering_to_bytes() {
        let lowered = tiny().step_transfers(4);
        assert_eq!(lowered.len(), 2);
        assert_eq!(lowered[0], vec![(0, 1, 16)]);
    }

    #[test]
    fn detects_node_out_of_range() {
        let mut s = Schedule::new(2, 4, "bad");
        s.push_step(Step::new(vec![TransferSpec::new(0, 5, 0..1, Op::Copy)]));
        assert_eq!(
            s.validate(),
            Err(ScheduleError::NodeOutOfRange { step: 0, node: 5 })
        );
    }

    #[test]
    fn detects_self_transfer() {
        let mut s = Schedule::new(2, 4, "bad");
        s.push_step(Step::new(vec![TransferSpec::new(1, 1, 0..1, Op::Copy)]));
        assert!(matches!(
            s.validate(),
            Err(ScheduleError::SelfTransfer { .. })
        ));
    }

    #[test]
    fn detects_range_overflow() {
        let mut s = Schedule::new(2, 4, "bad");
        s.push_step(Step::new(vec![TransferSpec::new(0, 1, 2..9, Op::Copy)]));
        assert!(matches!(
            s.validate(),
            Err(ScheduleError::RangeOutOfBounds { .. })
        ));
    }

    #[test]
    fn detects_copy_write_conflicts() {
        let mut s = Schedule::new(3, 4, "bad");
        s.push_step(Step::new(vec![
            TransferSpec::new(0, 2, 0..3, Op::Copy),
            TransferSpec::new(1, 2, 2..4, Op::Copy),
        ]));
        assert!(matches!(
            s.validate(),
            Err(ScheduleError::WriteConflict { step: 0, node: 2 })
        ));
    }

    #[test]
    fn overlapping_reduces_are_allowed() {
        let mut s = Schedule::new(3, 4, "ok");
        s.push_step(Step::new(vec![
            TransferSpec::new(0, 2, 0..4, Op::ReduceInto),
            TransferSpec::new(1, 2, 0..4, Op::ReduceInto),
        ]));
        s.validate().unwrap();
    }

    #[test]
    fn max_send_accounts_per_step() {
        let mut s = Schedule::new(3, 10, "ok");
        s.push_step(Step::new(vec![
            TransferSpec::new(0, 1, 0..4, Op::Copy),
            TransferSpec::new(0, 2, 4..10, Op::Copy),
        ]));
        assert_eq!(s.max_send_per_node_per_step(), 10);
    }

    #[test]
    fn over_members_remaps_every_endpoint() {
        let remapped = tiny().over_members(&[7, 3]);
        assert_eq!(remapped.n, 8);
        assert_eq!(remapped.elems, 4);
        assert_eq!(remapped.steps[0].transfers[0].src, 7);
        assert_eq!(remapped.steps[0].transfers[0].dst, 3);
        assert_eq!(remapped.steps[1].transfers[0].src, 3);
        assert_eq!(remapped.steps[1].transfers[0].dst, 7);
        assert_eq!(remapped.steps[0].transfers[0].range, 0..4);
        remapped.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "member table must cover every rank")]
    fn over_members_rejects_short_tables() {
        let _ = tiny().over_members(&[0]);
    }

    #[test]
    fn zero_node_schedule_invalid() {
        let s = Schedule::new(0, 4, "bad");
        assert_eq!(s.validate(), Err(ScheduleError::NoNodes));
    }
}
