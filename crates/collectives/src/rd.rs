//! Recursive-doubling all-reduce — the paper's **RD** baseline.
//!
//! Latency-optimal: `log2(p)` rounds in which pairs at doubling distances
//! exchange and reduce their *entire* buffers. Non-power-of-two node counts
//! use the standard fixup (Thakur et al.): the first `2r` nodes pre-combine
//! pairwise so `p = 2^k` nodes run the core, and results are copied back to
//! the `r` parked nodes afterwards.

use crate::schedule::{Op, Schedule, Step, TransferSpec};

/// Largest power of two `<= n` (n >= 1).
#[must_use]
pub fn pow2_floor(n: usize) -> usize {
    debug_assert!(n >= 1);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

/// Build the recursive-doubling all-reduce schedule.
#[must_use]
pub fn recursive_doubling(n: usize, elems: usize) -> Schedule {
    let mut sched = Schedule::new(n, elems, format!("recursive-doubling(n={n})"));
    if n < 2 {
        return sched;
    }
    let p = pow2_floor(n);
    let r = n - p;

    // Participant j (0..p) lives at this physical node.
    let node_of = |j: usize| if j < r { 2 * j } else { j + r };

    // Pre-combine: odd nodes of the first 2r hand their data to the even
    // node on their left, which becomes participant j = node/2.
    if r > 0 {
        let mut step = Step::default();
        for j in 0..r {
            step.transfers.push(TransferSpec::new(
                2 * j + 1,
                2 * j,
                0..elems,
                Op::ReduceInto,
            ));
        }
        sched.push_step(step);
    }

    // Core: pairwise full-buffer exchanges at doubling distances.
    let mut dist = 1;
    while dist < p {
        let mut step = Step::default();
        for j in 0..p {
            let partner = j ^ dist;
            // Each ordered pair appears once per direction.
            step.transfers.push(TransferSpec::new(
                node_of(j),
                node_of(partner),
                0..elems,
                Op::ReduceInto,
            ));
        }
        sched.push_step(step);
        dist <<= 1;
    }

    // Post-copy to the parked odd nodes.
    if r > 0 {
        let mut step = Step::default();
        for j in 0..r {
            step.transfers
                .push(TransferSpec::new(2 * j, 2 * j + 1, 0..elems, Op::Copy));
        }
        sched.push_step(step);
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::verify_allreduce;

    #[test]
    fn pow2_floor_values() {
        assert_eq!(pow2_floor(1), 1);
        assert_eq!(pow2_floor(2), 2);
        assert_eq!(pow2_floor(3), 2);
        assert_eq!(pow2_floor(8), 8);
        assert_eq!(pow2_floor(1000), 512);
    }

    #[test]
    fn correct_for_powers_of_two() {
        for n in [2usize, 4, 8, 16, 32] {
            verify_allreduce(&recursive_doubling(n, 12)).unwrap();
        }
    }

    #[test]
    fn correct_for_non_powers_of_two() {
        for n in [3usize, 5, 6, 7, 9, 12, 13, 24, 31] {
            verify_allreduce(&recursive_doubling(n, 10)).unwrap();
        }
    }

    #[test]
    fn step_count_is_log_p_plus_fixup() {
        assert_eq!(recursive_doubling(8, 4).step_count(), 3);
        assert_eq!(recursive_doubling(16, 4).step_count(), 4);
        // n = 12: p = 8, r = 4 -> 3 + 2 steps.
        assert_eq!(recursive_doubling(12, 4).step_count(), 5);
        assert_eq!(recursive_doubling(1, 4).step_count(), 0);
    }

    #[test]
    fn every_core_step_sends_full_buffers() {
        let sched = recursive_doubling(8, 100);
        for step in &sched.steps {
            for t in &step.transfers {
                assert_eq!(t.range, 0..100);
            }
        }
        assert_eq!(sched.max_send_per_node_per_step(), 100);
    }

    #[test]
    fn validates() {
        recursive_doubling(13, 64).validate().unwrap();
    }

    #[test]
    fn trivial_single_node() {
        verify_allreduce(&recursive_doubling(1, 6)).unwrap();
    }
}
