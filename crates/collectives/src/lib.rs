//! # collectives — all-reduce schedules and a correctness-checking executor
//!
//! All-reduce algorithms are expressed as *schedules*: step-synchronous
//! sequences of point-to-point transfers over chunk ranges of each node's
//! buffer ([`schedule::Schedule`]). The same schedule object can be
//!
//! * executed *logically* over real `f64` buffers to prove it computes an
//!   all-reduce ([`executor::execute`], [`executor::verify_allreduce`]);
//! * lowered to per-step byte transfers for a network simulator
//!   ([`schedule::Schedule::step_transfers`]).
//!
//! Implemented algorithms:
//!
//! * [`ring::ring_allreduce`] — Patarasuk–Yuan bandwidth-optimal ring
//!   (reduce-scatter + all-gather, `2(n-1)` steps), the paper's E-Ring and
//!   O-Ring baseline;
//! * [`rd::recursive_doubling`] — latency-optimal recursive doubling
//!   (the paper's RD baseline), with the standard non-power-of-two fixup;
//! * [`halving_doubling::halving_doubling`] — Rabenseifner's recursive
//!   halving reduce-scatter + recursive doubling all-gather;
//! * [`tree::binomial_tree`] — binomial-tree reduce + broadcast.
//!
//! ```
//! use collectives::prelude::*;
//!
//! let sched = ring_allreduce(8, 64);
//! assert_eq!(sched.step_count(), 2 * (8 - 1));
//! // Executing the schedule over real buffers proves it is an all-reduce.
//! verify_allreduce(&sched).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod chunks;
pub mod executor;
pub mod halving_doubling;
pub mod primitives;
pub mod rd;
pub mod ring;
pub mod schedule;
pub mod tree;

/// Common re-exports.
pub mod prelude {
    pub use crate::analysis::{analyze, ScheduleAnalysis};
    pub use crate::chunks::chunk_range;
    pub use crate::executor::{execute, verify_allreduce};
    pub use crate::halving_doubling::halving_doubling;
    pub use crate::primitives::{
        concat, ring_allgather, ring_reduce_scatter, tree_broadcast, tree_reduce, verify_broadcast,
        verify_reduce, verify_reduce_scatter,
    };
    pub use crate::rd::recursive_doubling;
    pub use crate::ring::ring_allreduce;
    pub use crate::schedule::{Op, Schedule, ScheduleError, Step, TransferSpec};
    pub use crate::tree::binomial_tree;
}

pub use chunks::chunk_range;
pub use executor::{execute, verify_allreduce};
pub use schedule::{Op, Schedule, ScheduleError, Step, TransferSpec};
