//! Even chunking of a buffer into `n` contiguous ranges.

use std::ops::Range;

/// The `i`-th of `n` near-equal chunks of `0..elems`.
///
/// The first `elems % n` chunks get one extra element, so sizes differ by at
/// most one and the union of all chunks is exactly `0..elems`.
///
/// ```
/// use collectives::chunks::chunk_range;
///
/// assert_eq!(chunk_range(10, 3, 0), 0..4);
/// assert_eq!(chunk_range(10, 3, 1), 4..7);
/// assert_eq!(chunk_range(10, 3, 2), 7..10);
/// ```
#[must_use]
pub fn chunk_range(elems: usize, n: usize, i: usize) -> Range<usize> {
    assert!(n > 0, "cannot chunk into zero pieces");
    assert!(i < n, "chunk index {i} out of {n}");
    let base = elems / n;
    let extra = elems % n;
    let start = i * base + i.min(extra);
    let len = base + usize::from(i < extra);
    start..start + len
}

/// Sizes of all `n` chunks of `elems` elements.
#[must_use]
pub fn chunk_sizes(elems: usize, n: usize) -> Vec<usize> {
    (0..n).map(|i| chunk_range(elems, n, i).len()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_partition_the_buffer() {
        for elems in [0usize, 1, 7, 64, 1000, 12345] {
            for n in [1usize, 2, 3, 8, 17] {
                let mut covered = 0;
                for i in 0..n {
                    let r = chunk_range(elems, n, i);
                    assert_eq!(r.start, covered, "gap before chunk {i}");
                    covered = r.end;
                }
                assert_eq!(covered, elems);
            }
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        for elems in [5usize, 100, 1001] {
            for n in [2usize, 3, 7, 16] {
                let sizes = chunk_sizes(elems, n);
                let max = *sizes.iter().max().unwrap();
                let min = *sizes.iter().min().unwrap();
                assert!(max - min <= 1);
                assert_eq!(sizes.iter().sum::<usize>(), elems);
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero pieces")]
    fn zero_chunks_panics() {
        let _ = chunk_range(10, 0, 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn oob_chunk_panics() {
        let _ = chunk_range(10, 2, 2);
    }
}
