//! Bandwidth-optimal ring all-reduce (Patarasuk & Yuan, JPDC'09).
//!
//! The buffer is split into `n` chunks. A reduce-scatter phase of `n-1`
//! steps leaves node `i` with the fully reduced chunk `(i+1) mod n`; an
//! all-gather phase of another `n-1` steps circulates the reduced chunks.
//! Every step sends `S/n` elements to the clockwise neighbour — this is the
//! paper's **E-Ring** baseline on the electrical network and **O-Ring**
//! (one wavelength per step) on the optical ring.

use crate::chunks::chunk_range;
use crate::schedule::{Op, Schedule, Step, TransferSpec};

/// Build the ring all-reduce schedule for `n` nodes and `elems` elements.
///
/// For `n == 1` the schedule is empty (a single node already holds the sum).
#[must_use]
pub fn ring_allreduce(n: usize, elems: usize) -> Schedule {
    let mut sched = Schedule::new(n, elems, format!("ring-allreduce(n={n})"));
    if n < 2 {
        return sched;
    }
    // Reduce-scatter: at step k node i forwards chunk (i - k) mod n.
    for k in 0..n - 1 {
        let mut step = Step::default();
        for i in 0..n {
            let chunk = (i + n - (k % n)) % n;
            let range = chunk_range(elems, n, chunk);
            if range.is_empty() {
                continue; // More chunks than elements: some are empty.
            }
            step.transfers
                .push(TransferSpec::new(i, (i + 1) % n, range, Op::ReduceInto));
        }
        sched.push_step(step);
    }
    // All-gather: at step k node i forwards chunk (i + 1 - k) mod n.
    for k in 0..n - 1 {
        let mut step = Step::default();
        for i in 0..n {
            let chunk = (i + 1 + n - (k % n)) % n;
            let range = chunk_range(elems, n, chunk);
            if range.is_empty() {
                continue;
            }
            step.transfers
                .push(TransferSpec::new(i, (i + 1) % n, range, Op::Copy));
        }
        sched.push_step(step);
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::verify_allreduce;

    #[test]
    fn correct_for_small_n() {
        for n in 1..=9 {
            verify_allreduce(&ring_allreduce(n, 24)).unwrap();
        }
    }

    #[test]
    fn correct_when_elems_not_divisible() {
        verify_allreduce(&ring_allreduce(4, 10)).unwrap();
        verify_allreduce(&ring_allreduce(7, 5)).unwrap(); // chunks > elems for some
        verify_allreduce(&ring_allreduce(5, 1)).unwrap();
    }

    #[test]
    fn has_2n_minus_2_steps() {
        for n in 2..=8 {
            assert_eq!(ring_allreduce(n, 64).step_count(), 2 * (n - 1));
        }
        assert_eq!(ring_allreduce(1, 64).step_count(), 0);
    }

    #[test]
    fn moves_2_s_bytes_per_node_asymptotically() {
        let n = 8;
        let elems = 800;
        let sched = ring_allreduce(n, elems);
        // Total moved = 2(n-1) * n * (elems/n) = 2(n-1)*elems.
        assert_eq!(sched.total_elems_moved(), 2 * (n - 1) * elems);
        // Per-node per-step send is one chunk.
        assert_eq!(sched.max_send_per_node_per_step(), elems / n);
    }

    #[test]
    fn all_transfers_are_neighbor_hops() {
        let n = 6;
        let sched = ring_allreduce(n, 60);
        for step in &sched.steps {
            for t in &step.transfers {
                assert_eq!(t.dst, (t.src + 1) % n);
            }
        }
    }

    #[test]
    fn validates() {
        ring_allreduce(16, 128).validate().unwrap();
    }
}
