//! Logical executor: applies a schedule to real buffers.
//!
//! Semantics are message-passing with *step snapshots*: every transfer of a
//! step reads the sender's buffer as it was at the **start** of the step,
//! so intra-step ordering cannot matter (this is what a barrier-synchronous
//! network gives you). Receiver side applies [`Op::ReduceInto`] (add) or
//! [`Op::Copy`] (overwrite).
//!
//! ```
//! use collectives::executor::execute;
//! use collectives::ring::ring_allreduce;
//!
//! let inputs = vec![vec![1.0, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]];
//! let outputs = execute(&ring_allreduce(3, 2), &inputs);
//! assert!(outputs.iter().all(|buf| buf == &vec![111.0, 222.0]));
//! ```

use crate::schedule::{Op, Schedule, ScheduleError};

/// Execute `schedule` starting from `inputs` (one buffer per node) and
/// return the final buffers.
///
/// # Panics
/// Panics if `inputs` does not match the schedule's `n`/`elems` — callers
/// should `validate()` first; this is an executor for tests and verification,
/// not a hot path.
#[must_use]
pub fn execute(schedule: &Schedule, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
    assert_eq!(inputs.len(), schedule.n, "one input buffer per node");
    for buf in inputs {
        assert_eq!(buf.len(), schedule.elems, "buffer length mismatch");
    }
    let mut bufs: Vec<Vec<f64>> = inputs.to_vec();
    for step in &schedule.steps {
        // Snapshot senders to give barrier semantics.
        let snapshot = bufs.clone();
        for t in &step.transfers {
            let payload = &snapshot[t.src][t.range.clone()];
            let dst = &mut bufs[t.dst][t.range.clone()];
            match t.op {
                Op::ReduceInto => {
                    for (d, s) in dst.iter_mut().zip(payload) {
                        *d += s;
                    }
                }
                Op::Copy => dst.copy_from_slice(payload),
            }
        }
    }
    bufs
}

/// Validate a schedule and check that it implements **all-reduce (sum)**:
/// executed on distinguishable inputs, every node must end with the
/// element-wise sum of all inputs.
///
/// Inputs are chosen so each (node, element) contribution is unique
/// (`node * elems + idx + 1`), which catches duplicated as well as missing
/// contributions.
pub fn verify_allreduce(schedule: &Schedule) -> Result<(), String> {
    schedule
        .validate()
        .map_err(|e: ScheduleError| e.to_string())?;
    let n = schedule.n;
    let elems = schedule.elems;
    let inputs: Vec<Vec<f64>> = (0..n)
        .map(|node| (0..elems).map(|i| (node * elems + i + 1) as f64).collect())
        .collect();
    let expected: Vec<f64> = (0..elems)
        .map(|i| (0..n).map(|node| (node * elems + i + 1) as f64).sum())
        .collect();
    let outputs = execute(schedule, &inputs);
    for (node, out) in outputs.iter().enumerate() {
        for (i, (&got, &want)) in out.iter().zip(&expected).enumerate() {
            // Sums of integers below 2^53 are exact in f64.
            if got != want {
                return Err(format!(
                    "schedule '{}' is not an all-reduce: node {node} elem {i}: got {got}, want {want}",
                    schedule.name
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Step, TransferSpec};

    /// Hand-written 2-node all-reduce: exchange + add, in two steps.
    fn two_node_allreduce() -> Schedule {
        let mut s = Schedule::new(2, 3, "two-node");
        s.push_step(Step::new(vec![TransferSpec::new(
            0,
            1,
            0..3,
            Op::ReduceInto,
        )]));
        s.push_step(Step::new(vec![TransferSpec::new(1, 0, 0..3, Op::Copy)]));
        s
    }

    #[test]
    fn executes_reduce_then_copy() {
        let s = two_node_allreduce();
        let out = execute(&s, &[vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]]);
        assert_eq!(out[0], vec![11.0, 22.0, 33.0]);
        assert_eq!(out[1], vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn verify_accepts_correct_schedule() {
        verify_allreduce(&two_node_allreduce()).unwrap();
    }

    #[test]
    fn verify_rejects_incomplete_schedule() {
        // Only the reduce half: node 0 never learns the sum.
        let mut s = Schedule::new(2, 3, "broken");
        s.push_step(Step::new(vec![TransferSpec::new(
            0,
            1,
            0..3,
            Op::ReduceInto,
        )]));
        let err = verify_allreduce(&s).unwrap_err();
        assert!(err.contains("not an all-reduce"), "{err}");
    }

    #[test]
    fn verify_rejects_double_count() {
        // Node 0 sends twice across two steps; node 1 double-adds.
        let mut s = Schedule::new(2, 1, "dup");
        s.push_step(Step::new(vec![TransferSpec::new(
            0,
            1,
            0..1,
            Op::ReduceInto,
        )]));
        s.push_step(Step::new(vec![TransferSpec::new(
            0,
            1,
            0..1,
            Op::ReduceInto,
        )]));
        s.push_step(Step::new(vec![TransferSpec::new(1, 0, 0..1, Op::Copy)]));
        assert!(verify_allreduce(&s).is_err());
    }

    #[test]
    fn snapshot_semantics_within_a_step() {
        // Nodes 0 and 1 swap-and-add simultaneously; both must read the
        // other's PRE-step value.
        let mut s = Schedule::new(2, 1, "swap");
        s.push_step(Step::new(vec![
            TransferSpec::new(0, 1, 0..1, Op::ReduceInto),
            TransferSpec::new(1, 0, 0..1, Op::ReduceInto),
        ]));
        let out = execute(&s, &[vec![1.0], vec![2.0]]);
        assert_eq!(out[0], vec![3.0]);
        assert_eq!(out[1], vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "one input buffer per node")]
    fn wrong_input_count_panics() {
        let _ = execute(&two_node_allreduce(), &[vec![0.0; 3]]);
    }

    #[test]
    fn verify_catches_invalid_structure() {
        let mut s = Schedule::new(2, 1, "oob");
        s.push_step(Step::new(vec![TransferSpec::new(0, 7, 0..1, Op::Copy)]));
        assert!(verify_allreduce(&s).is_err());
    }
}
