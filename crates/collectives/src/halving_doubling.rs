//! Rabenseifner's halving-doubling all-reduce.
//!
//! Recursive *halving* reduce-scatter (exchange shrinking halves at
//! growing distances... actually shrinking distances) followed by recursive
//! *doubling* all-gather. Bandwidth-optimal like the ring but with only
//! `2 log2 p` steps; included as an extension baseline beyond the paper's
//! E-Ring/RD pair. Non-power-of-two counts use the same pre/post fixup as
//! recursive doubling.

use crate::rd::pow2_floor;
use crate::schedule::{Op, Schedule, Step, TransferSpec};
use std::ops::Range;

/// Build the halving-doubling all-reduce schedule.
#[must_use]
pub fn halving_doubling(n: usize, elems: usize) -> Schedule {
    let mut sched = Schedule::new(n, elems, format!("halving-doubling(n={n})"));
    if n < 2 {
        return sched;
    }
    let p = pow2_floor(n);
    let r = n - p;
    let node_of = |j: usize| if j < r { 2 * j } else { j + r };

    if r > 0 {
        let mut step = Step::default();
        for j in 0..r {
            step.transfers.push(TransferSpec::new(
                2 * j + 1,
                2 * j,
                0..elems,
                Op::ReduceInto,
            ));
        }
        sched.push_step(step);
    }

    // Recursive halving reduce-scatter. Every participant tracks the range
    // it is still responsible for; at distance `dist` it keeps the half
    // matching its `dist` bit and sends the other half.
    let mut ranges: Vec<Range<usize>> = vec![0..elems; p];
    let mut dist = p / 2;
    let mut halving_order = Vec::new(); // remember distances for the gather
    while dist >= 1 {
        let mut step = Step::default();
        #[allow(clippy::needless_range_loop)] // j is the participant id, not just an index
        for j in 0..p {
            let partner = j ^ dist;
            let my = ranges[j].clone();
            let mid = my.start + my.len() / 2;
            let (keep, send) = if j & dist == 0 {
                (my.start..mid, mid..my.end)
            } else {
                (mid..my.end, my.start..mid)
            };
            if !send.is_empty() {
                step.transfers.push(TransferSpec::new(
                    node_of(j),
                    node_of(partner),
                    send,
                    Op::ReduceInto,
                ));
            }
            ranges[j] = keep;
        }
        sched.push_step(step);
        halving_order.push(dist);
        dist /= 2;
    }

    // Recursive doubling all-gather: retrace distances in reverse, sending
    // the currently owned (fully reduced) range and merging with the
    // partner's adjacent range.
    for &dist in halving_order.iter().rev() {
        let mut step = Step::default();
        let snapshot = ranges.clone();
        #[allow(clippy::needless_range_loop)] // j is the participant id, not just an index
        for j in 0..p {
            let partner = j ^ dist;
            let send = snapshot[j].clone();
            if !send.is_empty() {
                step.transfers.push(TransferSpec::new(
                    node_of(j),
                    node_of(partner),
                    send,
                    Op::Copy,
                ));
            }
            let other = snapshot[partner].clone();
            ranges[j] = ranges[j].start.min(other.start)..ranges[j].end.max(other.end);
        }
        sched.push_step(step);
    }

    if r > 0 {
        let mut step = Step::default();
        for j in 0..r {
            step.transfers
                .push(TransferSpec::new(2 * j, 2 * j + 1, 0..elems, Op::Copy));
        }
        sched.push_step(step);
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::verify_allreduce;

    #[test]
    fn correct_for_powers_of_two() {
        for n in [2usize, 4, 8, 16, 32] {
            verify_allreduce(&halving_doubling(n, 32)).unwrap();
        }
    }

    #[test]
    fn correct_for_non_powers_of_two() {
        for n in [3usize, 5, 6, 7, 11, 20] {
            verify_allreduce(&halving_doubling(n, 16)).unwrap();
        }
    }

    #[test]
    fn correct_with_odd_element_counts() {
        for elems in [1usize, 3, 7, 17, 33] {
            verify_allreduce(&halving_doubling(8, elems)).unwrap();
        }
    }

    #[test]
    fn step_count_is_2_log_p_plus_fixup() {
        assert_eq!(halving_doubling(8, 64).step_count(), 6);
        assert_eq!(halving_doubling(16, 64).step_count(), 8);
        assert_eq!(halving_doubling(12, 64).step_count(), 2 + 6);
    }

    #[test]
    fn moves_less_than_rd() {
        let hd = halving_doubling(16, 1600).total_elems_moved();
        let rd = crate::rd::recursive_doubling(16, 1600).total_elems_moved();
        assert!(
            hd < rd / 2,
            "halving-doubling should move far less: {hd} vs {rd}"
        );
    }

    #[test]
    fn validates() {
        halving_doubling(16, 100).validate().unwrap();
    }
}
