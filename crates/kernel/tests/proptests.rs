//! Property tests for the event kernel: pop order must equal a stable sort
//! by `(time, seq)`, and batch boundaries must equal bit-equality grouping.

use proptest::prelude::*;
use wrht_kernel::EventKernel;

/// A small pool of timestamps with deliberate ulp-neighbors so random event
/// sets exercise both exact ties and near-ties.
fn time_pool() -> Vec<f64> {
    let near = 0.1_f64 + 0.2_f64; // one ulp above 0.3
    vec![0.0, 0.3, near, 1.0, 1.5, 2.0, 2.0 + f64::EPSILON, 7.25]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pop_order_is_stable_sort_by_time_then_seq(picks in proptest::collection::vec(0usize..8, 1..64)) {
        let pool = time_pool();
        let mut kernel = EventKernel::new();
        let mut reference: Vec<(f64, usize)> = Vec::new();
        for (insert_idx, &p) in picks.iter().enumerate() {
            let t = pool[p];
            kernel.schedule_at(t, insert_idx).unwrap();
            reference.push((t, insert_idx));
        }
        // Stable sort on time alone: insertion order breaks ties, which is
        // exactly the (time, seq) contract.
        reference.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut got = Vec::new();
        let mut prev = f64::NEG_INFINITY;
        while let Some((t, payload)) = kernel.pop() {
            prop_assert!(t >= prev, "clock must be monotone: {} < {}", t, prev);
            prev = t;
            got.push((t, payload));
        }
        prop_assert_eq!(got.len(), reference.len());
        for (g, r) in got.iter().zip(reference.iter()) {
            prop_assert_eq!(g.0.to_bits(), r.0.to_bits());
            prop_assert_eq!(g.1, r.1);
        }
    }

    #[test]
    fn pop_batch_boundaries_match_bit_equality(picks in proptest::collection::vec(0usize..8, 1..64)) {
        let pool = time_pool();
        let mut kernel = EventKernel::new();
        for (insert_idx, &p) in picks.iter().enumerate() {
            kernel.schedule_at(pool[p], insert_idx).unwrap();
        }
        // Reference: group the stable-sorted events by bit-identical time.
        let mut reference: Vec<(u64, usize)> =
            picks.iter().enumerate().map(|(i, &p)| (pool[p].to_bits(), i)).collect();
        reference.sort_by(|a, b| {
            f64::from_bits(a.0).partial_cmp(&f64::from_bits(b.0)).unwrap()
        });
        let mut batches: Vec<(u64, Vec<usize>)> = Vec::new();
        let mut out = Vec::new();
        while let Some(t) = kernel.pop_batch(&mut out) {
            batches.push((t.to_bits(), out.clone()));
            out.clear();
        }
        // Flattened batches == stable sort; batch boundaries == bit changes.
        let flat: Vec<(u64, usize)> = batches
            .iter()
            .flat_map(|(bits, payloads)| payloads.iter().map(move |&p| (*bits, p)))
            .collect();
        prop_assert_eq!(flat, reference);
        for w in batches.windows(2) {
            prop_assert!(w[0].0 != w[1].0, "adjacent batches must differ in time bits");
        }
        let processed: usize = batches.iter().map(|(_, p)| p.len()).sum();
        prop_assert_eq!(processed, picks.len());
        prop_assert_eq!(kernel.events_processed(), picks.len() as u64);
    }

    #[test]
    fn canceled_events_never_fire(
        picks in proptest::collection::vec((0usize..8, proptest::bool::ANY), 1..48),
    ) {
        let pool = time_pool();
        let mut kernel = EventKernel::new();
        let mut live = Vec::new();
        let mut ids = Vec::new();
        for (insert_idx, &(p, cancel)) in picks.iter().enumerate() {
            let id = kernel.schedule_at(pool[p], insert_idx).unwrap();
            ids.push((id, cancel));
            if !cancel {
                live.push((pool[p], insert_idx));
            }
        }
        for &(id, cancel) in &ids {
            if cancel {
                prop_assert!(kernel.cancel(id).is_some());
                prop_assert!(kernel.cancel(id).is_none());
            }
        }
        live.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut got = Vec::new();
        while let Some((t, payload)) = kernel.pop() {
            got.push((t, payload));
        }
        prop_assert_eq!(got.len(), live.len());
        for (g, r) in got.iter().zip(live.iter()) {
            prop_assert_eq!(g.0.to_bits(), r.0.to_bits());
            prop_assert_eq!(g.1, r.1);
        }
    }
}
