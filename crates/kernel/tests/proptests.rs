//! Property tests for the event kernel: pop order must equal a stable sort
//! by `(time, seq)`, and batch boundaries must equal bit-equality grouping.

use proptest::prelude::*;
use wrht_kernel::EventKernel;

/// The two payload families the simulators multiplex through one kernel:
/// transfer completions and fault-script events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Payload {
    Completion(usize),
    Fault(usize),
}

/// A small pool of timestamps with deliberate ulp-neighbors so random event
/// sets exercise both exact ties and near-ties.
fn time_pool() -> Vec<f64> {
    let near = 0.1_f64 + 0.2_f64; // one ulp above 0.3
    vec![0.0, 0.3, near, 1.0, 1.5, 2.0, 2.0 + f64::EPSILON, 7.25]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pop_order_is_stable_sort_by_time_then_seq(picks in proptest::collection::vec(0usize..8, 1..64)) {
        let pool = time_pool();
        let mut kernel = EventKernel::new();
        let mut reference: Vec<(f64, usize)> = Vec::new();
        for (insert_idx, &p) in picks.iter().enumerate() {
            let t = pool[p];
            kernel.schedule_at(t, insert_idx).unwrap();
            reference.push((t, insert_idx));
        }
        // Stable sort on time alone: insertion order breaks ties, which is
        // exactly the (time, seq) contract.
        reference.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut got = Vec::new();
        let mut prev = f64::NEG_INFINITY;
        while let Some((t, payload)) = kernel.pop() {
            prop_assert!(t >= prev, "clock must be monotone: {} < {}", t, prev);
            prev = t;
            got.push((t, payload));
        }
        prop_assert_eq!(got.len(), reference.len());
        for (g, r) in got.iter().zip(reference.iter()) {
            prop_assert_eq!(g.0.to_bits(), r.0.to_bits());
            prop_assert_eq!(g.1, r.1);
        }
    }

    #[test]
    fn pop_batch_boundaries_match_bit_equality(picks in proptest::collection::vec(0usize..8, 1..64)) {
        let pool = time_pool();
        let mut kernel = EventKernel::new();
        for (insert_idx, &p) in picks.iter().enumerate() {
            kernel.schedule_at(pool[p], insert_idx).unwrap();
        }
        // Reference: group the stable-sorted events by bit-identical time.
        let mut reference: Vec<(u64, usize)> =
            picks.iter().enumerate().map(|(i, &p)| (pool[p].to_bits(), i)).collect();
        reference.sort_by(|a, b| {
            f64::from_bits(a.0).partial_cmp(&f64::from_bits(b.0)).unwrap()
        });
        let mut batches: Vec<(u64, Vec<usize>)> = Vec::new();
        let mut out = Vec::new();
        while let Some(t) = kernel.pop_batch(&mut out) {
            batches.push((t.to_bits(), out.clone()));
            out.clear();
        }
        // Flattened batches == stable sort; batch boundaries == bit changes.
        let flat: Vec<(u64, usize)> = batches
            .iter()
            .flat_map(|(bits, payloads)| payloads.iter().map(move |&p| (*bits, p)))
            .collect();
        prop_assert_eq!(flat, reference);
        for w in batches.windows(2) {
            prop_assert!(w[0].0 != w[1].0, "adjacent batches must differ in time bits");
        }
        let processed: usize = batches.iter().map(|(_, p)| p.len()).sum();
        prop_assert_eq!(processed, picks.len());
        prop_assert_eq!(kernel.events_processed(), picks.len() as u64);
    }

    #[test]
    fn canceled_events_never_fire(
        picks in proptest::collection::vec((0usize..8, proptest::bool::ANY), 1..48),
    ) {
        let pool = time_pool();
        let mut kernel = EventKernel::new();
        let mut live = Vec::new();
        let mut ids = Vec::new();
        for (insert_idx, &(p, cancel)) in picks.iter().enumerate() {
            let id = kernel.schedule_at(pool[p], insert_idx).unwrap();
            ids.push((id, cancel));
            if !cancel {
                live.push((pool[p], insert_idx));
            }
        }
        for &(id, cancel) in &ids {
            if cancel {
                prop_assert!(kernel.cancel(id).is_some());
                prop_assert!(kernel.cancel(id).is_none());
            }
        }
        live.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut got = Vec::new();
        while let Some((t, payload)) = kernel.pop() {
            got.push((t, payload));
        }
        prop_assert_eq!(got.len(), live.len());
        for (g, r) in got.iter().zip(live.iter()) {
            prop_assert_eq!(g.0.to_bits(), r.0.to_bits());
            prop_assert_eq!(g.1, r.1);
        }
    }

    /// Mixed-payload cancel-under-fault: completions and fault events share
    /// one queue, and each delivered fault cancels a deterministic subset of
    /// the completions still pending (exactly what a wavelength loss does to
    /// in-flight transfers). The delivered sequence must match a reference
    /// replay of the same rules, and `events_processed` must count only
    /// delivered events.
    #[test]
    fn mid_drain_fault_cancels_never_deliver_and_keep_order(
        picks in proptest::collection::vec((0usize..8, proptest::bool::ANY), 1..48),
    ) {
        let pool = time_pool();
        let mut kernel = EventKernel::new();
        let mut ids = Vec::new();
        let mut schedule = Vec::new();
        for (insert_idx, &(p, is_fault)) in picks.iter().enumerate() {
            let payload = if is_fault {
                Payload::Fault(insert_idx)
            } else {
                Payload::Completion(insert_idx)
            };
            ids.push(kernel.schedule_at(pool[p], payload).unwrap());
            schedule.push((pool[p], payload));
        }

        // Reference replay: stable sort, then walk it applying the cancel
        // rule — a fault with index f kills every *later-delivered*
        // completion whose index is congruent to f modulo 5.
        let mut order = schedule.clone();
        order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut dead = vec![false; schedule.len()];
        let mut expected = Vec::new();
        for pos in 0..order.len() {
            let (t, payload) = order[pos];
            let idx = match payload {
                Payload::Completion(i) | Payload::Fault(i) => i,
            };
            if dead[idx] {
                continue;
            }
            expected.push((t, payload));
            if let Payload::Fault(f) = payload {
                for &(_, later) in &order[pos + 1..] {
                    if let Payload::Completion(c) = later {
                        if c % 5 == f % 5 {
                            dead[c] = true;
                        }
                    }
                }
            }
        }

        // Kernel run: apply the same rule with O(1) lazy cancels mid-drain.
        let mut got = Vec::new();
        while let Some((t, payload)) = kernel.pop() {
            got.push((t, payload));
            if let Payload::Fault(f) = payload {
                for (c, &(_, is_fault)) in picks.iter().enumerate() {
                    if !is_fault && c % 5 == f % 5 {
                        // Canceling an already-delivered or already-canceled
                        // event is a no-op by contract.
                        let _ = kernel.cancel(ids[c]);
                    }
                }
            }
        }
        prop_assert_eq!(got.len(), expected.len());
        for (g, r) in got.iter().zip(expected.iter()) {
            prop_assert_eq!(g.0.to_bits(), r.0.to_bits());
            prop_assert_eq!(g.1, r.1);
        }
        prop_assert_eq!(kernel.events_processed(), expected.len() as u64);
    }

    /// Same-instant coalescing contract: completions and faults scheduled at
    /// a bit-identical instant arrive in ONE batch, ordered by insertion
    /// sequence. The simulators do NOT rely on that intra-batch order for
    /// fault semantics — they two-pass each batch so completions always
    /// apply before same-instant faults — but the order itself must be
    /// deterministic so replays coalesce identically.
    #[test]
    fn same_instant_faults_and_completions_coalesce_in_seq_order(
        kinds in proptest::collection::vec(proptest::bool::ANY, 1..32),
        t_idx in 0usize..8,
    ) {
        let t = time_pool()[t_idx];
        let mut kernel = EventKernel::new();
        let mut inserted = Vec::new();
        for (i, &is_fault) in kinds.iter().enumerate() {
            let payload = if is_fault {
                Payload::Fault(i)
            } else {
                Payload::Completion(i)
            };
            kernel.schedule_at(t, payload).unwrap();
            inserted.push(payload);
        }
        let mut batch = Vec::new();
        let now = kernel.pop_batch(&mut batch).unwrap();
        prop_assert_eq!(now.to_bits(), t.to_bits());
        prop_assert_eq!(batch, inserted);
        let mut rest = Vec::new();
        prop_assert!(kernel.pop_batch(&mut rest).is_none());
        prop_assert!(rest.is_empty());
    }
}
