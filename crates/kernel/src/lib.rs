//! Shared discrete-event kernel for the Wrht simulators.
//!
//! Both substrate simulators — the optical grant loop in `optical-sim` and
//! the electrical incremental max-min engine in `electrical-sim` — are
//! event-ordered: they repeatedly ask "what happens next?" and advance a
//! simulated clock to that instant. Before this crate each simulator
//! hand-rolled that machinery (a private `EventQueue` on the optical side, an
//! inline next-event scan on the electrical side), which duplicated the
//! subtle parts: tie-breaking between simultaneous events, same-instant
//! coalescing, and monotonic-clock enforcement. This crate owns those
//! decisions once.
//!
//! # Design
//!
//! - **Typed payloads.** [`EventKernel<T>`] is generic over the event payload;
//!   each simulator brings its own event enum and the kernel never inspects
//!   it.
//! - **Monotonic clock.** [`SimClock`] only moves forward. Scheduling an
//!   event before the current time is a typed error
//!   ([`KernelError::PastEvent`]) instead of a silent clock rewind.
//! - **Stable FIFO tie-breaking.** Events at the same timestamp pop in
//!   insertion order via per-event sequence numbers, so runs never depend on
//!   `BinaryHeap`'s unspecified tie order.
//! - **Batched same-instant extraction.** [`EventKernel::pop_batch`] returns
//!   every event scheduled at the next instant in one call, replacing ad-hoc
//!   `peek_time() == Some(now)` loops. The instant-equality contract is
//!   defined once, here: two events coalesce if and only if their scheduled
//!   `f64` times are **bit-identical** (after `-0.0` is normalized to `+0.0`
//!   at scheduling time). Times one ulp apart are distinct instants and pop
//!   in separate batches — callers that want mathematically-equal times to
//!   coalesce must compute them through the same float expression.
//! - **Slab handles on hot paths.** Payloads live in a generational
//!   [`Slab`]; the heap sifts small `(time, seq, key)` entries and
//!   cancellation is an O(1) slab removal plus lazy heap deletion. [`SlabKey`]
//!   is also exported for simulators that want arena-style entity storage
//!   without hash maps.
//!
//! # Who owns the clock
//!
//! The kernel does. Simulators read it via [`EventKernel::now`] and advance
//! it only by popping events; there is no `set_time`. Policy decisions that
//! are *not* time ordering — e.g. the electrical engine's `EPS`-tolerant
//! release promotion — stay in the simulators, layered on top of the kernel's
//! exact-time semantics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fault;
mod kernel;
mod slab;

pub use fault::{FaultError, FaultEvent, FaultKind, FaultLimits, FaultPolicy, FaultScript};
pub use kernel::{EventId, EventKernel, KernelError, SimClock};
pub use slab::{Slab, SlabKey};
