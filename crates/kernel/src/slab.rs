//! A minimal generational slab: dense, reusable storage with stable handles.
//!
//! Hot simulation paths want integer handles instead of hash maps: a
//! [`SlabKey`] is two machine words, lookups are a bounds check plus a
//! generation compare, and freed slots are recycled in LIFO order so the
//! backing vector stays compact. The generation counter makes stale handles
//! (keys kept across a `remove`) miss instead of aliasing a new occupant.

/// Handle to a slot in a [`Slab`].
///
/// Keys are `Copy` and cheap to store in event queues or entity tables. A key
/// becomes stale once its slot is removed; stale keys return `None` from all
/// accessors rather than observing a recycled slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlabKey {
    index: u32,
    generation: u32,
}

impl SlabKey {
    /// Raw slot index (useful only for diagnostics; do not fabricate keys).
    #[must_use]
    pub fn index(self) -> u32 {
        self.index
    }
}

#[derive(Debug, Clone)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// Dense generational arena keyed by [`SlabKey`].
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Empty slab.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Empty slab with room for `cap` values before reallocating.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no live values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `value`, returning its handle.
    ///
    /// # Panics
    /// Panics if more than `u32::MAX` slots would be required.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none(), "free-list slot must be vacant");
            slot.value = Some(value);
            SlabKey {
                index,
                generation: slot.generation,
            }
        } else {
            // wrht-analyze: allow(r5, reason = "4 billion live events exceeds any feasible simulation; a typed error here would poison every schedule call site for an impossible case")
            let index = u32::try_from(self.slots.len()).expect("slab capacity exceeds u32::MAX");
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            SlabKey {
                index,
                generation: 0,
            }
        }
    }

    /// Remove and return the value behind `key`, or `None` if `key` is stale.
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let slot = self.slots.get_mut(key.index as usize)?;
        if slot.generation != key.generation {
            return None;
        }
        let value = slot.value.take()?;
        // Bump the generation on removal so outstanding copies of `key` go
        // stale; wrapping keeps the slot usable even after u32::MAX cycles.
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(key.index);
        self.len -= 1;
        Some(value)
    }

    /// Borrow the value behind `key`, or `None` if `key` is stale.
    #[must_use]
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        let slot = self.slots.get(key.index as usize)?;
        if slot.generation != key.generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Mutably borrow the value behind `key`, or `None` if `key` is stale.
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        let slot = self.slots.get_mut(key.index as usize)?;
        if slot.generation != key.generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// Whether `key` currently refers to a live value.
    #[must_use]
    pub fn contains(&self, key: SlabKey) -> bool {
        self.get(key).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.remove(b), Some("b"));
        assert!(slab.is_empty());
    }

    #[test]
    fn stale_keys_do_not_alias_recycled_slots() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        let b = slab.insert(2);
        // Slot is recycled (same index), but the stale key must miss.
        assert_eq!(a.index(), b.index());
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.get(b), Some(&2));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut slab = Slab::new();
        let k = slab.insert(10);
        *slab.get_mut(k).unwrap() += 5;
        assert_eq!(slab.remove(k), Some(15));
    }

    #[test]
    fn free_slots_are_reused_before_growing() {
        let mut slab = Slab::with_capacity(4);
        let keys: Vec<_> = (0..4).map(|i| slab.insert(i)).collect();
        for &k in &keys {
            slab.remove(k);
        }
        for i in 0..4 {
            let k = slab.insert(i);
            assert!(k.index() < 4, "expected recycled slot, got {}", k.index());
        }
        assert_eq!(slab.len(), 4);
    }
}
