//! The event kernel: monotonic clock, typed scheduling errors, and a
//! deterministic future-event list with batched same-instant extraction.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::slab::{Slab, SlabKey};

/// Error returned when a schedule request violates the kernel's time contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelError {
    /// The requested time was NaN or infinite.
    NonFiniteTime {
        /// The offending timestamp.
        time: f64,
    },
    /// The requested time precedes the current clock; honoring it would
    /// rewind simulated time.
    PastEvent {
        /// The offending timestamp.
        time: f64,
        /// The clock value at the time of the request.
        now: f64,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonFiniteTime { time } => {
                write!(f, "event time must be finite, got {time}")
            }
            Self::PastEvent { time, now } => {
                write!(f, "cannot schedule into the past: {time} < {now}")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// Monotonic simulated clock.
///
/// The clock starts at zero and only moves forward; [`SimClock::advance_to`]
/// rejects non-finite targets and targets earlier than the current time with
/// a typed error instead of silently rewinding.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimClock {
    now: f64,
}

impl SimClock {
    /// New clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self { now: 0.0 }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance the clock to `time`.
    ///
    /// # Errors
    /// [`KernelError::NonFiniteTime`] if `time` is NaN or infinite;
    /// [`KernelError::PastEvent`] if `time` precedes the current time.
    pub fn advance_to(&mut self, time: f64) -> Result<(), KernelError> {
        let time = check_time(time, self.now)?;
        self.now = time;
        Ok(())
    }
}

/// Validate and normalize an event timestamp against the current clock.
///
/// Negative zero is normalized to positive zero so that the bit-equality
/// coalescing contract treats `-0.0` and `+0.0` as the same instant (they
/// already compare equal under `==`).
fn check_time(time: f64, now: f64) -> Result<f64, KernelError> {
    if !time.is_finite() {
        return Err(KernelError::NonFiniteTime { time });
    }
    if time < now {
        return Err(KernelError::PastEvent { time, now });
    }
    // wrht-analyze: allow(r6, reason = "the -0.0 normalization site of the bit-equality coalescing contract; == is the one comparison that unifies the two zeros")
    Ok(if time == 0.0 { 0.0 } else { time })
}

/// Handle to a scheduled event, usable to cancel it before it fires.
///
/// Handles go stale once the event fires or is canceled; stale handles are
/// ignored by [`EventKernel::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(SlabKey);

/// Heap entry: small and `Copy` so sift operations never move payloads.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: f64,
    seq: u64,
    key: SlabKey,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        // wrht-analyze: allow(r6, reason = "bit-equality coalescing contract: times are finite with -0.0 normalized at schedule time, so == coincides with to_bits equality")
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap on (time, seq). Times are finite with
        // -0.0 normalized at schedule time, so `total_cmp` coincides with
        // the IEEE order `partial_cmp` gave here while being total by
        // construction; the sequence tie-break makes simultaneous events
        // pop in insertion order regardless of heap-internal churn.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic discrete-event scheduler with typed payloads.
///
/// See the crate-level docs for the full design contract. In short:
/// scheduling into the past is a typed error, simultaneous events pop in
/// insertion order, and [`EventKernel::pop_batch`] extracts every event at
/// the next instant (bit-identical `f64` times) in one call.
#[derive(Debug)]
pub struct EventKernel<T> {
    heap: BinaryHeap<HeapEntry>,
    payloads: Slab<T>,
    clock: SimClock,
    next_seq: u64,
    processed: u64,
    cancelled: u64,
    compactions: u64,
}

/// Below this many heap entries, compaction is never worth the rebuild.
const COMPACT_MIN_HEAP: usize = 256;

impl<T> Default for EventKernel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventKernel<T> {
    /// Empty kernel at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            payloads: Slab::new(),
            clock: SimClock::new(),
            next_seq: 0,
            processed: 0,
            cancelled: 0,
            compactions: 0,
        }
    }

    /// Empty kernel with room for `cap` pending events before reallocating.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            payloads: Slab::with_capacity(cap),
            clock: SimClock::new(),
            next_seq: 0,
            processed: 0,
            cancelled: 0,
            compactions: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Total number of events popped (fired) so far. Canceled events and
    /// lazily discarded heap entries do not count.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending (live, uncanceled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// Total number of events canceled so far.
    #[must_use]
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Number of heap entries, **including** stale entries left behind by
    /// lazy cancellation. `heap_len() - len()` is the current stale count;
    /// long-running streams can watch it to observe compaction behavior.
    #[must_use]
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Number of times the heap was compacted to shed stale entries.
    #[must_use]
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Whether no live events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// `-0.0` is normalized to `+0.0` so bit-equality batching has a single
    /// representation per instant.
    ///
    /// # Errors
    /// [`KernelError::NonFiniteTime`] if `time` is NaN or infinite;
    /// [`KernelError::PastEvent`] if `time` precedes the current clock.
    pub fn schedule_at(&mut self, time: f64, payload: T) -> Result<EventId, KernelError> {
        let time = check_time(time, self.clock.now())?;
        let key = self.payloads.insert(payload);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { time, seq, key });
        Ok(EventId(key))
    }

    /// Schedule `payload` at `delay` after the current time.
    ///
    /// # Errors
    /// Same contract as [`EventKernel::schedule_at`] applied to
    /// `now + delay`: a NaN/overflowing delay is `NonFiniteTime`, a negative
    /// delay is `PastEvent`.
    pub fn schedule_in(&mut self, delay: f64, payload: T) -> Result<EventId, KernelError> {
        let time = self.clock.now() + delay;
        self.schedule_at(time, payload)
    }

    /// Cancel a pending event, returning its payload.
    ///
    /// Returns `None` if the event already fired or was already canceled.
    /// Cancellation is amortized O(1): the payload leaves the slab
    /// immediately and the heap entry is discarded lazily when it reaches
    /// the top. When stale entries outnumber live ones on a large heap the
    /// heap is compacted in place, so cancel-heavy streams stay bounded by
    /// the live event count instead of the total schedule count.
    pub fn cancel(&mut self, id: EventId) -> Option<T> {
        let payload = self.payloads.remove(id.0)?;
        self.cancelled += 1;
        if self.heap.len() >= COMPACT_MIN_HEAP && self.heap.len() > 2 * self.payloads.len() {
            let payloads = &self.payloads;
            self.heap.retain(|e| payloads.contains(e.key));
            self.compactions += 1;
        }
        Some(payload)
    }

    /// Timestamp of the earliest pending live event, without popping it.
    ///
    /// Takes `&mut self` because stale (canceled) heap entries are discarded
    /// on the way to the answer.
    pub fn peek_time(&mut self) -> Option<f64> {
        loop {
            let head = self.heap.peek()?;
            if self.payloads.contains(head.key) {
                return Some(head.time);
            }
            self.heap.pop();
        }
    }

    /// Pop the earliest live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        loop {
            let entry = self.heap.pop()?;
            if let Some(payload) = self.payloads.remove(entry.key) {
                debug_assert!(
                    entry.time >= self.clock.now(),
                    "heap produced a past event: {} < {}",
                    entry.time,
                    self.clock.now()
                );
                self.clock.now = entry.time;
                self.processed += 1;
                return Some((entry.time, payload));
            }
        }
    }

    /// Pop **every** live event scheduled at the next instant, appending
    /// payloads to `out` in insertion order, and advance the clock to that
    /// instant. Returns the instant, or `None` if no events are pending.
    ///
    /// Instant-equality contract: two events belong to the same batch if and
    /// only if their scheduled `f64` timestamps are bit-identical (`-0.0`
    /// was normalized to `+0.0` at scheduling time, and times are always
    /// finite, so bit-equality coincides with `==`). Timestamps one ulp
    /// apart are distinct instants and arrive in separate batches: callers
    /// that need mathematically-simultaneous events to coalesce must derive
    /// their timestamps through identical float expressions.
    pub fn pop_batch(&mut self, out: &mut Vec<T>) -> Option<f64> {
        let (time, first) = self.pop()?;
        out.push(first);
        while let Some(head) = self.peek_time() {
            if head.to_bits() != time.to_bits() {
                break;
            }
            // wrht-analyze: allow(r5, reason = "peek_time just proved the heap non-empty; a None here is kernel-internal corruption, not caller error")
            let (_, payload) = self.pop().expect("peeked event must pop");
            out.push(payload);
        }
        Some(time)
    }

    /// Snapshot every pending live event as `(time, payload)`, ordered by
    /// `(time, insertion order)` — the exact order they would pop in.
    ///
    /// This is the checkpoint contract: re-scheduling the returned pairs in
    /// order into a fresh kernel (after [`EventKernel::fast_forward`] to the
    /// saved clock) reproduces pop and batch order exactly, because relative
    /// sequence order is all that tie-breaking observes.
    #[must_use]
    pub fn pending(&self) -> Vec<(f64, &T)>
    where
        T: Sized,
    {
        let mut live: Vec<(&HeapEntry, &T)> = self
            .heap
            .iter()
            .filter_map(|e| self.payloads.get(e.key).map(|p| (e, p)))
            .collect();
        live.sort_by(|(a, _), (b, _)| a.time.total_cmp(&b.time).then_with(|| a.seq.cmp(&b.seq)));
        live.into_iter().map(|(e, p)| (e.time, p)).collect()
    }

    /// Advance the clock to `time` without popping any event.
    ///
    /// Used when restoring a checkpoint: a fresh kernel starts at zero, the
    /// saved pending events are re-scheduled (all at times `>= time`), and
    /// the clock is fast-forwarded to the saved instant so subsequent
    /// schedule calls see the same past/future boundary as the original run.
    ///
    /// # Errors
    /// Same contract as [`SimClock::advance_to`]: non-finite targets and
    /// targets earlier than the current clock are typed errors.
    pub fn fast_forward(&mut self, time: f64) -> Result<(), KernelError> {
        self.clock.advance_to(time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_kernel_pops_none() {
        let mut k: EventKernel<()> = EventKernel::new();
        assert!(k.pop().is_none());
        assert!(k.peek_time().is_none());
        let mut out = Vec::new();
        assert!(k.pop_batch(&mut out).is_none());
        assert!(out.is_empty());
        assert_eq!(k.now(), 0.0);
        assert_eq!(k.events_processed(), 0);
    }

    #[test]
    fn pops_in_time_order() {
        let mut k = EventKernel::new();
        k.schedule_at(3.0, "c").unwrap();
        k.schedule_at(1.0, "a").unwrap();
        k.schedule_at(2.0, "b").unwrap();
        let got: Vec<_> = std::iter::from_fn(|| k.pop()).map(|(_, p)| p).collect();
        assert_eq!(got, vec!["a", "b", "c"]);
        assert_eq!(k.events_processed(), 3);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut k = EventKernel::new();
        for i in 0..10 {
            k.schedule_at(5.0, i).unwrap();
        }
        let got: Vec<_> = std::iter::from_fn(|| k.pop()).map(|(_, p)| p).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shuffled_insertion_keeps_tie_order_bit_identical() {
        // Satellite regression: tied events must pop in insertion order no
        // matter how much unrelated heap churn reshapes the internal array.
        // A fixed-seed LCG drives the churn so the test is deterministic.
        let mut lcg: u64 = 0x2545_F491_4F6C_DD1D;
        let mut next = || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as u32
        };
        let mut k = EventKernel::new();
        let mut expected = Vec::new();
        for i in 0..200u32 {
            // Interleave tied events at t=7.0 with churn at pseudo-random
            // earlier/later times, occasionally popping to re-heapify.
            match next() % 4 {
                0 => {
                    k.schedule_at(7.0, Some(i)).unwrap();
                    expected.push(i);
                }
                1 => {
                    // Early churn; clamp to `now` so it stays schedulable
                    // after churn pops have advanced the clock.
                    let t = (1.0 + f64::from(next() % 100) / 50.0).max(k.now());
                    k.schedule_at(t, None).unwrap();
                }
                2 => {
                    k.schedule_at(9.0 + f64::from(next() % 100) / 50.0, None)
                        .unwrap();
                }
                _ => {
                    // Churn pop, but never advance the clock past the tied
                    // instant (that would make later tied schedules invalid).
                    if k.peek_time().is_some_and(|t| t < 7.0) {
                        k.pop();
                    }
                }
            }
        }
        let mut got = Vec::new();
        while let Some((t, p)) = k.pop() {
            if let Some(i) = p {
                assert_eq!(t.to_bits(), 7.0f64.to_bits());
                got.push(i);
            }
        }
        assert!(!got.is_empty());
        assert_eq!(got, expected);
    }

    #[test]
    fn clock_advances_and_is_monotone() {
        let mut k = EventKernel::new();
        k.schedule_at(2.5, ()).unwrap();
        assert_eq!(k.now(), 0.0);
        k.pop();
        assert_eq!(k.now(), 2.5);
        k.schedule_in(1.0, ()).unwrap();
        k.schedule_at(2.5, ()).unwrap();
        let mut prev = k.now();
        while let Some((t, ())) = k.pop() {
            assert!(t >= prev, "clock went backwards: {t} < {prev}");
            assert_eq!(k.now(), t);
            prev = t;
        }
        assert_eq!(prev, 3.5);
    }

    #[test]
    fn scheduling_into_the_past_is_a_typed_error() {
        // Satellite regression: the old EventQueue panicked here and `pop`
        // could silently rewind `now`; the kernel reports a typed error.
        let mut k = EventKernel::new();
        k.schedule_at(2.0, ()).unwrap();
        k.pop();
        assert_eq!(
            k.schedule_at(1.0, ()),
            Err(KernelError::PastEvent {
                time: 1.0,
                now: 2.0
            })
        );
        assert_eq!(
            k.schedule_in(-0.5, ()),
            Err(KernelError::PastEvent {
                time: 1.5,
                now: 2.0
            })
        );
        // The failed schedule left no trace.
        assert!(k.is_empty());
        assert_eq!(k.now(), 2.0);
    }

    #[test]
    fn non_finite_time_is_a_typed_error() {
        let mut k = EventKernel::new();
        assert!(matches!(
            k.schedule_at(f64::NAN, ()),
            Err(KernelError::NonFiniteTime { .. })
        ));
        assert_eq!(
            k.schedule_at(f64::INFINITY, ()),
            Err(KernelError::NonFiniteTime {
                time: f64::INFINITY
            })
        );
        assert!(matches!(
            k.schedule_in(f64::NAN, ()),
            Err(KernelError::NonFiniteTime { .. })
        ));
    }

    #[test]
    fn sim_clock_rejects_rewind() {
        let mut c = SimClock::new();
        c.advance_to(3.0).unwrap();
        assert_eq!(c.now(), 3.0);
        assert_eq!(
            c.advance_to(2.0),
            Err(KernelError::PastEvent {
                time: 2.0,
                now: 3.0
            })
        );
        assert!(matches!(
            c.advance_to(f64::NEG_INFINITY),
            Err(KernelError::NonFiniteTime { .. })
        ));
        assert_eq!(c.now(), 3.0);
    }

    #[test]
    fn len_and_is_empty_track_live_events() {
        let mut k = EventKernel::new();
        assert!(k.is_empty());
        let id = k.schedule_at(1.0, ()).unwrap();
        k.schedule_at(2.0, ()).unwrap();
        assert_eq!(k.len(), 2);
        k.cancel(id);
        assert_eq!(k.len(), 1);
        k.pop();
        assert!(k.is_empty());
    }

    #[test]
    fn cancel_semantics() {
        let mut k = EventKernel::new();
        let a = k.schedule_at(1.0, "a").unwrap();
        let b = k.schedule_at(1.0, "b").unwrap();
        k.schedule_at(1.0, "c").unwrap();
        assert_eq!(k.cancel(b), Some("b"));
        assert_eq!(k.cancel(b), None, "double cancel is a no-op");
        let mut out = Vec::new();
        assert_eq!(k.pop_batch(&mut out), Some(1.0));
        assert_eq!(out, vec!["a", "c"], "canceled event must not fire");
        assert_eq!(k.cancel(a), None, "cancel after fire is a no-op");
        assert_eq!(k.events_processed(), 2);
    }

    #[test]
    fn schedule_during_pop_interleaves_correctly() {
        // Events scheduled while draining (including at the current instant)
        // are honored; the classic "cascade" pattern of a simulator.
        let mut k = EventKernel::new();
        k.schedule_at(1.0, 0u32).unwrap();
        let mut fired = Vec::new();
        while let Some((t, gen)) = k.pop() {
            fired.push((t, gen));
            if gen < 3 {
                // Same-instant follow-up plus a strictly later one.
                k.schedule_at(t, gen + 1).unwrap();
                k.schedule_in(1.0, gen + 10).unwrap();
            }
            if fired.len() > 32 {
                panic!("runaway cascade");
            }
        }
        assert_eq!(&fired[..4], &[(1.0, 0), (1.0, 1), (1.0, 2), (1.0, 3)]);
        assert_eq!(fired.len(), 4 + 3);
    }

    #[test]
    fn pop_batch_groups_by_bit_identical_time() {
        let mut k = EventKernel::new();
        // 0.1 + 0.2 is one ulp above 0.3: mathematically the same instant,
        // different bits -> distinct batches. This pins the documented
        // contract (and the old `peek_time() == Some(now)` behavior, which
        // also compared exactly).
        let near = 0.1_f64 + 0.2_f64;
        assert_ne!(near.to_bits(), 0.3_f64.to_bits());
        k.schedule_at(0.3, "exact-1").unwrap();
        k.schedule_at(near, "ulp").unwrap();
        k.schedule_at(0.15 + 0.15, "exact-2").unwrap(); // == 0.3 bit-exactly
        let mut out = Vec::new();
        assert_eq!(k.pop_batch(&mut out), Some(0.3));
        assert_eq!(out, vec!["exact-1", "exact-2"]);
        out.clear();
        assert_eq!(k.pop_batch(&mut out), Some(near));
        assert_eq!(out, vec!["ulp"]);
    }

    #[test]
    fn negative_zero_is_normalized() {
        let mut k = EventKernel::new();
        k.schedule_at(-0.0, "neg").unwrap();
        k.schedule_at(0.0, "pos").unwrap();
        let mut out = Vec::new();
        let t = k.pop_batch(&mut out).unwrap();
        assert_eq!(t.to_bits(), 0.0_f64.to_bits(), "-0.0 normalized to +0.0");
        assert_eq!(out, vec!["neg", "pos"]);
    }

    #[test]
    fn cancel_heavy_streams_compact_the_heap() {
        // Satellite regression (PR 8): before compaction, every canceled
        // event left a stale heap entry until it happened to reach the top,
        // so a long stream that schedules-and-supersedes grew without bound.
        let mut k = EventKernel::new();
        let mut live = Vec::new();
        for round in 0..64u64 {
            // Schedule a wave, cancel most of it, keep a few.
            let base = k.now() + 1.0;
            let ids: Vec<_> = (0..64)
                .map(|i| k.schedule_at(base + f64::from(i), round).unwrap())
                .collect();
            for (i, id) in ids.iter().enumerate() {
                if i % 16 == 0 {
                    live.push(*id);
                } else {
                    assert!(k.cancel(*id).is_some());
                }
            }
            k.pop();
        }
        assert!(k.cancelled() >= 60 * 64);
        assert!(k.compactions() > 0, "stale-dominated heap must compact");
        assert!(
            k.heap_len() <= 2 * k.len() + COMPACT_MIN_HEAP,
            "heap stays bounded by live events: {} vs {}",
            k.heap_len(),
            k.len()
        );
        // Compaction must not disturb ordering: remaining events still pop
        // in (time, insertion) order.
        let mut prev = k.now();
        while let Some((t, _)) = k.pop() {
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn pending_snapshot_matches_pop_order_and_restores() {
        let mut k = EventKernel::new();
        k.schedule_at(2.0, "b1").unwrap();
        k.schedule_at(1.0, "a").unwrap();
        let c = k.schedule_at(2.0, "cancelled").unwrap();
        k.schedule_at(2.0, "b2").unwrap();
        k.cancel(c);
        k.pop(); // fire "a", clock at 1.0

        let snap: Vec<(f64, &str)> = k.pending().into_iter().map(|(t, p)| (t, *p)).collect();
        assert_eq!(snap, vec![(2.0, "b1"), (2.0, "b2")]);

        // Restore into a fresh kernel: fast-forward, re-schedule in order.
        let mut r = EventKernel::new();
        r.fast_forward(1.0).unwrap();
        assert_eq!(
            r.fast_forward(0.5),
            Err(KernelError::PastEvent {
                time: 0.5,
                now: 1.0
            })
        );
        for &(t, p) in &snap {
            r.schedule_at(t, p).unwrap();
        }
        let mut orig = Vec::new();
        let mut rest = Vec::new();
        let t1 = k.pop_batch(&mut orig);
        let t2 = r.pop_batch(&mut rest);
        assert_eq!(t1, t2);
        assert_eq!(orig, rest, "restored kernel must replay batch order");
    }

    #[test]
    fn burst_of_many_events_drains_in_order() {
        let mut k = EventKernel::new();
        let n = 10_000u64;
        for i in 0..n {
            // Deterministic scatter with many ties (time quantized to 1/16).
            let t = f64::from(u32::try_from(i * 7919 % 256).unwrap()) / 16.0;
            k.schedule_at(t, i).unwrap();
        }
        let mut prev_t = f64::NEG_INFINITY;
        let mut prev_seq_at_t = 0u64;
        let mut count = 0u64;
        while let Some((t, i)) = k.pop() {
            assert!(t >= prev_t);
            if t.to_bits() == prev_t.to_bits() {
                assert!(i > prev_seq_at_t, "ties must pop in insertion order");
            }
            prev_t = t;
            prev_seq_at_t = i;
            count += 1;
        }
        assert_eq!(count, n);
        assert_eq!(k.events_processed(), n);
    }
}
