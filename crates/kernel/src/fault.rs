//! Typed, timestamped fault events shared by both substrate simulators.
//!
//! Availability dynamics — wavelength/transceiver loss, link degradation
//! and flaps, stragglers, node failures — are modelled as **first-class
//! kernel events**: a [`FaultScript`] is a list of [`FaultEvent`]s that a
//! simulator schedules through its [`crate::EventKernel`] alongside normal
//! transfer events, so faults interleave with grants, completions and
//! wake-ups under the kernel's deterministic `(time, seq)` ordering and
//! bit-equality same-instant coalescing.
//!
//! The kinds are substrate-polymorphic: each simulator applies the events
//! it understands and ignores the rest (wavelength events are optical-only,
//! link events electrical-only; node events apply to both). A
//! [`FaultPolicy`] decides how interrupted work recovers.
//!
//! # Same-instant coalescing
//!
//! When a fault lands at an instant where a transfer also completes (bit-
//! identical `f64` times — see the kernel's coalescing contract), both
//! simulators apply the **completion first**: a transfer finishing at
//! exactly `t` is finished, not aborted, by a fault at `t`. Times one ulp
//! apart are distinct instants and are never coalesced.

use std::fmt;

/// One kind of availability event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A wavelength channel (transceiver/laser) fails: the lane stops
    /// admitting new lightpaths and every in-flight transfer holding it
    /// aborts. Optical-only; ignored by the electrical substrate.
    WavelengthDown {
        /// Failed wavelength index.
        lane: usize,
    },
    /// The wavelength is repaired. Must follow a [`FaultKind::WavelengthDown`]
    /// on the same lane ([`FaultError::UpWithoutDown`] otherwise).
    WavelengthUp {
        /// Repaired wavelength index.
        lane: usize,
    },
    /// A link's capacity is multiplied by `factor` (in `(0, 1]`) from the
    /// event instant onward, triggering an incremental max-min re-solve of
    /// the affected contention component. Electrical-only.
    LinkDegrade {
        /// Link index in the network's link table.
        link: usize,
        /// Capacity multiplier, `0 < factor <= 1`.
        factor: f64,
    },
    /// The link goes fully dark for `down_s` seconds, then returns to full
    /// capacity. Flows crossing it are suspended (fluid progress frozen),
    /// not aborted. Electrical-only.
    LinkFlap {
        /// Link index in the network's link table.
        link: usize,
        /// Outage duration, seconds (`> 0`).
        down_s: f64,
    },
    /// A node's endpoint processing slows by `slowdown` (`>= 1`): transfers
    /// touching the node run `slowdown` times longer (optical: grants at or
    /// after the instant; electrical: allocated rate divided, the freed
    /// share is *not* redistributed).
    NodeStraggle {
        /// Straggling node index.
        node: usize,
        /// Duration/rate multiplier, `>= 1`.
        slowdown: f64,
    },
    /// The node fails permanently: transfers with an endpoint on it can
    /// never complete. The [`FaultPolicy`] decides whether the owning job
    /// fails wholly or survivors re-plan around the loss.
    NodeDown {
        /// Failed node index.
        node: usize,
    },
}

/// A [`FaultKind`] pinned to a simulated instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Injection instant, seconds (finite, `>= 0`).
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// How interrupted work recovers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPolicy {
    /// The job owning an aborted or failed transfer fails wholly: all of
    /// its unfinished transfers are marked failed and release the fabric.
    FailJob,
    /// An aborted transfer re-enters the grant loop after the given
    /// backoff, losing all progress. Transfers hit by a *permanent* fault
    /// (a node failure) still fail — retrying is futile — and their
    /// dependents are re-planned as under [`FaultPolicy::Replan`].
    RetryAfter(f64),
    /// An aborted transfer immediately re-enters the grant loop (optical:
    /// RWA re-grant over the surviving lanes at the fault instant, under
    /// the same cross-job arbitration). Transfers hit by a permanent fault
    /// fail, and their dependents are released so survivors re-plan.
    Replan,
}

impl FaultPolicy {
    /// Stable label used in reports, hashes and CSV rows.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            FaultPolicy::FailJob => "fail-job".to_string(),
            FaultPolicy::RetryAfter(b) => format!("retry-after:{b}"),
            FaultPolicy::Replan => "replan".to_string(),
        }
    }

    /// Validate the policy's own parameters.
    pub fn validate(self) -> Result<(), FaultError> {
        if let FaultPolicy::RetryAfter(b) = self {
            if !b.is_finite() || b < 0.0 {
                return Err(FaultError::BadBackoff { backoff: b });
            }
        }
        Ok(())
    }
}

impl fmt::Display for FaultPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Substrate dimensions a [`FaultScript`] is validated against. A `None`
/// dimension means the substrate has no such resource and events targeting
/// it are no-ops there — they pass validation unchecked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultLimits {
    /// Number of compute nodes.
    pub nodes: usize,
    /// Wavelengths per waveguide (`None` on substrates without WDM).
    pub wavelengths: Option<usize>,
    /// Links in the network (`None` on substrates without a link table).
    pub links: Option<usize>,
}

/// Typed validation errors for fault scripts and policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultError {
    /// An event's timestamp is NaN/infinite or negative.
    BadTimestamp {
        /// Index of the offending event in the script.
        index: usize,
        /// The offending timestamp.
        at_s: f64,
    },
    /// A wavelength event referenced a lane outside the waveguide.
    LaneOutOfRange {
        /// Index of the offending event in the script.
        index: usize,
        /// Offending lane.
        lane: usize,
        /// Wavelengths per waveguide.
        wavelengths: usize,
    },
    /// A link event referenced a link outside the network's link table.
    LinkOutOfRange {
        /// Index of the offending event in the script.
        index: usize,
        /// Offending link.
        link: usize,
        /// Number of links.
        links: usize,
    },
    /// A node event referenced a node outside the deployment.
    NodeOutOfRange {
        /// Index of the offending event in the script.
        index: usize,
        /// Offending node.
        node: usize,
        /// Number of nodes.
        nodes: usize,
    },
    /// A [`FaultKind::WavelengthUp`] without a preceding
    /// [`FaultKind::WavelengthDown`] on the same lane.
    UpWithoutDown {
        /// Index of the offending event in the script.
        index: usize,
        /// The lane the event tried to repair.
        lane: usize,
    },
    /// A degrade factor outside `(0, 1]` (or NaN).
    BadFactor {
        /// Index of the offending event in the script.
        index: usize,
        /// The offending factor.
        factor: f64,
    },
    /// A straggle slowdown below 1 (or NaN/infinite).
    BadSlowdown {
        /// Index of the offending event in the script.
        index: usize,
        /// The offending slowdown.
        slowdown: f64,
    },
    /// A flap outage duration that is not finite and positive.
    BadFlapDuration {
        /// Index of the offending event in the script.
        index: usize,
        /// The offending duration.
        down_s: f64,
    },
    /// A [`FaultPolicy::RetryAfter`] backoff that is NaN/infinite/negative.
    BadBackoff {
        /// The offending backoff, seconds.
        backoff: f64,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::BadTimestamp { index, at_s } => {
                write!(f, "fault event {index}: timestamp {at_s} must be finite and >= 0")
            }
            FaultError::LaneOutOfRange {
                index,
                lane,
                wavelengths,
            } => write!(
                f,
                "fault event {index}: lane {lane} out of range ({wavelengths} wavelengths)"
            ),
            FaultError::LinkOutOfRange { index, link, links } => {
                write!(f, "fault event {index}: link {link} out of range ({links} links)")
            }
            FaultError::NodeOutOfRange { index, node, nodes } => {
                write!(f, "fault event {index}: node {node} out of range ({nodes} nodes)")
            }
            FaultError::UpWithoutDown { index, lane } => write!(
                f,
                "fault event {index}: WavelengthUp on lane {lane} without a preceding WavelengthDown"
            ),
            FaultError::BadFactor { index, factor } => write!(
                f,
                "fault event {index}: degrade factor {factor} must be in (0, 1]"
            ),
            FaultError::BadSlowdown { index, slowdown } => write!(
                f,
                "fault event {index}: straggle slowdown {slowdown} must be finite and >= 1"
            ),
            FaultError::BadFlapDuration { index, down_s } => write!(
                f,
                "fault event {index}: flap duration {down_s} must be finite and > 0"
            ),
            FaultError::BadBackoff { backoff } => {
                write!(f, "retry backoff {backoff} must be finite and >= 0")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// A validated-on-demand list of timestamped fault events.
///
/// Events need not be pre-sorted — simulators schedule each at its own
/// instant and the kernel orders them — but [`FaultScript::validate`]
/// checks the *time-ordered* view (e.g. every `WavelengthUp` must follow a
/// `WavelengthDown` on its lane).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultScript {
    events: Vec<FaultEvent>,
}

impl FaultScript {
    /// Empty script (a faulted run with it is bit-exact with a clean run).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event (builder style).
    #[must_use]
    pub fn with(mut self, at_s: f64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at_s, kind });
        self
    }

    /// Append an event.
    pub fn push(&mut self, at_s: f64, kind: FaultKind) {
        self.events.push(FaultEvent { at_s, kind });
    }

    /// The events, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the script holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Validate the script against a substrate's dimensions: finite
    /// non-negative timestamps, in-range lanes/links/nodes (for the
    /// dimensions the substrate has), well-formed factors/slowdowns, and
    /// `Up`-follows-`Down` pairing per lane in time order.
    pub fn validate(&self, limits: &FaultLimits) -> Result<(), FaultError> {
        for (index, ev) in self.events.iter().enumerate() {
            if !ev.at_s.is_finite() || ev.at_s < 0.0 {
                return Err(FaultError::BadTimestamp {
                    index,
                    at_s: ev.at_s,
                });
            }
            match ev.kind {
                FaultKind::WavelengthDown { lane } | FaultKind::WavelengthUp { lane } => {
                    if let Some(w) = limits.wavelengths {
                        if lane >= w {
                            return Err(FaultError::LaneOutOfRange {
                                index,
                                lane,
                                wavelengths: w,
                            });
                        }
                    }
                }
                FaultKind::LinkDegrade { link, factor } => {
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(FaultError::BadFactor { index, factor });
                    }
                    if let Some(l) = limits.links {
                        if link >= l {
                            return Err(FaultError::LinkOutOfRange {
                                index,
                                link,
                                links: l,
                            });
                        }
                    }
                }
                FaultKind::LinkFlap { link, down_s } => {
                    if !down_s.is_finite() || down_s <= 0.0 {
                        return Err(FaultError::BadFlapDuration { index, down_s });
                    }
                    if let Some(l) = limits.links {
                        if link >= l {
                            return Err(FaultError::LinkOutOfRange {
                                index,
                                link,
                                links: l,
                            });
                        }
                    }
                }
                FaultKind::NodeStraggle { node, slowdown } => {
                    if !slowdown.is_finite() || slowdown < 1.0 {
                        return Err(FaultError::BadSlowdown { index, slowdown });
                    }
                    if node >= limits.nodes {
                        return Err(FaultError::NodeOutOfRange {
                            index,
                            node,
                            nodes: limits.nodes,
                        });
                    }
                }
                FaultKind::NodeDown { node } => {
                    if node >= limits.nodes {
                        return Err(FaultError::NodeOutOfRange {
                            index,
                            node,
                            nodes: limits.nodes,
                        });
                    }
                }
            }
        }
        // Up must follow Down per lane, in the time-ordered view (stable on
        // insertion order for equal timestamps). Down is idempotent.
        if let Some(w) = limits.wavelengths {
            let mut order: Vec<usize> = (0..self.events.len()).collect();
            order.sort_by(|&a, &b| {
                self.events[a]
                    .at_s
                    .total_cmp(&self.events[b].at_s)
                    .then(a.cmp(&b))
            });
            let mut down = vec![false; w];
            for &i in &order {
                match self.events[i].kind {
                    FaultKind::WavelengthDown { lane } => down[lane] = true,
                    FaultKind::WavelengthUp { lane } => {
                        if !down[lane] {
                            return Err(FaultError::UpWithoutDown { index: i, lane });
                        }
                        down[lane] = false;
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: FaultLimits = FaultLimits {
        nodes: 8,
        wavelengths: Some(4),
        links: Some(16),
    };

    #[test]
    fn empty_script_validates() {
        assert!(FaultScript::new().validate(&LIMITS).is_ok());
        assert!(FaultScript::new().is_empty());
        assert_eq!(FaultScript::new().len(), 0);
    }

    #[test]
    fn nan_and_negative_timestamps_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let s = FaultScript::new().with(bad, FaultKind::NodeDown { node: 0 });
            assert!(matches!(
                s.validate(&LIMITS),
                Err(FaultError::BadTimestamp { index: 0, .. })
            ));
        }
    }

    #[test]
    fn out_of_range_resources_are_rejected_per_dimension() {
        let s = FaultScript::new().with(0.0, FaultKind::WavelengthDown { lane: 4 });
        assert!(matches!(
            s.validate(&LIMITS),
            Err(FaultError::LaneOutOfRange { lane: 4, .. })
        ));
        // Substrate without WDM: the same event passes unchecked (no-op).
        let no_wdm = FaultLimits {
            wavelengths: None,
            ..LIMITS
        };
        assert!(s.validate(&no_wdm).is_ok());

        let s = FaultScript::new().with(
            0.0,
            FaultKind::LinkDegrade {
                link: 16,
                factor: 0.5,
            },
        );
        assert!(matches!(
            s.validate(&LIMITS),
            Err(FaultError::LinkOutOfRange { link: 16, .. })
        ));
        let s = FaultScript::new().with(0.0, FaultKind::NodeDown { node: 8 });
        assert!(matches!(
            s.validate(&LIMITS),
            Err(FaultError::NodeOutOfRange { node: 8, .. })
        ));
    }

    #[test]
    fn up_requires_a_preceding_down_in_time_order() {
        let s = FaultScript::new().with(1.0, FaultKind::WavelengthUp { lane: 0 });
        assert!(matches!(
            s.validate(&LIMITS),
            Err(FaultError::UpWithoutDown { lane: 0, .. })
        ));
        // Insertion order is not time order: Down at 1.0 pushed after Up at
        // 2.0 still precedes it in time, so the pair is legal.
        let s = FaultScript::new()
            .with(2.0, FaultKind::WavelengthUp { lane: 0 })
            .with(1.0, FaultKind::WavelengthDown { lane: 0 });
        assert!(s.validate(&LIMITS).is_ok());
        // A second Up with no second Down is illegal again.
        let s = s.with(3.0, FaultKind::WavelengthUp { lane: 0 });
        assert!(matches!(
            s.validate(&LIMITS),
            Err(FaultError::UpWithoutDown { .. })
        ));
    }

    #[test]
    fn factors_slowdowns_and_flaps_are_range_checked() {
        for factor in [0.0, -0.5, 1.5, f64::NAN] {
            let s = FaultScript::new().with(0.0, FaultKind::LinkDegrade { link: 0, factor });
            assert!(matches!(
                s.validate(&LIMITS),
                Err(FaultError::BadFactor { .. })
            ));
        }
        for slowdown in [0.5, f64::NAN, f64::INFINITY] {
            let s = FaultScript::new().with(0.0, FaultKind::NodeStraggle { node: 0, slowdown });
            assert!(matches!(
                s.validate(&LIMITS),
                Err(FaultError::BadSlowdown { .. })
            ));
        }
        for down_s in [0.0, -1.0, f64::NAN] {
            let s = FaultScript::new().with(0.0, FaultKind::LinkFlap { link: 0, down_s });
            assert!(matches!(
                s.validate(&LIMITS),
                Err(FaultError::BadFlapDuration { .. })
            ));
        }
        // Degrade factor exactly 1.0 is legal (and must be a no-op).
        let s = FaultScript::new().with(
            0.0,
            FaultKind::LinkDegrade {
                link: 0,
                factor: 1.0,
            },
        );
        assert!(s.validate(&LIMITS).is_ok());
    }

    #[test]
    fn policy_backoff_is_validated_and_labelled() {
        assert!(FaultPolicy::FailJob.validate().is_ok());
        assert!(FaultPolicy::Replan.validate().is_ok());
        assert!(FaultPolicy::RetryAfter(1e-3).validate().is_ok());
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert!(matches!(
                FaultPolicy::RetryAfter(bad).validate(),
                Err(FaultError::BadBackoff { .. })
            ));
        }
        assert_eq!(FaultPolicy::FailJob.label(), "fail-job");
        assert_eq!(FaultPolicy::Replan.to_string(), "replan");
        assert!(FaultPolicy::RetryAfter(0.5)
            .label()
            .starts_with("retry-after:"));
    }
}
