//! Gradient bucketing (fusion), as PyTorch DDP and Horovod perform it.
//!
//! During the backward pass gradients materialize from the **last** layer to
//! the first; frameworks fuse consecutive gradients into buckets of a
//! configurable byte budget and launch one all-reduce per bucket, enabling
//! compute/communication overlap. This module reproduces that policy for
//! the layer-wise overlap extension experiment.

use crate::layer::Layer;
use serde::{Deserialize, Serialize};

/// One fused gradient bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bucket {
    /// Total payload in bytes.
    pub bytes: u64,
    /// Names of the layers fused in the bucket, in gradient-ready
    /// (reverse-forward) order.
    pub layers: Vec<String>,
    /// Index of the *earliest* (closest-to-input) forward layer in the
    /// bucket; the bucket becomes ready when that layer's gradient exists.
    pub earliest_layer_idx: usize,
}

/// Fuse `layers` (forward order) into buckets of at most `max_bytes`,
/// walking backward as gradients become available.
///
/// A single layer larger than `max_bytes` gets its own bucket — buckets
/// never split a layer.
#[must_use]
pub fn bucketize(layers: &[Layer], max_bytes: u64) -> Vec<Bucket> {
    assert!(max_bytes > 0, "bucket budget must be positive");
    let mut buckets = Vec::new();
    let mut current = Bucket {
        bytes: 0,
        layers: Vec::new(),
        earliest_layer_idx: usize::MAX,
    };
    for (idx, layer) in layers.iter().enumerate().rev() {
        let g = layer.gradient_bytes();
        if current.bytes > 0 && current.bytes + g > max_bytes {
            buckets.push(std::mem::replace(
                &mut current,
                Bucket {
                    bytes: 0,
                    layers: Vec::new(),
                    earliest_layer_idx: usize::MAX,
                },
            ));
        }
        current.bytes += g;
        current.layers.push(layer.name.clone());
        current.earliest_layer_idx = idx;
    }
    if current.bytes > 0 {
        buckets.push(current);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{resnet50, vgg16};

    #[test]
    fn buckets_cover_all_bytes() {
        let m = vgg16();
        let buckets = bucketize(&m.layers, 25 << 20); // 25 MB, DDP default
        let total: u64 = buckets.iter().map(|b| b.bytes).sum();
        assert_eq!(total, m.gradient_bytes());
    }

    #[test]
    fn buckets_respect_budget_except_giant_layers() {
        let m = vgg16();
        let budget = 25u64 << 20;
        for b in bucketize(&m.layers, budget) {
            // fc6 alone is ~411 MB and must stand alone.
            if b.bytes > budget {
                assert_eq!(b.layers.len(), 1, "oversized bucket must be single-layer");
            }
        }
    }

    #[test]
    fn buckets_are_reverse_ordered() {
        let m = resnet50();
        let buckets = bucketize(&m.layers, 4 << 20);
        // Earliest-layer indices must strictly decrease bucket to bucket.
        for w in buckets.windows(2) {
            assert!(w[0].earliest_layer_idx > w[1].earliest_layer_idx);
        }
        // The first bucket contains the last layer (fc).
        assert_eq!(buckets[0].layers[0], "fc");
    }

    #[test]
    fn one_giant_budget_gives_one_bucket() {
        let m = resnet50();
        let buckets = bucketize(&m.layers, u64::MAX);
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].bytes, m.gradient_bytes());
        assert_eq!(buckets[0].earliest_layer_idx, 0);
    }

    #[test]
    fn tiny_budget_gives_one_bucket_per_layer() {
        let m = resnet50();
        let buckets = bucketize(&m.layers, 1);
        assert_eq!(buckets.len(), m.layers.len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_panics() {
        let _ = bucketize(&resnet50().layers, 0);
    }
}
