//! # dnn-models — DNN workloads for distributed-training communication studies
//!
//! The Wrht evaluation measures all-reduce time for the gradients of four
//! convolutional networks trained on ImageNet: AlexNet (62.3 M parameters),
//! VGG16 (138 M), ResNet50 (25 M) and GoogLeNet (6.7977 M). This crate
//! provides:
//!
//! * [`layer`] — layer descriptors with exact parameter-count arithmetic;
//! * [`zoo`] — per-layer tables for the four models, cross-checked against
//!   the published totals;
//! * [`bucket`] — gradient fusion into fixed-size buckets (as DDP/Horovod
//!   do), used by the layer-wise overlap extension;
//! * [`training`] — a data-parallel iteration model that overlaps backward
//!   computation with bucketed all-reduce.
//!
//! ```
//! use dnn_models::prelude::*;
//!
//! let model = alexnet();
//! assert_eq!(model.params(), 62_378_344); // the paper's 62.3 M
//! assert_eq!(model.gradient_bytes(), 4 * model.params() as u64); // fp32
//! assert_eq!(paper_models().len(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bucket;
pub mod layer;
pub mod training;
pub mod transformer;
pub mod zoo;

/// Common re-exports.
pub mod prelude {
    pub use crate::bucket::{bucketize, Bucket};
    pub use crate::layer::{Layer, LayerKind};
    pub use crate::training::{
        bucket_ready_times, hidden_comm_fraction, layer_ready_times, simulate_iteration,
        IterationModel, OverlapReport,
    };
    pub use crate::transformer::{bert_large, gpt2_small, transformer, TransformerConfig};
    pub use crate::zoo::{
        alexnet, all_models, googlenet, model_by_name, paper_models, resnet50, vgg16, Model,
    };
}

pub use layer::{Layer, LayerKind};
pub use transformer::{bert_large, gpt2_small};
pub use zoo::{
    alexnet, all_models, googlenet, model_by_name, paper_models, resnet50, vgg16, Model,
};
