//! Data-parallel iteration model with compute/communication overlap.
//!
//! During backward, gradients appear from the output layer towards the
//! input layer; each fused bucket can start its all-reduce as soon as its
//! earliest layer's gradient exists, while backward continues computing.
//! All-reduces of different buckets serialize on the network (one collective
//! at a time, as NCCL/Horovod launch them in order).

use crate::bucket::Bucket;
use crate::layer::Layer;
use serde::{Deserialize, Serialize};

/// Compute-side model of one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationModel {
    /// Duration of the full backward pass, seconds.
    pub backward_s: f64,
    /// Duration of the forward pass (it precedes backward and hides no
    /// communication of the same iteration), seconds.
    pub forward_s: f64,
}

/// Outcome of the overlap simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapReport {
    /// Iteration time with layer-wise overlap, seconds.
    pub overlapped_s: f64,
    /// Iteration time when the whole gradient is reduced after backward.
    pub sequential_s: f64,
    /// Fraction of communication hidden behind compute, in `[0, 1]`.
    pub hidden_fraction: f64,
    /// Per-bucket (ready, start, finish) times, seconds.
    pub bucket_times: Vec<(f64, f64, f64)>,
}

/// Gradient-ready time of every forward layer.
///
/// The gradient of forward layer `i` is ready once backward has consumed
/// all layers `j >= i` (backward walks from the end); backward time is
/// apportioned to layers proportionally to their parameter counts, a
/// standard first-order approximation:
/// `ready(i) = forward_s + backward_s * params(i..) / total_params`.
///
/// When the model has no parameters at all, the apportioning is undefined
/// and every gradient is conservatively ready at the end of backward.
#[must_use]
pub fn layer_ready_times(layers: &[Layer], model: IterationModel) -> Vec<f64> {
    let total_params: usize = layers.iter().map(Layer::params).sum();
    if total_params == 0 {
        return vec![model.forward_s + model.backward_s; layers.len()];
    }
    let mut suffix = vec![0usize; layers.len() + 1];
    for i in (0..layers.len()).rev() {
        suffix[i] = suffix[i + 1] + layers[i].params();
    }
    (0..layers.len())
        .map(|i| model.forward_s + model.backward_s * suffix[i] as f64 / total_params as f64)
        .collect()
}

/// Gradient-ready time of every bucket: the ready time of its earliest
/// (closest-to-input) layer. Buckets whose `earliest_layer_idx` does not
/// index into `layers` are conservatively ready at the end of backward.
#[must_use]
pub fn bucket_ready_times(layers: &[Layer], buckets: &[Bucket], model: IterationModel) -> Vec<f64> {
    let by_layer = layer_ready_times(layers, model);
    let backward_end = model.forward_s + model.backward_s;
    buckets
        .iter()
        .map(|b| {
            by_layer
                .get(b.earliest_layer_idx)
                .copied()
                .unwrap_or(backward_end)
        })
        .collect()
}

/// Fraction of communication hidden behind compute, guarded against every
/// degenerate input: `NaN`-free and always in `[0, 1]`, including when
/// `total_comm_s` is zero (nothing to hide — vacuously all hidden, unless
/// something is exposed anyway) or non-finite (infeasible cost models
/// report infinite durations: nothing is hidden).
#[must_use]
pub fn hidden_comm_fraction(total_comm_s: f64, exposed_s: f64) -> f64 {
    if total_comm_s.is_finite() && total_comm_s > 0.0 {
        ((total_comm_s - exposed_s.min(total_comm_s)) / total_comm_s).clamp(0.0, 1.0)
    } else if exposed_s > 0.0 {
        0.0
    } else {
        1.0
    }
}

/// Simulate one data-parallel iteration.
///
/// * `layers` — forward-order layer list (drives gradient-ready times via
///   [`layer_ready_times`]);
/// * `buckets` — from [`crate::bucket::bucketize`];
/// * `model` — compute durations;
/// * `allreduce_time` — communication cost of a bucket of given bytes
///   (provide e.g. a Wrht or ring cost function).
///
/// Total for every input: an empty or all-zero-parameter layer list yields
/// a well-defined zero-communication report (compute time only) instead of
/// panicking, and [`OverlapReport::hidden_fraction`] is never `NaN` or
/// outside `[0, 1]` even when the cost callback returns zero or infinite
/// durations.
pub fn simulate_iteration(
    layers: &[Layer],
    buckets: &[Bucket],
    model: IterationModel,
    mut allreduce_time: impl FnMut(u64) -> f64,
) -> OverlapReport {
    let ready_times = bucket_ready_times(layers, buckets, model);

    let mut network_free = 0.0f64;
    let mut bucket_times = Vec::with_capacity(buckets.len());
    let mut total_comm = 0.0f64;
    for (b, &ready) in buckets.iter().zip(&ready_times) {
        let start = ready.max(network_free);
        let dur = allreduce_time(b.bytes);
        total_comm += dur;
        let finish = start + dur;
        network_free = finish;
        bucket_times.push((ready, start, finish));
    }

    let backward_end = model.forward_s + model.backward_s;
    let overlapped_s = bucket_times
        .last()
        .map_or(backward_end, |&(_, _, f)| f.max(backward_end));

    let total_bytes: u64 = buckets.iter().map(|b| b.bytes).sum();
    let sequential_s = backward_end
        + if total_bytes > 0 {
            allreduce_time(total_bytes)
        } else {
            0.0
        };

    let exposed = (overlapped_s - backward_end).max(0.0);

    OverlapReport {
        overlapped_s,
        sequential_s,
        hidden_fraction: hidden_comm_fraction(total_comm, exposed),
        bucket_times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::bucketize;
    use crate::zoo::resnet50;

    fn model() -> IterationModel {
        IterationModel {
            backward_s: 100e-3,
            forward_s: 50e-3,
        }
    }

    #[test]
    fn overlap_never_beats_compute_bound() {
        let m = resnet50();
        let buckets = bucketize(&m.layers, 25 << 20);
        // Free communication: iteration = forward + backward.
        let r = simulate_iteration(&m.layers, &buckets, model(), |_| 0.0);
        assert!((r.overlapped_s - 150e-3).abs() < 1e-12);
        assert_eq!(r.hidden_fraction, 1.0);
    }

    #[test]
    fn overlap_is_at_most_sequential() {
        let m = resnet50();
        let buckets = bucketize(&m.layers, 25 << 20);
        // A linear-cost network with per-message overhead: overlapping can
        // pay more total overhead, but per-bucket cost here is sublinear so
        // overlapped must not exceed sequential + fused-launch savings.
        let r = simulate_iteration(&m.layers, &buckets, model(), |bytes| bytes as f64 / 10e9);
        assert!(r.overlapped_s <= r.sequential_s + 1e-12);
        assert!(r.hidden_fraction > 0.0);
    }

    #[test]
    fn comm_bound_iteration_is_comm_limited() {
        let m = resnet50();
        let buckets = bucketize(&m.layers, 25 << 20);
        // Extremely slow network: everything is exposed.
        let r = simulate_iteration(&m.layers, &buckets, model(), |bytes| bytes as f64 / 1e6);
        let total_comm: f64 = buckets.iter().map(|b| b.bytes as f64 / 1e6).sum();
        // First bucket can only start after its layers are done, so the
        // iteration is at least the total communication time.
        assert!(r.overlapped_s >= total_comm);
        assert!(r.hidden_fraction < 0.05);
    }

    #[test]
    fn buckets_serialize_on_the_network() {
        let m = resnet50();
        let buckets = bucketize(&m.layers, 25 << 20);
        let r = simulate_iteration(&m.layers, &buckets, model(), |_| 1e-3);
        for w in r.bucket_times.windows(2) {
            assert!(
                w[1].1 >= w[0].2 - 1e-15,
                "bucket started before prior finished"
            );
        }
    }

    #[test]
    fn empty_buckets_cost_compute_only() {
        let m = resnet50();
        let r = simulate_iteration(&m.layers, &[], model(), |_| 1.0);
        assert!((r.overlapped_s - 150e-3).abs() < 1e-12);
    }

    #[test]
    fn empty_model_yields_zero_communication_report() {
        // Regression: this used to panic on `total_params > 0`.
        let r = simulate_iteration(&[], &[], model(), |_| 1.0);
        assert!((r.overlapped_s - 150e-3).abs() < 1e-12);
        assert!((r.sequential_s - 150e-3).abs() < 1e-12);
        assert_eq!(r.hidden_fraction, 1.0);
        assert!(r.bucket_times.is_empty());
    }

    #[test]
    fn zero_param_layers_yield_conservative_ready_times() {
        use crate::layer::Layer;
        let layers = vec![Layer::batch_norm("bn0", 0), Layer::batch_norm("bn1", 0)];
        assert_eq!(layers.iter().map(Layer::params).sum::<usize>(), 0);
        let ready = layer_ready_times(&layers, model());
        let backward_end = model().forward_s + model().backward_s;
        assert_eq!(ready, vec![backward_end, backward_end]);
        // Zero-parameter models bucketize to nothing: compute-only report.
        let buckets = bucketize(&layers, 1 << 20);
        assert!(buckets.is_empty());
        let r = simulate_iteration(&layers, &buckets, model(), |_| 1.0);
        assert!((r.overlapped_s - 150e-3).abs() < 1e-12);
        assert_eq!(r.hidden_fraction, 1.0);
    }

    #[test]
    fn bucket_ready_times_match_earliest_layer() {
        let m = resnet50();
        let buckets = bucketize(&m.layers, 4 << 20);
        let by_layer = layer_ready_times(&m.layers, model());
        let by_bucket = bucket_ready_times(&m.layers, &buckets, model());
        for (b, &t) in buckets.iter().zip(&by_bucket) {
            assert_eq!(t, by_layer[b.earliest_layer_idx]);
        }
        // Later buckets hold earlier layers, so ready times increase.
        for w in by_bucket.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn hidden_fraction_is_never_nan_or_out_of_range() {
        // Infinite per-bucket durations (infeasible cost models) used to
        // produce `exposed / total_comm = inf / inf = NaN`.
        let m = resnet50();
        let buckets = bucketize(&m.layers, 25 << 20);
        let r = simulate_iteration(&m.layers, &buckets, model(), |_| f64::INFINITY);
        assert_eq!(r.hidden_fraction, 0.0);
        assert!(r.overlapped_s.is_infinite());

        // Zero-cost communication: everything is (vacuously) hidden.
        let r = simulate_iteration(&m.layers, &buckets, model(), |_| 0.0);
        assert_eq!(r.hidden_fraction, 1.0);

        // The helper itself covers the full degenerate matrix.
        assert_eq!(hidden_comm_fraction(0.0, 0.0), 1.0);
        assert_eq!(hidden_comm_fraction(0.0, 1.0), 0.0);
        assert_eq!(hidden_comm_fraction(f64::INFINITY, f64::INFINITY), 0.0);
        assert_eq!(hidden_comm_fraction(f64::NAN, 0.0), 1.0);
        let h = hidden_comm_fraction(2.0, 1.0);
        assert!((h - 0.5).abs() < 1e-15);
        for &(c, e) in &[(1e-300, 5.0), (3.0, -1.0), (1.0, f64::INFINITY)] {
            let h = hidden_comm_fraction(c, e);
            assert!((0.0..=1.0).contains(&h), "hidden={h} for ({c}, {e})");
        }
    }
}
