//! Data-parallel iteration model with compute/communication overlap.
//!
//! During backward, gradients appear from the output layer towards the
//! input layer; each fused bucket can start its all-reduce as soon as its
//! earliest layer's gradient exists, while backward continues computing.
//! All-reduces of different buckets serialize on the network (one collective
//! at a time, as NCCL/Horovod launch them in order).

use crate::bucket::Bucket;
use crate::layer::Layer;
use serde::{Deserialize, Serialize};

/// Compute-side model of one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationModel {
    /// Duration of the full backward pass, seconds.
    pub backward_s: f64,
    /// Duration of the forward pass (it precedes backward and hides no
    /// communication of the same iteration), seconds.
    pub forward_s: f64,
}

/// Outcome of the overlap simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapReport {
    /// Iteration time with layer-wise overlap, seconds.
    pub overlapped_s: f64,
    /// Iteration time when the whole gradient is reduced after backward.
    pub sequential_s: f64,
    /// Fraction of communication hidden behind compute, in `[0, 1]`.
    pub hidden_fraction: f64,
    /// Per-bucket (ready, start, finish) times, seconds.
    pub bucket_times: Vec<(f64, f64, f64)>,
}

/// Simulate one data-parallel iteration.
///
/// * `layers` — forward-order layer list (drives gradient-ready times:
///   backward time is apportioned to layers proportionally to their
///   parameter counts, a standard first-order approximation);
/// * `buckets` — from [`crate::bucket::bucketize`];
/// * `model` — compute durations;
/// * `allreduce_time` — communication cost of a bucket of given bytes
///   (provide e.g. a Wrht or ring cost function).
pub fn simulate_iteration(
    layers: &[Layer],
    buckets: &[Bucket],
    model: IterationModel,
    mut allreduce_time: impl FnMut(u64) -> f64,
) -> OverlapReport {
    let total_params: usize = layers.iter().map(Layer::params).sum();
    assert!(total_params > 0, "model has no parameters");

    // Gradient of forward layer i is ready once backward has consumed all
    // layers j >= i (backward walks from the end).
    // ready_time(i) = backward_s * (params of layers i..end) / total.
    let mut suffix = vec![0usize; layers.len() + 1];
    for i in (0..layers.len()).rev() {
        suffix[i] = suffix[i + 1] + layers[i].params();
    }
    let ready_time = |i: usize| -> f64 {
        model.forward_s + model.backward_s * suffix[i] as f64 / total_params as f64
    };

    let mut network_free = 0.0f64;
    let mut bucket_times = Vec::with_capacity(buckets.len());
    let mut total_comm = 0.0f64;
    for b in buckets {
        let ready = ready_time(b.earliest_layer_idx);
        let start = ready.max(network_free);
        let dur = allreduce_time(b.bytes);
        total_comm += dur;
        let finish = start + dur;
        network_free = finish;
        bucket_times.push((ready, start, finish));
    }

    let backward_end = model.forward_s + model.backward_s;
    let overlapped_s = bucket_times
        .last()
        .map_or(backward_end, |&(_, _, f)| f.max(backward_end));

    let total_bytes: u64 = buckets.iter().map(|b| b.bytes).sum();
    let sequential_s = backward_end
        + if total_bytes > 0 {
            allreduce_time(total_bytes)
        } else {
            0.0
        };

    let exposed = (overlapped_s - backward_end).max(0.0);
    let hidden_fraction = if total_comm > 0.0 {
        (1.0 - exposed / total_comm).clamp(0.0, 1.0)
    } else {
        1.0
    };

    OverlapReport {
        overlapped_s,
        sequential_s,
        hidden_fraction,
        bucket_times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::bucketize;
    use crate::zoo::resnet50;

    fn model() -> IterationModel {
        IterationModel {
            backward_s: 100e-3,
            forward_s: 50e-3,
        }
    }

    #[test]
    fn overlap_never_beats_compute_bound() {
        let m = resnet50();
        let buckets = bucketize(&m.layers, 25 << 20);
        // Free communication: iteration = forward + backward.
        let r = simulate_iteration(&m.layers, &buckets, model(), |_| 0.0);
        assert!((r.overlapped_s - 150e-3).abs() < 1e-12);
        assert_eq!(r.hidden_fraction, 1.0);
    }

    #[test]
    fn overlap_is_at_most_sequential() {
        let m = resnet50();
        let buckets = bucketize(&m.layers, 25 << 20);
        // A linear-cost network with per-message overhead: overlapping can
        // pay more total overhead, but per-bucket cost here is sublinear so
        // overlapped must not exceed sequential + fused-launch savings.
        let r = simulate_iteration(&m.layers, &buckets, model(), |bytes| bytes as f64 / 10e9);
        assert!(r.overlapped_s <= r.sequential_s + 1e-12);
        assert!(r.hidden_fraction > 0.0);
    }

    #[test]
    fn comm_bound_iteration_is_comm_limited() {
        let m = resnet50();
        let buckets = bucketize(&m.layers, 25 << 20);
        // Extremely slow network: everything is exposed.
        let r = simulate_iteration(&m.layers, &buckets, model(), |bytes| bytes as f64 / 1e6);
        let total_comm: f64 = buckets.iter().map(|b| b.bytes as f64 / 1e6).sum();
        // First bucket can only start after its layers are done, so the
        // iteration is at least the total communication time.
        assert!(r.overlapped_s >= total_comm);
        assert!(r.hidden_fraction < 0.05);
    }

    #[test]
    fn buckets_serialize_on_the_network() {
        let m = resnet50();
        let buckets = bucketize(&m.layers, 25 << 20);
        let r = simulate_iteration(&m.layers, &buckets, model(), |_| 1e-3);
        for w in r.bucket_times.windows(2) {
            assert!(
                w[1].1 >= w[0].2 - 1e-15,
                "bucket started before prior finished"
            );
        }
    }

    #[test]
    fn empty_buckets_cost_compute_only() {
        let m = resnet50();
        let r = simulate_iteration(&m.layers, &[], model(), |_| 1.0);
        assert!((r.overlapped_s - 150e-3).abs() < 1e-12);
    }
}
