//! The four DNN models of the paper's evaluation, as per-layer tables.
//!
//! Parameter totals are cross-checked against the numbers the paper quotes
//! (AlexNet 62.3 M, VGG16 138 M, ResNet50 25 M, GoogLeNet 6.7977 M); unit
//! tests pin the arithmetic.

use crate::layer::Layer;
use serde::{Deserialize, Serialize};

/// A named model: an ordered list of trainable layers (forward order).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Model {
    /// Model name.
    pub name: String,
    /// Layers in forward order.
    pub layers: Vec<Layer>,
    /// Parameter count the paper quotes for this model.
    pub paper_reported_params: usize,
}

impl Model {
    /// Total trainable parameters (sum over layers).
    #[must_use]
    pub fn params(&self) -> usize {
        self.layers.iter().map(Layer::params).sum()
    }

    /// Gradient size in bytes at fp32.
    #[must_use]
    pub fn gradient_bytes(&self) -> u64 {
        (self.params() * 4) as u64
    }

    /// Relative deviation of the table total from the paper's quote.
    #[must_use]
    pub fn deviation_from_paper(&self) -> f64 {
        let computed = self.params() as f64;
        let reported = self.paper_reported_params as f64;
        (computed - reported).abs() / reported
    }
}

/// AlexNet (Krizhevsky et al., 2012), single-tower (ungrouped) variant —
/// its 62,378,344 parameters are the "62.3 M" the paper quotes.
#[must_use]
pub fn alexnet() -> Model {
    Model {
        name: "AlexNet".into(),
        layers: vec![
            Layer::conv("conv1", 3, 96, 11),
            Layer::conv("conv2", 96, 256, 5),
            Layer::conv("conv3", 256, 384, 3),
            Layer::conv("conv4", 384, 384, 3),
            Layer::conv("conv5", 384, 256, 3),
            Layer::linear("fc6", 256 * 6 * 6, 4096),
            Layer::linear("fc7", 4096, 4096),
            Layer::linear("fc8", 4096, 1000),
        ],
        paper_reported_params: 62_300_000,
    }
}

/// VGG16 (Simonyan & Zisserman, 2014): 138,357,544 parameters.
#[must_use]
pub fn vgg16() -> Model {
    let mut layers = Vec::new();
    // (block, convs, c_in, c_out)
    let blocks: [(usize, usize, usize, usize); 5] = [
        (1, 2, 3, 64),
        (2, 2, 64, 128),
        (3, 3, 128, 256),
        (4, 3, 256, 512),
        (5, 3, 512, 512),
    ];
    for (block, convs, c_in, c_out) in blocks {
        for i in 0..convs {
            let cin = if i == 0 { c_in } else { c_out };
            layers.push(Layer::conv(
                &format!("conv{block}_{}", i + 1),
                cin,
                c_out,
                3,
            ));
        }
    }
    layers.push(Layer::linear("fc6", 512 * 7 * 7, 4096));
    layers.push(Layer::linear("fc7", 4096, 4096));
    layers.push(Layer::linear("fc8", 4096, 1000));
    Model {
        name: "VGG16".into(),
        layers,
        paper_reported_params: 138_000_000,
    }
}

/// ResNet50 (He et al., 2016), torchvision construction:
/// 25,557,032 parameters including batch-norm affine weights.
#[must_use]
pub fn resnet50() -> Model {
    let mut layers = Vec::new();
    layers.push(Layer::conv_nobias("conv1", 3, 64, 7));
    layers.push(Layer::batch_norm("bn1", 64));

    // (stage, blocks, width); expansion 4.
    let stages: [(usize, usize, usize); 4] = [(1, 3, 64), (2, 4, 128), (3, 6, 256), (4, 3, 512)];
    let mut c_in = 64;
    for (stage, blocks, width) in stages {
        for b in 0..blocks {
            let prefix = format!("layer{stage}.{b}");
            layers.push(Layer::conv_nobias(
                &format!("{prefix}.conv1"),
                c_in,
                width,
                1,
            ));
            layers.push(Layer::batch_norm(&format!("{prefix}.bn1"), width));
            layers.push(Layer::conv_nobias(
                &format!("{prefix}.conv2"),
                width,
                width,
                3,
            ));
            layers.push(Layer::batch_norm(&format!("{prefix}.bn2"), width));
            layers.push(Layer::conv_nobias(
                &format!("{prefix}.conv3"),
                width,
                width * 4,
                1,
            ));
            layers.push(Layer::batch_norm(&format!("{prefix}.bn3"), width * 4));
            if b == 0 {
                layers.push(Layer::conv_nobias(
                    &format!("{prefix}.downsample"),
                    c_in,
                    width * 4,
                    1,
                ));
                layers.push(Layer::batch_norm(
                    &format!("{prefix}.downsample_bn"),
                    width * 4,
                ));
            }
            c_in = width * 4;
        }
    }
    layers.push(Layer::linear("fc", 2048, 1000));
    Model {
        name: "ResNet50".into(),
        layers,
        paper_reported_params: 25_000_000,
    }
}

/// GoogLeNet / Inception-v1 (Szegedy et al., 2015), main branch only
/// (no auxiliary classifiers), original biased convolutions.
#[must_use]
pub fn googlenet() -> Model {
    let mut layers = Vec::new();
    layers.push(Layer::conv("conv1", 3, 64, 7));
    layers.push(Layer::conv("conv2_reduce", 64, 64, 1));
    layers.push(Layer::conv("conv2", 64, 192, 3));

    // (name, in, #1x1, #3x3r, #3x3, #5x5r, #5x5, pool-proj)
    type InceptionSpec = (
        &'static str,
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
    );
    let modules: [InceptionSpec; 9] = [
        ("3a", 192, 64, 96, 128, 16, 32, 32),
        ("3b", 256, 128, 128, 192, 32, 96, 64),
        ("4a", 480, 192, 96, 208, 16, 48, 64),
        ("4b", 512, 160, 112, 224, 24, 64, 64),
        ("4c", 512, 128, 128, 256, 24, 64, 64),
        ("4d", 512, 112, 144, 288, 32, 64, 64),
        ("4e", 528, 256, 160, 320, 32, 128, 128),
        ("5a", 832, 256, 160, 320, 32, 128, 128),
        ("5b", 832, 384, 192, 384, 48, 128, 128),
    ];
    for (name, cin, c1, c3r, c3, c5r, c5, pp) in modules {
        layers.push(Layer::conv(&format!("inception{name}.1x1"), cin, c1, 1));
        layers.push(Layer::conv(&format!("inception{name}.3x3r"), cin, c3r, 1));
        layers.push(Layer::conv(&format!("inception{name}.3x3"), c3r, c3, 3));
        layers.push(Layer::conv(&format!("inception{name}.5x5r"), cin, c5r, 1));
        layers.push(Layer::conv(&format!("inception{name}.5x5"), c5r, c5, 5));
        layers.push(Layer::conv(
            &format!("inception{name}.pool_proj"),
            cin,
            pp,
            1,
        ));
    }
    layers.push(Layer::linear("fc", 1024, 1000));
    Model {
        name: "GoogLeNet".into(),
        layers,
        paper_reported_params: 6_797_700,
    }
}

/// The four models of Figure 2, in the paper's order.
#[must_use]
pub fn paper_models() -> Vec<Model> {
    vec![alexnet(), vgg16(), resnet50(), googlenet()]
}

/// Every model the zoo can name: the paper's four CNNs followed by the
/// transformer pair ([`crate::transformer::gpt2_small`],
/// [`crate::transformer::bert_large`]) the parallelism campaigns train.
#[must_use]
pub fn all_models() -> Vec<Model> {
    let mut models = paper_models();
    models.push(crate::transformer::gpt2_small());
    models.push(crate::transformer::bert_large());
    models
}

/// Look up a model by name, case-insensitively and ignoring `-`/`_`
/// separators, so the command-line spellings `gpt2_small`, `GPT2-small`
/// and `gpt2small` all resolve to the same table.
#[must_use]
pub fn model_by_name(name: &str) -> Option<Model> {
    fn key(s: &str) -> String {
        s.chars()
            .filter(|c| *c != '-' && *c != '_')
            .map(|c| c.to_ascii_lowercase())
            .collect()
    }
    let want = key(name);
    all_models().into_iter().find(|m| key(&m.name) == want)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_total_is_exact() {
        assert_eq!(alexnet().params(), 62_378_344);
        assert!(alexnet().deviation_from_paper() < 0.005);
    }

    #[test]
    fn vgg16_total_is_exact() {
        assert_eq!(vgg16().params(), 138_357_544);
        assert!(vgg16().deviation_from_paper() < 0.01);
    }

    #[test]
    fn resnet50_total_is_exact() {
        assert_eq!(resnet50().params(), 25_557_032);
        assert!(resnet50().deviation_from_paper() < 0.03);
    }

    #[test]
    fn googlenet_total_matches_paper_within_tolerance() {
        let m = googlenet();
        // The poster quotes 6.7977 M; inception-v1 main-branch tables in the
        // literature land between 6.6 M and 7.0 M depending on bias/LRN
        // conventions. Require agreement within 4 %.
        assert!(
            m.deviation_from_paper() < 0.04,
            "GoogLeNet params {} deviate {:.2}% from paper",
            m.params(),
            m.deviation_from_paper() * 100.0
        );
    }

    #[test]
    fn gradient_bytes_fp32() {
        assert_eq!(vgg16().gradient_bytes(), 138_357_544 * 4);
    }

    #[test]
    fn layer_counts_are_sane() {
        assert_eq!(alexnet().layers.len(), 8);
        assert_eq!(vgg16().layers.len(), 16);
        // 1 stem conv + bn, 16 blocks * 6 + 4 downsample pairs, + fc.
        assert_eq!(resnet50().layers.len(), 2 + 16 * 6 + 4 * 2 + 1);
        assert_eq!(googlenet().layers.len(), 3 + 9 * 6 + 1);
    }

    #[test]
    fn paper_models_order() {
        let names: Vec<String> = paper_models().into_iter().map(|m| m.name).collect();
        assert_eq!(names, ["AlexNet", "VGG16", "ResNet50", "GoogLeNet"]);
    }

    #[test]
    fn registry_lists_cnns_then_transformers() {
        let names: Vec<String> = all_models().into_iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            [
                "AlexNet",
                "VGG16",
                "ResNet50",
                "GoogLeNet",
                "GPT2-small",
                "BERT-large"
            ]
        );
    }

    #[test]
    fn lookup_is_spelling_tolerant() {
        assert_eq!(model_by_name("gpt2_small").unwrap().name, "GPT2-small");
        assert_eq!(model_by_name("GPT2-small").unwrap().name, "GPT2-small");
        assert_eq!(model_by_name("bert_large").unwrap().name, "BERT-large");
        assert_eq!(model_by_name("resnet50").unwrap().name, "ResNet50");
        assert_eq!(model_by_name("ALEXNET").unwrap().name, "AlexNet");
        assert!(model_by_name("lenet").is_none());
    }

    #[test]
    fn transformer_layer_tables_pin_parameter_counts() {
        // Exact table totals, so a silent layer-table edit cannot drift
        // the traffic the parallelism lowering generates.
        let gpt2 = model_by_name("gpt2_small").unwrap();
        let bert = model_by_name("bert_large").unwrap();
        assert_eq!(gpt2.params(), PIN_GPT2);
        assert_eq!(bert.params(), PIN_BERT);
        assert_eq!(gpt2.gradient_bytes(), (PIN_GPT2 * 4) as u64);
        assert_eq!(bert.gradient_bytes(), (PIN_BERT * 4) as u64);
    }

    const PIN_GPT2: usize = 124_439_808;
    const PIN_BERT: usize = 334_090_240;
}
