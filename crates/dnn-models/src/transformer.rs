//! Transformer workloads — an extension beyond the poster's four CNNs.
//!
//! Modern all-reduce traffic is dominated by transformer gradients; these
//! generators produce layer tables with standard parameter arithmetic so
//! the same experiments run on BERT/GPT-class models.
//!
//! ```
//! use dnn_models::transformer::{bert_large, gpt2_small};
//!
//! // Both land near their published parameter counts.
//! assert!((gpt2_small().params() as f64 / 124e6 - 1.0).abs() < 0.1);
//! assert!((bert_large().params() as f64 / 340e6 - 1.0).abs() < 0.1);
//! ```

use crate::layer::{Layer, LayerKind};
use crate::zoo::Model;

/// Configuration of a standard pre-LN transformer encoder/decoder stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Number of transformer blocks.
    pub layers: usize,
    /// Hidden width `d_model`.
    pub d_model: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Token vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length (positional table).
    pub max_seq: usize,
    /// Whether the token embedding is tied to the output head.
    pub tied_embeddings: bool,
}

/// Build the layer table for a transformer stack.
#[must_use]
pub fn transformer(name: &str, cfg: TransformerConfig) -> Model {
    let d = cfg.d_model;
    let mut layers = Vec::new();
    layers.push(Layer {
        name: "embed.tokens".into(),
        kind: LayerKind::Raw {
            count: cfg.vocab * d,
        },
    });
    layers.push(Layer {
        name: "embed.positions".into(),
        kind: LayerKind::Raw {
            count: cfg.max_seq * d,
        },
    });
    for b in 0..cfg.layers {
        let p = format!("block{b}");
        // Attention: Q, K, V, output projections (with bias).
        for proj in ["q", "k", "v", "o"] {
            layers.push(Layer::linear(&format!("{p}.attn.{proj}"), d, d));
        }
        // Two LayerNorms per block.
        layers.push(Layer {
            name: format!("{p}.ln1"),
            kind: LayerKind::Raw { count: 2 * d },
        });
        layers.push(Layer {
            name: format!("{p}.ln2"),
            kind: LayerKind::Raw { count: 2 * d },
        });
        // Feed-forward.
        layers.push(Layer::linear(&format!("{p}.ff.up"), d, cfg.d_ff));
        layers.push(Layer::linear(&format!("{p}.ff.down"), cfg.d_ff, d));
    }
    layers.push(Layer {
        name: "ln_final".into(),
        kind: LayerKind::Raw { count: 2 * d },
    });
    if !cfg.tied_embeddings {
        layers.push(Layer {
            name: "lm_head".into(),
            kind: LayerKind::Raw {
                count: cfg.vocab * d,
            },
        });
    }
    let reported = layers.iter().map(Layer::params).sum();
    Model {
        name: name.into(),
        layers,
        paper_reported_params: reported,
    }
}

/// GPT-2 (117 M class): 12 blocks, d=768, ff=3072, tied embeddings.
#[must_use]
pub fn gpt2_small() -> Model {
    transformer(
        "GPT2-small",
        TransformerConfig {
            layers: 12,
            d_model: 768,
            d_ff: 3072,
            vocab: 50257,
            max_seq: 1024,
            tied_embeddings: true,
        },
    )
}

/// BERT-Large (340 M class): 24 blocks, d=1024, ff=4096.
#[must_use]
pub fn bert_large() -> Model {
    transformer(
        "BERT-large",
        TransformerConfig {
            layers: 24,
            d_model: 1024,
            d_ff: 4096,
            vocab: 30522,
            max_seq: 512,
            tied_embeddings: true,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt2_small_is_roughly_124m() {
        let m = gpt2_small();
        let p = m.params() as f64;
        // Published GPT-2 small: 124.4 M parameters.
        assert!(
            (p / 124.4e6 - 1.0).abs() < 0.02,
            "got {} params",
            m.params()
        );
    }

    #[test]
    fn bert_large_is_roughly_335m() {
        let m = bert_large();
        let p = m.params() as f64;
        // Published BERT-large: ~335 M (encoder, tied head).
        assert!(
            (p / 335.0e6 - 1.0).abs() < 0.05,
            "got {} params",
            m.params()
        );
    }

    #[test]
    fn block_count_matches_config() {
        let m = transformer(
            "tiny",
            TransformerConfig {
                layers: 3,
                d_model: 64,
                d_ff: 256,
                vocab: 1000,
                max_seq: 128,
                tied_embeddings: false,
            },
        );
        // 2 embeddings + 3 blocks * 8 + final LN + untied head.
        assert_eq!(m.layers.len(), 2 + 3 * 8 + 1 + 1);
    }

    #[test]
    fn untied_head_adds_vocab_times_d() {
        let base = TransformerConfig {
            layers: 1,
            d_model: 64,
            d_ff: 256,
            vocab: 1000,
            max_seq: 16,
            tied_embeddings: true,
        };
        let tied = transformer("t", base);
        let untied = transformer(
            "u",
            TransformerConfig {
                tied_embeddings: false,
                ..base
            },
        );
        assert_eq!(untied.params() - tied.params(), 1000 * 64);
    }

    #[test]
    fn gradient_bytes_track_params() {
        let m = gpt2_small();
        assert_eq!(m.gradient_bytes(), (m.params() * 4) as u64);
    }
}
