//! Layer descriptors and parameter-count arithmetic.

use serde::{Deserialize, Serialize};

/// The kind of a trainable layer (only what affects parameter counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv2d {
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Square kernel size.
        kernel: usize,
        /// Whether the layer has a bias vector.
        bias: bool,
    },
    /// Fully connected (dense) layer.
    Linear {
        /// Input features.
        f_in: usize,
        /// Output features.
        f_out: usize,
        /// Whether the layer has a bias vector.
        bias: bool,
    },
    /// Batch normalization (affine): one weight + one bias per channel.
    BatchNorm {
        /// Channels.
        channels: usize,
    },
    /// A raw parameter blob (embeddings, LRN scales, ...).
    Raw {
        /// Parameter count.
        count: usize,
    },
}

impl LayerKind {
    /// Trainable parameters of this layer.
    #[must_use]
    pub fn params(&self) -> usize {
        match *self {
            LayerKind::Conv2d {
                c_in,
                c_out,
                kernel,
                bias,
            } => c_in * c_out * kernel * kernel + if bias { c_out } else { 0 },
            LayerKind::Linear { f_in, f_out, bias } => f_in * f_out + if bias { f_out } else { 0 },
            LayerKind::BatchNorm { channels } => 2 * channels,
            LayerKind::Raw { count } => count,
        }
    }
}

/// A named trainable layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layer {
    /// Layer name (e.g. `"conv2_1"`).
    pub name: String,
    /// Structural description.
    pub kind: LayerKind,
}

impl Layer {
    /// Convolution with bias.
    #[must_use]
    pub fn conv(name: &str, c_in: usize, c_out: usize, kernel: usize) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::Conv2d {
                c_in,
                c_out,
                kernel,
                bias: true,
            },
        }
    }

    /// Convolution without bias (as used before batch-norm).
    #[must_use]
    pub fn conv_nobias(name: &str, c_in: usize, c_out: usize, kernel: usize) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::Conv2d {
                c_in,
                c_out,
                kernel,
                bias: false,
            },
        }
    }

    /// Dense layer with bias.
    #[must_use]
    pub fn linear(name: &str, f_in: usize, f_out: usize) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::Linear {
                f_in,
                f_out,
                bias: true,
            },
        }
    }

    /// Batch normalization over `channels`.
    #[must_use]
    pub fn batch_norm(name: &str, channels: usize) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::BatchNorm { channels },
        }
    }

    /// Trainable parameters.
    #[must_use]
    pub fn params(&self) -> usize {
        self.kind.params()
    }

    /// Gradient bytes at 4 bytes per parameter (fp32).
    #[must_use]
    pub fn gradient_bytes(&self) -> u64 {
        (self.params() * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_param_arithmetic() {
        // AlexNet conv1: 3 -> 96, 11x11, bias.
        assert_eq!(Layer::conv("conv1", 3, 96, 11).params(), 34_944);
        assert_eq!(Layer::conv_nobias("c", 3, 64, 7).params(), 9_408);
    }

    #[test]
    fn linear_param_arithmetic() {
        // AlexNet fc6: 9216 -> 4096, bias.
        assert_eq!(Layer::linear("fc6", 9216, 4096).params(), 37_752_832);
    }

    #[test]
    fn batch_norm_params() {
        assert_eq!(Layer::batch_norm("bn", 64).params(), 128);
    }

    #[test]
    fn gradient_bytes_are_4x_params() {
        let l = Layer::linear("fc", 10, 10);
        assert_eq!(l.gradient_bytes(), 110 * 4);
    }

    #[test]
    fn raw_blob() {
        assert_eq!(LayerKind::Raw { count: 42 }.params(), 42);
    }
}
