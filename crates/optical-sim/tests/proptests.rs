//! Property tests for the optical substrate.

use optical_sim::conflict::{congestion_lower_bound, greedy_wavelength_bound, validate_assignment};
use optical_sim::path::LightPath;
use optical_sim::rwa::{Occupancy, Strategy as Rwa};
use optical_sim::topology::{Direction, NodeId, RingTopology};
use optical_sim::{OpticalConfig, RingSimulator, StepSchedule, Transfer};
use proptest::prelude::*;

fn arb_direction() -> impl Strategy<Value = Direction> {
    prop_oneof![
        Just(Direction::Clockwise),
        Just(Direction::CounterClockwise)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hops_inverse_of_step_from(n in 2usize..64, a in 0usize..64, k in 0usize..64) {
        let a = a % n;
        let t = RingTopology::new(n);
        for dir in Direction::BOTH {
            let b = t.step_from(NodeId(a), k, dir);
            prop_assert_eq!(t.hops(NodeId(a), b, dir), k % n);
        }
    }

    #[test]
    fn shortest_direction_minimizes_hops(n in 2usize..64, a in 0usize..64, b in 0usize..64) {
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let t = RingTopology::new(n);
        let dir = t.shortest_direction(NodeId(a), NodeId(b));
        let chosen = t.hops(NodeId(a), NodeId(b), dir);
        let other = t.hops(NodeId(a), NodeId(b), dir.opposite());
        prop_assert!(chosen <= other);
        prop_assert_eq!(chosen, t.min_hops(NodeId(a), NodeId(b)));
    }

    /// Any batch the RWA accepts is conflict-free, under both strategies.
    #[test]
    fn rwa_assignments_are_conflict_free(
        n in 4usize..48,
        w in 1usize..32,
        seed in proptest::collection::vec((0usize..48, 0usize..48, arb_direction(), 1usize..4), 1..20),
        best_fit in proptest::bool::ANY,
    ) {
        let t = RingTopology::new(n);
        let mut occ = Occupancy::new(n, w);
        let strategy = if best_fit { Rwa::BestFit } else { Rwa::FirstFit };
        let mut placed_paths = Vec::new();
        let mut placed_lanes = Vec::new();
        for (a, b, dir, lanes) in seed {
            let (a, b) = (a % n, b % n);
            if a == b { continue; }
            let path = LightPath::routed(&t, NodeId(a), NodeId(b), dir);
            if let Ok(lambdas) = occ.assign(&path, lanes, strategy) {
                prop_assert_eq!(lambdas.len(), lanes);
                placed_paths.push(path);
                placed_lanes.push(lambdas);
            }
        }
        prop_assert!(validate_assignment(&placed_paths, &placed_lanes));
    }

    /// The greedy colouring bound is sandwiched between the congestion
    /// lower bound and what sequential First-Fit actually consumes.
    #[test]
    fn wavelength_bounds_are_ordered(
        n in 8usize..40,
        pairs in proptest::collection::vec((0usize..40, 0usize..40), 1..15),
    ) {
        let t = RingTopology::new(n);
        let batch: Vec<(LightPath, usize)> = pairs
            .into_iter()
            .filter_map(|(a, b)| {
                let (a, b) = (a % n, b % n);
                (a != b).then(|| (LightPath::shortest(&t, NodeId(a), NodeId(b)), 1))
            })
            .collect();
        prop_assume!(!batch.is_empty());
        let lower = congestion_lower_bound(&batch);
        let greedy = greedy_wavelength_bound(&batch);
        prop_assert!(greedy >= lower);
        // Sequential First-Fit over a generous budget.
        let mut occ = Occupancy::new(n, batch.len() + 1);
        for (p, lanes) in &batch {
            occ.assign(p, *lanes, Rwa::FirstFit).unwrap();
        }
        prop_assert!(occ.peak_wavelengths_used() >= lower);
    }

    /// Stepped simulation time equals the max transfer time per step,
    /// summed — and never depends on transfer order within a step.
    #[test]
    fn stepped_time_is_order_invariant(
        n in 4usize..32,
        mut pairs in proptest::collection::vec((0usize..32, 0usize..32, 1u64..1_000_000), 2..10),
    ) {
        let cfg = OpticalConfig::new(n, 64);
        let make = |pairs: &[(usize, usize, u64)]| {
            let step: Vec<Transfer> = pairs
                .iter()
                .filter_map(|&(a, b, bytes)| {
                    let (a, b) = (a % n, b % n);
                    (a != b).then(|| Transfer::shortest(NodeId(a), NodeId(b), bytes))
                })
                .collect();
            StepSchedule::from_steps(vec![step])
        };
        let fwd = make(&pairs);
        prop_assume!(fwd.transfer_count() > 0);
        pairs.reverse();
        let rev = make(&pairs);
        let mut sim = RingSimulator::new(cfg);
        let t1 = sim.run_stepped(&fwd, Rwa::FirstFit);
        let t2 = sim.run_stepped(&rev, Rwa::FirstFit);
        match (t1, t2) {
            (Ok(a), Ok(b)) => prop_assert!((a.total_time_s - b.total_time_s).abs() < 1e-15),
            // Order can affect feasibility only through identical budgets;
            // with w=64 and <=10 unit-lane transfers it never fails.
            _ => prop_assert!(false, "unexpected infeasibility"),
        }
    }

    /// Event-driven makespan is bounded below by the longest single
    /// transfer and above by the serial sum.
    #[test]
    fn event_driven_makespan_bounds(
        n in 4usize..24,
        pairs in proptest::collection::vec((0usize..24, 0usize..24, 1u64..500_000), 1..8),
    ) {
        let cfg = OpticalConfig::new(n, 2)
            .with_message_overhead(0.0)
            .with_hop_propagation(0.0);
        let timing = cfg.timing();
        let released: Vec<(f64, Transfer)> = pairs
            .iter()
            .filter_map(|&(a, b, bytes)| {
                let (a, b) = (a % n, b % n);
                (a != b).then(|| (0.0, Transfer::shortest(NodeId(a), NodeId(b), bytes)))
            })
            .collect();
        prop_assume!(!released.is_empty());
        let topo = RingTopology::new(n);
        let times: Vec<f64> = released
            .iter()
            .map(|(_, tr)| {
                let hops = topo.min_hops(tr.src, tr.dst);
                timing.transfer_time(tr.bytes, 1, hops)
            })
            .collect();
        let longest = times.iter().copied().fold(0.0, f64::max);
        let serial: f64 = times.iter().sum();
        let mut sim = RingSimulator::new(cfg);
        let r = sim.run_event_driven(&released).unwrap();
        prop_assert!(r.makespan_s >= longest - 1e-12);
        prop_assert!(r.makespan_s <= serial + 1e-12);
    }
}
