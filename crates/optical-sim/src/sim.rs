//! The ring simulator: stepped and event-driven execution of schedules.

use crate::config::OpticalConfig;
use crate::engine::{GrantEngine, GrantTransfer};
use crate::error::{OpticalError, Result};
use crate::path::LightPath;
use crate::request::Transfer;
use crate::rwa::{Occupancy, Strategy};
use crate::stats::{RunStats, StepStats};
use crate::topology::{Direction, RingTopology};
use serde::{Deserialize, Serialize};
use wrht_kernel::{EventId, EventKernel, FaultKind, FaultLimits, FaultPolicy, FaultScript};

/// A step-synchronous communication schedule: every transfer of a step
/// starts together, and a step ends when its slowest transfer completes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StepSchedule {
    steps: Vec<Vec<Transfer>>,
}

impl StepSchedule {
    /// Build from explicit steps.
    #[must_use]
    pub fn from_steps(steps: Vec<Vec<Transfer>>) -> Self {
        Self { steps }
    }

    /// Append a step.
    pub fn push_step(&mut self, step: Vec<Transfer>) {
        self.steps.push(step);
    }

    /// The steps, in order.
    #[must_use]
    pub fn steps(&self) -> &[Vec<Transfer>] {
        &self.steps
    }

    /// Number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the schedule has no steps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total transfers across all steps.
    #[must_use]
    pub fn transfer_count(&self) -> usize {
        self.steps.iter().map(Vec::len).sum()
    }

    /// Total payload bytes across all steps.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.steps.iter().flatten().map(|t| t.bytes).sum()
    }
}

/// Result of a stepped run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepReport {
    /// Total simulated communication time, seconds.
    pub total_time_s: f64,
    /// Per-step statistics.
    pub stats: RunStats,
}

/// Result of an event-driven run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventReport {
    /// Makespan: completion time of the last transfer, seconds.
    pub makespan_s: f64,
    /// Per-transfer (start, finish) times in submission order.
    pub transfer_times: Vec<(f64, f64)>,
    /// Peak number of concurrently active transfers.
    pub peak_concurrency: usize,
    /// Events processed by the event kernel during the run.
    pub events: u64,
}

/// A dependency-aware transfer submitted to [`RingSimulator::run_dag`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagTransfer {
    /// The transfer itself (route, payload, striping lanes).
    pub transfer: Transfer,
    /// Earliest release time, seconds; 0 for dependency-driven transfers.
    pub release_s: f64,
    /// Indices of transfers that must complete first (each `<` own index).
    pub deps: Vec<usize>,
}

/// Cross-job wavelength arbitration for [`RingSimulator::run_dag_jobs`].
///
/// A multi-tenant DAG is a concatenation of per-job transfer lists; serving
/// waiters in plain DAG order would hand every contended wavelength to the
/// job that happens to come first in the list. This struct tells the grant
/// loop which job each transfer belongs to and how jobs are ordered when
/// they compete for lanes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobArbitration {
    /// Job index of every transfer, parallel to the transfer list. Every
    /// entry must be `< rank.len()`.
    pub job_of: Vec<usize>,
    /// Static grant rank per job — when two jobs' waiters compete for the
    /// same lanes, the lower-ranked job is served first (e.g. FIFO by
    /// arrival, or by priority).
    pub rank: Vec<u64>,
    /// When set, the job with the least accumulated service (granted
    /// lane-seconds) is served first and `rank` only breaks ties —
    /// a deterministic fair-share discipline.
    pub fair_share: bool,
}

/// Result of a dependency-aware run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagReport {
    /// Completion time of the last transfer, seconds.
    pub makespan_s: f64,
    /// Per-transfer (start, finish) times in submission order. `start` is
    /// the instant the transfer's wavelengths were granted (gates open
    /// *and* lanes free along the path).
    pub transfer_times: Vec<(f64, f64)>,
    /// Peak number of concurrently active transfers.
    pub peak_concurrency: usize,
    /// Highest wavelength index in use at any instant, plus one.
    pub peak_wavelength: usize,
    /// Events processed by the event kernel during the run.
    pub events: u64,
}

/// Per-transfer outcome of a faulted DAG run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultOutcome {
    /// Instant of the (last) wavelength grant, seconds; 0 if never granted.
    pub start_s: f64,
    /// Completion instant, seconds; 0 if the transfer never completed.
    pub finish_s: f64,
    /// Times the transfer was aborted mid-flight by a fault.
    pub aborts: u32,
    /// Did the transfer complete?
    pub completed: bool,
}

/// Result of a dependency-aware run under a fault script
/// ([`RingSimulator::run_dag_faulted`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultDagReport {
    /// Completion time of the last *completed* transfer, seconds.
    pub makespan_s: f64,
    /// Per-transfer outcomes in submission order.
    pub outcomes: Vec<FaultOutcome>,
    /// Peak number of concurrently active transfers.
    pub peak_concurrency: usize,
    /// Highest wavelength index in use at any instant, plus one.
    pub peak_wavelength: usize,
    /// Events processed by the event kernel during the run.
    pub events: u64,
    /// Instant the first transfer was aborted or failed by a fault, if any.
    pub first_impact_s: Option<f64>,
}

impl FaultDagReport {
    /// Number of transfers that never completed.
    #[must_use]
    pub fn failed_transfers(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.completed).count()
    }

    /// Total mid-flight aborts across all transfers.
    #[must_use]
    pub fn total_aborts(&self) -> u64 {
        self.outcomes.iter().map(|o| u64::from(o.aborts)).sum()
    }
}

/// Simulator for one optical ring deployment.
#[derive(Debug, Clone)]
pub struct RingSimulator {
    config: OpticalConfig,
    topo: RingTopology,
}

impl RingSimulator {
    /// Build a simulator; panics on invalid configuration
    /// (use [`RingSimulator::try_new`] to handle errors).
    #[must_use]
    pub fn new(config: OpticalConfig) -> Self {
        Self::try_new(config).expect("invalid optical configuration")
    }

    /// Fallible constructor.
    pub fn try_new(config: OpticalConfig) -> Result<Self> {
        config.validate()?;
        let topo = RingTopology::try_new(config.nodes)?;
        Ok(Self { config, topo })
    }

    /// The ring topology.
    #[must_use]
    pub fn topology(&self) -> &RingTopology {
        &self.topo
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &OpticalConfig {
        &self.config
    }

    /// Execute a stepped schedule with the given RWA strategy.
    ///
    /// Fails if any step cannot be wavelength-assigned within the configured
    /// channel count — Wrht plans are constructed to always fit.
    pub fn run_stepped(
        &mut self,
        schedule: &StepSchedule,
        strategy: Strategy,
    ) -> Result<StepReport> {
        let timing = self.config.timing();
        let mut stats = RunStats::default();
        for (index, step) in schedule.steps.iter().enumerate() {
            let mut occ = Occupancy::new(self.topo.nodes(), self.config.wavelengths);
            let mut duration = 0.0f64;
            let mut bytes = 0u64;
            let mut total_lanes = 0usize;
            let mut max_hops = 0usize;
            for tr in step {
                let path = tr.resolve(&self.topo)?;
                occ.assign(&path, tr.lanes, strategy).map_err(|e| match e {
                    OpticalError::WavelengthsExhausted {
                        available,
                        requested,
                        ..
                    } => OpticalError::WavelengthsExhausted {
                        available,
                        requested,
                        step: index,
                    },
                    other => other,
                })?;
                let t = timing.transfer_time(tr.bytes, tr.lanes, path.hops());
                duration = duration.max(t);
                bytes += tr.bytes;
                total_lanes += tr.lanes;
                max_hops = max_hops.max(path.hops());
            }
            stats.steps.push(StepStats {
                index,
                transfers: step.len(),
                duration_s: duration,
                bytes,
                wavelengths_used: occ.distinct_wavelengths_used(),
                peak_wavelength: occ.peak_wavelengths_used(),
                total_lanes,
                max_hops,
            });
        }
        Ok(StepReport {
            total_time_s: stats.total_time_s(),
            stats,
        })
    }

    /// Execute transfers event-driven: each transfer is released at a given
    /// time, waits until its lanes are free along its path (FIFO among
    /// waiters), transmits, then releases its wavelengths.
    ///
    /// This mode exposes wavelength *contention* that the stepped model hides
    /// and is used by the contention ablation and cross-checking tests.
    pub fn run_event_driven(&mut self, released: &[(f64, Transfer)]) -> Result<EventReport> {
        #[derive(Debug)]
        enum Ev {
            Release(usize),
            Complete(usize),
        }

        let timing = self.config.timing();
        let mut occ = Occupancy::new(self.topo.nodes(), self.config.wavelengths);

        // Pre-resolve paths and validate feasibility in isolation.
        let mut paths: Vec<LightPath> = Vec::with_capacity(released.len());
        for (_, tr) in released {
            let path = tr.resolve(&self.topo)?;
            if tr.lanes > self.config.wavelengths {
                return Err(OpticalError::WavelengthsExhausted {
                    available: self.config.wavelengths,
                    requested: tr.lanes,
                    step: 0,
                });
            }
            paths.push(path);
        }

        let mut queue: EventKernel<Ev> = EventKernel::with_capacity(released.len());
        for (i, (t, _)) in released.iter().enumerate() {
            queue
                .schedule_at(*t, Ev::Release(i))
                .map_err(|_| OpticalError::BadConfig("release time must be finite and >= 0"))?;
        }

        let mut waiting: Vec<usize> = Vec::new();
        let mut assigned: Vec<Vec<crate::wavelength::Wavelength>> =
            vec![Vec::new(); released.len()];
        let mut times = vec![(f64::NAN, f64::NAN); released.len()];
        let mut active = 0usize;
        let mut peak = 0usize;
        let mut makespan = 0.0f64;

        // Try to start every waiter that now fits, in FIFO order.
        #[allow(clippy::too_many_arguments)] // local helper shared by two arms
        fn drain_waiting(
            waiting: &mut Vec<usize>,
            occ: &mut Occupancy,
            paths: &[LightPath],
            released: &[(f64, Transfer)],
            assigned: &mut [Vec<crate::wavelength::Wavelength>],
            times: &mut [(f64, f64)],
            queue: &mut EventKernel<Ev>,
            timing: &crate::timing::TimingModel,
            active: &mut usize,
            peak: &mut usize,
        ) {
            let mut i = 0;
            while i < waiting.len() {
                let id = waiting[i];
                let tr = &released[id].1;
                match occ.assign(&paths[id], tr.lanes, Strategy::FirstFit) {
                    Ok(lanes) => {
                        assigned[id] = lanes;
                        let dur = timing.transfer_time(tr.bytes, tr.lanes, paths[id].hops());
                        times[id].0 = queue.now();
                        queue
                            .schedule_in(dur, Ev::Complete(id))
                            .expect("transfer duration is a finite forward delay");
                        *active += 1;
                        *peak = (*peak).max(*active);
                        waiting.remove(i);
                    }
                    Err(_) => i += 1,
                }
            }
        }

        while let Some((now, ev)) = queue.pop() {
            match ev {
                Ev::Release(id) => {
                    waiting.push(id);
                    drain_waiting(
                        &mut waiting,
                        &mut occ,
                        &paths,
                        released,
                        &mut assigned,
                        &mut times,
                        &mut queue,
                        &timing,
                        &mut active,
                        &mut peak,
                    );
                }
                Ev::Complete(id) => {
                    for &lambda in &assigned[id] {
                        occ.release(&paths[id], lambda);
                    }
                    times[id].1 = now;
                    makespan = makespan.max(now);
                    active -= 1;
                    drain_waiting(
                        &mut waiting,
                        &mut occ,
                        &paths,
                        released,
                        &mut assigned,
                        &mut times,
                        &mut queue,
                        &timing,
                        &mut active,
                        &mut peak,
                    );
                }
            }
        }

        debug_assert!(waiting.is_empty(), "transfers starved in event-driven run");
        Ok(EventReport {
            makespan_s: makespan,
            transfer_times: times,
            peak_concurrency: peak,
            events: queue.events_processed(),
        })
    }

    /// Execute a dependency-aware transfer DAG: each transfer is released
    /// the instant its last predecessor completes (and its `release_s` has
    /// passed), waits for its lanes along its path, transmits, then
    /// **releases its wavelengths immediately** — not at a step barrier.
    /// Waiters are served in **DAG order** (ascending transfer index, not
    /// arrival order), and a waiter whose path shares a same-direction
    /// segment with an earlier *blocked* waiter is held back too: later
    /// transfers never steal lanes out from under the critical chain, so
    /// wavelength-saturated schedules degrade to clean serialization
    /// instead of fragmenting the budget.
    ///
    /// For a DAG encoding full step barriers (every transfer of a step
    /// depending on the whole previous step) the makespan equals
    /// [`RingSimulator::run_stepped`]'s total **bit-exactly**: with all of
    /// a step's predecessors finishing at the same barrier instant `T`,
    /// each transfer finishes at `T ⊕ dᵢ`, and IEEE-754 addition is
    /// monotone, so `max(T ⊕ dᵢ) = T ⊕ max dᵢ` — the stepped left-fold sum.
    /// Unlike the stepped mode, a transfer that momentarily cannot get its
    /// lanes waits instead of failing, so contention shows up as time.
    pub fn run_dag(&mut self, transfers: &[DagTransfer], strategy: Strategy) -> Result<DagReport> {
        self.run_dag_arbitrated(transfers, strategy, None)
    }

    /// Execute a **multi-job** transfer DAG: like [`RingSimulator::run_dag`],
    /// but waiters competing for wavelengths are served in the order the
    /// [`JobArbitration`] dictates (static per-job rank, optionally
    /// least-service-first fair sharing) instead of pure DAG order. Within
    /// a job, waiters keep their DAG order. With a single job (all tags
    /// equal, one rank) this is **bit-exact** with [`RingSimulator::run_dag`]
    /// — the arbitration key degenerates to the transfer index.
    pub fn run_dag_jobs(
        &mut self,
        transfers: &[DagTransfer],
        arb: &JobArbitration,
        strategy: Strategy,
    ) -> Result<DagReport> {
        if arb.job_of.len() != transfers.len() {
            return Err(OpticalError::BadConfig(
                "job tag list must match the transfer list",
            ));
        }
        if arb.job_of.iter().any(|&j| j >= arb.rank.len()) {
            return Err(OpticalError::BadConfig(
                "job tag out of range of the rank table",
            ));
        }
        self.run_dag_arbitrated(transfers, strategy, Some(arb))
    }

    /// Shared body of [`RingSimulator::run_dag`] (no arbitration: waiters
    /// served in DAG order) and [`RingSimulator::run_dag_jobs`]: a thin
    /// closed-set driver over the streaming [`GrantEngine`] — the whole DAG
    /// is injected as one batch at time zero (so order keys equal transfer
    /// indices and arbitration tie-breaks match the historical DAG order)
    /// and the engine is pumped to idle.
    fn run_dag_arbitrated(
        &mut self,
        transfers: &[DagTransfer],
        strategy: Strategy,
        arb: Option<&JobArbitration>,
    ) -> Result<DagReport> {
        let mut eng = GrantEngine::new(
            &self.config,
            strategy,
            arb.is_some(),
            arb.is_some_and(|a| a.fair_share),
        )?;
        if let Some(a) = arb {
            for &r in &a.rank {
                eng.add_job(r);
            }
        }
        let items: Vec<GrantTransfer> = transfers
            .iter()
            .enumerate()
            .map(|(i, t)| GrantTransfer {
                transfer: t.transfer.clone(),
                release_s: t.release_s,
                deps: t.deps.clone(),
                job: arb.map_or(0, |a| a.job_of[i]),
            })
            .collect();
        eng.inject(&items)?;
        while eng.step().is_some() {}

        if let Some(lanes) = eng.stuck_lanes() {
            // Can only happen if a transfer's lane demand can never be met
            // concurrently with an earlier waiter — surface it rather than
            // silently dropping the transfer.
            return Err(OpticalError::WavelengthsExhausted {
                available: self.config.wavelengths,
                requested: lanes,
                step: 0,
            });
        }
        let mut times = vec![(f64::NAN, f64::NAN); transfers.len()];
        let mut completions = Vec::with_capacity(transfers.len());
        eng.drain_completions(&mut completions);
        for c in &completions {
            // One batch injected at time zero: order keys are indices.
            times[usize::try_from(c.order).expect("order fits usize")] = (c.start_s, c.finish_s);
        }
        Ok(DagReport {
            makespan_s: eng.makespan(),
            transfer_times: times,
            peak_concurrency: eng.peak_concurrency(),
            peak_wavelength: eng.peak_wavelength(),
            events: eng.events(),
        })
    }

    /// Execute a transfer DAG under a [`FaultScript`]: fault events are
    /// scheduled through the same event kernel as gates and completions
    /// and applied at their instants, interleaved deterministically.
    ///
    /// Optically relevant kinds: `WavelengthDown` fails a lane (it admits
    /// no new lightpaths and every in-flight holder **aborts**, recovering
    /// per [`FaultPolicy`] — re-granted over surviving lanes under the same
    /// cross-job arbitration); `WavelengthUp` repairs it; `NodeDown`
    /// permanently fails every unfinished transfer with an endpoint on the
    /// node (under `RetryAfter`/`Replan` their dependents are released so
    /// survivors re-plan; under `FailJob` the owning job fails wholly);
    /// `NodeStraggle` multiplies the duration of grants at or after the
    /// instant by `slowdown`. Link events have no optical meaning and are
    /// ignored. With no relevant events the run delegates to the clean
    /// grant loop and is **bit-exact** with [`RingSimulator::run_dag`] /
    /// [`RingSimulator::run_dag_jobs`].
    ///
    /// Same-instant order: completions coalesced with a fault at a bit-
    /// identical instant are applied **before** the fault — a transfer
    /// finishing at exactly `t` is finished, not aborted, by a fault at
    /// `t`. Transfers that can never complete are marked failed in the
    /// report instead of erroring the run.
    pub fn run_dag_faulted(
        &mut self,
        transfers: &[DagTransfer],
        strategy: Strategy,
        arb: Option<&JobArbitration>,
        script: &FaultScript,
        policy: FaultPolicy,
    ) -> Result<FaultDagReport> {
        if let Some(a) = arb {
            if a.job_of.len() != transfers.len() {
                return Err(OpticalError::BadConfig(
                    "job tag list must match the transfer list",
                ));
            }
            if a.job_of.iter().any(|&j| j >= a.rank.len()) {
                return Err(OpticalError::BadConfig(
                    "job tag out of range of the rank table",
                ));
            }
        }
        let limits = FaultLimits {
            nodes: self.config.nodes,
            wavelengths: Some(self.config.wavelengths),
            links: None,
        };
        script.validate(&limits).map_err(OpticalError::Fault)?;
        policy.validate().map_err(OpticalError::Fault)?;

        use crate::wavelength::Wavelength;
        #[derive(Debug, Clone, Copy)]
        enum Fault {
            LaneDown(Wavelength),
            LaneUp(Wavelength),
            NodeDown(usize),
            Straggle(usize, f64),
        }
        let mut faults: Vec<(f64, Fault)> = Vec::new();
        for ev in script.events() {
            let kind = match ev.kind {
                FaultKind::WavelengthDown { lane } => Fault::LaneDown(Wavelength(lane)),
                FaultKind::WavelengthUp { lane } => Fault::LaneUp(Wavelength(lane)),
                FaultKind::NodeDown { node } => Fault::NodeDown(node),
                FaultKind::NodeStraggle { node, slowdown } => Fault::Straggle(node, slowdown),
                // Link capacity is an electrical concept; no optical meaning.
                FaultKind::LinkDegrade { .. } | FaultKind::LinkFlap { .. } => continue,
            };
            faults.push((ev.at_s, kind));
        }
        if faults.is_empty() {
            // Zero relevant faults: the clean loop, bit-exactly.
            let clean = self.run_dag_arbitrated(transfers, strategy, arb)?;
            return Ok(FaultDagReport {
                makespan_s: clean.makespan_s,
                outcomes: clean
                    .transfer_times
                    .iter()
                    .map(|&(start_s, finish_s)| FaultOutcome {
                        start_s,
                        finish_s,
                        aborts: 0,
                        completed: true,
                    })
                    .collect(),
                peak_concurrency: clean.peak_concurrency,
                peak_wavelength: clean.peak_wavelength,
                events: clean.events,
                first_impact_s: None,
            });
        }

        #[derive(Debug)]
        enum Ev {
            Gate(usize),
            Complete(usize),
            Fault(usize),
        }

        let timing = self.config.timing();
        let mut occ = Occupancy::new(self.topo.nodes(), self.config.wavelengths);

        // Pre-resolve paths and validate feasibility in isolation (same
        // checks as the clean loop).
        let mut paths: Vec<LightPath> = Vec::with_capacity(transfers.len());
        for (i, t) in transfers.iter().enumerate() {
            if t.deps.iter().any(|&d| d >= i) {
                return Err(OpticalError::BadConfig(
                    "dependency must precede its transfer",
                ));
            }
            if !t.release_s.is_finite() || t.release_s < 0.0 {
                return Err(OpticalError::BadConfig(
                    "release time must be finite and >= 0",
                ));
            }
            let path = t.transfer.resolve(&self.topo)?;
            if t.transfer.lanes > self.config.wavelengths {
                return Err(OpticalError::WavelengthsExhausted {
                    available: self.config.wavelengths,
                    requested: t.transfer.lanes,
                    step: 0,
                });
            }
            paths.push(path);
        }
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); transfers.len()];
        let mut missing: Vec<usize> = vec![0; transfers.len()];
        for (i, t) in transfers.iter().enumerate() {
            missing[i] = t.deps.len();
            for &d in &t.deps {
                dependents[d].push(i);
            }
        }

        let mut queue: EventKernel<Ev> = EventKernel::with_capacity(transfers.len() + faults.len());
        // Faults are scheduled before any gate, so within a same-instant
        // batch they carry the lowest sequence numbers; the two-pass drain
        // below nevertheless applies completions first (see the doc above).
        for (fi, &(at_s, _)) in faults.iter().enumerate() {
            queue
                .schedule_at(at_s, Ev::Fault(fi))
                .expect("validated fault time");
        }
        for (i, t) in transfers.iter().enumerate() {
            if t.deps.is_empty() {
                queue
                    .schedule_at(t.release_s, Ev::Gate(i))
                    .expect("validated release time");
            }
        }

        let mut waiting: Vec<usize> = Vec::new();
        let mut assigned: Vec<Vec<Wavelength>> = vec![Vec::new(); transfers.len()];
        let mut times = vec![(f64::NAN, f64::NAN); transfers.len()];
        let mut complete_ev: Vec<Option<EventId>> = vec![None; transfers.len()];
        let mut aborts = vec![0u32; transfers.len()];
        let mut failed = vec![false; transfers.len()];
        let mut straggle = vec![1.0f64; self.config.nodes];
        let mut first_impact: Option<f64> = None;
        let mut active = 0usize;
        let mut peak = 0usize;
        let mut peak_wavelength = 0usize;
        let mut makespan = 0.0f64;

        fn enqueue(waiting: &mut Vec<usize>, id: usize) {
            let pos = waiting.partition_point(|&w| w < id);
            waiting.insert(pos, id);
        }

        let job_of = |id: usize| arb.map_or(0, |a| a.job_of[id]);
        let jobs = arb.map_or(1, |a| a.rank.len());

        let mut claimed = [
            vec![false; self.topo.nodes()],
            vec![false; self.topo.nodes()],
        ];
        let mut claimed_set: Vec<(usize, usize)> = Vec::new();
        let mut service = vec![0.0f64; arb.map_or(0, |a| a.rank.len())];
        let mut batch: Vec<Ev> = Vec::new();
        let mut order: Vec<usize> = Vec::new();
        let mut granted = vec![false; transfers.len()];
        let mut jobs_to_fail: Vec<bool> = vec![false; jobs];

        loop {
            // The two-pass drain below iterates the batch by reference, so
            // it must be emptied by hand (`pop_batch` only appends).
            batch.clear();
            let Some(now) = queue.pop_batch(&mut batch) else {
                break;
            };
            // Pass 1: gates and completions. Applying completions before
            // same-instant faults is the documented coalescing order.
            for ev in &batch {
                match *ev {
                    Ev::Gate(id) => {
                        if !failed[id] {
                            enqueue(&mut waiting, id);
                        }
                    }
                    Ev::Complete(id) => {
                        complete_ev[id] = None;
                        for &lambda in &assigned[id] {
                            occ.release(&paths[id], lambda);
                        }
                        times[id].1 = now;
                        makespan = makespan.max(now);
                        active -= 1;
                        for &dep in &dependents[id] {
                            missing[dep] -= 1;
                            if missing[dep] == 0 && !failed[dep] {
                                if transfers[dep].release_s <= now {
                                    enqueue(&mut waiting, dep);
                                } else {
                                    queue
                                        .schedule_at(transfers[dep].release_s, Ev::Gate(dep))
                                        .expect("validated release time after now");
                                }
                            }
                        }
                    }
                    Ev::Fault(_) => {}
                }
            }
            // Pass 2: apply the faults coalesced at this instant.
            let mut any_fault = false;
            for ev in &batch {
                let Ev::Fault(fi) = *ev else { continue };
                any_fault = true;
                match faults[fi].1 {
                    Fault::LaneDown(lambda) => {
                        occ.set_lane_down(lambda);
                        for id in 0..transfers.len() {
                            if complete_ev[id].is_some() && assigned[id].contains(&lambda) {
                                let ev_id = complete_ev[id].take().expect("checked in-flight");
                                queue.cancel(ev_id);
                                for &l in &assigned[id] {
                                    occ.release(&paths[id], l);
                                }
                                assigned[id].clear();
                                active -= 1;
                                aborts[id] += 1;
                                times[id].0 = f64::NAN;
                                first_impact.get_or_insert(now);
                                match policy {
                                    FaultPolicy::FailJob => jobs_to_fail[job_of(id)] = true,
                                    FaultPolicy::RetryAfter(backoff) => {
                                        queue
                                            .schedule_at(now + backoff, Ev::Gate(id))
                                            .expect("finite non-negative backoff");
                                    }
                                    FaultPolicy::Replan => enqueue(&mut waiting, id),
                                }
                            }
                        }
                    }
                    Fault::LaneUp(lambda) => occ.set_lane_up(lambda),
                    Fault::NodeDown(node) => {
                        // Every unfinished transfer touching the node fails
                        // permanently (retrying a dead endpoint is futile).
                        // Ascending index order lets failure cascade to
                        // dependents that also touch the node in one sweep.
                        for id in 0..transfers.len() {
                            let tr = &transfers[id].transfer;
                            if (tr.src.0 == node || tr.dst.0 == node)
                                && times[id].1.is_nan()
                                && !failed[id]
                            {
                                if let Some(ev_id) = complete_ev[id].take() {
                                    queue.cancel(ev_id);
                                    for &l in &assigned[id] {
                                        occ.release(&paths[id], l);
                                    }
                                    assigned[id].clear();
                                    active -= 1;
                                    aborts[id] += 1;
                                    times[id].0 = f64::NAN;
                                }
                                failed[id] = true;
                                first_impact.get_or_insert(now);
                                match policy {
                                    FaultPolicy::FailJob => jobs_to_fail[job_of(id)] = true,
                                    FaultPolicy::RetryAfter(_) | FaultPolicy::Replan => {
                                        for &dep in &dependents[id] {
                                            missing[dep] -= 1;
                                            if missing[dep] == 0 && !failed[dep] {
                                                if transfers[dep].release_s <= now {
                                                    enqueue(&mut waiting, dep);
                                                } else {
                                                    queue
                                                        .schedule_at(
                                                            transfers[dep].release_s,
                                                            Ev::Gate(dep),
                                                        )
                                                        .expect("validated release time");
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    Fault::Straggle(node, slowdown) => {
                        straggle[node] = straggle[node].max(slowdown);
                    }
                }
            }
            if any_fault {
                if jobs_to_fail.iter().any(|&f| f) {
                    for id in 0..transfers.len() {
                        if jobs_to_fail[job_of(id)] && times[id].1.is_nan() && !failed[id] {
                            failed[id] = true;
                            if let Some(ev_id) = complete_ev[id].take() {
                                queue.cancel(ev_id);
                                for &l in &assigned[id] {
                                    occ.release(&paths[id], l);
                                }
                                assigned[id].clear();
                                active -= 1;
                                times[id].0 = f64::NAN;
                            }
                        }
                    }
                    jobs_to_fail.iter_mut().for_each(|f| *f = false);
                }
                waiting.retain(|&id| !failed[id]);
            }
            // Grant scan — identical to the clean loop, except grant
            // durations stretch for straggling endpoints.
            order.clear();
            order.extend_from_slice(&waiting);
            if let Some(a) = arb {
                order.sort_by(|&x, &y| {
                    let (jx, jy) = (a.job_of[x], a.job_of[y]);
                    let (sx, sy) = if a.fair_share {
                        (service[jx], service[jy])
                    } else {
                        (0.0, 0.0)
                    };
                    sx.total_cmp(&sy)
                        .then(a.rank[jx].cmp(&a.rank[jy]))
                        .then(x.cmp(&y))
                });
            }
            let mut any_granted = false;
            for &id in &order {
                let tr = &transfers[id].transfer;
                let d = usize::from(paths[id].direction == Direction::CounterClockwise);
                let overtakes = paths[id].segments.iter().any(|&s| claimed[d][s]);
                if !overtakes {
                    if let Ok(lanes) = occ.assign(&paths[id], tr.lanes, strategy) {
                        assigned[id] = lanes;
                        let mut dur = timing.transfer_time(tr.bytes, tr.lanes, paths[id].hops());
                        let slow = straggle[tr.src.0].max(straggle[tr.dst.0]);
                        if slow > 1.0 {
                            dur *= slow;
                        }
                        times[id].0 = queue.now();
                        let ev_id = queue
                            .schedule_in(dur, Ev::Complete(id))
                            .expect("transfer duration is a finite forward delay");
                        complete_ev[id] = Some(ev_id);
                        active += 1;
                        peak = peak.max(active);
                        peak_wavelength = peak_wavelength.max(occ.peak_wavelengths_used());
                        if let Some(a) = arb {
                            service[a.job_of[id]] += dur * tr.lanes as f64;
                        }
                        granted[id] = true;
                        any_granted = true;
                        continue;
                    }
                }
                for &s in &paths[id].segments {
                    if !claimed[d][s] {
                        claimed[d][s] = true;
                        claimed_set.push((d, s));
                    }
                }
            }
            if any_granted {
                waiting.retain(|&id| {
                    let g = granted[id];
                    if g {
                        granted[id] = false;
                    }
                    !g
                });
            }
            for &(d, s) in &claimed_set {
                claimed[d][s] = false;
            }
            claimed_set.clear();
        }

        // Anything unfinished at drain (stuck waiters, dependents of failed
        // transfers) is a casualty, not an error, under fault injection:
        // it surfaces as `completed: false` below.
        let outcomes = times
            .iter()
            .zip(&aborts)
            .map(|(&(start_s, finish_s), &ab)| FaultOutcome {
                start_s: if start_s.is_nan() { 0.0 } else { start_s },
                finish_s: if finish_s.is_nan() { 0.0 } else { finish_s },
                aborts: ab,
                completed: !finish_s.is_nan(),
            })
            .collect();
        Ok(FaultDagReport {
            makespan_s: makespan,
            outcomes,
            peak_concurrency: peak,
            peak_wavelength,
            events: queue.events_processed(),
            first_impact_s: first_impact,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Direction, NodeId};

    fn small_cfg() -> OpticalConfig {
        OpticalConfig::new(8, 4)
            .with_lambda_bandwidth(1e9)
            .with_message_overhead(0.0)
            .with_hop_propagation(0.0)
    }

    #[test]
    fn empty_schedule_takes_no_time() {
        let mut sim = RingSimulator::new(small_cfg());
        let r = sim
            .run_stepped(&StepSchedule::default(), Strategy::FirstFit)
            .unwrap();
        assert_eq!(r.total_time_s, 0.0);
        assert_eq!(r.stats.step_count(), 0);
    }

    #[test]
    fn empty_steps_inside_a_schedule_cost_nothing_but_keep_alignment() {
        // Consumers index `stats.steps` by schedule position (e.g. the
        // barrier-sensitivity study), so empty steps must produce stats
        // rows, not be skipped.
        let mut sim = RingSimulator::new(small_cfg());
        let sched = StepSchedule::from_steps(vec![
            vec![],
            vec![Transfer::shortest(NodeId(0), NodeId(1), 1_000_000)],
            vec![],
        ]);
        let r = sim.run_stepped(&sched, Strategy::FirstFit).unwrap();
        assert_eq!(r.stats.step_count(), 3);
        assert_eq!(r.stats.steps[0].duration_s, 0.0);
        assert_eq!(r.stats.steps[0].transfers, 0);
        assert_eq!(r.stats.steps[2].wavelengths_used, 0);
        assert!((r.total_time_s - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn single_step_schedule_matches_transfer_closed_form() {
        let mut sim = RingSimulator::new(small_cfg());
        let sched = StepSchedule::from_steps(vec![vec![Transfer::shortest(
            NodeId(0),
            NodeId(1),
            3_000_000,
        )]]);
        let r = sim.run_stepped(&sched, Strategy::FirstFit).unwrap();
        assert_eq!(r.stats.step_count(), 1);
        let expected = sim.config().timing().transfer_time(3_000_000, 1, 1);
        assert!((r.total_time_s - expected).abs() < 1e-15);
    }

    #[test]
    fn len_and_is_empty_stay_paired() {
        let mut s = StepSchedule::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        s.push_step(vec![]);
        assert!(!s.is_empty());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn event_driven_empty_release_list_is_a_noop() {
        let mut sim = RingSimulator::new(small_cfg());
        let r = sim.run_event_driven(&[]).unwrap();
        assert_eq!(r.makespan_s, 0.0);
        assert_eq!(r.peak_concurrency, 0);
        assert!(r.transfer_times.is_empty());
    }

    #[test]
    fn zero_byte_transfers_cost_overhead_and_propagation_only() {
        // The cross-substrate contract (see wrht-core's Substrate): a
        // zero-byte transfer occupies wavelengths and pays the per-message
        // overhead plus propagation, but adds no serialization time.
        let cfg = OpticalConfig::new(8, 4)
            .with_lambda_bandwidth(1e9)
            .with_message_overhead(1e-6)
            .with_hop_propagation(1e-8);
        let mut sim = RingSimulator::new(cfg);
        let sched =
            StepSchedule::from_steps(vec![vec![Transfer::shortest(NodeId(0), NodeId(1), 0)]]);
        let r = sim.run_stepped(&sched, Strategy::FirstFit).unwrap();
        assert_eq!(r.stats.steps[0].transfers, 1);
        assert_eq!(r.stats.steps[0].bytes, 0);
        assert!(r.stats.steps[0].peak_wavelength >= 1);
        assert!((r.total_time_s - (1e-6 + 1e-8)).abs() < 1e-15);
    }

    #[test]
    fn step_duration_is_slowest_transfer() {
        let mut sim = RingSimulator::new(small_cfg());
        let step = vec![
            Transfer::shortest(NodeId(0), NodeId(1), 1_000_000), // 1 ms at 1 GB/s
            Transfer::shortest(NodeId(4), NodeId(5), 2_000_000), // 2 ms
        ];
        let r = sim
            .run_stepped(&StepSchedule::from_steps(vec![step]), Strategy::FirstFit)
            .unwrap();
        assert!((r.total_time_s - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn steps_are_sequential() {
        let mut sim = RingSimulator::new(small_cfg());
        let s1 = vec![Transfer::shortest(NodeId(0), NodeId(1), 1_000_000)];
        let s2 = vec![Transfer::shortest(NodeId(1), NodeId(2), 1_000_000)];
        let r = sim
            .run_stepped(&StepSchedule::from_steps(vec![s1, s2]), Strategy::FirstFit)
            .unwrap();
        assert!((r.total_time_s - 2e-3).abs() < 1e-12);
        assert_eq!(r.stats.step_count(), 2);
    }

    #[test]
    fn striping_accelerates_within_step() {
        let mut sim = RingSimulator::new(small_cfg());
        let slow = StepSchedule::from_steps(vec![vec![Transfer::shortest(
            NodeId(0),
            NodeId(1),
            4_000_000,
        )]]);
        let fast = StepSchedule::from_steps(vec![vec![Transfer::shortest(
            NodeId(0),
            NodeId(1),
            4_000_000,
        )
        .with_lanes(4)]]);
        let t_slow = sim
            .run_stepped(&slow, Strategy::FirstFit)
            .unwrap()
            .total_time_s;
        let t_fast = sim
            .run_stepped(&fast, Strategy::FirstFit)
            .unwrap()
            .total_time_s;
        assert!((t_slow / t_fast - 4.0).abs() < 1e-9);
    }

    #[test]
    fn wavelength_exhaustion_reports_step() {
        let mut sim = RingSimulator::new(small_cfg()); // 4 wavelengths
        let overload: Vec<Transfer> = (0..5)
            .map(|i| {
                Transfer::directed(NodeId(i), NodeId(i + 1), 100, Direction::Clockwise)
                    .with_lanes(1)
            })
            .collect();
        // 5 transfers over node boundaries 0..5 share no segment; fits.
        sim.run_stepped(
            &StepSchedule::from_steps(vec![overload]),
            Strategy::FirstFit,
        )
        .unwrap();
        // But 5 nested transfers to one receiver cannot fit in 4 lambdas.
        let nested: Vec<Transfer> = (0..5)
            .map(|i| Transfer::directed(NodeId(i), NodeId(5), 100, Direction::Clockwise))
            .collect();
        let err = sim
            .run_stepped(
                &StepSchedule::from_steps(vec![vec![], nested]),
                Strategy::FirstFit,
            )
            .unwrap_err();
        match err {
            OpticalError::WavelengthsExhausted { step, .. } => assert_eq!(step, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn event_driven_serializes_contending_transfers() {
        let cfg = OpticalConfig::new(8, 1)
            .with_lambda_bandwidth(1e9)
            .with_message_overhead(0.0)
            .with_hop_propagation(0.0);
        let mut sim = RingSimulator::new(cfg);
        // Two transfers over the same segment, one wavelength: must serialize.
        let released = vec![
            (
                0.0,
                Transfer::directed(NodeId(0), NodeId(2), 1_000_000, Direction::Clockwise),
            ),
            (
                0.0,
                Transfer::directed(NodeId(1), NodeId(3), 1_000_000, Direction::Clockwise),
            ),
        ];
        let r = sim.run_event_driven(&released).unwrap();
        assert!((r.makespan_s - 2e-3).abs() < 1e-12);
        assert_eq!(r.peak_concurrency, 1);
        // Second starts when first completes.
        assert!((r.transfer_times[1].0 - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn grant_instants_coalesce_by_bit_equality_only() {
        // Satellite regression for the kernel's same-instant contract:
        // waiters compete in one FIFO arbitration scan iff their release
        // timestamps are bit-identical. `0.1 + 0.2` is one ulp above `0.3`
        // — mathematically the same instant, different bits — so a waiter
        // released at the ulp-later time loses the lanes to one released
        // at `0.3`, regardless of submission order.
        let t0 = 0.3_f64;
        let t_ulp = 0.1_f64 + 0.2_f64;
        assert_ne!(t0.to_bits(), t_ulp.to_bits());
        let cfg = OpticalConfig::new(8, 1)
            .with_lambda_bandwidth(1e9)
            .with_message_overhead(0.0)
            .with_hop_propagation(0.0);
        let first = Transfer::directed(NodeId(0), NodeId(2), 1_000_000, Direction::Clockwise);
        let second = Transfer::directed(NodeId(1), NodeId(3), 1_000_000, Direction::Clockwise);

        // Bit-identical releases: one batch, FIFO by submission order.
        let r = RingSimulator::new(cfg.clone())
            .run_event_driven(&[(t0, first.clone()), (t0, second.clone())])
            .unwrap();
        assert_eq!(r.transfer_times[0].0.to_bits(), t0.to_bits());
        assert!((r.transfer_times[1].0 - (t0 + 1e-3)).abs() < 1e-12);

        // One ulp apart: two batches; the ulp-later waiter serializes even
        // though it comes first in submission order.
        let r = RingSimulator::new(cfg)
            .run_event_driven(&[(t_ulp, first), (t0, second)])
            .unwrap();
        assert_eq!(r.transfer_times[1].0.to_bits(), t0.to_bits());
        assert!((r.transfer_times[0].0 - (t0 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn event_driven_parallelizes_disjoint_transfers() {
        let mut sim = RingSimulator::new(small_cfg());
        let released = vec![
            (0.0, Transfer::shortest(NodeId(0), NodeId(1), 1_000_000)),
            (0.0, Transfer::shortest(NodeId(4), NodeId(5), 1_000_000)),
        ];
        let r = sim.run_event_driven(&released).unwrap();
        assert!((r.makespan_s - 1e-3).abs() < 1e-12);
        assert_eq!(r.peak_concurrency, 2);
    }

    #[test]
    fn event_driven_matches_stepped_for_conflict_free_step() {
        let mut sim = RingSimulator::new(small_cfg());
        let transfers = vec![
            Transfer::shortest(NodeId(0), NodeId(1), 500_000),
            Transfer::shortest(NodeId(2), NodeId(3), 1_500_000),
            Transfer::shortest(NodeId(5), NodeId(6), 1_000_000),
        ];
        let stepped = sim
            .run_stepped(
                &StepSchedule::from_steps(vec![transfers.clone()]),
                Strategy::FirstFit,
            )
            .unwrap();
        let released: Vec<_> = transfers.into_iter().map(|t| (0.0, t)).collect();
        let event = sim.run_event_driven(&released).unwrap();
        assert!((stepped.total_time_s - event.makespan_s).abs() < 1e-12);
    }

    #[test]
    fn infeasible_lane_request_errors_eventdriven() {
        let mut sim = RingSimulator::new(small_cfg()); // 4 lambdas
        let released = vec![(
            0.0,
            Transfer::shortest(NodeId(0), NodeId(1), 100).with_lanes(9),
        )];
        assert!(sim.run_event_driven(&released).is_err());
    }

    /// Lower a schedule to its barrier-shaped DAG (each transfer gated on
    /// the whole previous non-empty step).
    fn barrier_dag(sched: &StepSchedule) -> Vec<DagTransfer> {
        let mut out: Vec<DagTransfer> = Vec::new();
        let mut prev: Vec<usize> = Vec::new();
        for step in sched.steps() {
            let first = out.len();
            for tr in step {
                out.push(DagTransfer {
                    transfer: tr.clone(),
                    release_s: 0.0,
                    deps: prev.clone(),
                });
            }
            if !step.is_empty() {
                prev = (first..out.len()).collect();
            }
        }
        out
    }

    #[test]
    fn dag_with_barrier_edges_matches_stepped_bit_exactly() {
        let cfg = OpticalConfig::new(8, 4)
            .with_lambda_bandwidth(1e9)
            .with_message_overhead(1e-6)
            .with_hop_propagation(1e-8);
        let mut sim = RingSimulator::new(cfg);
        let sched = StepSchedule::from_steps(vec![
            vec![
                Transfer::shortest(NodeId(0), NodeId(1), 1_000_000),
                Transfer::shortest(NodeId(4), NodeId(5), 2_000_000),
            ],
            vec![],
            vec![Transfer::shortest(NodeId(1), NodeId(2), 700_000).with_lanes(2)],
        ]);
        let stepped = sim.run_stepped(&sched, Strategy::FirstFit).unwrap();
        let dag = sim
            .run_dag(&barrier_dag(&sched), Strategy::FirstFit)
            .unwrap();
        assert_eq!(dag.makespan_s.to_bits(), stepped.total_time_s.to_bits());
        assert_eq!(dag.peak_wavelength, stepped.stats.peak_wavelengths());
    }

    #[test]
    fn dag_releases_wavelengths_at_completion_not_at_the_barrier() {
        // One wavelength. Step 1: a long and a short transfer on disjoint
        // arcs. Step 2's transfer conflicts only with the short one's arc.
        // Stepped: step 2 starts after the LONG transfer (barrier).
        // Pipelined (dep only on the short transfer): starts as soon as the
        // short one's wavelength frees.
        let cfg = OpticalConfig::new(8, 1)
            .with_lambda_bandwidth(1e9)
            .with_message_overhead(0.0)
            .with_hop_propagation(0.0);
        let mut sim = RingSimulator::new(cfg);
        let long = Transfer::directed(NodeId(4), NodeId(6), 4_000_000, Direction::Clockwise);
        let short = Transfer::directed(NodeId(0), NodeId(2), 1_000_000, Direction::Clockwise);
        let next = Transfer::directed(NodeId(0), NodeId(2), 1_000_000, Direction::Clockwise);
        let sched =
            StepSchedule::from_steps(vec![vec![long.clone(), short.clone()], vec![next.clone()]]);
        let stepped = sim.run_stepped(&sched, Strategy::FirstFit).unwrap();
        assert!((stepped.total_time_s - 5e-3).abs() < 1e-12);
        let dag = vec![
            DagTransfer {
                transfer: long,
                release_s: 0.0,
                deps: vec![],
            },
            DagTransfer {
                transfer: short,
                release_s: 0.0,
                deps: vec![],
            },
            DagTransfer {
                transfer: next,
                release_s: 0.0,
                deps: vec![1],
            },
        ];
        let r = sim.run_dag(&dag, Strategy::FirstFit).unwrap();
        // The dependent starts at 1 ms and ends at 2 ms, hidden behind the
        // 4 ms transfer.
        assert!((r.transfer_times[2].0 - 1e-3).abs() < 1e-12);
        assert!((r.makespan_s - 4e-3).abs() < 1e-12);
    }

    #[test]
    fn dag_waits_for_contended_wavelengths_fifo() {
        let cfg = OpticalConfig::new(8, 1)
            .with_lambda_bandwidth(1e9)
            .with_message_overhead(0.0)
            .with_hop_propagation(0.0);
        let mut sim = RingSimulator::new(cfg);
        let dag = vec![
            DagTransfer {
                transfer: Transfer::directed(NodeId(0), NodeId(2), 1_000_000, Direction::Clockwise),
                release_s: 0.0,
                deps: vec![],
            },
            DagTransfer {
                transfer: Transfer::directed(NodeId(1), NodeId(3), 1_000_000, Direction::Clockwise),
                release_s: 0.0,
                deps: vec![],
            },
        ];
        let r = sim.run_dag(&dag, Strategy::FirstFit).unwrap();
        assert!((r.makespan_s - 2e-3).abs() < 1e-12);
        assert_eq!(r.peak_concurrency, 1);
        assert_eq!(r.peak_wavelength, 1);
    }

    #[test]
    fn dag_release_times_gate_transfers() {
        let mut sim = RingSimulator::new(small_cfg());
        let dag = vec![DagTransfer {
            transfer: Transfer::shortest(NodeId(0), NodeId(1), 1_000_000),
            release_s: 2e-3,
            deps: vec![],
        }];
        let r = sim.run_dag(&dag, Strategy::FirstFit).unwrap();
        assert!((r.transfer_times[0].0 - 2e-3).abs() < 1e-12);
        assert!((r.makespan_s - 3e-3).abs() < 1e-12);
    }

    #[test]
    fn dag_rejects_forward_deps_and_bad_releases() {
        let mut sim = RingSimulator::new(small_cfg());
        let t = Transfer::shortest(NodeId(0), NodeId(1), 100);
        assert!(matches!(
            sim.run_dag(
                &[DagTransfer {
                    transfer: t.clone(),
                    release_s: 0.0,
                    deps: vec![0],
                }],
                Strategy::FirstFit
            ),
            Err(OpticalError::BadConfig(_))
        ));
        assert!(matches!(
            sim.run_dag(
                &[DagTransfer {
                    transfer: t,
                    release_s: f64::NAN,
                    deps: vec![],
                }],
                Strategy::FirstFit
            ),
            Err(OpticalError::BadConfig(_))
        ));
    }

    #[test]
    fn dag_empty_input_is_a_noop() {
        let mut sim = RingSimulator::new(small_cfg());
        let r = sim.run_dag(&[], Strategy::FirstFit).unwrap();
        assert_eq!(r.makespan_s, 0.0);
        assert_eq!(r.peak_wavelength, 0);
    }

    #[test]
    fn schedule_accessors() {
        let mut s = StepSchedule::default();
        assert!(s.is_empty());
        s.push_step(vec![Transfer::shortest(NodeId(0), NodeId(1), 10)]);
        s.push_step(vec![
            Transfer::shortest(NodeId(1), NodeId(2), 20),
            Transfer::shortest(NodeId(2), NodeId(3), 30),
        ]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.transfer_count(), 3);
        assert_eq!(s.total_bytes(), 60);
    }
}
