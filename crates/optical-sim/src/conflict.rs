//! Conflict-graph analysis of lightpath batches.
//!
//! The minimum number of wavelengths a step needs equals the chromatic
//! number of the *conflict graph* whose vertices are (path, lane) units and
//! whose edges join same-direction paths sharing a segment. We provide a
//! greedy colouring (an upper bound that is exact for interval-like conflict
//! structures such as the nested sides of Wrht groups) and an assignment
//! validator used by tests and by the simulator's debug checks.

use crate::path::LightPath;
use crate::wavelength::Wavelength;

/// Build the adjacency of the conflict graph for a set of weighted paths,
/// where `weight` = number of lanes the path occupies.
#[must_use]
pub fn conflict_adjacency(paths: &[(LightPath, usize)]) -> Vec<Vec<usize>> {
    let n = paths.len();
    let mut adj = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if paths[i].0.conflicts_with(&paths[j].0) {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    adj
}

/// Greedy (largest-first) colouring of the weighted conflict graph; returns
/// the number of wavelengths the colouring uses. This upper-bounds the true
/// requirement and matches it on interval conflict graphs.
#[must_use]
pub fn greedy_wavelength_bound(paths: &[(LightPath, usize)]) -> usize {
    let n = paths.len();
    if n == 0 {
        return 0;
    }
    let adj = conflict_adjacency(paths);
    // Largest weight (lane count) first, then highest degree.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        paths[b]
            .1
            .cmp(&paths[a].1)
            .then(adj[b].len().cmp(&adj[a].len()))
            .then(a.cmp(&b))
    });
    // Each path occupies an interval of "colour slots" of length = lanes.
    // Greedily give each path the lowest slots not used by its neighbours.
    let mut slots: Vec<Option<Vec<usize>>> = vec![None; n];
    let mut peak = 0;
    for &v in &order {
        let mut forbidden: Vec<usize> = adj[v]
            .iter()
            .filter_map(|&u| slots[u].as_ref())
            .flatten()
            .copied()
            .collect();
        forbidden.sort_unstable();
        forbidden.dedup();
        let mut mine = Vec::with_capacity(paths[v].1);
        let mut candidate = 0;
        while mine.len() < paths[v].1 {
            if forbidden.binary_search(&candidate).is_err() {
                mine.push(candidate);
            }
            candidate += 1;
        }
        peak = peak.max(*mine.last().expect("at least one lane") + 1);
        slots[v] = Some(mine);
    }
    peak
}

/// Maximum, over all directed segments, of the total lanes crossing that
/// segment — a lower bound on the wavelengths any assignment needs.
#[must_use]
pub fn congestion_lower_bound(paths: &[(LightPath, usize)]) -> usize {
    // Keyed by (direction, segment) in a BTreeMap: the integer max below is
    // order-independent, but hash iteration order must never be load-bearing
    // anywhere results flow from (wrht-analyze R1), and the sorted walk keeps
    // any future argmax extension deterministic for free.
    use std::collections::BTreeMap;
    let mut seg_load: BTreeMap<(u8, usize), usize> = BTreeMap::new();
    for (p, lanes) in paths {
        let d = match p.direction {
            crate::topology::Direction::Clockwise => 0u8,
            crate::topology::Direction::CounterClockwise => 1u8,
        };
        for &s in &p.segments {
            *seg_load.entry((d, s)).or_insert(0) += lanes;
        }
    }
    seg_load.values().copied().max().unwrap_or(0)
}

/// Check that an explicit assignment is conflict-free: no two paths sharing
/// a directed segment may share a wavelength.
#[must_use]
pub fn validate_assignment(paths: &[LightPath], lanes: &[Vec<Wavelength>]) -> bool {
    debug_assert_eq!(paths.len(), lanes.len());
    for i in 0..paths.len() {
        for j in (i + 1)..paths.len() {
            if paths[i].conflicts_with(&paths[j]) && lanes[i].iter().any(|l| lanes[j].contains(l)) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Direction, NodeId, RingTopology};

    fn p(t: &RingTopology, a: usize, b: usize, d: Direction) -> LightPath {
        LightPath::routed(t, NodeId(a), NodeId(b), d)
    }

    #[test]
    fn empty_batch_needs_no_wavelengths() {
        assert_eq!(greedy_wavelength_bound(&[]), 0);
        assert_eq!(congestion_lower_bound(&[]), 0);
    }

    #[test]
    fn nested_paths_need_side_size() {
        let t = RingTopology::new(32);
        // Senders 0,1,2 all to node 3 clockwise: fully nested.
        let batch: Vec<_> = (0..3)
            .map(|src| (p(&t, src, 3, Direction::Clockwise), 1))
            .collect();
        assert_eq!(congestion_lower_bound(&batch), 3);
        assert_eq!(greedy_wavelength_bound(&batch), 3);
    }

    #[test]
    fn disjoint_groups_reuse_wavelengths() {
        let t = RingTopology::new(32);
        let batch = vec![
            (p(&t, 0, 2, Direction::Clockwise), 1),
            (p(&t, 10, 12, Direction::Clockwise), 1),
            (p(&t, 20, 22, Direction::Clockwise), 1),
        ];
        assert_eq!(greedy_wavelength_bound(&batch), 1);
    }

    #[test]
    fn lanes_multiply_requirements() {
        let t = RingTopology::new(16);
        let batch = vec![
            (p(&t, 0, 4, Direction::Clockwise), 2),
            (p(&t, 1, 3, Direction::Clockwise), 2),
        ];
        assert_eq!(congestion_lower_bound(&batch), 4);
        assert_eq!(greedy_wavelength_bound(&batch), 4);
    }

    #[test]
    fn congestion_bound_is_insertion_order_independent() {
        let t = RingTopology::new(16);
        // Overlapping clockwise paths with distinct lane weights, plus a
        // counter-clockwise path over the same nodes (separate key space).
        let base = vec![
            (p(&t, 0, 4, Direction::Clockwise), 2),
            (p(&t, 1, 3, Direction::Clockwise), 1),
            (p(&t, 2, 6, Direction::Clockwise), 3),
            (p(&t, 4, 2, Direction::CounterClockwise), 5),
        ];
        let reference = congestion_lower_bound(&base);
        assert_eq!(reference, 6); // segment 2→3 carries 2 + 1 + 3 lanes
        for rot in 0..base.len() {
            let mut perm = base.clone();
            perm.rotate_left(rot);
            assert_eq!(congestion_lower_bound(&perm), reference);
        }
        let mut rev = base;
        rev.reverse();
        assert_eq!(congestion_lower_bound(&rev), reference);
    }

    #[test]
    fn greedy_upper_bounds_congestion() {
        let t = RingTopology::new(24);
        let batch: Vec<_> = (0..8)
            .map(|i| (p(&t, i * 3, (i * 3 + 7) % 24, Direction::Clockwise), 1))
            .collect();
        assert!(greedy_wavelength_bound(&batch) >= congestion_lower_bound(&batch));
    }

    #[test]
    fn validator_accepts_good_and_rejects_bad() {
        let t = RingTopology::new(16);
        let paths = vec![
            p(&t, 0, 4, Direction::Clockwise),
            p(&t, 1, 3, Direction::Clockwise),
        ];
        let good = vec![vec![Wavelength(0)], vec![Wavelength(1)]];
        let bad = vec![vec![Wavelength(0)], vec![Wavelength(0)]];
        assert!(validate_assignment(&paths, &good));
        assert!(!validate_assignment(&paths, &bad));
    }
}
