//! # optical-sim — a TeraRack-style WDM optical ring interconnect simulator
//!
//! This crate models the optical substrate assumed by the Wrht paper
//! (Dai et al., PPoPP'23): `N` computing nodes (GPUs) connected sequentially
//! into a ring by waveguides, where every waveguide carries `w` wavelengths
//! (WDM channels) of `B` bytes/s each. Every node is equipped with micro-ring
//! resonators that let it *select* (drop) or *bypass* any wavelength, so a
//! node can transmit and receive on many wavelengths concurrently and a
//! lightpath passes intermediate nodes without electrical conversion.
//!
//! The simulator offers three execution models:
//!
//! * [`sim::RingSimulator::run_stepped`] — the step-synchronous model used by
//!   the paper: a schedule is a sequence of steps, every transfer of a step
//!   starts simultaneously, wavelengths are assigned per step by a
//!   routing-and-wavelength-assignment (RWA) strategy ([`rwa::Strategy`]),
//!   and the step lasts as long as its slowest transfer.
//! * [`sim::RingSimulator::run_event_driven`] — a discrete-event model in
//!   which transfers contend for wavelengths dynamically; used for the
//!   contention ablations and as a cross-check of the stepped model.
//! * [`sim::RingSimulator::run_dag`] — the dependency-aware model: each
//!   transfer carries predecessor edges and a release time, starts the
//!   instant its gates open, and frees its wavelengths on completion
//!   rather than at a step barrier. On barrier-shaped DAGs it agrees
//!   bit-exactly with the stepped model.
//!
//! Transfers may be *striped* across several wavelengths
//! ([`request::Transfer::lanes`]) which is how Wrht exploits WDM parallelism.
//!
//! ```
//! use optical_sim::prelude::*;
//!
//! let cfg = OpticalConfig::new(8, 4); // 8 nodes, 4 wavelengths
//! let topo = RingTopology::new(8);
//! let mut sim = RingSimulator::new(cfg);
//! let step = vec![Transfer::shortest(NodeId(0), NodeId(2), 1 << 20).with_lanes(2)];
//! let report = sim.run_stepped(&StepSchedule::from_steps(vec![step]), Strategy::FirstFit).unwrap();
//! assert!(report.total_time_s > 0.0);
//! assert_eq!(topo.hops(NodeId(0), NodeId(2), Direction::Clockwise), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod conflict;
pub mod engine;
pub mod error;
pub mod path;
pub mod physical;
pub mod power;
pub mod request;
pub mod rwa;
pub mod sim;
pub mod stats;
pub mod timing;
pub mod topology;
pub mod trace;
pub mod wavelength;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::config::OpticalConfig;
    pub use crate::engine::{GrantCompletion, GrantEngine, GrantEngineSnapshot, GrantTransfer};
    pub use crate::error::OpticalError;
    pub use crate::path::LightPath;
    pub use crate::physical::PhysicalModel;
    pub use crate::request::{DirectionChoice, Transfer};
    pub use crate::rwa::{Occupancy, Strategy};
    pub use crate::sim::{
        DagReport, DagTransfer, FaultDagReport, FaultOutcome, JobArbitration, RingSimulator,
        StepReport, StepSchedule,
    };
    pub use crate::timing::TimingModel;
    pub use crate::topology::{Direction, NodeId, RingTopology};
    pub use crate::trace::{run_stepped_traced, RunTrace, TraceEntry};
    pub use crate::wavelength::{Wavelength, WavelengthSet};
}

pub use config::OpticalConfig;
pub use engine::{GrantCompletion, GrantEngine, GrantEngineSnapshot, GrantTransfer};
pub use error::OpticalError;
pub use path::LightPath;
pub use request::{DirectionChoice, Transfer};
pub use rwa::{Occupancy, Strategy};
pub use sim::{JobArbitration, RingSimulator, StepReport, StepSchedule};
pub use timing::TimingModel;
pub use topology::{Direction, NodeId, RingTopology};
pub use wavelength::{Wavelength, WavelengthSet};
