//! Transfer requests submitted to the simulator.

use crate::error::{OpticalError, Result};
use crate::path::LightPath;
use crate::topology::{Direction, NodeId, RingTopology};
use serde::{Deserialize, Serialize};

/// How a transfer should be routed around the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirectionChoice {
    /// Take the arc with fewer hops (ties go clockwise).
    Shortest,
    /// Force a specific direction (Wrht forces group sides apart).
    Forced(Direction),
}

/// A point-to-point transfer request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Routing policy.
    pub direction: DirectionChoice,
    /// Number of wavelengths to stripe the payload across (>= 1).
    pub lanes: usize,
    /// Optional tag for bookkeeping (e.g. Wrht level index).
    pub tag: u32,
}

impl Transfer {
    /// Shortest-path transfer on one wavelength.
    #[must_use]
    pub fn shortest(src: NodeId, dst: NodeId, bytes: u64) -> Self {
        Self {
            src,
            dst,
            bytes,
            direction: DirectionChoice::Shortest,
            lanes: 1,
            tag: 0,
        }
    }

    /// Transfer forced into a given direction, one wavelength.
    #[must_use]
    pub fn directed(src: NodeId, dst: NodeId, bytes: u64, dir: Direction) -> Self {
        Self {
            src,
            dst,
            bytes,
            direction: DirectionChoice::Forced(dir),
            lanes: 1,
            tag: 0,
        }
    }

    /// Set the wavelength striping factor, builder style.
    #[must_use]
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Attach a tag, builder style.
    #[must_use]
    pub fn with_tag(mut self, tag: u32) -> Self {
        self.tag = tag;
        self
    }

    /// Validate against a topology and resolve to a routed lightpath.
    ///
    /// Zero-byte transfers are legal: setting up the lightpath still costs
    /// the per-message overhead and propagation, it just serializes no
    /// payload (mirrored by the electrical runner, which skips empty flows
    /// but keeps the step's launch overhead).
    pub fn resolve(&self, topo: &RingTopology) -> Result<LightPath> {
        topo.check_node(self.src)?;
        topo.check_node(self.dst)?;
        if self.src == self.dst {
            return Err(OpticalError::SelfTransfer(self.src));
        }
        if self.lanes == 0 {
            return Err(OpticalError::ZeroLanes);
        }
        Ok(match self.direction {
            DirectionChoice::Shortest => LightPath::shortest(topo, self.src, self.dst),
            DirectionChoice::Forced(d) => LightPath::routed(topo, self.src, self.dst, d),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_shortest() {
        let t = RingTopology::new(8);
        let p = Transfer::shortest(NodeId(0), NodeId(6), 10)
            .resolve(&t)
            .unwrap();
        assert_eq!(p.direction, Direction::CounterClockwise);
        assert_eq!(p.hops(), 2);
    }

    #[test]
    fn resolve_forced_takes_long_way() {
        let t = RingTopology::new(8);
        let p = Transfer::directed(NodeId(0), NodeId(6), 10, Direction::Clockwise)
            .resolve(&t)
            .unwrap();
        assert_eq!(p.hops(), 6);
    }

    #[test]
    fn resolve_rejects_invalid() {
        let t = RingTopology::new(4);
        assert_eq!(
            Transfer::shortest(NodeId(0), NodeId(9), 1).resolve(&t),
            Err(OpticalError::NodeOutOfRange {
                node: NodeId(9),
                n: 4
            })
        );
        assert_eq!(
            Transfer::shortest(NodeId(2), NodeId(2), 1).resolve(&t),
            Err(OpticalError::SelfTransfer(NodeId(2)))
        );
        assert_eq!(
            Transfer::shortest(NodeId(0), NodeId(1), 1)
                .with_lanes(0)
                .resolve(&t),
            Err(OpticalError::ZeroLanes)
        );
        // Zero-byte transfers resolve: the lightpath itself is legal.
        assert!(Transfer::shortest(NodeId(0), NodeId(1), 0)
            .resolve(&t)
            .is_ok());
    }

    #[test]
    fn builders_chain() {
        let tr = Transfer::shortest(NodeId(0), NodeId(1), 5)
            .with_lanes(3)
            .with_tag(7);
        assert_eq!(tr.lanes, 3);
        assert_eq!(tr.tag, 7);
    }
}
