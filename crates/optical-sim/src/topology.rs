//! Ring topology: nodes, directed segments, paths and hop arithmetic.
//!
//! The TeraRack substrate connects `N` nodes sequentially into a ring. We
//! model the ring as *two* independent directed cycles (one per propagation
//! direction) because TeraRack nodes host separate transmit waveguides per
//! direction; wavelength occupancy is therefore tracked per direction.
//!
//! ```
//! use optical_sim::topology::{Direction, NodeId, RingTopology};
//!
//! let t = RingTopology::new(8);
//! assert_eq!(t.hops(NodeId(6), NodeId(1), Direction::Clockwise), 3);
//! assert_eq!(t.hops(NodeId(6), NodeId(1), Direction::CounterClockwise), 5);
//! assert_eq!(t.min_hops(NodeId(6), NodeId(1)), 3);
//! ```

use crate::error::{OpticalError, Result};
use serde::{Deserialize, Serialize};

/// Identifier of a computing node (GPU) on the ring, in `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Propagation direction around the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Increasing node ids (`i -> i+1 mod n`).
    Clockwise,
    /// Decreasing node ids (`i -> i-1 mod n`).
    CounterClockwise,
}

impl Direction {
    /// The opposite direction.
    #[must_use]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Clockwise => Direction::CounterClockwise,
            Direction::CounterClockwise => Direction::Clockwise,
        }
    }

    /// Both directions, clockwise first.
    pub const BOTH: [Direction; 2] = [Direction::Clockwise, Direction::CounterClockwise];
}

/// A ring of `n` nodes with directed segments in both directions.
///
/// Segment `s` in the clockwise cycle is the waveguide from node `s` to node
/// `(s + 1) % n`; segment `s` in the counter-clockwise cycle is the waveguide
/// from node `(s + 1) % n` to node `s`. Segment indices are shared between
/// directions (they denote the same physical span) but occupancy is tracked
/// independently per direction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingTopology {
    n: usize,
}

impl RingTopology {
    /// Build a ring of `n >= 2` nodes.
    ///
    /// # Panics
    /// Panics if `n < 2`; use [`RingTopology::try_new`] for fallible
    /// construction.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::try_new(n).expect("ring must have at least 2 nodes")
    }

    /// Fallible constructor.
    pub fn try_new(n: usize) -> Result<Self> {
        if n < 2 {
            return Err(OpticalError::RingTooSmall(n));
        }
        Ok(Self { n })
    }

    /// Number of nodes (equals the number of segments per direction).
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Validate that a node id belongs to this ring.
    pub fn check_node(&self, node: NodeId) -> Result<()> {
        if node.0 < self.n {
            Ok(())
        } else {
            Err(OpticalError::NodeOutOfRange { node, n: self.n })
        }
    }

    /// Hop count from `src` to `dst` travelling in `dir`.
    ///
    /// `hops(a, a, _)` is 0. Hop counts are in `0..n`.
    #[must_use]
    pub fn hops(&self, src: NodeId, dst: NodeId, dir: Direction) -> usize {
        debug_assert!(src.0 < self.n && dst.0 < self.n);
        match dir {
            Direction::Clockwise => (dst.0 + self.n - src.0) % self.n,
            Direction::CounterClockwise => (src.0 + self.n - dst.0) % self.n,
        }
    }

    /// The direction with the fewest hops from `src` to `dst`
    /// (clockwise wins ties).
    #[must_use]
    pub fn shortest_direction(&self, src: NodeId, dst: NodeId) -> Direction {
        let cw = self.hops(src, dst, Direction::Clockwise);
        let ccw = self.hops(src, dst, Direction::CounterClockwise);
        if cw <= ccw {
            Direction::Clockwise
        } else {
            Direction::CounterClockwise
        }
    }

    /// Minimum hop count between two nodes irrespective of direction.
    #[must_use]
    pub fn min_hops(&self, src: NodeId, dst: NodeId) -> usize {
        let cw = self.hops(src, dst, Direction::Clockwise);
        cw.min(self.n - cw)
    }

    /// The node reached after `k` hops from `src` in direction `dir`.
    #[must_use]
    pub fn step_from(&self, src: NodeId, k: usize, dir: Direction) -> NodeId {
        match dir {
            Direction::Clockwise => NodeId((src.0 + k) % self.n),
            Direction::CounterClockwise => NodeId((src.0 + self.n - (k % self.n)) % self.n),
        }
    }

    /// Segment indices traversed from `src` to `dst` in direction `dir`.
    ///
    /// Segments are returned in traversal order. An empty vector means
    /// `src == dst`.
    #[must_use]
    pub fn path_segments(&self, src: NodeId, dst: NodeId, dir: Direction) -> Vec<usize> {
        let hops = self.hops(src, dst, dir);
        let mut segs = Vec::with_capacity(hops);
        let mut cur = src.0;
        for _ in 0..hops {
            match dir {
                Direction::Clockwise => {
                    segs.push(cur);
                    cur = (cur + 1) % self.n;
                }
                Direction::CounterClockwise => {
                    cur = (cur + self.n - 1) % self.n;
                    segs.push(cur);
                }
            }
        }
        segs
    }

    /// Iterate over the nodes strictly between `src` and `dst` in `dir`.
    #[must_use]
    pub fn intermediate_nodes(&self, src: NodeId, dst: NodeId, dir: Direction) -> Vec<NodeId> {
        let hops = self.hops(src, dst, dir);
        (1..hops).map(|k| self.step_from(src, k, dir)).collect()
    }

    /// Positions of `count` nodes evenly spread on the ring starting at 0
    /// (useful for placing representatives in tests).
    #[must_use]
    pub fn evenly_spaced(&self, count: usize) -> Vec<NodeId> {
        if count == 0 {
            return Vec::new();
        }
        (0..count).map(|i| NodeId(i * self.n / count)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_tiny_rings() {
        assert!(RingTopology::try_new(0).is_err());
        assert!(RingTopology::try_new(1).is_err());
        assert!(RingTopology::try_new(2).is_ok());
    }

    #[test]
    fn hops_both_directions_sum_to_n() {
        let t = RingTopology::new(10);
        for a in 0..10 {
            for b in 0..10 {
                if a == b {
                    continue;
                }
                let cw = t.hops(NodeId(a), NodeId(b), Direction::Clockwise);
                let ccw = t.hops(NodeId(a), NodeId(b), Direction::CounterClockwise);
                assert_eq!(cw + ccw, 10, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn hops_self_is_zero() {
        let t = RingTopology::new(5);
        for d in Direction::BOTH {
            assert_eq!(t.hops(NodeId(3), NodeId(3), d), 0);
        }
    }

    #[test]
    fn shortest_direction_prefers_clockwise_on_tie() {
        let t = RingTopology::new(8);
        // 0 -> 4 is 4 hops either way.
        assert_eq!(
            t.shortest_direction(NodeId(0), NodeId(4)),
            Direction::Clockwise
        );
        assert_eq!(
            t.shortest_direction(NodeId(0), NodeId(7)),
            Direction::CounterClockwise
        );
        assert_eq!(
            t.shortest_direction(NodeId(0), NodeId(1)),
            Direction::Clockwise
        );
    }

    #[test]
    fn path_segments_clockwise() {
        let t = RingTopology::new(6);
        assert_eq!(
            t.path_segments(NodeId(4), NodeId(1), Direction::Clockwise),
            vec![4, 5, 0]
        );
        assert_eq!(
            t.path_segments(NodeId(2), NodeId(2), Direction::Clockwise),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn path_segments_counterclockwise() {
        let t = RingTopology::new(6);
        // 1 -> 4 going ccw passes segments (0,1) then (5,0) then (4,5):
        // segment index = lower endpoint going ccw: 0, 5, 4.
        assert_eq!(
            t.path_segments(NodeId(1), NodeId(4), Direction::CounterClockwise),
            vec![0, 5, 4]
        );
    }

    #[test]
    fn segments_count_matches_hops() {
        let t = RingTopology::new(9);
        for a in 0..9 {
            for b in 0..9 {
                for d in Direction::BOTH {
                    let hops = t.hops(NodeId(a), NodeId(b), d);
                    assert_eq!(t.path_segments(NodeId(a), NodeId(b), d).len(), hops);
                }
            }
        }
    }

    #[test]
    fn step_from_round_trip() {
        let t = RingTopology::new(7);
        for a in 0..7 {
            for k in 0..14 {
                let fwd = t.step_from(NodeId(a), k, Direction::Clockwise);
                let back = t.step_from(fwd, k, Direction::CounterClockwise);
                assert_eq!(back, NodeId(a));
            }
        }
    }

    #[test]
    fn intermediate_nodes_excludes_endpoints() {
        let t = RingTopology::new(8);
        let mids = t.intermediate_nodes(NodeId(6), NodeId(2), Direction::Clockwise);
        assert_eq!(mids, vec![NodeId(7), NodeId(0), NodeId(1)]);
    }

    #[test]
    fn evenly_spaced_positions() {
        let t = RingTopology::new(8);
        assert_eq!(
            t.evenly_spaced(4),
            vec![NodeId(0), NodeId(2), NodeId(4), NodeId(6)]
        );
        assert!(t.evenly_spaced(0).is_empty());
    }

    #[test]
    fn min_hops_is_symmetric() {
        let t = RingTopology::new(11);
        for a in 0..11 {
            for b in 0..11 {
                assert_eq!(
                    t.min_hops(NodeId(a), NodeId(b)),
                    t.min_hops(NodeId(b), NodeId(a))
                );
            }
        }
    }
}
