//! Transfer-time model for optical lightpaths.
//!
//! A message of `bytes` striped across `lanes` wavelengths travelling `hops`
//! ring segments costs
//!
//! ```text
//! T = overhead + bytes / (lanes * B) + hops * propagation
//! ```
//!
//! `overhead` bundles SerDes and E/O + O/E conversion at the endpoints (it is
//! paid once per message, not per hop, because intermediate micro-rings
//! bypass the signal optically).
//!
//! ```
//! use optical_sim::OpticalConfig;
//!
//! let timing = OpticalConfig::new(8, 4).timing();
//! let one_lane = timing.transfer_time(1 << 20, 1, 2);
//! let two_lanes = timing.transfer_time(1 << 20, 2, 2);
//! assert!(two_lanes < one_lane, "striping across lanes cuts serialization");
//! ```

use serde::{Deserialize, Serialize};

/// Timing constants for lightpath transfers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Bandwidth per wavelength, bytes/s.
    pub bytes_per_sec_per_lambda: f64,
    /// Fixed overhead per message, seconds.
    pub message_overhead_s: f64,
    /// Propagation per hop, seconds.
    pub hop_propagation_s: f64,
}

impl TimingModel {
    /// Time to deliver `bytes` over `lanes` parallel wavelengths across
    /// `hops` segments. `lanes` must be >= 1 (checked by callers).
    #[must_use]
    pub fn transfer_time(&self, bytes: u64, lanes: usize, hops: usize) -> f64 {
        debug_assert!(lanes >= 1);
        let serialization = bytes as f64 / (lanes as f64 * self.bytes_per_sec_per_lambda);
        self.message_overhead_s + serialization + hops as f64 * self.hop_propagation_s
    }

    /// Pure serialization component (no overhead/propagation).
    #[must_use]
    pub fn serialization_time(&self, bytes: u64, lanes: usize) -> f64 {
        bytes as f64 / (lanes as f64 * self.bytes_per_sec_per_lambda)
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        Self {
            bytes_per_sec_per_lambda: crate::config::DEFAULT_LAMBDA_BANDWIDTH_BPS,
            message_overhead_s: crate::config::DEFAULT_MESSAGE_OVERHEAD_S,
            hop_propagation_s: crate::config::DEFAULT_HOP_PROPAGATION_S,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TimingModel {
        TimingModel {
            bytes_per_sec_per_lambda: 1e9, // 1 GB/s per lambda for easy math
            message_overhead_s: 1e-6,
            hop_propagation_s: 1e-8,
        }
    }

    #[test]
    fn lanes_divide_serialization() {
        let m = model();
        let t1 = m.transfer_time(1_000_000, 1, 0);
        let t4 = m.transfer_time(1_000_000, 4, 0);
        // 1 MB at 1 GB/s = 1 ms; at 4 lanes = 250 us, plus 1 us overhead each.
        assert!((t1 - (1e-3 + 1e-6)).abs() < 1e-12);
        assert!((t4 - (0.25e-3 + 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn hops_add_propagation() {
        let m = model();
        let t0 = m.transfer_time(0, 1, 0);
        let t10 = m.transfer_time(0, 1, 10);
        assert!((t10 - t0 - 10.0 * 1e-8).abs() < 1e-15);
    }

    #[test]
    fn zero_bytes_costs_only_overhead_and_hops() {
        let m = model();
        assert!((m.transfer_time(0, 8, 0) - 1e-6).abs() < 1e-15);
        assert_eq!(m.serialization_time(0, 3), 0.0);
    }

    #[test]
    fn monotone_in_bytes_and_antitone_in_lanes() {
        let m = model();
        assert!(m.transfer_time(2_000, 1, 1) > m.transfer_time(1_000, 1, 1));
        assert!(m.transfer_time(2_000, 2, 1) < m.transfer_time(2_000, 1, 1));
    }
}
