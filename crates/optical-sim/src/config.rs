//! Simulator configuration: the physical constants of the optical ring.
//!
//! Defaults follow the TeraRack description the paper builds on: up to 64
//! DWDM wavelengths per waveguide at 25 Gb/s each (so a node that drives all
//! 64 channels reaches 1.6 Tb/s), nanosecond-scale per-hop propagation and a
//! fixed per-message overhead covering SerDes plus E/O + O/E conversion at
//! the endpoints.

use crate::error::{OpticalError, Result};
use crate::timing::TimingModel;
use serde::{Deserialize, Serialize};

/// 25 Gb/s expressed in bytes per second.
pub const DEFAULT_LAMBDA_BANDWIDTH_BPS: f64 = 25.0e9 / 8.0;
/// Default wavelengths per waveguide (TeraRack: 64).
pub const DEFAULT_WAVELENGTHS: usize = 64;
/// Default fixed per-message overhead in seconds (SerDes + E/O + O/E).
pub const DEFAULT_MESSAGE_OVERHEAD_S: f64 = 50e-9;
/// Default per-hop propagation delay in seconds (~1 m of fibre + bypass).
pub const DEFAULT_HOP_PROPAGATION_S: f64 = 5e-9;

/// Full description of an optical ring deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpticalConfig {
    /// Number of computing nodes on the ring.
    pub nodes: usize,
    /// WDM channels per waveguide.
    pub wavelengths: usize,
    /// Bandwidth of a single wavelength, bytes/s.
    pub lambda_bandwidth_bps: f64,
    /// Fixed per-message overhead, seconds.
    pub message_overhead_s: f64,
    /// Propagation delay per ring hop, seconds.
    pub hop_propagation_s: f64,
}

impl OpticalConfig {
    /// Configuration with default TeraRack-flavoured physical constants.
    #[must_use]
    pub fn new(nodes: usize, wavelengths: usize) -> Self {
        Self {
            nodes,
            wavelengths,
            lambda_bandwidth_bps: DEFAULT_LAMBDA_BANDWIDTH_BPS,
            message_overhead_s: DEFAULT_MESSAGE_OVERHEAD_S,
            hop_propagation_s: DEFAULT_HOP_PROPAGATION_S,
        }
    }

    /// The configuration used throughout the paper's evaluation:
    /// `nodes` GPUs, 64 wavelengths, 25 Gb/s per wavelength.
    #[must_use]
    pub fn paper_defaults(nodes: usize) -> Self {
        Self::new(nodes, DEFAULT_WAVELENGTHS)
    }

    /// Override per-wavelength bandwidth (bytes/s), builder style.
    #[must_use]
    pub fn with_lambda_bandwidth(mut self, bps: f64) -> Self {
        self.lambda_bandwidth_bps = bps;
        self
    }

    /// Override the fixed per-message overhead, builder style.
    #[must_use]
    pub fn with_message_overhead(mut self, seconds: f64) -> Self {
        self.message_overhead_s = seconds;
        self
    }

    /// Override per-hop propagation, builder style.
    #[must_use]
    pub fn with_hop_propagation(mut self, seconds: f64) -> Self {
        self.hop_propagation_s = seconds;
        self
    }

    /// Validate all parameters.
    pub fn validate(&self) -> Result<()> {
        if self.nodes < 2 {
            return Err(OpticalError::RingTooSmall(self.nodes));
        }
        if self.wavelengths == 0 {
            return Err(OpticalError::BadConfig("wavelengths must be >= 1"));
        }
        if !(self.lambda_bandwidth_bps.is_finite() && self.lambda_bandwidth_bps > 0.0) {
            return Err(OpticalError::BadConfig(
                "lambda_bandwidth_bps must be finite and positive",
            ));
        }
        if !(self.message_overhead_s.is_finite() && self.message_overhead_s >= 0.0) {
            return Err(OpticalError::BadConfig(
                "message_overhead_s must be finite and non-negative",
            ));
        }
        if !(self.hop_propagation_s.is_finite() && self.hop_propagation_s >= 0.0) {
            return Err(OpticalError::BadConfig(
                "hop_propagation_s must be finite and non-negative",
            ));
        }
        Ok(())
    }

    /// Extract the timing parameters as a [`TimingModel`].
    #[must_use]
    pub fn timing(&self) -> TimingModel {
        TimingModel {
            bytes_per_sec_per_lambda: self.lambda_bandwidth_bps,
            message_overhead_s: self.message_overhead_s,
            hop_propagation_s: self.hop_propagation_s,
        }
    }

    /// Aggregate bandwidth of one node driving every wavelength, bytes/s.
    #[must_use]
    pub fn aggregate_node_bandwidth_bps(&self) -> f64 {
        self.lambda_bandwidth_bps * self.wavelengths as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_terarack() {
        let c = OpticalConfig::paper_defaults(128);
        assert_eq!(c.wavelengths, 64);
        let tbps = c.aggregate_node_bandwidth_bps() * 8.0 / 1e12;
        assert!((tbps - 1.6).abs() < 1e-9, "expected 1.6 Tb/s, got {tbps}");
        c.validate().unwrap();
    }

    #[test]
    fn builders_override() {
        let c = OpticalConfig::new(8, 4)
            .with_lambda_bandwidth(1e9)
            .with_message_overhead(1e-6)
            .with_hop_propagation(2e-9);
        assert_eq!(c.lambda_bandwidth_bps, 1e9);
        assert_eq!(c.message_overhead_s, 1e-6);
        assert_eq!(c.hop_propagation_s, 2e-9);
    }

    #[test]
    fn validation_catches_bad_params() {
        assert!(OpticalConfig::new(1, 4).validate().is_err());
        assert!(OpticalConfig::new(4, 0).validate().is_err());
        assert!(OpticalConfig::new(4, 4)
            .with_lambda_bandwidth(-1.0)
            .validate()
            .is_err());
        assert!(OpticalConfig::new(4, 4)
            .with_lambda_bandwidth(f64::NAN)
            .validate()
            .is_err());
        assert!(OpticalConfig::new(4, 4)
            .with_message_overhead(-1.0)
            .validate()
            .is_err());
        assert!(OpticalConfig::new(4, 4)
            .with_hop_propagation(f64::INFINITY)
            .validate()
            .is_err());
    }

    #[test]
    fn timing_projection() {
        let c = OpticalConfig::new(8, 4);
        let t = c.timing();
        assert_eq!(t.bytes_per_sec_per_lambda, c.lambda_bandwidth_bps);
        assert_eq!(t.message_overhead_s, c.message_overhead_s);
    }
}
