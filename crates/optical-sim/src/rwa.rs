//! Routing and wavelength assignment (RWA).
//!
//! The paper assigns wavelengths within each Wrht subgroup with the classic
//! **First Fit** or **Best Fit** heuristics (its refs \[7\] and \[8\]). We track
//! per-direction, per-segment occupancy and place each lightpath on the
//! requested number of striping lanes:
//!
//! * **First Fit** — scan wavelengths from index 0 upward and take the first
//!   ones free on *every* segment of the path.
//! * **Best Fit** — prefer wavelengths that are already carrying the most
//!   traffic elsewhere on the ring (densest packing first), falling back to
//!   index order on ties. This keeps untouched wavelengths free for future
//!   wide stripes, which is the behaviour Best-Fit RWA aims for.

use crate::error::{OpticalError, Result};
use crate::path::LightPath;
use crate::topology::Direction;
use crate::wavelength::{Wavelength, WavelengthSet};
use serde::{Deserialize, Serialize};

/// Wavelength assignment heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Lowest-index-first assignment.
    FirstFit,
    /// Densest-packing-first assignment.
    BestFit,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::FirstFit => write!(f, "first-fit"),
            Strategy::BestFit => write!(f, "best-fit"),
        }
    }
}

/// Per-direction, per-segment wavelength occupancy for one scheduling round.
///
/// Serializable so long-running grant engines can checkpoint lane state
/// mid-run (see `engine::GrantEngine::snapshot`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Occupancy {
    wavelengths: usize,
    /// `used[dir][segment]` = set of wavelengths busy on that segment.
    used: [Vec<WavelengthSet>; 2],
    /// `load[dir][lambda]` = number of segments where lambda is busy.
    load: [Vec<usize>; 2],
    /// `down[lambda]` = the wavelength is administratively failed and admits
    /// no new lightpaths (fault injection; always all-false on clean runs).
    down: Vec<bool>,
}

fn dir_index(d: Direction) -> usize {
    match d {
        Direction::Clockwise => 0,
        Direction::CounterClockwise => 1,
    }
}

impl Occupancy {
    /// Fresh, fully idle occupancy for a ring with `segments` spans and
    /// `wavelengths` channels per waveguide.
    #[must_use]
    pub fn new(segments: usize, wavelengths: usize) -> Self {
        let mk = || vec![WavelengthSet::with_capacity(wavelengths); segments];
        Self {
            wavelengths,
            used: [mk(), mk()],
            load: [vec![0; wavelengths], vec![0; wavelengths]],
            down: vec![false; wavelengths],
        }
    }

    /// Number of wavelengths per waveguide.
    #[must_use]
    pub fn wavelengths(&self) -> usize {
        self.wavelengths
    }

    /// Is `lambda` free on every segment of `path`?
    #[must_use]
    pub fn is_free(&self, path: &LightPath, lambda: Wavelength) -> bool {
        if self.down[lambda.0] {
            return false;
        }
        let d = dir_index(path.direction);
        path.segments
            .iter()
            .all(|&s| !self.used[d][s].contains(lambda))
    }

    /// Mark `lambda` failed: it admits no new lightpaths until
    /// [`Occupancy::set_lane_up`]. Existing occupancy is untouched — the
    /// caller decides what happens to in-flight holders.
    pub fn set_lane_down(&mut self, lambda: Wavelength) {
        self.down[lambda.0] = true;
    }

    /// Repair `lambda` after a [`Occupancy::set_lane_down`].
    pub fn set_lane_up(&mut self, lambda: Wavelength) {
        self.down[lambda.0] = false;
    }

    /// Is `lambda` currently failed?
    #[must_use]
    pub fn is_lane_down(&self, lambda: Wavelength) -> bool {
        self.down[lambda.0]
    }

    /// Mark `lambda` busy along `path`.
    pub fn occupy(&mut self, path: &LightPath, lambda: Wavelength) {
        let d = dir_index(path.direction);
        for &s in &path.segments {
            debug_assert!(
                !self.used[d][s].contains(lambda),
                "double-occupying {lambda} on segment {s}"
            );
            self.used[d][s].insert(lambda);
        }
        self.load[d][lambda.0] += path.segments.len();
    }

    /// Release `lambda` along `path` (event-driven mode).
    pub fn release(&mut self, path: &LightPath, lambda: Wavelength) {
        let d = dir_index(path.direction);
        for &s in &path.segments {
            self.used[d][s].remove(lambda);
        }
        self.load[d][lambda.0] = self.load[d][lambda.0].saturating_sub(path.segments.len());
    }

    /// Highest wavelength index in use anywhere, plus one (i.e. the number of
    /// distinct channels the current assignment consumes under First Fit
    /// numbering).
    #[must_use]
    pub fn peak_wavelengths_used(&self) -> usize {
        let mut peak = 0;
        for d in 0..2 {
            for (l, &count) in self.load[d].iter().enumerate() {
                if count > 0 {
                    peak = peak.max(l + 1);
                }
            }
        }
        peak
    }

    /// Number of distinct wavelengths carrying at least one path.
    #[must_use]
    pub fn distinct_wavelengths_used(&self) -> usize {
        (0..self.wavelengths)
            .filter(|&l| self.load[0][l] > 0 || self.load[1][l] > 0)
            .count()
    }

    /// Assign `lanes` wavelengths to `path` with the given heuristic.
    ///
    /// On success the lanes are recorded as busy and returned in assignment
    /// order. Fails with [`OpticalError::WavelengthsExhausted`] when fewer
    /// than `lanes` channels are free along the whole path.
    pub fn assign(
        &mut self,
        path: &LightPath,
        lanes: usize,
        strategy: Strategy,
    ) -> Result<Vec<Wavelength>> {
        if lanes == 0 {
            return Err(OpticalError::ZeroLanes);
        }
        let order: Vec<Wavelength> = match strategy {
            Strategy::FirstFit => (0..self.wavelengths).map(Wavelength).collect(),
            Strategy::BestFit => {
                let d = dir_index(path.direction);
                let mut idx: Vec<usize> = (0..self.wavelengths).collect();
                // Busiest-elsewhere first; stable tie-break on index.
                idx.sort_by(|&a, &b| self.load[d][b].cmp(&self.load[d][a]).then(a.cmp(&b)));
                idx.into_iter().map(Wavelength).collect()
            }
        };
        let mut picked = Vec::with_capacity(lanes);
        for lambda in order {
            if picked.len() == lanes {
                break;
            }
            if self.is_free(path, lambda) {
                picked.push(lambda);
            }
        }
        if picked.len() < lanes {
            return Err(OpticalError::WavelengthsExhausted {
                available: self.wavelengths,
                requested: lanes,
                step: 0,
            });
        }
        for &lambda in &picked {
            self.occupy(path, lambda);
        }
        Ok(picked)
    }
}

/// Assign every path of a batch, returning per-path lane lists.
///
/// All paths are placed into one shared occupancy — this is exactly one
/// communication *step* of a stepped schedule.
pub fn assign_batch(
    occ: &mut Occupancy,
    paths: &[(LightPath, usize)],
    strategy: Strategy,
) -> Result<Vec<Vec<Wavelength>>> {
    paths
        .iter()
        .map(|(p, lanes)| occ.assign(p, *lanes, strategy))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{NodeId, RingTopology};

    fn path(t: &RingTopology, a: usize, b: usize, d: Direction) -> LightPath {
        LightPath::routed(t, NodeId(a), NodeId(b), d)
    }

    #[test]
    fn first_fit_reuses_low_indices_on_disjoint_paths() {
        let t = RingTopology::new(16);
        let mut occ = Occupancy::new(16, 8);
        let p1 = path(&t, 0, 2, Direction::Clockwise);
        let p2 = path(&t, 8, 10, Direction::Clockwise);
        let l1 = occ.assign(&p1, 1, Strategy::FirstFit).unwrap();
        let l2 = occ.assign(&p2, 1, Strategy::FirstFit).unwrap();
        // Disjoint segments: both get wavelength 0 (the "wavelength reuse"
        // Wrht's name refers to).
        assert_eq!(l1, vec![Wavelength(0)]);
        assert_eq!(l2, vec![Wavelength(0)]);
    }

    #[test]
    fn overlapping_paths_get_distinct_wavelengths() {
        let t = RingTopology::new(16);
        let mut occ = Occupancy::new(16, 8);
        let outer = path(&t, 0, 4, Direction::Clockwise);
        let inner = path(&t, 1, 3, Direction::Clockwise);
        let l1 = occ.assign(&outer, 1, Strategy::FirstFit).unwrap();
        let l2 = occ.assign(&inner, 1, Strategy::FirstFit).unwrap();
        assert_ne!(l1[0], l2[0]);
        assert_eq!(occ.peak_wavelengths_used(), 2);
    }

    #[test]
    fn striping_takes_multiple_lanes() {
        let t = RingTopology::new(8);
        let mut occ = Occupancy::new(8, 4);
        let p = path(&t, 0, 3, Direction::Clockwise);
        let lanes = occ.assign(&p, 3, Strategy::FirstFit).unwrap();
        assert_eq!(lanes, vec![Wavelength(0), Wavelength(1), Wavelength(2)]);
        assert_eq!(occ.distinct_wavelengths_used(), 3);
    }

    #[test]
    fn exhaustion_is_an_error() {
        let t = RingTopology::new(8);
        let mut occ = Occupancy::new(8, 2);
        let p = path(&t, 0, 4, Direction::Clockwise);
        assert!(occ.assign(&p, 3, Strategy::FirstFit).is_err());
        // Partial failure must not leak occupancy.
        assert_eq!(occ.distinct_wavelengths_used(), 0);
        occ.assign(&p, 2, Strategy::FirstFit).unwrap();
        let q = path(&t, 2, 6, Direction::Clockwise);
        assert!(occ.assign(&q, 1, Strategy::FirstFit).is_err());
    }

    #[test]
    fn opposite_directions_are_independent() {
        let t = RingTopology::new(8);
        let mut occ = Occupancy::new(8, 1);
        let cw = path(&t, 0, 4, Direction::Clockwise);
        let ccw = path(&t, 4, 0, Direction::CounterClockwise);
        occ.assign(&cw, 1, Strategy::FirstFit).unwrap();
        // Same span, opposite waveguide: the single wavelength is still free.
        occ.assign(&ccw, 1, Strategy::FirstFit).unwrap();
    }

    #[test]
    fn release_frees_lanes() {
        let t = RingTopology::new(8);
        let mut occ = Occupancy::new(8, 1);
        let p = path(&t, 0, 4, Direction::Clockwise);
        let lanes = occ.assign(&p, 1, Strategy::FirstFit).unwrap();
        let q = path(&t, 2, 6, Direction::Clockwise);
        assert!(occ.assign(&q, 1, Strategy::FirstFit).is_err());
        occ.release(&p, lanes[0]);
        occ.assign(&q, 1, Strategy::FirstFit).unwrap();
    }

    #[test]
    fn best_fit_packs_busy_wavelengths() {
        let t = RingTopology::new(16);
        let mut occ = Occupancy::new(16, 8);
        // Occupy lambda 0 heavily on one arc.
        let long = path(&t, 0, 6, Direction::Clockwise);
        occ.assign(&long, 1, Strategy::FirstFit).unwrap();
        // A disjoint path under BestFit should still pick lambda 0 (densest).
        let far = path(&t, 10, 12, Direction::Clockwise);
        let lanes = occ.assign(&far, 1, Strategy::BestFit).unwrap();
        assert_eq!(lanes, vec![Wavelength(0)]);
    }

    #[test]
    fn nested_side_needs_exactly_side_size_wavelengths() {
        // Wrht's claim: a group of m nodes needs floor(m/2) wavelengths,
        // because one side's paths are nested. Check for m = 7 (side 3).
        let t = RingTopology::new(32);
        let mut occ = Occupancy::new(32, 16);
        let rep = 3;
        for src in 0..rep {
            let p = path(&t, src, rep, Direction::Clockwise);
            occ.assign(&p, 1, Strategy::FirstFit).unwrap();
        }
        assert_eq!(occ.peak_wavelengths_used(), 3); // = floor(7/2)
    }

    #[test]
    fn down_lanes_admit_no_new_paths_until_repaired() {
        let t = RingTopology::new(8);
        let mut occ = Occupancy::new(8, 2);
        let p = path(&t, 0, 4, Direction::Clockwise);
        occ.set_lane_down(Wavelength(0));
        assert!(occ.is_lane_down(Wavelength(0)));
        // First Fit skips the failed lane 0.
        let lanes = occ.assign(&p, 1, Strategy::FirstFit).unwrap();
        assert_eq!(lanes, vec![Wavelength(1)]);
        // Both lanes needed, one down: exhaustion.
        let q = path(&t, 4, 0, Direction::Clockwise);
        assert!(occ.assign(&q, 2, Strategy::FirstFit).is_err());
        occ.set_lane_up(Wavelength(0));
        assert!(!occ.is_lane_down(Wavelength(0)));
        occ.assign(&q, 2, Strategy::FirstFit).unwrap();
    }

    #[test]
    fn assign_batch_matches_sequential() {
        let t = RingTopology::new(16);
        let mut occ = Occupancy::new(16, 8);
        let batch = vec![
            (path(&t, 0, 4, Direction::Clockwise), 1),
            (path(&t, 1, 3, Direction::Clockwise), 2),
            (path(&t, 8, 12, Direction::Clockwise), 1),
        ];
        let lanes = assign_batch(&mut occ, &batch, Strategy::FirstFit).unwrap();
        assert_eq!(lanes[0], vec![Wavelength(0)]);
        assert_eq!(lanes[1], vec![Wavelength(1), Wavelength(2)]);
        assert_eq!(lanes[2], vec![Wavelength(0)]);
    }
}
