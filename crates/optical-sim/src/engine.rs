//! A small deterministic discrete-event engine.
//!
//! Events are ordered by `(time, sequence)`; the sequence number makes
//! simultaneous events fire in insertion order, so runs are reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at simulated time `time` carrying a payload `T`.
#[derive(Debug, Clone)]
struct Scheduled<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap on (time, seq). Times are finite by
        // construction (asserted on push).
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
    now: f64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is not finite or precedes the current time.
    pub fn schedule_at(&mut self, time: f64, payload: T) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Schedule `payload` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: f64, payload: T) {
        let t = self.now + delay;
        self.schedule_at(t, payload);
    }

    /// Pop the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.payload)
        })
    }

    /// Timestamp of the earliest pending event, without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(3.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(2.0, "b");
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(got, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(5.0, i);
        }
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule_at(2.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.5);
        q.schedule_in(1.0, ());
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, 3.5);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(2.0, ());
        q.pop();
        q.schedule_at(1.0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(f64::NAN, ());
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(1.0, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
