//! The streaming wavelength-grant engine.
//!
//! [`GrantEngine`] is the single execution engine behind every dependency-
//! aware optical run. The closed-set entry points
//! ([`crate::sim::RingSimulator::run_dag`] and
//! [`crate::sim::RingSimulator::run_dag_jobs`]) are thin drivers over it:
//! they inject the whole transfer DAG at time zero and pump the engine to
//! idle. Open-loop cluster services instead [`GrantEngine::inject`] each
//! arriving job's transfers into the *running* engine — the grant loop,
//! arbitration and event kernel are shared, so a stream whose arrivals are
//! all known up front is bit-exact with the closed path.
//!
//! # Determinism across injection times
//!
//! Two rules make "inject later" indistinguishable from "inject at zero":
//!
//! 1. **Order keys, not slot indices.** Completed transfers release their
//!    slots for reuse (bounded memory on million-arrival streams), so slot
//!    indices are not stable identifiers. Every tie-break that the closed
//!    path resolved by transfer index — the waiting-list sort and the
//!    arbitration scan — uses a monotonically increasing per-transfer
//!    `order` key instead. When everything is injected at once, `order`
//!    *is* the transfer index, so the closed path is unchanged.
//! 2. **Set-based batches.** The kernel coalesces every event at a bit-
//!    identical instant into one batch and the engine processes the batch
//!    as a set (sorted waiting-list inserts, commutative lane releases)
//!    before a single grant scan. Relative sequence order between events
//!    scheduled before vs. after an injection therefore cannot change the
//!    outcome — only the *set* of simultaneous events matters.
//!
//! The engine also supports [`GrantEngine::snapshot`] /
//! [`GrantEngine::restore`]: a versioned, serializable image of the slots,
//! lane occupancy, pending kernel events and clock, pinned byte-identical
//! by the stream checkpoint tests in `wrht-core`.

use serde::{Deserialize, Serialize};
use wrht_kernel::EventKernel;

use crate::config::OpticalConfig;
use crate::error::{OpticalError, Result};
use crate::path::LightPath;
use crate::request::Transfer;
use crate::rwa::{Occupancy, Strategy};
use crate::timing::TimingModel;
use crate::topology::{Direction, RingTopology};
use crate::wavelength::Wavelength;

/// Version tag of [`GrantEngineSnapshot`]; bump on any layout change.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One transfer submitted to [`GrantEngine::inject`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrantTransfer {
    /// The transfer itself (route, payload, striping lanes).
    pub transfer: Transfer,
    /// Earliest start instant, **absolute** simulated seconds. Must not
    /// precede the engine clock at injection time.
    pub release_s: f64,
    /// Dependencies as indices **within the injected batch** (each `<` own
    /// position). Cross-batch dependencies are not expressible — a job's
    /// DAG is injected atomically.
    pub deps: Vec<usize>,
    /// Owning job slot (from [`GrantEngine::add_job`]); ignored (use 0)
    /// when the engine is not arbitrated.
    pub job: usize,
}

/// Completion record drained via [`GrantEngine::drain_completions`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrantCompletion {
    /// The transfer's order key — for a single batch injected at time zero
    /// this equals the submission index.
    pub order: u64,
    /// Owning job slot.
    pub job: usize,
    /// Grant instant, seconds.
    pub start_s: f64,
    /// Completion instant, seconds.
    pub finish_s: f64,
    /// Payload bytes.
    pub bytes: u64,
    /// Striping lanes the transfer held.
    pub lanes: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Ev {
    Gate(usize),
    Complete(usize),
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Slot {
    transfer: Transfer,
    path: LightPath,
    release_s: f64,
    missing: usize,
    dependents: Vec<usize>,
    job: usize,
    order: u64,
    assigned: Vec<Wavelength>,
    /// Grant instant; `None` until the transfer's lanes are granted.
    /// (An `Option`, not NaN, so snapshots survive JSON round-trips.)
    started: Option<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct JobSlot {
    rank: u64,
    service: f64,
}

/// Versioned, serializable image of a [`GrantEngine`] mid-run.
///
/// Contains the full mutable state: transfer slots and free list, job
/// table, lane occupancy, waiting list, pending kernel events in pop order,
/// the clock and counters. Restoring re-schedules the pending events in
/// order into a fresh kernel — relative insertion order is all tie-breaking
/// observes, so the resumed run is byte-identical to an uninterrupted one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GrantEngineSnapshot {
    /// Snapshot layout version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    now: f64,
    events: u64,
    occ: Occupancy,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    jobs: Vec<JobSlot>,
    job_free: Vec<usize>,
    next_order: u64,
    waiting: Vec<usize>,
    pending: Vec<(f64, Ev)>,
    completions: Vec<GrantCompletion>,
    active: usize,
    peak: usize,
    peak_wavelength: usize,
    makespan: f64,
}

/// The dependency-aware wavelength-grant engine (see module docs).
#[derive(Debug)]
pub struct GrantEngine {
    topo: RingTopology,
    timing: TimingModel,
    wavelengths: usize,
    strategy: Strategy,
    arbitrated: bool,
    fair_share: bool,
    occ: Occupancy,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    jobs: Vec<JobSlot>,
    job_free: Vec<usize>,
    next_order: u64,
    queue: EventKernel<Ev>,
    waiting: Vec<usize>,
    completions: Vec<GrantCompletion>,
    events_base: u64,
    active: usize,
    peak: usize,
    peak_wavelength: usize,
    makespan: f64,
    // Per-step scratch, allocated once.
    batch: Vec<Ev>,
    scan: Vec<usize>,
    claimed: [Vec<bool>; 2],
    claimed_set: Vec<(usize, usize)>,
    granted: Vec<bool>,
}

impl GrantEngine {
    /// Fresh engine over the given optical deployment.
    ///
    /// `arbitrated` enables the cross-job grant order (per-job rank, and
    /// least-service-first when `fair_share` is also set); without it,
    /// waiters are served purely in order-key (DAG) order.
    ///
    /// # Errors
    /// Invalid configurations are rejected exactly as by
    /// [`crate::sim::RingSimulator::try_new`].
    pub fn new(
        config: &OpticalConfig,
        strategy: Strategy,
        arbitrated: bool,
        fair_share: bool,
    ) -> Result<Self> {
        config.validate()?;
        let topo = RingTopology::try_new(config.nodes)?;
        let nodes = topo.nodes();
        Ok(Self {
            timing: config.timing(),
            wavelengths: config.wavelengths,
            strategy,
            arbitrated,
            fair_share,
            occ: Occupancy::new(nodes, config.wavelengths),
            slots: Vec::new(),
            free: Vec::new(),
            jobs: Vec::new(),
            job_free: Vec::new(),
            next_order: 0,
            queue: EventKernel::new(),
            waiting: Vec::new(),
            completions: Vec::new(),
            events_base: 0,
            active: 0,
            peak: 0,
            peak_wavelength: 0,
            makespan: 0.0,
            batch: Vec::new(),
            scan: Vec::new(),
            claimed: [vec![false; nodes], vec![false; nodes]],
            claimed_set: Vec::new(),
            granted: Vec::new(),
            topo,
        })
    }

    /// Register a job with the given static grant rank, returning its slot.
    /// Slots of [`GrantEngine::retire_job`]d jobs are reused.
    pub fn add_job(&mut self, rank: u64) -> usize {
        let slot = JobSlot { rank, service: 0.0 };
        if let Some(j) = self.job_free.pop() {
            self.jobs[j] = slot;
            j
        } else {
            self.jobs.push(slot);
            self.jobs.len() - 1
        }
    }

    /// Release a job slot for reuse. The caller must ensure every transfer
    /// of the job has completed (a finished job has no waiters, so its
    /// accumulated fair-share service can no longer influence any grant).
    pub fn retire_job(&mut self, job: usize) {
        debug_assert!(job < self.jobs.len());
        self.job_free.push(job);
    }

    /// Inject a transfer batch (one job's DAG) into the running engine.
    ///
    /// Dependencies are batch-local; release times are absolute and must
    /// not precede the engine clock. Returns nothing — completions surface
    /// through [`GrantEngine::drain_completions`], identified by order key
    /// and job.
    ///
    /// # Errors
    /// Same validation (and error values) as the closed DAG path: forward
    /// deps, non-finite/negative releases, unroutable transfers and lane
    /// demands exceeding the channel count are rejected before any state
    /// changes.
    pub fn inject(&mut self, transfers: &[GrantTransfer]) -> Result<()> {
        let now = self.queue.now();
        let mut paths: Vec<LightPath> = Vec::with_capacity(transfers.len());
        for (i, t) in transfers.iter().enumerate() {
            if t.deps.iter().any(|&d| d >= i) {
                return Err(OpticalError::BadConfig(
                    "dependency must precede its transfer",
                ));
            }
            if !t.release_s.is_finite() || t.release_s < 0.0 {
                return Err(OpticalError::BadConfig(
                    "release time must be finite and >= 0",
                ));
            }
            if t.release_s < now {
                return Err(OpticalError::BadConfig(
                    "release time must not precede the engine clock",
                ));
            }
            if self.arbitrated && t.job >= self.jobs.len() {
                return Err(OpticalError::BadConfig(
                    "job tag out of range of the rank table",
                ));
            }
            let path = t.transfer.resolve(&self.topo)?;
            if t.transfer.lanes > self.wavelengths {
                return Err(OpticalError::WavelengthsExhausted {
                    available: self.wavelengths,
                    requested: t.transfer.lanes,
                    step: 0,
                });
            }
            paths.push(path);
        }

        let mut ids: Vec<usize> = Vec::with_capacity(transfers.len());
        for (t, path) in transfers.iter().zip(paths) {
            let order = self.next_order;
            self.next_order += 1;
            let slot = Slot {
                transfer: t.transfer.clone(),
                path,
                release_s: t.release_s,
                missing: t.deps.len(),
                dependents: Vec::new(),
                job: t.job,
                order,
                assigned: Vec::new(),
                started: None,
            };
            let id = if let Some(id) = self.free.pop() {
                self.slots[id] = Some(slot);
                id
            } else {
                self.slots.push(Some(slot));
                self.granted.push(false);
                self.slots.len() - 1
            };
            ids.push(id);
        }
        for (bi, t) in transfers.iter().enumerate() {
            let id = ids[bi];
            for &d in &t.deps {
                self.slots[ids[d]]
                    .as_mut()
                    .expect("freshly injected slot")
                    .dependents
                    .push(id);
            }
            if t.deps.is_empty() {
                self.queue
                    .schedule_at(t.release_s, Ev::Gate(id))
                    .expect("validated release time");
            }
        }
        Ok(())
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<f64> {
        self.queue.peek_time()
    }

    /// Process the next event batch (every event at the next bit-identical
    /// instant) and run one grant scan. Returns the batch instant, or
    /// `None` when the engine is idle.
    pub fn step(&mut self) -> Option<f64> {
        self.batch.clear();
        let now = self.queue.pop_batch(&mut self.batch)?;
        // The kernel coalesces every event at this exact instant before
        // granting: cross-job arbitration must see all simultaneous waiters
        // (and all simultaneously freed wavelengths) together. Completes
        // scheduled *by* the grant scan below land in a later batch at the
        // same clock, which is fine.
        for k in 0..self.batch.len() {
            match self.batch[k] {
                Ev::Gate(id) => self.enqueue_waiting(id),
                Ev::Complete(id) => self.complete(id, now),
            }
        }
        self.grant_scan();
        Some(now)
    }

    /// Insert `id` into the waiting list, keeping it sorted by order key.
    fn enqueue_waiting(&mut self, id: usize) {
        let ord = self.slots[id].as_ref().expect("gated slot is live").order;
        let slots = &self.slots;
        let pos = self
            .waiting
            .partition_point(|&w| slots[w].as_ref().expect("waiting slot is live").order < ord);
        self.waiting.insert(pos, id);
    }

    fn complete(&mut self, id: usize, now: f64) {
        // The slot is retired here — its only two events (one gate, one
        // completion) have both fired, and dependents hold no references
        // past the `missing` decrement below — so the slot count tracks
        // *live* transfers, not total transfers ever injected.
        let slot = self.slots[id].take().expect("completed slot is live");
        self.free.push(id);
        for &lambda in &slot.assigned {
            self.occ.release(&slot.path, lambda);
        }
        self.makespan = self.makespan.max(now);
        self.active -= 1;
        for &dep in &slot.dependents {
            let d = self.slots[dep].as_mut().expect("dependent slot is live");
            d.missing -= 1;
            if d.missing == 0 {
                let rel = d.release_s;
                if rel <= now {
                    self.enqueue_waiting(dep);
                } else {
                    self.queue
                        .schedule_at(rel, Ev::Gate(dep))
                        .expect("validated release time after now");
                }
            }
        }
        self.completions.push(GrantCompletion {
            order: slot.order,
            job: slot.job,
            start_s: slot.started.unwrap_or(0.0),
            finish_s: now,
            bytes: slot.transfer.bytes,
            lanes: slot.transfer.lanes,
        });
    }

    /// Start every waiter that now fits. Scan order is order-key (DAG)
    /// order, or under arbitration least-served / lowest-ranked job first
    /// with order-key tie-breaks. Segments of waiters that do NOT fit are
    /// claimed so later waiters cannot overtake them on a shared span.
    fn grant_scan(&mut self) {
        let Self {
            slots,
            jobs,
            occ,
            queue,
            waiting,
            scan,
            claimed,
            claimed_set,
            granted,
            active,
            peak,
            peak_wavelength,
            makespan: _,
            timing,
            strategy,
            arbitrated,
            fair_share,
            ..
        } = self;
        scan.clear();
        scan.extend_from_slice(waiting);
        if *arbitrated {
            scan.sort_by(|&x, &y| {
                let sx = slots[x].as_ref().expect("waiting slot is live");
                let sy = slots[y].as_ref().expect("waiting slot is live");
                let (vx, vy) = if *fair_share {
                    (jobs[sx.job].service, jobs[sy.job].service)
                } else {
                    (0.0, 0.0)
                };
                vx.total_cmp(&vy)
                    .then(jobs[sx.job].rank.cmp(&jobs[sy.job].rank))
                    .then(sx.order.cmp(&sy.order))
            });
        }
        let mut any_granted = false;
        for &id in scan.iter() {
            let slot = slots[id].as_mut().expect("waiting slot is live");
            let d = usize::from(slot.path.direction == Direction::CounterClockwise);
            let overtakes = slot.path.segments.iter().any(|&s| claimed[d][s]);
            if !overtakes {
                if let Ok(lanes) = occ.assign(&slot.path, slot.transfer.lanes, *strategy) {
                    slot.assigned = lanes;
                    let dur = timing.transfer_time(
                        slot.transfer.bytes,
                        slot.transfer.lanes,
                        slot.path.hops(),
                    );
                    slot.started = Some(queue.now());
                    queue
                        .schedule_in(dur, Ev::Complete(id))
                        .expect("transfer duration is a finite forward delay");
                    *active += 1;
                    *peak = (*peak).max(*active);
                    *peak_wavelength = (*peak_wavelength).max(occ.peak_wavelengths_used());
                    if *arbitrated {
                        jobs[slot.job].service += dur * slot.transfer.lanes as f64;
                    }
                    granted[id] = true;
                    any_granted = true;
                    continue;
                }
            }
            for &s in &slot.path.segments {
                if !claimed[d][s] {
                    claimed[d][s] = true;
                    claimed_set.push((d, s));
                }
            }
        }
        if any_granted {
            waiting.retain(|&id| {
                let g = granted[id];
                if g {
                    granted[id] = false;
                }
                !g
            });
        }
        for &(d, s) in claimed_set.iter() {
            claimed[d][s] = false;
        }
        claimed_set.clear();
    }

    /// Append and clear the accumulated completion records.
    pub fn drain_completions(&mut self, out: &mut Vec<GrantCompletion>) {
        out.append(&mut self.completions);
    }

    /// Current engine clock (timestamp of the last processed batch).
    #[must_use]
    pub fn now(&self) -> f64 {
        self.queue.now()
    }

    /// Events processed so far, including any before a snapshot/restore.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events_base + self.queue.events_processed()
    }

    /// Number of live (injected, not yet completed) transfer slots.
    #[must_use]
    pub fn live_transfers(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Number of pending kernel events.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Completion time of the last completed transfer, seconds.
    #[must_use]
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Peak number of concurrently active transfers.
    #[must_use]
    pub fn peak_concurrency(&self) -> usize {
        self.peak
    }

    /// Highest wavelength index in use at any instant, plus one.
    #[must_use]
    pub fn peak_wavelength(&self) -> usize {
        self.peak_wavelength
    }

    /// Lane demand of the first stuck waiter, if the engine went idle with
    /// waiters that can never be served.
    #[must_use]
    pub fn stuck_lanes(&self) -> Option<usize> {
        self.waiting.first().map(|&id| {
            self.slots[id]
                .as_ref()
                .expect("waiting slot is live")
                .transfer
                .lanes
        })
    }

    /// Capture the full mutable state as a versioned snapshot.
    ///
    /// Drained completions are the caller's responsibility; records still
    /// buffered in the engine are included and survive the round-trip.
    #[must_use]
    pub fn snapshot(&self) -> GrantEngineSnapshot {
        GrantEngineSnapshot {
            version: SNAPSHOT_VERSION,
            now: self.queue.now(),
            events: self.events(),
            occ: self.occ.clone(),
            slots: self.slots.clone(),
            free: self.free.clone(),
            jobs: self.jobs.clone(),
            job_free: self.job_free.clone(),
            next_order: self.next_order,
            waiting: self.waiting.clone(),
            pending: self
                .queue
                .pending()
                .into_iter()
                .map(|(t, ev)| (t, *ev))
                .collect(),
            completions: self.completions.clone(),
            active: self.active,
            peak: self.peak,
            peak_wavelength: self.peak_wavelength,
            makespan: self.makespan,
        }
    }

    /// Rebuild an engine from a snapshot taken on an identically configured
    /// engine. The resumed run is byte-identical to the uninterrupted one.
    ///
    /// # Errors
    /// Rejects unknown snapshot versions and invalid configurations.
    pub fn restore(
        config: &OpticalConfig,
        strategy: Strategy,
        arbitrated: bool,
        fair_share: bool,
        snap: &GrantEngineSnapshot,
    ) -> Result<Self> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(OpticalError::BadConfig(
                "unsupported grant-engine snapshot version",
            ));
        }
        let mut eng = Self::new(config, strategy, arbitrated, fair_share)?;
        eng.queue
            .fast_forward(snap.now)
            .map_err(|_| OpticalError::BadConfig("snapshot clock must be finite and >= 0"))?;
        for (t, ev) in &snap.pending {
            eng.queue
                .schedule_at(*t, *ev)
                .map_err(|_| OpticalError::BadConfig("snapshot event precedes its clock"))?;
        }
        eng.occ = snap.occ.clone();
        eng.slots = snap.slots.clone();
        eng.free = snap.free.clone();
        eng.jobs = snap.jobs.clone();
        eng.job_free = snap.job_free.clone();
        eng.next_order = snap.next_order;
        eng.waiting = snap.waiting.clone();
        eng.completions = snap.completions.clone();
        eng.events_base = snap.events;
        eng.active = snap.active;
        eng.peak = snap.peak;
        eng.peak_wavelength = snap.peak_wavelength;
        eng.makespan = snap.makespan;
        eng.granted = vec![false; eng.slots.len()];
        Ok(eng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeId;

    fn cfg() -> OpticalConfig {
        OpticalConfig::new(8, 2)
            .with_lambda_bandwidth(1e9)
            .with_message_overhead(0.0)
            .with_hop_propagation(0.0)
    }

    fn item(src: usize, dst: usize, bytes: u64, release_s: f64, deps: Vec<usize>) -> GrantTransfer {
        GrantTransfer {
            transfer: Transfer::directed(NodeId(src), NodeId(dst), bytes, Direction::Clockwise),
            release_s,
            deps,
            job: 0,
        }
    }

    #[test]
    fn incremental_injection_matches_upfront_injection() {
        // Same workload, two drivers: everything injected at time zero vs.
        // the second job's transfers injected only once the clock reaches
        // their arrival. Makespans and event counts must agree bit-exactly.
        let run_upfront = || {
            let mut eng = GrantEngine::new(&cfg(), Strategy::FirstFit, false, false).unwrap();
            eng.inject(&[
                item(0, 2, 1_000_000, 0.0, vec![]),
                item(0, 2, 1_000_000, 0.0, vec![0]),
                item(1, 3, 2_000_000, 5e-4, vec![]),
            ])
            .unwrap();
            while eng.step().is_some() {}
            (eng.makespan(), eng.events())
        };
        let run_incremental = || {
            let mut eng = GrantEngine::new(&cfg(), Strategy::FirstFit, false, false).unwrap();
            eng.inject(&[
                item(0, 2, 1_000_000, 0.0, vec![]),
                item(0, 2, 1_000_000, 0.0, vec![0]),
            ])
            .unwrap();
            let arrival = 5e-4;
            let mut injected = false;
            loop {
                if !injected && self::peek_at_least(&mut eng, arrival) {
                    eng.inject(&[item(1, 3, 2_000_000, arrival, vec![])])
                        .unwrap();
                    injected = true;
                }
                if eng.step().is_none() {
                    if injected {
                        break;
                    }
                    eng.inject(&[item(1, 3, 2_000_000, arrival, vec![])])
                        .unwrap();
                    injected = true;
                }
            }
            (eng.makespan(), eng.events())
        };
        let (m1, e1) = run_upfront();
        let (m2, e2) = run_incremental();
        assert_eq!(m1.to_bits(), m2.to_bits());
        assert_eq!(e1, e2);
    }

    fn peek_at_least(eng: &mut GrantEngine, t: f64) -> bool {
        eng.peek_time().is_none_or(|p| p >= t)
    }

    #[test]
    fn slots_are_reused_after_completion() {
        let mut eng = GrantEngine::new(&cfg(), Strategy::FirstFit, false, false).unwrap();
        for round in 0..100 {
            let t = f64::from(round) * 1.0;
            // Drain to the arrival instant, then inject one transfer.
            while eng.peek_time().is_some_and(|p| p < t) {
                eng.step();
            }
            eng.inject(&[item(0, 1, 1_000_000, t, vec![])]).unwrap();
            while eng.step().is_some() {}
        }
        assert!(
            eng.slots.len() <= 2,
            "completed slots must be recycled, got {}",
            eng.slots.len()
        );
        assert_eq!(eng.live_transfers(), 0);
    }

    #[test]
    fn snapshot_restore_resumes_byte_identically() {
        let cfgv = cfg();
        let items = vec![
            item(0, 2, 1_000_000, 0.0, vec![]),
            item(0, 2, 3_000_000, 0.0, vec![0]),
            item(1, 3, 2_000_000, 2e-4, vec![]),
            item(4, 6, 1_500_000, 0.0, vec![]),
        ];
        // Uninterrupted reference.
        let mut full = GrantEngine::new(&cfgv, Strategy::FirstFit, false, false).unwrap();
        full.inject(&items).unwrap();
        while full.step().is_some() {}
        // Interrupted at the second batch: snapshot, serialize, restore.
        let mut eng = GrantEngine::new(&cfgv, Strategy::FirstFit, false, false).unwrap();
        eng.inject(&items).unwrap();
        eng.step();
        eng.step();
        let json = serde_json::to_string(&eng.snapshot()).unwrap();
        let snap: GrantEngineSnapshot = serde_json::from_str(&json).unwrap();
        let mut resumed =
            GrantEngine::restore(&cfgv, Strategy::FirstFit, false, false, &snap).unwrap();
        while resumed.step().is_some() {}
        assert_eq!(full.makespan().to_bits(), resumed.makespan().to_bits());
        assert_eq!(full.events(), resumed.events());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        full.drain_completions(&mut a);
        resumed.drain_completions(&mut b);
        let tail = &a[a.len() - b.len()..];
        assert_eq!(tail, &b[..], "post-restore completions must match");
    }

    #[test]
    fn unknown_snapshot_version_is_rejected() {
        let eng = GrantEngine::new(&cfg(), Strategy::FirstFit, false, false).unwrap();
        let mut snap = eng.snapshot();
        snap.version = SNAPSHOT_VERSION + 1;
        assert!(matches!(
            GrantEngine::restore(&cfg(), Strategy::FirstFit, false, false, &snap),
            Err(OpticalError::BadConfig(_))
        ));
    }
}
