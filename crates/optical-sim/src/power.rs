//! Energy model for optical transmissions.
//!
//! The paper motivates optical interconnects partly by their lower power
//! cost. This module provides a simple but standard accounting: a per-bit
//! dynamic energy for modulation/detection plus a static laser power per
//! active wavelength for the duration of a run. Constants default to values
//! in the silicon-photonics literature the paper cites (single-digit pJ/bit).

use crate::stats::RunStats;
use serde::{Deserialize, Serialize};

/// Energy accounting constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Dynamic energy per transmitted bit, joules.
    pub joules_per_bit: f64,
    /// Static laser + thermal-tuning power per active wavelength, watts.
    pub watts_per_active_lambda: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            joules_per_bit: 2.0e-12,        // 2 pJ/bit
            watts_per_active_lambda: 0.015, // 15 mW per lambda
        }
    }
}

/// Energy breakdown for a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Dynamic (per-bit) energy, joules.
    pub dynamic_j: f64,
    /// Static (laser) energy, joules.
    pub static_j: f64,
}

impl EnergyReport {
    /// Total energy, joules.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.static_j
    }
}

impl EnergyModel {
    /// Estimate the energy of a stepped run from its statistics.
    #[must_use]
    pub fn estimate(&self, stats: &RunStats) -> EnergyReport {
        let mut dynamic_j = 0.0;
        let mut static_j = 0.0;
        for step in &stats.steps {
            dynamic_j += step.bytes as f64 * 8.0 * self.joules_per_bit;
            static_j +=
                step.wavelengths_used as f64 * self.watts_per_active_lambda * step.duration_s;
        }
        EnergyReport {
            dynamic_j,
            static_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StepStats;

    #[test]
    fn energy_scales_with_bytes_and_time() {
        let model = EnergyModel {
            joules_per_bit: 1e-12,
            watts_per_active_lambda: 0.01,
        };
        let stats = RunStats {
            steps: vec![StepStats {
                index: 0,
                transfers: 1,
                duration_s: 2.0,
                bytes: 1_000,
                wavelengths_used: 4,
                peak_wavelength: 4,
                total_lanes: 4,
                max_hops: 1,
            }],
        };
        let e = model.estimate(&stats);
        assert!((e.dynamic_j - 8_000.0 * 1e-12).abs() < 1e-18);
        assert!((e.static_j - 4.0 * 0.01 * 2.0).abs() < 1e-15);
        assert!((e.total_j() - (e.dynamic_j + e.static_j)).abs() < 1e-18);
    }

    #[test]
    fn empty_run_consumes_nothing() {
        let e = EnergyModel::default().estimate(&RunStats::default());
        assert_eq!(e.total_j(), 0.0);
    }
}
