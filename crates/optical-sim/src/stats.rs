//! Aggregated statistics produced by simulation runs.

use serde::{Deserialize, Serialize};

/// Statistics for one executed communication step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepStats {
    /// Index of the step in the schedule.
    pub index: usize,
    /// Number of transfers in the step.
    pub transfers: usize,
    /// Wall-clock duration of the step, seconds.
    pub duration_s: f64,
    /// Bytes moved in the step (sum over transfers).
    pub bytes: u64,
    /// Distinct wavelengths used anywhere during the step.
    pub wavelengths_used: usize,
    /// Highest wavelength index used + 1 (First-Fit footprint).
    pub peak_wavelength: usize,
    /// Total striping lanes summed over transfers.
    pub total_lanes: usize,
    /// Longest hop count among the step's paths.
    pub max_hops: usize,
}

/// Statistics for a whole schedule run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Per-step breakdown.
    pub steps: Vec<StepStats>,
}

impl RunStats {
    /// Total simulated time, seconds.
    #[must_use]
    pub fn total_time_s(&self) -> f64 {
        self.steps.iter().map(|s| s.duration_s).sum()
    }

    /// Total bytes moved across all steps.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.bytes).sum()
    }

    /// Largest wavelength footprint over all steps.
    #[must_use]
    pub fn peak_wavelengths(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.peak_wavelength)
            .max()
            .unwrap_or(0)
    }

    /// Number of communication steps.
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Mean effective goodput over the run, bytes/s (0 for empty runs).
    #[must_use]
    pub fn mean_goodput_bps(&self) -> f64 {
        let t = self.total_time_s();
        if t > 0.0 {
            self.total_bytes() as f64 / t
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(index: usize, duration_s: f64, bytes: u64, peak: usize) -> StepStats {
        StepStats {
            index,
            transfers: 1,
            duration_s,
            bytes,
            wavelengths_used: peak,
            peak_wavelength: peak,
            total_lanes: peak,
            max_hops: 1,
        }
    }

    #[test]
    fn aggregates() {
        let stats = RunStats {
            steps: vec![step(0, 1.0, 100, 2), step(1, 2.0, 300, 5)],
        };
        assert_eq!(stats.total_time_s(), 3.0);
        assert_eq!(stats.total_bytes(), 400);
        assert_eq!(stats.peak_wavelengths(), 5);
        assert_eq!(stats.step_count(), 2);
        assert!((stats.mean_goodput_bps() - 400.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_zero() {
        let stats = RunStats::default();
        assert_eq!(stats.total_time_s(), 0.0);
        assert_eq!(stats.mean_goodput_bps(), 0.0);
        assert_eq!(stats.peak_wavelengths(), 0);
    }
}
