//! Execution traces: per-transfer records of a stepped run, exportable as
//! JSON for timeline visualization or external analysis.

use crate::error::Result;
use crate::request::Transfer;
use crate::rwa::{Occupancy, Strategy};
use crate::sim::{RingSimulator, StepSchedule};
use crate::topology::Direction;
use crate::wavelength::Wavelength;
use serde::{Deserialize, Serialize};

/// One transfer's execution record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Step index in the schedule.
    pub step: usize,
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// Resolved propagation direction.
    pub direction: Direction,
    /// Hop count of the lightpath.
    pub hops: usize,
    /// Wavelengths assigned (lane striping).
    pub lambdas: Vec<usize>,
    /// Transfer start time, seconds (steps are barriers).
    pub start_s: f64,
    /// Transfer finish time, seconds.
    pub finish_s: f64,
}

/// A full run trace.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunTrace {
    /// Entries in (step, submission) order.
    pub entries: Vec<TraceEntry>,
}

impl RunTrace {
    /// Total wall-clock span covered by the trace.
    #[must_use]
    pub fn makespan_s(&self) -> f64 {
        self.entries.iter().map(|e| e.finish_s).fold(0.0, f64::max)
    }

    /// Entries of one step.
    #[must_use]
    pub fn step(&self, step: usize) -> Vec<&TraceEntry> {
        self.entries.iter().filter(|e| e.step == step).collect()
    }

    /// Busiest wavelength (most transfer-seconds) and its load.
    ///
    /// Deterministic: candidates are compared in ascending wavelength-index
    /// order (a `BTreeMap`, not a hash map, so no `RandomState` order leaks
    /// into the answer), and on a tied load the *highest* wavelength index
    /// wins — the same answer on every run for the same trace.
    #[must_use]
    pub fn busiest_wavelength(&self) -> Option<(usize, f64)> {
        use std::collections::BTreeMap;
        let mut load: BTreeMap<usize, f64> = BTreeMap::new();
        for e in &self.entries {
            for &l in &e.lambdas {
                *load.entry(l).or_insert(0.0) += e.finish_s - e.start_s;
            }
        }
        // max_by keeps the LAST maximum; ascending key order makes that the
        // highest tied wavelength index.
        load.into_iter().max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// Execute a stepped schedule while recording a full per-transfer trace.
///
/// Semantics are identical to [`RingSimulator::run_stepped`]; this exists
/// as a separate entry point so the hot path stays allocation-light.
pub fn run_stepped_traced(
    sim: &mut RingSimulator,
    schedule: &StepSchedule,
    strategy: Strategy,
) -> Result<(f64, RunTrace)> {
    let topo = sim.topology().clone();
    let config = sim.config().clone();
    let timing = config.timing();
    let mut trace = RunTrace::default();
    let mut clock = 0.0f64;

    for (index, step) in schedule.steps().iter().enumerate() {
        let mut occ = Occupancy::new(topo.nodes(), config.wavelengths);
        let mut duration = 0.0f64;
        for tr in step {
            let path = tr.resolve(&topo)?;
            let lambdas: Vec<Wavelength> = occ.assign(&path, tr.lanes, strategy)?;
            let t = timing.transfer_time(tr.bytes, tr.lanes, path.hops());
            trace.entries.push(TraceEntry {
                step: index,
                src: tr.src.0,
                dst: tr.dst.0,
                bytes: tr.bytes,
                direction: path.direction,
                hops: path.hops(),
                lambdas: lambdas.iter().map(|l| l.0).collect(),
                start_s: clock,
                finish_s: clock + t,
            });
            duration = duration.max(t);
        }
        clock += duration;
    }
    Ok((clock, trace))
}

/// Convenience: trace a single-step batch of transfers.
pub fn trace_step(
    sim: &mut RingSimulator,
    transfers: Vec<Transfer>,
    strategy: Strategy,
) -> Result<RunTrace> {
    let (_, trace) = run_stepped_traced(sim, &StepSchedule::from_steps(vec![transfers]), strategy)?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OpticalConfig;
    use crate::topology::NodeId;

    fn sim() -> RingSimulator {
        RingSimulator::new(
            OpticalConfig::new(8, 4)
                .with_lambda_bandwidth(1e9)
                .with_message_overhead(0.0)
                .with_hop_propagation(0.0),
        )
    }

    #[test]
    fn trace_matches_untraced_run() {
        let sched = StepSchedule::from_steps(vec![
            vec![Transfer::shortest(NodeId(0), NodeId(2), 1_000_000)],
            vec![Transfer::shortest(NodeId(2), NodeId(4), 2_000_000)],
        ]);
        let mut s = sim();
        let plain = s.run_stepped(&sched, Strategy::FirstFit).unwrap();
        let (total, trace) = run_stepped_traced(&mut s, &sched, Strategy::FirstFit).unwrap();
        assert!((total - plain.total_time_s).abs() < 1e-15);
        assert_eq!(trace.entries.len(), 2);
        assert!((trace.makespan_s() - total).abs() < 1e-15);
    }

    #[test]
    fn steps_are_barrier_aligned() {
        let sched = StepSchedule::from_steps(vec![
            vec![
                Transfer::shortest(NodeId(0), NodeId(1), 500_000),
                Transfer::shortest(NodeId(4), NodeId(5), 1_000_000),
            ],
            vec![Transfer::shortest(NodeId(1), NodeId(2), 100)],
        ]);
        let mut s = sim();
        let (_, trace) = run_stepped_traced(&mut s, &sched, Strategy::FirstFit).unwrap();
        // Second step starts only after the slowest first-step transfer.
        let step2 = trace.step(1);
        assert!((step2[0].start_s - 1e-3).abs() < 1e-12);
        // Within a step, all transfers share the start time.
        let step1 = trace.step(0);
        assert_eq!(step1[0].start_s, step1[1].start_s);
    }

    #[test]
    fn lambdas_are_recorded_per_lane() {
        let sched =
            StepSchedule::from_steps(vec![vec![
                Transfer::shortest(NodeId(0), NodeId(3), 1000).with_lanes(3)
            ]]);
        let mut s = sim();
        let (_, trace) = run_stepped_traced(&mut s, &sched, Strategy::FirstFit).unwrap();
        assert_eq!(trace.entries[0].lambdas, vec![0, 1, 2]);
        assert_eq!(trace.entries[0].hops, 3);
    }

    #[test]
    fn busiest_wavelength_accounts_duration() {
        let mut s = sim();
        let trace = trace_step(
            &mut s,
            vec![
                Transfer::shortest(NodeId(0), NodeId(1), 1_000_000), // lambda 0, 1 ms
                Transfer::shortest(NodeId(4), NodeId(5), 500_000),   // lambda 0 reused, 0.5 ms
            ],
            Strategy::FirstFit,
        )
        .unwrap();
        let (lambda, load) = trace.busiest_wavelength().unwrap();
        assert_eq!(lambda, 0);
        assert!((load - 1.5e-3).abs() < 1e-12);
    }

    #[test]
    fn busiest_wavelength_is_order_independent_and_tie_deterministic() {
        // Dyadic durations: every partial sum is exact, so any insertion
        // order must produce bit-identical loads.
        let entry = |lambda: usize, dur: f64| TraceEntry {
            step: 0,
            src: 0,
            dst: 1,
            bytes: 1,
            direction: Direction::Clockwise,
            hops: 1,
            lambdas: vec![lambda],
            start_s: 0.0,
            finish_s: dur,
        };
        // λ1 and λ3 tie at 0.75; λ0 trails at 0.5.
        let base = vec![
            entry(1, 0.5),
            entry(1, 0.25),
            entry(3, 0.25),
            entry(3, 0.5),
            entry(0, 0.5),
        ];
        let reference = RunTrace {
            entries: base.clone(),
        }
        .busiest_wavelength()
        .unwrap();
        // Ties break to the highest wavelength index.
        assert_eq!(reference.0, 3);
        assert_eq!(reference.1.to_bits(), 0.75f64.to_bits());
        // Every rotation (and the full reverse) of the entry order gives a
        // bit-identical answer.
        for rot in 0..base.len() {
            let mut perm = base.clone();
            perm.rotate_left(rot);
            let (l, s) = RunTrace { entries: perm }.busiest_wavelength().unwrap();
            assert_eq!((l, s.to_bits()), (reference.0, reference.1.to_bits()));
        }
        let mut rev = base;
        rev.reverse();
        let (l, s) = RunTrace { entries: rev }.busiest_wavelength().unwrap();
        assert_eq!((l, s.to_bits()), (reference.0, reference.1.to_bits()));
    }

    #[test]
    fn empty_schedule_traces_empty() {
        let mut s = sim();
        let (total, trace) =
            run_stepped_traced(&mut s, &StepSchedule::default(), Strategy::FirstFit).unwrap();
        assert_eq!(total, 0.0);
        assert!(trace.entries.is_empty());
        assert!(trace.busiest_wavelength().is_none());
    }

    #[test]
    fn trace_serializes() {
        let mut s = sim();
        let trace = trace_step(
            &mut s,
            vec![Transfer::shortest(NodeId(0), NodeId(1), 100)],
            Strategy::BestFit,
        )
        .unwrap();
        let json = serde_json::to_string(&trace).unwrap();
        let back: RunTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }
}
