//! Wavelength identifiers and dense wavelength sets.
//!
//! TeraRack-class interconnects carry up to 64 DWDM channels per waveguide;
//! we allow an arbitrary count and store memberships in a compact bitset so
//! RWA inner loops stay branch-light and allocation-free.

use serde::{Deserialize, Serialize};

/// Index of a WDM channel, in `0..w`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Wavelength(pub usize);

impl std::fmt::Display for Wavelength {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "λ{}", self.0)
    }
}

/// A set of wavelengths backed by a bit vector.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WavelengthSet {
    words: Vec<u64>,
    capacity: usize,
}

impl WavelengthSet {
    /// Empty set able to hold wavelengths `0..capacity`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Set containing every wavelength in `0..capacity`.
    #[must_use]
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::with_capacity(capacity);
        for w in 0..capacity {
            s.insert(Wavelength(w));
        }
        s
    }

    /// Maximum wavelength index + 1 this set can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of wavelengths in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when the set holds no wavelength.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Add a wavelength; out-of-capacity inserts are ignored (debug-asserted).
    pub fn insert(&mut self, w: Wavelength) {
        debug_assert!(w.0 < self.capacity, "wavelength {} beyond capacity", w.0);
        if w.0 < self.capacity {
            self.words[w.0 / 64] |= 1 << (w.0 % 64);
        }
    }

    /// Remove a wavelength.
    pub fn remove(&mut self, w: Wavelength) {
        if w.0 < self.capacity {
            self.words[w.0 / 64] &= !(1 << (w.0 % 64));
        }
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, w: Wavelength) -> bool {
        w.0 < self.capacity && (self.words[w.0 / 64] >> (w.0 % 64)) & 1 == 1
    }

    /// Lowest-indexed wavelength in the set.
    #[must_use]
    pub fn first(&self) -> Option<Wavelength> {
        for (i, &word) in self.words.iter().enumerate() {
            if word != 0 {
                return Some(Wavelength(i * 64 + word.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Lowest-indexed wavelength NOT in the set (below capacity).
    #[must_use]
    pub fn first_absent(&self) -> Option<Wavelength> {
        for w in 0..self.capacity {
            if !self.contains(Wavelength(w)) {
                return Some(Wavelength(w));
            }
        }
        None
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &WavelengthSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &WavelengthSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// True when `self` and `other` share no wavelength.
    #[must_use]
    pub fn is_disjoint(&self, other: &WavelengthSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterate over member wavelengths in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Wavelength> + '_ {
        (0..self.capacity)
            .map(Wavelength)
            .filter(move |w| self.contains(*w))
    }

    /// Remove all wavelengths.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }
}

impl FromIterator<Wavelength> for WavelengthSet {
    /// Collect into a set sized to the largest element + 1.
    fn from_iter<I: IntoIterator<Item = Wavelength>>(iter: I) -> Self {
        let items: Vec<Wavelength> = iter.into_iter().collect();
        let cap = items.iter().map(|w| w.0 + 1).max().unwrap_or(0);
        let mut s = Self::with_capacity(cap);
        for w in items {
            s.insert(w);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = WavelengthSet::with_capacity(100);
        assert!(s.is_empty());
        s.insert(Wavelength(0));
        s.insert(Wavelength(63));
        s.insert(Wavelength(64));
        s.insert(Wavelength(99));
        assert_eq!(s.len(), 4);
        assert!(s.contains(Wavelength(63)));
        assert!(s.contains(Wavelength(64)));
        assert!(!s.contains(Wavelength(65)));
        s.remove(Wavelength(63));
        assert!(!s.contains(Wavelength(63)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn out_of_capacity_contains_is_false() {
        let s = WavelengthSet::with_capacity(4);
        assert!(!s.contains(Wavelength(1000)));
    }

    #[test]
    fn first_and_first_absent() {
        let mut s = WavelengthSet::with_capacity(8);
        assert_eq!(s.first(), None);
        assert_eq!(s.first_absent(), Some(Wavelength(0)));
        for w in 0..5 {
            s.insert(Wavelength(w));
        }
        assert_eq!(s.first(), Some(Wavelength(0)));
        assert_eq!(s.first_absent(), Some(Wavelength(5)));
        let full = WavelengthSet::full(8);
        assert_eq!(full.first_absent(), None);
        assert_eq!(full.len(), 8);
    }

    #[test]
    fn set_algebra() {
        let mut a = WavelengthSet::with_capacity(70);
        let mut b = WavelengthSet::with_capacity(70);
        a.insert(Wavelength(1));
        a.insert(Wavelength(65));
        b.insert(Wavelength(2));
        b.insert(Wavelength(65));
        assert!(!a.is_disjoint(&b));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 3);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![Wavelength(65)]);
        b.remove(Wavelength(65));
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn iter_in_order() {
        let s: WavelengthSet = [Wavelength(5), Wavelength(1), Wavelength(3)]
            .into_iter()
            .collect();
        assert_eq!(s.iter().map(|w| w.0).collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn clear_empties() {
        let mut s = WavelengthSet::full(10);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 10);
    }
}
