//! Physical-layer feasibility: insertion loss and the optical power budget.
//!
//! Every micro-ring a lightpath *bypasses* attenuates the signal slightly;
//! the add and drop operations and fibre propagation cost more. A lightpath
//! is feasible only while the accumulated loss stays inside the budget
//! between laser launch power and receiver sensitivity. This bounds the
//! hop count of any single transmission — a constraint TeraRack satisfies
//! ring-wide, but which tighter deployments must check. The Wrht planner's
//! longest paths (group sides, the all-to-all arcs) can be validated
//! against this model before committing a schedule.

use crate::error::{OpticalError, Result};
use crate::sim::StepSchedule;
use crate::topology::RingTopology;
use serde::{Deserialize, Serialize};

/// Loss/budget constants in decibels (defaults from the silicon-photonics
/// literature TeraRack builds on).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysicalModel {
    /// Laser launch power, dBm.
    pub launch_dbm: f64,
    /// Receiver sensitivity, dBm (minimum detectable power).
    pub sensitivity_dbm: f64,
    /// Loss per bypassed node (through micro-ring), dB.
    pub bypass_loss_db: f64,
    /// Loss at add (modulator) plus drop (filter) combined, dB.
    pub add_drop_loss_db: f64,
    /// Fibre loss per hop span, dB (sub-metre rack spans are tiny).
    pub fibre_loss_per_hop_db: f64,
    /// Link margin reserved for crosstalk/ageing, dB.
    pub margin_db: f64,
}

impl Default for PhysicalModel {
    fn default() -> Self {
        Self {
            launch_dbm: 10.0,
            sensitivity_dbm: -20.0,
            bypass_loss_db: 0.1,
            add_drop_loss_db: 3.0,
            fibre_loss_per_hop_db: 0.01,
            margin_db: 3.0,
        }
    }
}

impl PhysicalModel {
    /// Total loss of a lightpath with `hops` spans (`hops − 1` bypassed
    /// nodes), dB.
    #[must_use]
    pub fn path_loss_db(&self, hops: usize) -> f64 {
        let bypassed = hops.saturating_sub(1) as f64;
        self.add_drop_loss_db
            + bypassed * self.bypass_loss_db
            + hops as f64 * self.fibre_loss_per_hop_db
    }

    /// The power budget available to spend on loss, dB.
    #[must_use]
    pub fn budget_db(&self) -> f64 {
        self.launch_dbm - self.sensitivity_dbm - self.margin_db
    }

    /// Longest feasible lightpath, in hops.
    #[must_use]
    pub fn max_hops(&self) -> usize {
        let budget = self.budget_db();
        if budget < self.path_loss_db(1) {
            return 0;
        }
        let per_hop = self.bypass_loss_db + self.fibre_loss_per_hop_db;
        if per_hop <= 0.0 {
            return usize::MAX;
        }
        // Solve add_drop + (h-1)*bypass + h*fibre <= budget for h.
        let h = (budget - self.add_drop_loss_db + self.bypass_loss_db) / per_hop;
        h.floor() as usize
    }

    /// Check a single hop count.
    pub fn check_hops(&self, hops: usize) -> Result<()> {
        let max = self.max_hops();
        if hops > max {
            Err(OpticalError::PowerBudgetExceeded {
                hops,
                max_hops: max,
            })
        } else {
            Ok(())
        }
    }

    /// Validate every transfer of a stepped schedule against the budget.
    pub fn validate_schedule(&self, topo: &RingTopology, sched: &StepSchedule) -> Result<()> {
        for step in sched.steps() {
            for tr in step {
                let path = tr.resolve(topo)?;
                self.check_hops(path.hops())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Transfer;
    use crate::topology::NodeId;

    #[test]
    fn default_budget_covers_a_full_rack_ring() {
        let m = PhysicalModel::default();
        // 10 - (-20) - 3 = 27 dB budget; ~0.11 dB/hop after 3 dB add/drop:
        // comfortably above 218 hops — a 256-node rack ring round trip.
        assert!(m.max_hops() >= 218, "max_hops = {}", m.max_hops());
        m.check_hops(200).unwrap();
    }

    #[test]
    fn loss_is_monotone_in_hops() {
        let m = PhysicalModel::default();
        let mut prev = 0.0;
        for h in 1..50 {
            let loss = m.path_loss_db(h);
            assert!(loss > prev);
            prev = loss;
        }
    }

    #[test]
    fn tight_budget_rejects_long_paths() {
        let m = PhysicalModel {
            launch_dbm: 0.0,
            sensitivity_dbm: -10.0,
            bypass_loss_db: 1.0,
            add_drop_loss_db: 4.0,
            fibre_loss_per_hop_db: 0.0,
            margin_db: 1.0,
        };
        // Budget 9 dB; loss(h) = 4 + (h-1): feasible while h <= 6.
        assert_eq!(m.max_hops(), 6);
        m.check_hops(6).unwrap();
        assert!(matches!(
            m.check_hops(7),
            Err(OpticalError::PowerBudgetExceeded {
                hops: 7,
                max_hops: 6
            })
        ));
    }

    #[test]
    fn hopeless_budget_allows_nothing() {
        let m = PhysicalModel {
            launch_dbm: 0.0,
            sensitivity_dbm: -2.0,
            bypass_loss_db: 0.5,
            add_drop_loss_db: 5.0,
            fibre_loss_per_hop_db: 0.0,
            margin_db: 0.0,
        };
        assert_eq!(m.max_hops(), 0);
    }

    #[test]
    fn schedule_validation_spots_overlong_transfers() {
        let topo = RingTopology::new(64);
        let tight = PhysicalModel {
            launch_dbm: 0.0,
            sensitivity_dbm: -10.0,
            bypass_loss_db: 1.0,
            add_drop_loss_db: 4.0,
            fibre_loss_per_hop_db: 0.0,
            margin_db: 1.0,
        };
        let ok =
            StepSchedule::from_steps(vec![vec![Transfer::shortest(NodeId(0), NodeId(4), 100)]]);
        tight.validate_schedule(&topo, &ok).unwrap();
        let bad =
            StepSchedule::from_steps(vec![vec![Transfer::shortest(NodeId(0), NodeId(20), 100)]]);
        assert!(tight.validate_schedule(&topo, &bad).is_err());
    }

    #[test]
    fn zero_loss_model_is_unbounded() {
        let m = PhysicalModel {
            bypass_loss_db: 0.0,
            fibre_loss_per_hop_db: 0.0,
            ..PhysicalModel::default()
        };
        assert_eq!(m.max_hops(), usize::MAX);
    }
}
