//! Error types for the optical ring simulator.

use crate::topology::NodeId;
use std::fmt;

/// Errors produced while validating or simulating optical schedules.
#[derive(Debug, Clone, PartialEq)]
pub enum OpticalError {
    /// A node id referenced a node outside the ring.
    NodeOutOfRange {
        /// Offending node.
        node: NodeId,
        /// Number of nodes on the ring.
        n: usize,
    },
    /// A transfer had identical source and destination.
    SelfTransfer(NodeId),
    /// A transfer requested zero striping lanes.
    ZeroLanes,
    /// The RWA strategy ran out of wavelengths for a step.
    WavelengthsExhausted {
        /// Wavelengths available per waveguide.
        available: usize,
        /// Lanes that could not be placed.
        requested: usize,
        /// Step index in the schedule (if known).
        step: usize,
    },
    /// The configured ring is too small to be meaningful.
    RingTooSmall(usize),
    /// Configuration parameter out of range (bandwidth, wavelengths, ...).
    BadConfig(&'static str),
    /// A lightpath exceeds the optical power budget (insertion loss).
    PowerBudgetExceeded {
        /// Hops of the offending path.
        hops: usize,
        /// Maximum hops the physical model allows.
        max_hops: usize,
    },
    /// A malformed fault script or recovery policy.
    Fault(wrht_kernel::FaultError),
}

impl fmt::Display for OpticalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpticalError::NodeOutOfRange { node, n } => {
                write!(f, "node {} out of range for ring of {} nodes", node.0, n)
            }
            OpticalError::SelfTransfer(node) => {
                write!(f, "transfer from node {} to itself", node.0)
            }
            OpticalError::ZeroLanes => write!(f, "transfer requested zero wavelength lanes"),
            OpticalError::WavelengthsExhausted {
                available,
                requested,
                step,
            } => write!(
                f,
                "step {step}: could not place {requested} lane(s), only {available} wavelengths per waveguide"
            ),
            OpticalError::RingTooSmall(n) => {
                write!(f, "ring must have at least 2 nodes, got {n}")
            }
            OpticalError::BadConfig(what) => write!(f, "bad configuration: {what}"),
            OpticalError::PowerBudgetExceeded { hops, max_hops } => write!(
                f,
                "lightpath of {hops} hops exceeds the optical power budget (max {max_hops})"
            ),
            OpticalError::Fault(e) => write!(f, "fault script: {e}"),
        }
    }
}

impl std::error::Error for OpticalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpticalError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wrht_kernel::FaultError> for OpticalError {
    fn from(e: wrht_kernel::FaultError) -> Self {
        OpticalError::Fault(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, OpticalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OpticalError::NodeOutOfRange {
            node: NodeId(9),
            n: 4,
        };
        assert!(e.to_string().contains("node 9"));
        assert!(e.to_string().contains("4 nodes"));
        let e = OpticalError::WavelengthsExhausted {
            available: 4,
            requested: 8,
            step: 3,
        };
        assert!(e.to_string().contains("step 3"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(OpticalError::ZeroLanes, OpticalError::ZeroLanes);
        assert_ne!(
            OpticalError::ZeroLanes,
            OpticalError::SelfTransfer(NodeId(0))
        );
    }
}
