//! Lightpaths: routed transfers with a concrete direction and segment list.

use crate::topology::{Direction, NodeId, RingTopology};
use serde::{Deserialize, Serialize};

/// A routed point-to-point lightpath on the ring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LightPath {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Propagation direction.
    pub direction: Direction,
    /// Segment indices traversed, in order.
    pub segments: Vec<usize>,
}

impl LightPath {
    /// Route `src -> dst` in an explicit direction.
    #[must_use]
    pub fn routed(topo: &RingTopology, src: NodeId, dst: NodeId, direction: Direction) -> Self {
        Self {
            src,
            dst,
            direction,
            segments: topo.path_segments(src, dst, direction),
        }
    }

    /// Route `src -> dst` along the shorter arc.
    #[must_use]
    pub fn shortest(topo: &RingTopology, src: NodeId, dst: NodeId) -> Self {
        let direction = topo.shortest_direction(src, dst);
        Self::routed(topo, src, dst, direction)
    }

    /// Number of ring hops.
    #[must_use]
    pub fn hops(&self) -> usize {
        self.segments.len()
    }

    /// Two paths conflict iff they travel the same direction and share at
    /// least one segment. Opposite directions use physically distinct
    /// waveguides and never conflict.
    #[must_use]
    pub fn conflicts_with(&self, other: &LightPath) -> bool {
        if self.direction != other.direction {
            return false;
        }
        // Paths on a ring are short; a quadratic scan beats building sets.
        self.segments.iter().any(|s| other.segments.contains(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortest_picks_small_arc() {
        let t = RingTopology::new(10);
        let p = LightPath::shortest(&t, NodeId(1), NodeId(9));
        assert_eq!(p.direction, Direction::CounterClockwise);
        assert_eq!(p.hops(), 2);
    }

    #[test]
    fn nested_paths_conflict() {
        let t = RingTopology::new(16);
        let outer = LightPath::routed(&t, NodeId(0), NodeId(4), Direction::Clockwise);
        let inner = LightPath::routed(&t, NodeId(1), NodeId(3), Direction::Clockwise);
        assert!(outer.conflicts_with(&inner));
        assert!(inner.conflicts_with(&outer));
    }

    #[test]
    fn opposite_directions_never_conflict() {
        let t = RingTopology::new(16);
        let a = LightPath::routed(&t, NodeId(0), NodeId(4), Direction::Clockwise);
        let b = LightPath::routed(&t, NodeId(4), NodeId(0), Direction::CounterClockwise);
        // Same physical span, opposite waveguides.
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn disjoint_arcs_do_not_conflict() {
        let t = RingTopology::new(16);
        let a = LightPath::routed(&t, NodeId(0), NodeId(3), Direction::Clockwise);
        let b = LightPath::routed(&t, NodeId(8), NodeId(11), Direction::Clockwise);
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn adjacent_arcs_share_no_segment() {
        let t = RingTopology::new(8);
        // 0->2 uses segments {0,1}; 2->4 uses {2,3}: touching at node 2 is fine.
        let a = LightPath::routed(&t, NodeId(0), NodeId(2), Direction::Clockwise);
        let b = LightPath::routed(&t, NodeId(2), NodeId(4), Direction::Clockwise);
        assert!(!a.conflicts_with(&b));
    }
}
