//! Harness micro-benchmarks: the two simulator engines themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use electrical_sim::flow::FlowSpec;
use electrical_sim::sim::run_flows;
use electrical_sim::topology::star_cluster;
use optical_sim::{OpticalConfig, RingSimulator, Strategy, Transfer};
use wrht_core::lower::to_optical_schedule;
use wrht_core::plan::build_plan;

fn bench_optical_stepped(c: &mut Criterion) {
    let n = 256;
    let plan = build_plan(n, 8, 64).unwrap();
    let sched = to_optical_schedule(&plan, 100 << 20);
    let cfg = OpticalConfig::paper_defaults(n);
    let mut group = c.benchmark_group("engines/optical_stepped");
    group.sample_size(20);
    group.bench_function("wrht_n256", |b| {
        b.iter(|| {
            let mut sim = RingSimulator::new(cfg.clone());
            std::hint::black_box(sim.run_stepped(&sched, Strategy::FirstFit).unwrap())
        })
    });
    group.finish();
}

fn bench_optical_event_driven(c: &mut Criterion) {
    let n = 128;
    let cfg = OpticalConfig::new(n, 8);
    let released: Vec<(f64, Transfer)> = (0..n)
        .map(|i| {
            (
                0.0,
                Transfer::shortest(
                    optical_sim::NodeId(i),
                    optical_sim::NodeId((i + 13) % n),
                    1 << 20,
                ),
            )
        })
        .collect();
    let mut group = c.benchmark_group("engines/optical_event_driven");
    group.sample_size(20);
    group.bench_function("contended_n128", |b| {
        b.iter(|| {
            let mut sim = RingSimulator::new(cfg.clone());
            std::hint::black_box(sim.run_event_driven(&released).unwrap())
        })
    });
    group.finish();
}

fn bench_fluid(c: &mut Criterion) {
    let n = 1024;
    let net = star_cluster(n, 12.5e9, 500e-9);
    // One ring step: n simultaneous neighbour flows.
    let flows: Vec<FlowSpec> = (0..n)
        .map(|i| FlowSpec::new(i, (i + 1) % n, 1 << 20))
        .collect();
    let mut group = c.benchmark_group("engines/fluid");
    group.sample_size(20);
    group.bench_function("ring_step_n1024", |b| {
        b.iter(|| std::hint::black_box(run_flows(&net, &flows).unwrap()))
    });
    // Incast: everyone to host 0 — the hard sharing case.
    let incast: Vec<FlowSpec> = (1..n).map(|i| FlowSpec::new(i, 0, 1 << 16)).collect();
    group.bench_function("incast_n1024", |b| {
        b.iter(|| std::hint::black_box(run_flows(&net, &incast).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_optical_stepped,
    bench_optical_event_driven,
    bench_fluid
);
criterion_main!(benches);
