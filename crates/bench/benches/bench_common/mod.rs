//! Shared helpers for the Figure 2 Criterion benches.
//!
//! Each `fig2_*` bench regenerates one sub-figure of the paper: it times the
//! full experiment cell (all four algorithms) and, as a side effect of the
//! first iteration, prints the simulated communication times so running
//! `cargo bench` reproduces the figure's numbers.

use criterion::Criterion;
use std::sync::Once;
use wrht_bench::report::render_fig2;
use wrht_bench::{fig2_row, fig2_series, ExperimentConfig};

/// Scales benched per model: the paper's two smallest keep Criterion
/// iterations affordable; the full grid is produced by `repro-figures`.
pub const BENCH_SCALES: [usize; 2] = [128, 256];

/// Run the Figure 2 benchmark for one model.
pub fn bench_fig2_model(c: &mut Criterion, print_once: &'static Once, model: dnn_models::Model) {
    let cfg = ExperimentConfig {
        scales: BENCH_SCALES.to_vec(),
        ..ExperimentConfig::default()
    };

    // Print the actual figure series once, so bench output contains the
    // reproduced numbers alongside the harness timings.
    print_once.call_once(|| {
        let series = fig2_series(&cfg, &model);
        println!("\n{}", render_fig2(&series));
    });

    let mut group = c.benchmark_group(format!("fig2/{}", model.name));
    group.sample_size(10);
    for &n in &BENCH_SCALES {
        let bytes = model.gradient_bytes();
        group.bench_function(format!("cell/n{n}"), |b| {
            b.iter(|| std::hint::black_box(fig2_row(&cfg, n, bytes)));
        });
    }
    group.finish();
}
