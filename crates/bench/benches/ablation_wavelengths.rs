//! Ablation: the wavelength budget `w` (VGG16 gradient, 512 nodes).
//! Prints the swept table once, then times the sweep per budget.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Once;
use wrht_bench::ablations::wavelength_sweep;
use wrht_bench::report::render_wavelengths;
use wrht_bench::ExperimentConfig;

static PRINT: Once = Once::new();

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::default();
    let n = 512;
    let bytes = dnn_models::vgg16().gradient_bytes();

    PRINT.call_once(|| {
        let points = wavelength_sweep(&cfg, n, bytes, &[1, 2, 4, 8, 16, 32, 64]);
        println!("\n{}", render_wavelengths(&points, n));
    });

    let mut group = c.benchmark_group("ablation/wavelengths");
    group.sample_size(10);
    for w in [4usize, 16, 64] {
        group.bench_function(format!("w{w}"), |b| {
            b.iter(|| std::hint::black_box(wavelength_sweep(&cfg, n, bytes, &[w])));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
