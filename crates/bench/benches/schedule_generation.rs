//! Harness micro-benchmarks: schedule construction cost for every
//! algorithm, and Wrht plan construction across scales.

use collectives::halving_doubling::halving_doubling;
use collectives::rd::recursive_doubling;
use collectives::ring::ring_allreduce;
use collectives::tree::binomial_tree;
use criterion::{criterion_group, criterion_main, Criterion};
use wrht_core::plan::build_plan;

fn bench_baselines(c: &mut Criterion) {
    let n = 256;
    let elems = 1 << 20;
    let mut group = c.benchmark_group("schedule_generation/baselines");
    group.sample_size(20);
    group.bench_function("ring", |b| {
        b.iter(|| std::hint::black_box(ring_allreduce(n, elems)))
    });
    group.bench_function("recursive_doubling", |b| {
        b.iter(|| std::hint::black_box(recursive_doubling(n, elems)))
    });
    group.bench_function("halving_doubling", |b| {
        b.iter(|| std::hint::black_box(halving_doubling(n, elems)))
    });
    group.bench_function("binomial_tree", |b| {
        b.iter(|| std::hint::black_box(binomial_tree(n, elems)))
    });
    group.finish();
}

fn bench_wrht_plans(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_generation/wrht_plan");
    group.sample_size(20);
    for n in [128usize, 512, 1024, 4096] {
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| std::hint::black_box(build_plan(n, 8, 64).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines, bench_wrht_plans);
criterion_main!(benches);
