//! Figure 2 sub-figure: resnet50 — E-Ring / RD / O-Ring / WRHT.

mod bench_common;

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Once;

static PRINT: Once = Once::new();

fn bench(c: &mut Criterion) {
    bench_common::bench_fig2_model(c, &PRINT, dnn_models::resnet50());
}

criterion_group!(benches, bench);
criterion_main!(benches);
