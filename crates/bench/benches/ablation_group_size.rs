//! Ablation: Wrht's sensitivity to the group size `m` (AlexNet gradient,
//! paper's largest scale). Prints the swept table once, then times plan
//! construction + simulation per `m`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Once;
use wrht_bench::ablations::group_size_sweep;
use wrht_bench::report::render_group_size;
use wrht_bench::ExperimentConfig;

static PRINT: Once = Once::new();

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::default();
    let n = 1024;
    let bytes = dnn_models::alexnet().gradient_bytes();

    PRINT.call_once(|| {
        let points = group_size_sweep(&cfg, n, bytes, &(2..=32).collect::<Vec<_>>());
        println!("\n{}", render_group_size(&points, n));
    });

    let mut group = c.benchmark_group("ablation/group_size");
    group.sample_size(10);
    for m in [2usize, 4, 8, 16, 32] {
        group.bench_function(format!("m{m}"), |b| {
            b.iter(|| std::hint::black_box(group_size_sweep(&cfg, n, bytes, &[m])));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
