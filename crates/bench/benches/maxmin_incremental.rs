//! Full-resolve vs incremental max-min fluid engine on a 128-host incast.
//!
//! The incremental engine ([`run_flows`]) re-solves progressive filling
//! only over the contention component whose active-flow set changed and
//! never re-clones routes; the reference ([`run_flows_full_resolve`])
//! re-runs the full links × flows solve at every event. Both produce
//! bit-identical schedules (pinned by `tests/dag_differential.rs`); this
//! bench measures the wall-clock and solver-work gap.

use criterion::{criterion_group, criterion_main, Criterion};
use electrical_sim::flow::FlowSpec;
use electrical_sim::sim::{run_flows, run_flows_full_resolve};
use electrical_sim::topology::star_cluster;

/// 127 flows into host 0 with staggered sizes: one completion event per
/// flow, each re-solving the shared-downlink component.
fn incast_flows(n: usize) -> Vec<FlowSpec> {
    (1..n)
        .map(|i| FlowSpec::new(i, 0, (1 << 16) + (i as u64) * 4096))
        .collect()
}

fn bench_incast_128(c: &mut Criterion) {
    let n = 128;
    let net = star_cluster(n, 12.5e9, 500e-9);
    let flows = incast_flows(n);
    let mut group = c.benchmark_group("maxmin/incast_n128");
    group.sample_size(20);
    group.bench_function("full_resolve", |b| {
        b.iter(|| std::hint::black_box(run_flows_full_resolve(&net, &flows).unwrap()))
    });
    group.bench_function("incremental", |b| {
        b.iter(|| std::hint::black_box(run_flows(&net, &flows).unwrap()))
    });
    group.finish();

    let full = run_flows_full_resolve(&net, &flows).unwrap();
    let incremental = run_flows(&net, &flows).unwrap();
    assert_eq!(full.makespan_s.to_bits(), incremental.makespan_s.to_bits());
    println!(
        "solver work: full={} incremental={} ({:.1}% of full)",
        full.solver_work,
        incremental.solver_work,
        100.0 * incremental.solver_work as f64 / full.solver_work as f64
    );
}

/// Mixed workload: the incast plus disjoint neighbour pairs — the case
/// where component-restricted solves shine (disjoint completions skip the
/// big component entirely).
fn bench_incast_with_background(c: &mut Criterion) {
    let n = 128;
    let net = star_cluster(n, 12.5e9, 500e-9);
    let mut flows = incast_flows(64);
    for i in (64..n - 1).step_by(2) {
        flows.push(FlowSpec::new(i, i + 1, (1 << 14) + (i as u64) * 1024));
    }
    let mut group = c.benchmark_group("maxmin/incast_plus_pairs_n128");
    group.sample_size(20);
    group.bench_function("full_resolve", |b| {
        b.iter(|| std::hint::black_box(run_flows_full_resolve(&net, &flows).unwrap()))
    });
    group.bench_function("incremental", |b| {
        b.iter(|| std::hint::black_box(run_flows(&net, &flows).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_incast_128, bench_incast_with_background);
criterion_main!(benches);
