//! The parallel campaign-sweep engine.
//!
//! A *campaign* is a declarative grid of experiment cells — node count ×
//! wavelength budget × DNN model × algorithm × RWA strategy × substrate —
//! executed through the unified [`Substrate`] API:
//!
//! * every cell is identified by a stable FNV-1a **config hash** and seeded
//!   deterministically from `campaign seed ⊕ cell hash`;
//! * cells fan out over [`std::thread::scope`] workers pulling chunks from a
//!   shared atomic cursor (chunked work-stealing), yet the collected result
//!   vector is ordered by grid position, so a parallel run serializes
//!   byte-identically to a serial one;
//! * an optional **sink** directory receives one JSON file per finished
//!   cell (keyed by the config hash) plus combined JSON/CSV tables;
//!   interrupted campaigns resume by reloading finished cells from the sink
//!   instead of recomputing them;
//! * infeasible cells (e.g. Wrht under a starved wavelength budget) record
//!   their error string instead of aborting the sweep.
//!
//! ```
//! use wrht_bench::campaign::{run_campaign, Algorithm, CampaignSpec};
//! use wrht_bench::config::{ExperimentConfig, SubstrateKind};
//!
//! let spec = CampaignSpec::grid(
//!     "doc",
//!     ExperimentConfig::small(),
//!     &[("tiny", 1 << 20)],
//!     &[8],
//!     &[4],
//!     &[Algorithm::Ring],
//!     &[SubstrateKind::Optical, SubstrateKind::Electrical],
//! );
//! let report = run_campaign(&spec, 1, None);
//! assert_eq!(report.results.len(), 2);
//! assert!(report.results.iter().all(|r| r.error.is_none()));
//! ```

use crate::config::{ExperimentConfig, SubstrateKind};
use crate::fig2::{Fig2Row, Fig2Series};
use crate::report::to_json;
use collectives::halving_doubling::halving_doubling;
use collectives::rd::recursive_doubling;
use collectives::ring::ring_allreduce;
use collectives::tree::binomial_tree;
use dnn_models::Model;
use optical_sim::sim::StepSchedule;
use optical_sim::Strategy;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use wrht_core::baselines::lower_collective_to_optical;
use wrht_core::dag::{DepSchedule, ExecMode};
use wrht_core::fault::{
    fault_cluster_report, FaultClusterReport, FaultKind, FaultPolicy, FaultScript,
};
use wrht_core::hierarchy::Domain;
use wrht_core::lower::to_optical_schedule;
use wrht_core::parallelism::{lower_parallelism, ParallelismSpec, StageModel};
use wrht_core::stream::{Admission, ArrivalProcess, StreamReport, StreamSpec, StreamTemplate};
use wrht_core::substrate::Substrate as _;
use wrht_core::tenancy::{Job, JobWorkload, SchedPolicy, TenancySpec};
use wrht_core::{build_plan, choose_group_size, plan_and_simulate, WrhtParams};

/// The collective algorithm a cell times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Patarasuk–Yuan ring all-reduce (E-Ring electrically, O-Ring optically).
    Ring,
    /// Recursive doubling.
    RecursiveDoubling,
    /// Rabenseifner halving-doubling.
    HalvingDoubling,
    /// Binomial tree reduce + broadcast.
    Tree,
    /// The paper's wavelength-reused hierarchical tree.
    Wrht,
}

impl Algorithm {
    /// Stable lowercase label used in hashes and CSV rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Ring => "ring",
            Algorithm::RecursiveDoubling => "rd",
            Algorithm::HalvingDoubling => "hd",
            Algorithm::Tree => "tree",
            Algorithm::Wrht => "wrht",
        }
    }
}

/// One grid point of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellConfig {
    /// Fabric that executes the workload.
    pub substrate: SubstrateKind,
    /// Collective algorithm under test.
    pub algorithm: Algorithm,
    /// Workload label (DNN model name).
    pub model: String,
    /// Payload bytes per all-reduce.
    pub gradient_bytes: u64,
    /// Node count.
    pub n: usize,
    /// Wavelength budget (optical; recorded but unused electrically).
    pub wavelengths: usize,
    /// RWA strategy (optical; ignored electrically).
    pub strategy: Strategy,
    /// Fixed Wrht group size; `None` lets the optimizer choose.
    pub group_size: Option<usize>,
    /// Execution mode: step-synchronous barrier or dependency-aware
    /// pipelined execution.
    pub mode: ExecMode,
}

/// Result of one executed (or failed) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell's configuration.
    pub cell: CellConfig,
    /// FNV-1a hash of the configuration (the sink key).
    pub config_hash: u64,
    /// Deterministic per-cell seed: campaign seed ⊕ config hash.
    pub seed: u64,
    /// Simulated communication time, seconds (0 when `error` is set).
    pub time_s: f64,
    /// Executed step count.
    pub steps: usize,
    /// Total payload bytes moved.
    pub total_bytes: u64,
    /// Peak wavelength footprint (0 electrically).
    pub peak_wavelengths: usize,
    /// Group size Wrht used (0 for other algorithms).
    pub wrht_m: usize,
    /// Error string for infeasible cells.
    pub error: Option<String>,
}

/// A declarative campaign: shared physical constants plus a cell list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name (names the combined sink files).
    pub name: String,
    /// Physical constants shared by every cell.
    pub base: ExperimentConfig,
    /// Campaign-level seed, mixed into every cell seed.
    pub seed: u64,
    /// The cells, in grid order.
    pub cells: Vec<CellConfig>,
}

impl CampaignSpec {
    /// Expand a full cross-product grid in deterministic nested order
    /// (model → n → wavelengths → algorithm → substrate).
    #[must_use]
    pub fn grid(
        name: &str,
        base: ExperimentConfig,
        models: &[(&str, u64)],
        nodes: &[usize],
        wavelengths: &[usize],
        algorithms: &[Algorithm],
        substrates: &[SubstrateKind],
    ) -> Self {
        let mut cells = Vec::new();
        for &(model, gradient_bytes) in models {
            for &n in nodes {
                for &w in wavelengths {
                    for &algorithm in algorithms {
                        for &substrate in substrates {
                            cells.push(CellConfig {
                                substrate,
                                algorithm,
                                model: model.to_string(),
                                gradient_bytes,
                                n,
                                wavelengths: w,
                                strategy: Strategy::FirstFit,
                                group_size: None,
                                mode: ExecMode::Barrier,
                            });
                        }
                    }
                }
            }
        }
        Self {
            name: name.to_string(),
            base,
            seed: 0,
            cells,
        }
    }
}

/// Executed campaign: results in the same order as `spec.cells`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// One result per cell, in grid order.
    pub results: Vec<CellResult>,
}

fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable FNV-1a hash of a cell configuration (over its compact JSON
/// rendering, which is deterministic for this plain-data type).
#[must_use]
pub fn config_hash(cell: &CellConfig) -> u64 {
    fnv1a(&serde_json::to_string(cell).expect("cell configs serialize"))
}

/// Hash of the campaign-wide context — the shared physical constants and
/// the campaign seed. Mixed into every sink key so that cells computed
/// under different physics (or a different seed) are never reused on
/// resume.
fn context_hash(base: &ExperimentConfig, seed: u64) -> u64 {
    let base = serde_json::to_string(base).expect("experiment configs serialize");
    fnv1a(&format!("{base}#{seed}"))
}

/// Build a cell's Wrht plan: the fixed group size, or the optimizer's
/// choice against the optical cost model (also when the schedule will
/// execute electrically or pipelined, mirroring the Figure-2 cells).
fn wrht_plan(
    cell: &CellConfig,
    local: &ExperimentConfig,
) -> wrht_core::error::Result<wrht_core::WrhtPlan> {
    match cell.group_size {
        Some(m) => build_plan(cell.n, m, cell.wavelengths),
        None => choose_group_size(
            &WrhtParams::auto(cell.n, cell.wavelengths),
            &local.optical(cell.n),
            cell.gradient_bytes,
        )
        .map(|(_, plan, _)| plan),
    }
}

/// Lower a cell's classic-collective schedule to the substrate IR.
fn logical_schedule(cell: &CellConfig, local: &ExperimentConfig) -> StepSchedule {
    let elems = (cell.gradient_bytes as usize).div_ceil(local.bytes_per_elem);
    let schedule = match cell.algorithm {
        Algorithm::Ring => ring_allreduce(cell.n, elems),
        Algorithm::RecursiveDoubling => recursive_doubling(cell.n, elems),
        Algorithm::HalvingDoubling => halving_doubling(cell.n, elems),
        Algorithm::Tree => binomial_tree(cell.n, elems),
        Algorithm::Wrht => unreachable!("Wrht cells lower via wrht_plan"),
    };
    lower_collective_to_optical(&schedule, local.bytes_per_elem, 1)
}

/// Condense a barrier-mode run into the cell-outcome tuple
/// `(time_s, steps, total_bytes, peak_wavelengths)`.
fn summarize(r: &wrht_core::RunReport) -> (f64, usize, u64, usize) {
    (
        r.total_time_s,
        r.step_count(),
        r.total_bytes(),
        r.peak_wavelengths(),
    )
}

/// Execute one cell against the campaign's physical constants.
#[must_use]
pub fn run_cell(base: &ExperimentConfig, seed: u64, cell: &CellConfig) -> CellResult {
    let hash = config_hash(cell);
    let mut result = CellResult {
        cell: cell.clone(),
        config_hash: hash,
        seed: seed ^ hash,
        time_s: 0.0,
        steps: 0,
        total_bytes: 0,
        peak_wavelengths: 0,
        wrht_m: 0,
        error: None,
    };

    // Cell-local constants: the cell's wavelength budget overrides the base.
    let mut local = base.clone();
    local.wavelengths = cell.wavelengths;

    // time_s, steps, total_bytes, peak_wavelengths of the executed cell.
    type CellOutcome = wrht_core::error::Result<(f64, usize, u64, usize)>;

    let outcome: CellOutcome = match cell.mode {
        ExecMode::Barrier => match cell.algorithm {
            Algorithm::Wrht => match cell.substrate {
                // Plan and execute on the stepped optical substrate.
                SubstrateKind::Optical => {
                    let params = match cell.group_size {
                        Some(m) => WrhtParams::fixed(cell.n, cell.wavelengths, m),
                        None => WrhtParams::auto(cell.n, cell.wavelengths),
                    };
                    plan_and_simulate(&params, &local.optical(cell.n), cell.gradient_bytes).map(
                        |planned| {
                            result.wrht_m = planned.m;
                            summarize(&planned.report)
                        },
                    )
                }
                // Plan against the optical cost model (no optical
                // simulation), then execute the lowered schedule on the
                // electrical fabric.
                SubstrateKind::Electrical => wrht_plan(cell, &local).and_then(|plan| {
                    result.wrht_m = plan.m;
                    let r = local
                        .try_substrate(cell.substrate, cell.n, cell.strategy)?
                        .execute(&to_optical_schedule(&plan, cell.gradient_bytes))?;
                    Ok(summarize(&r))
                }),
            },
            _ => local
                .try_substrate(cell.substrate, cell.n, cell.strategy)
                .and_then(|mut substrate| substrate.execute(&logical_schedule(cell, &local)))
                .map(|r| summarize(&r)),
        },
        // Pipelined: obtain the same schedule (Wrht plans against the
        // optical cost model on both substrates, mirroring the electrical
        // Wrht cells), lower to the per-node dependency DAG and execute
        // event-driven — consecutive steps overlap on the wire.
        ExecMode::Pipelined => {
            let schedule = match cell.algorithm {
                Algorithm::Wrht => wrht_plan(cell, &local).map(|plan| {
                    result.wrht_m = plan.m;
                    to_optical_schedule(&plan, cell.gradient_bytes)
                }),
                _ => Ok(logical_schedule(cell, &local)),
            };
            schedule.and_then(|schedule| {
                let dag = DepSchedule::pipelined_from_steps(&schedule);
                let report = local
                    .try_substrate(cell.substrate, cell.n, cell.strategy)?
                    .execute_dag(&dag)?;
                Ok((
                    report.makespan_s,
                    schedule.len(),
                    schedule.total_bytes(),
                    report.peak_wavelength,
                ))
            })
        }
    };

    match outcome {
        Ok((time_s, steps, total_bytes, peak_wavelengths)) => {
            result.time_s = time_s;
            result.steps = steps;
            result.total_bytes = total_bytes;
            result.peak_wavelengths = peak_wavelengths;
        }
        Err(e) => result.error = Some(e.to_string()),
    }
    result
}

fn cell_file(sink: &Path, prefix: &str, hash: u64) -> std::path::PathBuf {
    sink.join(format!("{prefix}-{hash:016x}.json"))
}

/// Load a previously finished cell of any result type from a sink file, if
/// present, readable and accepted by `valid`. The file name already
/// encodes the campaign context, so a file produced under different
/// physical constants lives under a different name; `valid` additionally
/// rejects collisions and stale hand-edited files.
fn load_finished<R: serde::Deserialize>(path: &Path, valid: impl Fn(&R) -> bool) -> Option<R> {
    let text = fs::read_to_string(path).ok()?;
    let parsed: R = serde_json::from_str(&text).ok()?;
    valid(&parsed).then_some(parsed)
}

/// The shared campaign executor: chunked work-stealing over the slots not
/// already prefilled (from a sink resume), returning results in slot
/// order regardless of thread interleaving — a parallel run serializes
/// byte-identically to a serial one. `persist` is called from worker
/// threads as each result finishes.
fn run_slots<R: Clone + Send>(
    threads: usize,
    prefilled: Vec<Option<R>>,
    run: impl Fn(usize) -> R + Sync,
    persist: impl Fn(usize, &R) + Sync,
) -> Vec<R> {
    let todo: Vec<usize> = (0..prefilled.len())
        .filter(|&i| prefilled[i].is_none())
        .collect();
    let workers = threads.max(1).min(todo.len().max(1));
    let chunk = todo.len().div_ceil(workers * 4).max(1);
    let cursor = AtomicUsize::new(0);
    let slots = Mutex::new(prefilled);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= todo.len() {
                    return;
                }
                let indices = &todo[start..todo.len().min(start + chunk)];
                let batch: Vec<(usize, R)> = indices.iter().map(|&i| (i, run(i))).collect();
                for (i, result) in &batch {
                    persist(*i, result);
                }
                let mut guard = slots.lock().expect("campaign result lock");
                for (i, result) in batch {
                    guard[i] = Some(result);
                }
            });
        }
    });

    slots
        .into_inner()
        .expect("campaign result lock")
        .into_iter()
        .map(|slot| slot.expect("every cell executed"))
        .collect()
}

/// Run a campaign over `threads` workers with chunked work-stealing.
///
/// Passing a `sink` directory enables incremental persistence and resume:
/// each finished cell lands in `cell-<hash>.json`, and cells whose file
/// already exists are reloaded instead of recomputed. The returned results
/// are in grid order regardless of thread interleaving, so
/// `run_campaign(spec, 1, None)` and `run_campaign(spec, 8, None)` produce
/// byte-identical JSON.
#[must_use]
pub fn run_campaign(spec: &CampaignSpec, threads: usize, sink: Option<&Path>) -> CampaignReport {
    if let Some(dir) = sink {
        let _ = fs::create_dir_all(dir);
    }

    // Sink keys mix the per-cell hash with the campaign context so resumes
    // never reuse cells computed under different physics or seed.
    let ctx = context_hash(&spec.base, spec.seed);
    let keys: Vec<u64> = spec.cells.iter().map(|c| config_hash(c) ^ ctx).collect();
    let mut prefilled: Vec<Option<CellResult>> = vec![None; spec.cells.len()];
    for (i, cell) in spec.cells.iter().enumerate() {
        let expected_seed = spec.seed ^ config_hash(cell);
        prefilled[i] = sink.and_then(|dir| {
            load_finished(&cell_file(dir, "cell", keys[i]), |r: &CellResult| {
                r.cell == *cell && r.config_hash == config_hash(cell) && r.seed == expected_seed
            })
        });
    }

    let results = run_slots(
        threads,
        prefilled,
        |i| run_cell(&spec.base, spec.seed, &spec.cells[i]),
        |i, result| {
            if let Some(dir) = sink {
                let _ = fs::write(cell_file(dir, "cell", keys[i]), to_json(result));
            }
        },
    );

    let report = CampaignReport {
        name: spec.name.clone(),
        results,
    };
    if let Some(dir) = sink {
        let _ = fs::write(dir.join(format!("{}.json", spec.name)), to_json(&report));
        let _ = fs::write(dir.join(format!("{}.csv", spec.name)), to_csv(&report));
    }
    report
}

/// Quote a CSV field when it contains a delimiter, quote or newline
/// (error strings routinely contain commas).
fn csv_field(value: &str) -> String {
    if value.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// Render a campaign as CSV (stable column order, grid row order).
#[must_use]
pub fn to_csv(report: &CampaignReport) -> String {
    let mut out = String::from(
        "substrate,algorithm,mode,model,n,wavelengths,strategy,group_size,\
         gradient_bytes,seed,time_s,steps,total_bytes,peak_wavelengths,wrht_m,error\n",
    );
    for r in &report.results {
        let c = &r.cell;
        out.push_str(&format!(
            "{},{},{},{},{},{},{:?},{},{},{},{},{},{},{},{},{}\n",
            c.substrate.label(),
            c.algorithm.label(),
            c.mode.label(),
            csv_field(&c.model),
            c.n,
            c.wavelengths,
            c.strategy,
            c.group_size
                .map_or_else(|| "auto".into(), |m| m.to_string()),
            c.gradient_bytes,
            r.seed,
            r.time_s,
            r.steps,
            r.total_bytes,
            r.peak_wavelengths,
            r.wrht_m,
            csv_field(r.error.as_deref().unwrap_or("")),
        ));
    }
    out
}

/// Find one finished Figure-2-grid cell by coordinates. The wavelength
/// budget, First-Fit strategy and auto group size are part of the match so
/// ablation cells (fixed m, Best Fit, swept budgets) can never be mistaken
/// for grid cells.
fn lookup<'a>(
    results: &'a [CellResult],
    model: &str,
    n: usize,
    wavelengths: usize,
    algorithm: Algorithm,
    substrate: SubstrateKind,
) -> Option<&'a CellResult> {
    results.iter().find(|r| {
        r.cell.model == model
            && r.cell.n == n
            && r.cell.wavelengths == wavelengths
            && r.cell.algorithm == algorithm
            && r.cell.substrate == substrate
            && r.cell.strategy == Strategy::FirstFit
            && r.cell.group_size.is_none()
            && r.cell.mode == ExecMode::Barrier
            && r.error.is_none()
    })
}

/// Reassemble Figure-2 series from campaign cells: E-Ring and RD are the
/// electrical ring/RD cells, O-Ring the optical ring cell, WRHT the optical
/// Wrht cell, all at the grid's `wavelengths` budget. Models or scales with
/// missing/failed cells are skipped.
#[must_use]
pub fn fig2_from_campaign(
    results: &[CellResult],
    models: &[(&str, u64)],
    scales: &[usize],
    wavelengths: usize,
) -> Vec<Fig2Series> {
    let mut out = Vec::new();
    for &(model, gradient_bytes) in models {
        let mut rows = Vec::new();
        for &n in scales {
            let (Some(e_ring), Some(rd), Some(o_ring), Some(wrht)) = (
                lookup(
                    results,
                    model,
                    n,
                    wavelengths,
                    Algorithm::Ring,
                    SubstrateKind::Electrical,
                ),
                lookup(
                    results,
                    model,
                    n,
                    wavelengths,
                    Algorithm::RecursiveDoubling,
                    SubstrateKind::Electrical,
                ),
                lookup(
                    results,
                    model,
                    n,
                    wavelengths,
                    Algorithm::Ring,
                    SubstrateKind::Optical,
                ),
                lookup(
                    results,
                    model,
                    n,
                    wavelengths,
                    Algorithm::Wrht,
                    SubstrateKind::Optical,
                ),
            ) else {
                continue;
            };
            rows.push(Fig2Row {
                n,
                e_ring_s: e_ring.time_s,
                rd_s: rd.time_s,
                o_ring_s: o_ring.time_s,
                wrht_s: wrht.time_s,
                wrht_m: wrht.wrht_m,
                wrht_steps: wrht.steps,
            });
        }
        if !rows.is_empty() {
            out.push(Fig2Series {
                model: model.to_string(),
                gradient_bytes,
                rows,
            });
        }
    }
    out
}

/// The full reproduction sweep as **one campaign**: the Figure-2 grid on
/// both substrates (every algorithm × model × scale), the group-size
/// ablation, the wavelength-budget ablation and the RWA-strategy ablation.
#[must_use]
pub fn sweep_spec(cfg: &ExperimentConfig, models: &[Model], seed: u64) -> CampaignSpec {
    let named: Vec<(&str, u64)> = models
        .iter()
        .map(|m| (m.name.as_str(), m.gradient_bytes()))
        .collect();
    let algorithms = [
        Algorithm::Ring,
        Algorithm::RecursiveDoubling,
        Algorithm::HalvingDoubling,
        Algorithm::Tree,
        Algorithm::Wrht,
    ];
    let substrates = [SubstrateKind::Electrical, SubstrateKind::Optical];

    // Figure-2 grid (both substrates, all algorithms).
    let mut spec = CampaignSpec::grid(
        "sweep",
        cfg.clone(),
        &named,
        &cfg.scales,
        &[cfg.wavelengths],
        &algorithms,
        &substrates,
    );
    spec.seed = seed;

    let n_large = *cfg.scales.last().expect("scales non-empty");
    let n_mid = cfg.scales[cfg.scales.len() / 2];

    // Group-size ablation: fixed m for the first model at the largest scale.
    if let Some(&(model, bytes)) = named.first() {
        for m in [2usize, 4, 8, 16, 32] {
            spec.cells.push(CellConfig {
                substrate: SubstrateKind::Optical,
                algorithm: Algorithm::Wrht,
                model: model.to_string(),
                gradient_bytes: bytes,
                n: n_large,
                wavelengths: cfg.wavelengths,
                strategy: Strategy::FirstFit,
                group_size: Some(m),
                mode: ExecMode::Barrier,
            });
        }

        // Wavelength-budget ablation: Wrht and O-Ring across budgets.
        for w in [1usize, 2, 4, 8, 16, 32, 64] {
            for algorithm in [Algorithm::Wrht, Algorithm::Ring] {
                spec.cells.push(CellConfig {
                    substrate: SubstrateKind::Optical,
                    algorithm,
                    model: model.to_string(),
                    gradient_bytes: bytes,
                    n: n_mid,
                    wavelengths: w,
                    strategy: Strategy::FirstFit,
                    group_size: None,
                    mode: ExecMode::Barrier,
                });
            }
        }

        // Execution-mode ablation: barrier vs pipelined for every
        // algorithm on both substrates at the mid scale (the barrier
        // twins are already in the Figure-2 grid).
        for algorithm in [Algorithm::Ring, Algorithm::HalvingDoubling, Algorithm::Wrht] {
            for substrate in [SubstrateKind::Electrical, SubstrateKind::Optical] {
                spec.cells.push(CellConfig {
                    substrate,
                    algorithm,
                    model: model.to_string(),
                    gradient_bytes: bytes,
                    n: n_mid,
                    wavelengths: cfg.wavelengths,
                    strategy: Strategy::FirstFit,
                    group_size: None,
                    mode: ExecMode::Pipelined,
                });
            }
        }
    }

    // RWA-strategy ablation: Best Fit cells for every model (First Fit is
    // already covered by the Figure-2 grid).
    for &(model, bytes) in &named {
        spec.cells.push(CellConfig {
            substrate: SubstrateKind::Optical,
            algorithm: Algorithm::Wrht,
            model: model.to_string(),
            gradient_bytes: bytes,
            n: n_large,
            wavelengths: cfg.wavelengths,
            strategy: Strategy::BestFit,
            group_size: None,
            mode: ExecMode::Barrier,
        });
    }

    spec
}

/// One grid point of a timeline campaign: a full data-parallel training
/// iteration (bucketed all-reduces overlapping backward) instead of a
/// single collective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineCellConfig {
    /// Fabric that executes the bucket schedules.
    pub substrate: SubstrateKind,
    /// Collective algorithm used per bucket.
    pub algorithm: Algorithm,
    /// Zoo model name (resolved via [`dnn_models::model_by_name`], so
    /// transformer tables are selectable alongside the paper's CNNs).
    pub model: String,
    /// Gradient-fusion bucket budget, bytes.
    pub bucket_bytes: u64,
    /// Node count.
    pub n: usize,
    /// Wavelength budget (optical; recorded but unused electrically).
    pub wavelengths: usize,
    /// RWA strategy (optical; ignored electrically).
    pub strategy: Strategy,
    /// Execution mode: buckets serialized on the network (barrier) or
    /// overlapped through the dependency-aware executor (pipelined).
    pub mode: ExecMode,
}

/// Result of one executed (or failed) timeline cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineCellResult {
    /// The cell's configuration.
    pub cell: TimelineCellConfig,
    /// FNV-1a hash of the configuration (the sink key).
    pub config_hash: u64,
    /// Deterministic per-cell seed: campaign seed ⊕ config hash.
    pub seed: u64,
    /// Number of gradient buckets.
    pub buckets: usize,
    /// End of compute (forward + backward), seconds.
    pub compute_s: f64,
    /// Overlapped iteration time, seconds (0 when `error` is set).
    pub overlapped_s: f64,
    /// Sequential (fused post-backward all-reduce) iteration time, seconds.
    pub sequential_s: f64,
    /// Total communication time over all buckets, seconds.
    pub total_comm_s: f64,
    /// Communication exposed past the end of backward, seconds.
    pub exposed_comm_s: f64,
    /// Fraction of communication hidden behind compute.
    pub hidden_fraction: f64,
    /// Total substrate steps over all buckets.
    pub steps: usize,
    /// Error string for infeasible cells.
    pub error: Option<String>,
}

/// A declarative timeline campaign: shared physical constants plus cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineSpec {
    /// Campaign name (names the combined sink files).
    pub name: String,
    /// Physical constants shared by every cell.
    pub base: ExperimentConfig,
    /// Campaign-level seed, mixed into every cell seed.
    pub seed: u64,
    /// The cells, in grid order.
    pub cells: Vec<TimelineCellConfig>,
}

impl TimelineSpec {
    /// Expand a full cross-product grid in deterministic nested order
    /// (model → bucket size → n → algorithm → mode → substrate), at the
    /// base config's wavelength budget.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // one axis per campaign dimension
    pub fn grid(
        name: &str,
        base: ExperimentConfig,
        models: &[&str],
        bucket_sizes: &[u64],
        nodes: &[usize],
        algorithms: &[Algorithm],
        modes: &[ExecMode],
        substrates: &[SubstrateKind],
    ) -> Self {
        let wavelengths = base.wavelengths;
        let mut cells = Vec::new();
        for &model in models {
            for &bucket_bytes in bucket_sizes {
                for &n in nodes {
                    for &algorithm in algorithms {
                        for &mode in modes {
                            for &substrate in substrates {
                                cells.push(TimelineCellConfig {
                                    substrate,
                                    algorithm,
                                    model: model.to_string(),
                                    bucket_bytes,
                                    n,
                                    wavelengths,
                                    strategy: Strategy::FirstFit,
                                    mode,
                                });
                            }
                        }
                    }
                }
            }
        }
        Self {
            name: name.to_string(),
            base,
            seed: 0,
            cells,
        }
    }
}

/// Executed timeline campaign: results in the same order as `spec.cells`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineReport {
    /// Campaign name.
    pub name: String,
    /// One result per cell, in grid order.
    pub results: Vec<TimelineCellResult>,
}

/// Stable FNV-1a hash of a timeline cell configuration.
#[must_use]
pub fn timeline_config_hash(cell: &TimelineCellConfig) -> u64 {
    fnv1a(&serde_json::to_string(cell).expect("cell configs serialize"))
}

/// Execute one timeline cell against the campaign's physical constants.
#[must_use]
pub fn run_timeline_cell(
    base: &ExperimentConfig,
    seed: u64,
    cell: &TimelineCellConfig,
) -> TimelineCellResult {
    let hash = timeline_config_hash(cell);
    let mut result = TimelineCellResult {
        cell: cell.clone(),
        config_hash: hash,
        seed: seed ^ hash,
        buckets: 0,
        compute_s: 0.0,
        overlapped_s: 0.0,
        sequential_s: 0.0,
        total_comm_s: 0.0,
        exposed_comm_s: 0.0,
        hidden_fraction: 0.0,
        steps: 0,
        error: None,
    };

    let Some(model) = dnn_models::model_by_name(&cell.model) else {
        result.error = Some(format!("unknown model '{}'", cell.model));
        return result;
    };

    // Cell-local constants: the cell's wavelength budget overrides the base.
    let mut local = base.clone();
    local.wavelengths = cell.wavelengths;

    match crate::timeline::model_timeline(
        &local,
        &model,
        cell.n,
        cell.bucket_bytes,
        cell.algorithm,
        cell.substrate,
        cell.strategy,
        cell.mode,
    ) {
        Ok(t) => {
            result.buckets = t.bucket_count();
            result.compute_s = t.compute_s;
            result.overlapped_s = t.overlapped_s;
            result.sequential_s = t.sequential_s;
            result.total_comm_s = t.total_comm_s;
            result.exposed_comm_s = t.exposed_comm_s;
            result.hidden_fraction = t.hidden_fraction;
            result.steps = t.total_steps();
        }
        Err(e) => result.error = Some(e.to_string()),
    }
    result
}

/// Run a timeline campaign over `threads` workers — deterministic and
/// resumable exactly like [`run_campaign`]: one `tcell-<hash>.json` per
/// finished cell, grid-ordered results, byte-identical serial/parallel
/// output, plus combined `<name>.json` / `<name>.csv` tables.
#[must_use]
pub fn run_timeline_campaign(
    spec: &TimelineSpec,
    threads: usize,
    sink: Option<&Path>,
) -> TimelineReport {
    if let Some(dir) = sink {
        let _ = fs::create_dir_all(dir);
    }

    let ctx = context_hash(&spec.base, spec.seed);
    let keys: Vec<u64> = spec
        .cells
        .iter()
        .map(|c| timeline_config_hash(c) ^ ctx)
        .collect();
    let mut prefilled: Vec<Option<TimelineCellResult>> = vec![None; spec.cells.len()];
    for (i, cell) in spec.cells.iter().enumerate() {
        let expected_seed = spec.seed ^ timeline_config_hash(cell);
        prefilled[i] = sink.and_then(|dir| {
            load_finished(
                &cell_file(dir, "tcell", keys[i]),
                |r: &TimelineCellResult| {
                    r.cell == *cell
                        && r.config_hash == timeline_config_hash(cell)
                        && r.seed == expected_seed
                },
            )
        });
    }

    let results = run_slots(
        threads,
        prefilled,
        |i| run_timeline_cell(&spec.base, spec.seed, &spec.cells[i]),
        |i, result| {
            if let Some(dir) = sink {
                let _ = fs::write(cell_file(dir, "tcell", keys[i]), to_json(result));
            }
        },
    );

    let report = TimelineReport {
        name: spec.name.clone(),
        results,
    };
    if let Some(dir) = sink {
        let _ = fs::write(dir.join(format!("{}.json", spec.name)), to_json(&report));
        let _ = fs::write(
            dir.join(format!("{}.csv", spec.name)),
            timeline_to_csv(&report),
        );
    }
    report
}

/// Render a timeline campaign as CSV (stable column order, grid rows).
#[must_use]
pub fn timeline_to_csv(report: &TimelineReport) -> String {
    let mut out = String::from(
        "substrate,algorithm,mode,model,n,wavelengths,strategy,bucket_bytes,seed,\
         buckets,compute_s,overlapped_s,sequential_s,total_comm_s,\
         exposed_comm_s,hidden_fraction,steps,error\n",
    );
    for r in &report.results {
        let c = &r.cell;
        out.push_str(&format!(
            "{},{},{},{},{},{},{:?},{},{},{},{},{},{},{},{},{},{},{}\n",
            c.substrate.label(),
            c.algorithm.label(),
            c.mode.label(),
            csv_field(&c.model),
            c.n,
            c.wavelengths,
            c.strategy,
            c.bucket_bytes,
            r.seed,
            r.buckets,
            r.compute_s,
            r.overlapped_s,
            r.sequential_s,
            r.total_comm_s,
            r.exposed_comm_s,
            r.hidden_fraction,
            r.steps,
            csv_field(r.error.as_deref().unwrap_or("")),
        ));
    }
    out
}

impl From<&TimelineCellResult> for crate::timeline::TimelineRow {
    fn from(r: &TimelineCellResult) -> Self {
        Self {
            model: r.cell.model.clone(),
            // Tag pipelined cells in the rendered table (barrier cells
            // keep the bare label, matching the golden-file path).
            substrate: match (r.cell.mode, r.cell.substrate) {
                (ExecMode::Barrier, s) => s.label().to_string(),
                (ExecMode::Pipelined, SubstrateKind::Electrical) => "elec+pipe".into(),
                (ExecMode::Pipelined, SubstrateKind::Optical) => "opt+pipe".into(),
            },
            buckets: r.buckets,
            compute_s: r.compute_s,
            overlapped_s: r.overlapped_s,
            sequential_s: r.sequential_s,
            total_comm_s: r.total_comm_s,
            exposed_comm_s: r.exposed_comm_s,
            hidden_fraction: r.hidden_fraction,
            steps: r.steps,
        }
    }
}

/// The `repro-figures train` campaign: every paper model × Wrht × the
/// requested execution modes × both substrates at `n` nodes with the
/// DDP-default 25 MB bucket budget.
#[must_use]
pub fn train_spec(
    cfg: &ExperimentConfig,
    models: &[Model],
    n: usize,
    seed: u64,
    modes: &[ExecMode],
) -> TimelineSpec {
    let names: Vec<&str> = models.iter().map(|m| m.name.as_str()).collect();
    let mut spec = TimelineSpec::grid(
        "train",
        cfg.clone(),
        &names,
        &[25 << 20],
        &[n],
        &[Algorithm::Wrht],
        modes,
        &[SubstrateKind::Electrical, SubstrateKind::Optical],
    );
    spec.seed = seed;
    spec
}

/// One grid point of a tenancy campaign: `jobs` identical training
/// iterations of `model` arriving `arrival_stagger_s` apart, composed into
/// one shared run under `policy` (see
/// [`wrht_core::substrate::Substrate::execute_jobs`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenancyCellConfig {
    /// Fabric shared by all jobs.
    pub substrate: SubstrateKind,
    /// Cross-job scheduling policy.
    pub policy: SchedPolicy,
    /// Number of concurrent jobs. Job `j` arrives at `j *
    /// arrival_stagger_s` with priority `j` (latecomers preempt under
    /// [`SchedPolicy::Priority`], making the axis distinct from FIFO).
    pub jobs: usize,
    /// Collective algorithm used per gradient bucket.
    pub algorithm: Algorithm,
    /// Zoo model name (resolved via [`dnn_models::model_by_name`], so
    /// transformer tables are selectable alongside the paper's CNNs).
    pub model: String,
    /// Gradient-fusion bucket budget, bytes.
    pub bucket_bytes: u64,
    /// Inter-arrival gap between consecutive jobs, seconds.
    pub arrival_stagger_s: f64,
    /// Node count.
    pub n: usize,
    /// Wavelength budget (optical; recorded but unused electrically).
    pub wavelengths: usize,
    /// RWA strategy (optical; ignored electrically).
    pub strategy: Strategy,
}

/// Result of one executed (or failed) tenancy cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenancyCellResult {
    /// The cell's configuration.
    pub cell: TenancyCellConfig,
    /// FNV-1a hash of the configuration (the sink key).
    pub config_hash: u64,
    /// Deterministic per-cell seed: campaign seed ⊕ config hash.
    pub seed: u64,
    /// Cluster makespan (last transfer of any job), seconds.
    pub makespan_s: f64,
    /// Mean per-job slowdown vs an isolated run.
    pub mean_slowdown: f64,
    /// Worst per-job slowdown vs an isolated run.
    pub max_slowdown: f64,
    /// Jain fairness index over per-job slowdowns, `(0, 1]`.
    pub fairness_index: f64,
    /// Median per-job slowdown (streaming P², exact for <= 5 jobs).
    pub slowdown_p50: f64,
    /// 99th-percentile per-job slowdown.
    pub slowdown_p99: f64,
    /// 99.9th-percentile per-job slowdown.
    pub slowdown_p999: f64,
    /// Mean fraction of per-job communication hidden behind compute.
    pub mean_hidden_fraction: f64,
    /// Peak wavelength footprint (0 electrically).
    pub peak_wavelengths: usize,
    /// Total transfers across all jobs.
    pub transfers: usize,
    /// Error string for infeasible cells.
    pub error: Option<String>,
}

/// A declarative tenancy campaign: shared physical constants plus cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenancySweep {
    /// Campaign name (names the combined sink files).
    pub name: String,
    /// Physical constants shared by every cell.
    pub base: ExperimentConfig,
    /// Campaign-level seed, mixed into every cell seed.
    pub seed: u64,
    /// The cells, in grid order.
    pub cells: Vec<TenancyCellConfig>,
}

impl TenancySweep {
    /// Expand a full cross-product grid in deterministic nested order
    /// (model → n → jobs → policy → substrate), at the base config's
    /// wavelength budget.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // one axis per campaign dimension
    pub fn grid(
        name: &str,
        base: ExperimentConfig,
        models: &[&str],
        job_counts: &[usize],
        policies: &[SchedPolicy],
        nodes: &[usize],
        substrates: &[SubstrateKind],
        bucket_bytes: u64,
        arrival_stagger_s: f64,
    ) -> Self {
        let wavelengths = base.wavelengths;
        let mut cells = Vec::new();
        for &model in models {
            for &n in nodes {
                for &jobs in job_counts {
                    for &policy in policies {
                        for &substrate in substrates {
                            cells.push(TenancyCellConfig {
                                substrate,
                                policy,
                                jobs,
                                algorithm: Algorithm::Wrht,
                                model: model.to_string(),
                                bucket_bytes,
                                arrival_stagger_s,
                                n,
                                wavelengths,
                                strategy: Strategy::FirstFit,
                            });
                        }
                    }
                }
            }
        }
        Self {
            name: name.to_string(),
            base,
            seed: 0,
            cells,
        }
    }
}

/// Executed tenancy campaign: results in the same order as `spec.cells`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenancyCampaignReport {
    /// Campaign name.
    pub name: String,
    /// One result per cell, in grid order.
    pub results: Vec<TenancyCellResult>,
}

/// Stable FNV-1a hash of a tenancy cell configuration.
#[must_use]
pub fn tenancy_config_hash(cell: &TenancyCellConfig) -> u64 {
    fnv1a(&serde_json::to_string(cell).expect("cell configs serialize"))
}

/// Execute one tenancy cell against the campaign's physical constants.
#[must_use]
pub fn run_tenancy_cell(
    base: &ExperimentConfig,
    seed: u64,
    cell: &TenancyCellConfig,
) -> TenancyCellResult {
    let hash = tenancy_config_hash(cell);
    let mut result = TenancyCellResult {
        cell: cell.clone(),
        config_hash: hash,
        seed: seed ^ hash,
        makespan_s: 0.0,
        mean_slowdown: 0.0,
        max_slowdown: 0.0,
        fairness_index: 0.0,
        slowdown_p50: 0.0,
        slowdown_p99: 0.0,
        slowdown_p999: 0.0,
        mean_hidden_fraction: 0.0,
        peak_wavelengths: 0,
        transfers: 0,
        error: None,
    };

    let Some(model) = dnn_models::model_by_name(&cell.model) else {
        result.error = Some(format!("unknown model '{}'", cell.model));
        return result;
    };

    // Cell-local constants: the cell's wavelength budget overrides the base.
    let mut local = base.clone();
    local.wavelengths = cell.wavelengths;

    let outcome: wrht_core::error::Result<wrht_core::ClusterReport> = (|| {
        // Lower the model's gradient buckets once; every job runs the same
        // iteration, shifted by its arrival.
        let buckets = crate::timeline::timeline_buckets(&model, cell.bucket_bytes);
        let mut lowered: Vec<(f64, StepSchedule)> = Vec::with_capacity(buckets.len());
        for b in &buckets {
            let (schedule, _) =
                crate::timeline::lower_allreduce(&local, cell.algorithm, cell.n, b.bytes)?;
            lowered.push((b.ready_s, schedule));
        }
        let im = crate::timeline::iteration_model(&model);
        let compute_s = im.forward_s + im.backward_s;
        let mut spec = TenancySpec::new(cell.policy);
        for j in 0..cell.jobs {
            spec = spec.with_job(
                Job::training(
                    format!("{}#{j}", model.name),
                    j as f64 * cell.arrival_stagger_s,
                    lowered.clone(),
                )
                .with_compute(compute_s)
                .with_priority(j as u32),
            );
        }
        local
            .try_substrate(cell.substrate, cell.n, cell.strategy)?
            .execute_jobs(&spec)
    })();

    match outcome {
        Ok(report) => {
            result.makespan_s = report.makespan_s;
            result.mean_slowdown = report.mean_slowdown();
            result.max_slowdown = report.max_slowdown();
            result.fairness_index = report.fairness_index;
            result.slowdown_p50 = report.slowdown.p50;
            result.slowdown_p99 = report.slowdown.p99;
            result.slowdown_p999 = report.slowdown.p999;
            result.mean_hidden_fraction = if report.jobs.is_empty() {
                1.0
            } else {
                report.jobs.iter().map(|j| j.hidden_fraction).sum::<f64>()
                    / report.jobs.len() as f64
            };
            result.peak_wavelengths = report.peak_wavelength;
            result.transfers = report.jobs.iter().map(|j| j.transfers).sum();
        }
        Err(e) => result.error = Some(e.to_string()),
    }
    result
}

/// Run a tenancy campaign over `threads` workers — deterministic and
/// resumable exactly like [`run_campaign`]: one `jcell-<hash>.json` per
/// finished cell, grid-ordered results, byte-identical serial/parallel
/// output, plus combined `<name>.json` / `<name>.csv` tables.
#[must_use]
pub fn run_tenancy_campaign(
    spec: &TenancySweep,
    threads: usize,
    sink: Option<&Path>,
) -> TenancyCampaignReport {
    if let Some(dir) = sink {
        let _ = fs::create_dir_all(dir);
    }

    let ctx = context_hash(&spec.base, spec.seed);
    let keys: Vec<u64> = spec
        .cells
        .iter()
        .map(|c| tenancy_config_hash(c) ^ ctx)
        .collect();
    let mut prefilled: Vec<Option<TenancyCellResult>> = vec![None; spec.cells.len()];
    for (i, cell) in spec.cells.iter().enumerate() {
        let expected_seed = spec.seed ^ tenancy_config_hash(cell);
        prefilled[i] = sink.and_then(|dir| {
            load_finished(
                &cell_file(dir, "jcell", keys[i]),
                |r: &TenancyCellResult| {
                    r.cell == *cell
                        && r.config_hash == tenancy_config_hash(cell)
                        && r.seed == expected_seed
                },
            )
        });
    }

    let results = run_slots(
        threads,
        prefilled,
        |i| run_tenancy_cell(&spec.base, spec.seed, &spec.cells[i]),
        |i, result| {
            if let Some(dir) = sink {
                let _ = fs::write(cell_file(dir, "jcell", keys[i]), to_json(result));
            }
        },
    );

    let report = TenancyCampaignReport {
        name: spec.name.clone(),
        results,
    };
    if let Some(dir) = sink {
        let _ = fs::write(dir.join(format!("{}.json", spec.name)), to_json(&report));
        let _ = fs::write(
            dir.join(format!("{}.csv", spec.name)),
            tenancy_to_csv(&report),
        );
    }
    report
}

/// Render a tenancy campaign as CSV (stable column order, grid rows).
#[must_use]
pub fn tenancy_to_csv(report: &TenancyCampaignReport) -> String {
    let mut out = String::from(
        "substrate,policy,jobs,algorithm,model,n,wavelengths,strategy,bucket_bytes,\
         stagger_s,seed,makespan_s,mean_slowdown,max_slowdown,fairness_index,\
         slowdown_p50,slowdown_p99,slowdown_p999,\
         mean_hidden_fraction,peak_wavelengths,transfers,error\n",
    );
    for r in &report.results {
        let c = &r.cell;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{:?},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            c.substrate.label(),
            c.policy.label(),
            c.jobs,
            c.algorithm.label(),
            csv_field(&c.model),
            c.n,
            c.wavelengths,
            c.strategy,
            c.bucket_bytes,
            c.arrival_stagger_s,
            r.seed,
            r.makespan_s,
            r.mean_slowdown,
            r.max_slowdown,
            r.fairness_index,
            r.slowdown_p50,
            r.slowdown_p99,
            r.slowdown_p999,
            r.mean_hidden_fraction,
            r.peak_wavelengths,
            r.transfers,
            csv_field(r.error.as_deref().unwrap_or("")),
        ));
    }
    out
}

/// The `repro-figures tenants` campaign: 1/2/4 concurrent training jobs of
/// the first model under every [`SchedPolicy`] on both substrates at `n`
/// nodes, arrivals 1 ms apart, DDP-default 25 MB buckets.
#[must_use]
pub fn tenants_spec(cfg: &ExperimentConfig, models: &[Model], n: usize, seed: u64) -> TenancySweep {
    let first: Vec<&str> = models
        .first()
        .map(|m| m.name.as_str())
        .into_iter()
        .collect();
    let mut spec = TenancySweep::grid(
        "tenants",
        cfg.clone(),
        &first,
        &[1, 2, 4],
        &SchedPolicy::ALL,
        &[n],
        &[SubstrateKind::Electrical, SubstrateKind::Optical],
        25 << 20,
        1e-3,
    );
    spec.seed = seed;
    spec
}

/// A declarative fault scenario, timed in **fractions of the clean
/// makespan** so one scenario scales across models, node counts and
/// substrates. Resolved into an absolute-time
/// [`FaultScript`](wrht_core::fault::FaultScript) per cell by
/// [`FaultScenario::script`].
///
/// Each substrate reacts only to the event kinds that exist on it (see
/// [`wrht_core::fault`]): `WavelengthDown` is an electrical no-op and
/// `LinkDegrade`/`LinkFlap` are optical no-ops — such cells pin the
/// zero-blast-radius contract rather than being skipped.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultScenario {
    /// No fault: the faulted run must be bit-exact with the clean run.
    None,
    /// A wavelength fails at `at_frac` of the clean makespan and stays down.
    WavelengthDown {
        /// Failed wavelength index.
        lane: usize,
        /// Fault instant as a fraction of the clean makespan.
        at_frac: f64,
    },
    /// A link's capacity drops to `factor` at `at_frac` of the clean makespan.
    LinkDegrade {
        /// Link index in the electrical network's link table.
        link: usize,
        /// Capacity multiplier, `0 < factor <= 1`.
        factor: f64,
        /// Fault instant as a fraction of the clean makespan.
        at_frac: f64,
    },
    /// A link goes fully down at `at_frac` and recovers `down_frac` of the
    /// clean makespan later.
    LinkFlap {
        /// Link index in the electrical network's link table.
        link: usize,
        /// Outage start as a fraction of the clean makespan.
        at_frac: f64,
        /// Outage duration as a fraction of the clean makespan.
        down_frac: f64,
    },
    /// A node fails permanently at `at_frac` of the clean makespan.
    NodeDown {
        /// Failed node index.
        node: usize,
        /// Fault instant as a fraction of the clean makespan.
        at_frac: f64,
    },
}

impl FaultScenario {
    /// Stable label used in CSV rows and rendered tables.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            FaultScenario::None => "none".to_string(),
            FaultScenario::WavelengthDown { lane, at_frac } => {
                format!("wavelength-down:{lane}@{at_frac}")
            }
            FaultScenario::LinkDegrade {
                link,
                factor,
                at_frac,
            } => format!("link-degrade:{link}x{factor}@{at_frac}"),
            FaultScenario::LinkFlap {
                link,
                at_frac,
                down_frac,
            } => format!("link-flap:{link}@{at_frac}+{down_frac}"),
            FaultScenario::NodeDown { node, at_frac } => format!("node-down:{node}@{at_frac}"),
        }
    }

    /// Resolve the scenario against a measured clean makespan into an
    /// absolute-time fault script.
    #[must_use]
    pub fn script(self, clean_makespan_s: f64) -> FaultScript {
        let at = |frac: f64| frac * clean_makespan_s;
        match self {
            FaultScenario::None => FaultScript::new(),
            FaultScenario::WavelengthDown { lane, at_frac } => {
                FaultScript::new().with(at(at_frac), FaultKind::WavelengthDown { lane })
            }
            FaultScenario::LinkDegrade {
                link,
                factor,
                at_frac,
            } => FaultScript::new().with(at(at_frac), FaultKind::LinkDegrade { link, factor }),
            FaultScenario::LinkFlap {
                link,
                at_frac,
                down_frac,
            } => FaultScript::new().with(
                at(at_frac),
                FaultKind::LinkFlap {
                    link,
                    // A flap must outlast the instant it lands on even when
                    // the clean makespan rounds the duration to zero.
                    down_s: at(down_frac).max(1e-9),
                },
            ),
            FaultScenario::NodeDown { node, at_frac } => {
                FaultScript::new().with(at(at_frac), FaultKind::NodeDown { node })
            }
        }
    }
}

/// Serializable mirror of [`wrht_core::fault::FaultPolicy`] (the kernel
/// type is serde-free by design — the kernel crate has zero deps).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Fail the whole job owning an aborted transfer.
    FailJob,
    /// Re-admit aborted transfers after a fixed backoff.
    RetryAfter {
        /// Backoff before re-admission, seconds.
        backoff_s: f64,
    },
    /// Re-grant aborted transfers immediately over surviving resources.
    Replan,
}

impl RecoveryPolicy {
    /// The kernel-level policy this mirror stands for.
    #[must_use]
    pub fn to_policy(self) -> FaultPolicy {
        match self {
            RecoveryPolicy::FailJob => FaultPolicy::FailJob,
            RecoveryPolicy::RetryAfter { backoff_s } => FaultPolicy::RetryAfter(backoff_s),
            RecoveryPolicy::Replan => FaultPolicy::Replan,
        }
    }

    /// Stable label used in CSV rows (same strings as
    /// [`wrht_core::fault::FaultPolicy::label`]).
    #[must_use]
    pub fn label(self) -> String {
        self.to_policy().label()
    }
}

/// One grid point of a fault campaign: a tenancy cell (see
/// [`TenancyCellConfig`]) plus a [`FaultScenario`] and a recovery
/// [`RecoveryPolicy`], executed clean and faulted and diffed into blast
/// radius and recovery metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultCellConfig {
    /// Fabric shared by all jobs.
    pub substrate: SubstrateKind,
    /// Cross-job scheduling policy.
    pub policy: SchedPolicy,
    /// Recovery policy applied when the fault lands.
    pub fault_policy: RecoveryPolicy,
    /// The injected fault, timed in fractions of the clean makespan.
    pub scenario: FaultScenario,
    /// Number of concurrent jobs (job `j` arrives at `j * arrival_stagger_s`).
    pub jobs: usize,
    /// Collective algorithm used per gradient bucket.
    pub algorithm: Algorithm,
    /// Zoo model name (resolved via [`dnn_models::model_by_name`], so
    /// transformer tables are selectable alongside the paper's CNNs).
    pub model: String,
    /// Gradient-fusion bucket budget, bytes.
    pub bucket_bytes: u64,
    /// Inter-arrival gap between consecutive jobs, seconds.
    pub arrival_stagger_s: f64,
    /// Node count.
    pub n: usize,
    /// Wavelength budget (optical; recorded but unused electrically).
    pub wavelengths: usize,
    /// RWA strategy (optical; ignored electrically).
    pub strategy: Strategy,
}

/// Result of one executed (or failed) fault cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultCellResult {
    /// The cell's configuration.
    pub cell: FaultCellConfig,
    /// FNV-1a hash of the configuration (the sink key).
    pub config_hash: u64,
    /// Deterministic per-cell seed: campaign seed ⊕ config hash.
    pub seed: u64,
    /// Fault-free makespan of the same composed run, seconds.
    pub clean_makespan_s: f64,
    /// Faulted makespan over completed transfers, seconds.
    pub makespan_s: f64,
    /// `makespan_s / clean_makespan_s`; exactly 1.0 for a no-op script.
    pub degraded_ratio: f64,
    /// First fault impact → last impacted completion, seconds.
    pub recovery_s: f64,
    /// Instant the fault first delayed or aborted a transfer, seconds.
    pub first_impact_s: Option<f64>,
    /// Transfers that completed later than in the clean run.
    pub delayed: usize,
    /// Abort events (a retried transfer can abort more than once).
    pub aborted: u64,
    /// Transfers that never completed.
    pub failed: usize,
    /// Jobs with at least one failed transfer.
    pub failed_jobs: usize,
    /// Total transfers across all jobs.
    pub transfers: usize,
    /// Peak wavelength footprint of the faulted run (0 electrically).
    pub peak_wavelengths: usize,
    /// Error string for infeasible cells.
    pub error: Option<String>,
}

/// A declarative fault campaign: shared physical constants plus cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweep {
    /// Campaign name (names the combined sink files).
    pub name: String,
    /// Physical constants shared by every cell.
    pub base: ExperimentConfig,
    /// Campaign-level seed, mixed into every cell seed.
    pub seed: u64,
    /// The cells, in grid order.
    pub cells: Vec<FaultCellConfig>,
}

impl FaultSweep {
    /// Expand a full cross-product grid in deterministic nested order
    /// (model → n → jobs → scenario → recovery policy → substrate), at the
    /// base config's wavelength budget.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // one axis per campaign dimension
    pub fn grid(
        name: &str,
        base: ExperimentConfig,
        models: &[&str],
        job_counts: &[usize],
        scenarios: &[FaultScenario],
        fault_policies: &[RecoveryPolicy],
        policy: SchedPolicy,
        nodes: &[usize],
        substrates: &[SubstrateKind],
        bucket_bytes: u64,
        arrival_stagger_s: f64,
    ) -> Self {
        let wavelengths = base.wavelengths;
        let mut cells = Vec::new();
        for &model in models {
            for &n in nodes {
                for &jobs in job_counts {
                    for &scenario in scenarios {
                        for &fault_policy in fault_policies {
                            for &substrate in substrates {
                                cells.push(FaultCellConfig {
                                    substrate,
                                    policy,
                                    fault_policy,
                                    scenario,
                                    jobs,
                                    algorithm: Algorithm::Wrht,
                                    model: model.to_string(),
                                    bucket_bytes,
                                    arrival_stagger_s,
                                    n,
                                    wavelengths,
                                    strategy: Strategy::FirstFit,
                                });
                            }
                        }
                    }
                }
            }
        }
        Self {
            name: name.to_string(),
            base,
            seed: 0,
            cells,
        }
    }
}

/// Executed fault campaign: results in the same order as `spec.cells`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultCampaignReport {
    /// Campaign name.
    pub name: String,
    /// One result per cell, in grid order.
    pub results: Vec<FaultCellResult>,
}

/// Stable FNV-1a hash of a fault cell configuration.
#[must_use]
pub fn fault_config_hash(cell: &FaultCellConfig) -> u64 {
    fnv1a(&serde_json::to_string(cell).expect("cell configs serialize"))
}

/// Execute one fault cell against the campaign's physical constants.
///
/// The composed multi-job DAG is run **clean** first; the scenario's
/// fractional fault instants are resolved against that measured makespan,
/// and the same DAG is re-run **faulted**. The two runs are diffed into
/// blast-radius and recovery metrics by
/// [`wrht_core::fault::fault_cluster_report`].
#[must_use]
pub fn run_fault_cell(
    base: &ExperimentConfig,
    seed: u64,
    cell: &FaultCellConfig,
) -> FaultCellResult {
    let hash = fault_config_hash(cell);
    let mut result = FaultCellResult {
        cell: cell.clone(),
        config_hash: hash,
        seed: seed ^ hash,
        clean_makespan_s: 0.0,
        makespan_s: 0.0,
        degraded_ratio: 0.0,
        recovery_s: 0.0,
        first_impact_s: None,
        delayed: 0,
        aborted: 0,
        failed: 0,
        failed_jobs: 0,
        transfers: 0,
        peak_wavelengths: 0,
        error: None,
    };

    let Some(model) = dnn_models::model_by_name(&cell.model) else {
        result.error = Some(format!("unknown model '{}'", cell.model));
        return result;
    };

    // Cell-local constants: the cell's wavelength budget overrides the base.
    let mut local = base.clone();
    local.wavelengths = cell.wavelengths;

    let outcome: wrht_core::error::Result<FaultClusterReport> = (|| {
        // Same job construction as `run_tenancy_cell`: every job runs one
        // training iteration of the model, shifted by its arrival.
        let buckets = crate::timeline::timeline_buckets(&model, cell.bucket_bytes);
        let mut lowered: Vec<(f64, StepSchedule)> = Vec::with_capacity(buckets.len());
        for b in &buckets {
            let (schedule, _) =
                crate::timeline::lower_allreduce(&local, cell.algorithm, cell.n, b.bytes)?;
            lowered.push((b.ready_s, schedule));
        }
        let im = crate::timeline::iteration_model(&model);
        let compute_s = im.forward_s + im.backward_s;
        let mut spec = TenancySpec::new(cell.policy);
        for j in 0..cell.jobs {
            spec = spec.with_job(
                Job::training(
                    format!("{}#{j}", model.name),
                    j as f64 * cell.arrival_stagger_s,
                    lowered.clone(),
                )
                .with_compute(compute_s)
                .with_priority(j as u32),
            );
        }

        let composed = spec.compose()?;
        let arb = spec.arbitration(&composed.job_of);
        let mut sub = local.try_substrate(cell.substrate, cell.n, cell.strategy)?;
        let clean = sub.execute_dag_jobs(&composed.dag, &arb)?;
        let script = cell.scenario.script(clean.dag.makespan_s);
        let policy = cell.fault_policy.to_policy();
        let faulted = sub.execute_dag_jobs_faulted(&composed.dag, &arb, &script, policy)?;
        Ok(fault_cluster_report(
            &spec, &composed, &clean.dag, &faulted, policy,
        ))
    })();

    match outcome {
        Ok(report) => {
            result.clean_makespan_s = report.clean_makespan_s;
            result.makespan_s = report.makespan_s;
            result.degraded_ratio = report.degraded_ratio;
            result.recovery_s = report.recovery_s;
            result.first_impact_s = report.first_impact_s;
            result.delayed = report.transfers_delayed;
            result.aborted = report.transfers_aborted;
            result.failed = report.transfers_failed;
            result.failed_jobs = report.failed_jobs();
            result.transfers = report.jobs.iter().map(|j| j.transfers).sum();
            result.peak_wavelengths = report.peak_wavelength;
            result.error = None;
        }
        Err(e) => result.error = Some(e.to_string()),
    }
    result
}

/// Run a fault campaign over `threads` workers — deterministic and
/// resumable exactly like [`run_campaign`]: one `fcell-<hash>.json` per
/// finished cell, grid-ordered results, byte-identical serial/parallel
/// output, plus combined `<name>.json` / `<name>.csv` tables.
#[must_use]
pub fn run_fault_campaign(
    spec: &FaultSweep,
    threads: usize,
    sink: Option<&Path>,
) -> FaultCampaignReport {
    if let Some(dir) = sink {
        let _ = fs::create_dir_all(dir);
    }

    let ctx = context_hash(&spec.base, spec.seed);
    let keys: Vec<u64> = spec
        .cells
        .iter()
        .map(|c| fault_config_hash(c) ^ ctx)
        .collect();
    let mut prefilled: Vec<Option<FaultCellResult>> = vec![None; spec.cells.len()];
    for (i, cell) in spec.cells.iter().enumerate() {
        let expected_seed = spec.seed ^ fault_config_hash(cell);
        prefilled[i] = sink.and_then(|dir| {
            load_finished(&cell_file(dir, "fcell", keys[i]), |r: &FaultCellResult| {
                r.cell == *cell
                    && r.config_hash == fault_config_hash(cell)
                    && r.seed == expected_seed
            })
        });
    }

    let results = run_slots(
        threads,
        prefilled,
        |i| run_fault_cell(&spec.base, spec.seed, &spec.cells[i]),
        |i, result| {
            if let Some(dir) = sink {
                let _ = fs::write(cell_file(dir, "fcell", keys[i]), to_json(result));
            }
        },
    );

    let report = FaultCampaignReport {
        name: spec.name.clone(),
        results,
    };
    if let Some(dir) = sink {
        let _ = fs::write(dir.join(format!("{}.json", spec.name)), to_json(&report));
        let _ = fs::write(
            dir.join(format!("{}.csv", spec.name)),
            fault_to_csv(&report),
        );
    }
    report
}

/// Render a fault campaign as CSV (stable column order, grid rows).
#[must_use]
pub fn fault_to_csv(report: &FaultCampaignReport) -> String {
    let mut out = String::from(
        "substrate,sched_policy,fault_policy,scenario,jobs,model,n,wavelengths,\
         bucket_bytes,stagger_s,seed,clean_makespan_s,makespan_s,degraded_ratio,\
         recovery_s,first_impact_s,delayed,aborted,failed,failed_jobs,transfers,\
         peak_wavelengths,error\n",
    );
    for r in &report.results {
        let c = &r.cell;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            c.substrate.label(),
            c.policy.label(),
            csv_field(&c.fault_policy.label()),
            csv_field(&c.scenario.label()),
            c.jobs,
            csv_field(&c.model),
            c.n,
            c.wavelengths,
            c.bucket_bytes,
            c.arrival_stagger_s,
            r.seed,
            r.clean_makespan_s,
            r.makespan_s,
            r.degraded_ratio,
            r.recovery_s,
            r.first_impact_s.map_or(String::new(), |t| t.to_string()),
            r.delayed,
            r.aborted,
            r.failed,
            r.failed_jobs,
            r.transfers,
            r.peak_wavelengths,
            csv_field(r.error.as_deref().unwrap_or("")),
        ));
    }
    out
}

/// The `repro-figures faults` campaign: 2 concurrent training jobs of the
/// first model under FIFO arbitration, hit by one wavelength failure, one
/// link degradation and one node failure (each at 25% of the clean
/// makespan) under `Replan` and `FailJob` recovery, on both substrates.
#[must_use]
pub fn faults_spec(cfg: &ExperimentConfig, models: &[Model], n: usize, seed: u64) -> FaultSweep {
    let first: Vec<&str> = models
        .first()
        .map(|m| m.name.as_str())
        .into_iter()
        .collect();
    // Mid-run (50% of the clean makespan): late enough that transfers are
    // in flight — the wavelength loss aborts lightpaths mid-transfer — and
    // early enough that recovery is visible before the drain.
    let scenarios = [
        FaultScenario::WavelengthDown {
            lane: 0,
            at_frac: 0.5,
        },
        FaultScenario::LinkDegrade {
            link: 0,
            factor: 0.25,
            at_frac: 0.5,
        },
        FaultScenario::NodeDown {
            node: n / 2,
            at_frac: 0.5,
        },
    ];
    let policies = [RecoveryPolicy::Replan, RecoveryPolicy::FailJob];
    let mut spec = FaultSweep::grid(
        "faults",
        cfg.clone(),
        &first,
        &[2],
        &scenarios,
        &policies,
        SchedPolicy::Fifo,
        &[n],
        &[SubstrateKind::Electrical, SubstrateKind::Optical],
        25 << 20,
        1e-3,
    );
    spec.seed = seed;
    spec
}

/// One grid point of an open-loop stream campaign: Poisson arrivals of
/// `model` training iterations at `rate_hz`, served through
/// [`wrht_core::substrate::Substrate::execute_stream`] under `policy` with
/// `admission` control layered on top.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamCellConfig {
    /// Fabric serving the stream.
    pub substrate: SubstrateKind,
    /// Cross-job scheduling policy.
    pub policy: SchedPolicy,
    /// Admission control applied before jobs reach the scheduler.
    pub admission: Admission,
    /// Mean Poisson arrival rate, jobs per second.
    pub rate_hz: f64,
    /// Total arrivals generated by the cell.
    pub arrivals: u64,
    /// Collective algorithm used per gradient bucket.
    pub algorithm: Algorithm,
    /// Zoo model name (resolved via [`dnn_models::model_by_name`], so
    /// transformer tables are selectable alongside the paper's CNNs).
    pub model: String,
    /// Gradient-fusion bucket budget, bytes.
    pub bucket_bytes: u64,
    /// Metric window width, seconds.
    pub window_s: f64,
    /// Node count.
    pub n: usize,
    /// Wavelength budget (optical; recorded but unused electrically).
    pub wavelengths: usize,
    /// RWA strategy (optical; ignored electrically).
    pub strategy: Strategy,
}

/// Result of one executed (or failed) stream cell: the scalar summary of
/// the cell's [`wrht_core::stream::StreamReport`] (no wall-clock fields,
/// so rows are bit-stable and can be pinned by golden tests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamCellResult {
    /// The cell's configuration.
    pub cell: StreamCellConfig,
    /// FNV-1a hash of the configuration (the sink key).
    pub config_hash: u64,
    /// Deterministic per-cell seed: campaign seed ⊕ config hash (also the
    /// cell's Poisson seed).
    pub seed: u64,
    /// Arrivals generated.
    pub arrivals: u64,
    /// Arrivals admitted into service.
    pub admitted: u64,
    /// Arrivals shed by [`Admission::Reject`].
    pub rejected: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Last completion instant, seconds.
    pub makespan_s: f64,
    /// Kernel events processed by the run.
    pub events: u64,
    /// Delivered bytes over `reference_bps × makespan`.
    pub mean_utilization: f64,
    /// Mean slowdown over completed jobs.
    pub mean_slowdown: f64,
    /// Streaming slowdown median.
    pub slowdown_p50: f64,
    /// Streaming slowdown 99th percentile.
    pub slowdown_p99: f64,
    /// Streaming slowdown 99.9th percentile.
    pub slowdown_p999: f64,
    /// Jain fairness index over completed-job slowdowns.
    pub fairness_index: f64,
    /// Deepest admission queue observed.
    pub peak_queue_depth: usize,
    /// Most jobs simultaneously in service.
    pub peak_in_service: usize,
    /// Non-empty metric windows emitted.
    pub windows: usize,
    /// Error string for infeasible cells.
    pub error: Option<String>,
}

/// A declarative stream campaign: shared physical constants plus cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSweep {
    /// Campaign name (names the combined sink files).
    pub name: String,
    /// Physical constants shared by every cell.
    pub base: ExperimentConfig,
    /// Campaign-level seed, mixed into every cell seed.
    pub seed: u64,
    /// The cells, in grid order.
    pub cells: Vec<StreamCellConfig>,
}

impl StreamSweep {
    /// Expand a full cross-product grid in deterministic nested order
    /// (model → n → rate → policy → admission → substrate), at the base
    /// config's wavelength budget.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // one axis per campaign dimension
    pub fn grid(
        name: &str,
        base: ExperimentConfig,
        models: &[&str],
        rates_hz: &[f64],
        policies: &[SchedPolicy],
        admissions: &[Admission],
        nodes: &[usize],
        substrates: &[SubstrateKind],
        bucket_bytes: u64,
        arrivals: u64,
        window_s: f64,
    ) -> Self {
        let wavelengths = base.wavelengths;
        let mut cells = Vec::new();
        for &model in models {
            for &n in nodes {
                for &rate_hz in rates_hz {
                    for &policy in policies {
                        for &admission in admissions {
                            for &substrate in substrates {
                                cells.push(StreamCellConfig {
                                    substrate,
                                    policy,
                                    admission,
                                    rate_hz,
                                    arrivals,
                                    algorithm: Algorithm::Wrht,
                                    model: model.to_string(),
                                    bucket_bytes,
                                    window_s,
                                    n,
                                    wavelengths,
                                    strategy: Strategy::FirstFit,
                                });
                            }
                        }
                    }
                }
            }
        }
        Self {
            name: name.to_string(),
            base,
            seed: 0,
            cells,
        }
    }
}

/// Executed stream campaign: results in the same order as `spec.cells`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamCampaignReport {
    /// Campaign name.
    pub name: String,
    /// One result per cell, in grid order.
    pub results: Vec<StreamCellResult>,
}

/// Stable FNV-1a hash of a stream cell configuration.
#[must_use]
pub fn stream_config_hash(cell: &StreamCellConfig) -> u64 {
    fnv1a(&serde_json::to_string(cell).expect("cell configs serialize"))
}

/// Execute one stream cell against the campaign's physical constants.
///
/// The model's gradient buckets are lowered once into a training-iteration
/// workload; the cell serves `arrivals` Poisson arrivals of that workload
/// (alternating between a high- and a low-priority template, so the
/// priority axis has something to bite on) through the online stream
/// engine and keeps the scalar summary.
#[must_use]
pub fn run_stream_cell(
    base: &ExperimentConfig,
    seed: u64,
    cell: &StreamCellConfig,
) -> StreamCellResult {
    let hash = stream_config_hash(cell);
    let mut result = StreamCellResult {
        cell: cell.clone(),
        config_hash: hash,
        seed: seed ^ hash,
        arrivals: 0,
        admitted: 0,
        rejected: 0,
        completed: 0,
        makespan_s: 0.0,
        events: 0,
        mean_utilization: 0.0,
        mean_slowdown: 0.0,
        slowdown_p50: 0.0,
        slowdown_p99: 0.0,
        slowdown_p999: 0.0,
        fairness_index: 0.0,
        peak_queue_depth: 0,
        peak_in_service: 0,
        windows: 0,
        error: None,
    };

    let Some(model) = dnn_models::model_by_name(&cell.model) else {
        result.error = Some(format!("unknown model '{}'", cell.model));
        return result;
    };

    // Cell-local constants: the cell's wavelength budget overrides the base.
    let mut local = base.clone();
    local.wavelengths = cell.wavelengths;

    let outcome: wrht_core::error::Result<StreamReport> = (|| {
        let buckets = crate::timeline::timeline_buckets(&model, cell.bucket_bytes);
        let mut lowered: Vec<(f64, StepSchedule)> = Vec::with_capacity(buckets.len());
        for b in &buckets {
            let (schedule, _) =
                crate::timeline::lower_allreduce(&local, cell.algorithm, cell.n, b.bytes)?;
            lowered.push((b.ready_s, schedule));
        }
        let spec = StreamSpec::new(
            ArrivalProcess::Poisson {
                rate_hz: cell.rate_hz,
                count: cell.arrivals,
                seed: seed ^ hash,
            },
            cell.policy,
        )
        .with_template(
            StreamTemplate::new(
                format!("{}-hi", model.name),
                JobWorkload::Buckets(lowered.clone()),
            )
            .with_priority(2),
        )
        .with_template(
            StreamTemplate::new(format!("{}-lo", model.name), JobWorkload::Buckets(lowered))
                .with_priority(1),
        )
        .with_admission(cell.admission)
        .with_window(cell.window_s)
        .with_reference_bps(local.lambda_bandwidth_bps * cell.wavelengths as f64);
        local
            .try_substrate(cell.substrate, cell.n, cell.strategy)?
            .execute_stream(&spec)
    })();

    match outcome {
        Ok(report) => {
            result.arrivals = report.arrivals;
            result.admitted = report.admitted;
            result.rejected = report.rejected;
            result.completed = report.completed;
            result.makespan_s = report.makespan_s;
            result.events = report.events;
            result.mean_utilization = report.mean_utilization;
            result.mean_slowdown = report.mean_slowdown;
            result.slowdown_p50 = report.slowdown.p50;
            result.slowdown_p99 = report.slowdown.p99;
            result.slowdown_p999 = report.slowdown.p999;
            result.fairness_index = report.fairness_index;
            result.peak_queue_depth = report.peak_queue_depth;
            result.peak_in_service = report.peak_in_service;
            result.windows = report.windows.len();
            result.error = None;
        }
        Err(e) => result.error = Some(e.to_string()),
    }
    result
}

/// Run a stream campaign over `threads` workers — deterministic and
/// resumable exactly like [`run_campaign`]: one `scell-<hash>.json` per
/// finished cell, grid-ordered results, byte-identical serial/parallel
/// output, plus combined `<name>.json` / `<name>.csv` tables.
#[must_use]
pub fn run_stream_campaign(
    spec: &StreamSweep,
    threads: usize,
    sink: Option<&Path>,
) -> StreamCampaignReport {
    if let Some(dir) = sink {
        let _ = fs::create_dir_all(dir);
    }

    let ctx = context_hash(&spec.base, spec.seed);
    let keys: Vec<u64> = spec
        .cells
        .iter()
        .map(|c| stream_config_hash(c) ^ ctx)
        .collect();
    let mut prefilled: Vec<Option<StreamCellResult>> = vec![None; spec.cells.len()];
    for (i, cell) in spec.cells.iter().enumerate() {
        let expected_seed = spec.seed ^ stream_config_hash(cell);
        prefilled[i] = sink.and_then(|dir| {
            load_finished(&cell_file(dir, "scell", keys[i]), |r: &StreamCellResult| {
                r.cell == *cell
                    && r.config_hash == stream_config_hash(cell)
                    && r.seed == expected_seed
            })
        });
    }

    let results = run_slots(
        threads,
        prefilled,
        |i| run_stream_cell(&spec.base, spec.seed, &spec.cells[i]),
        |i, result| {
            if let Some(dir) = sink {
                let _ = fs::write(cell_file(dir, "scell", keys[i]), to_json(result));
            }
        },
    );

    let report = StreamCampaignReport {
        name: spec.name.clone(),
        results,
    };
    if let Some(dir) = sink {
        let _ = fs::write(dir.join(format!("{}.json", spec.name)), to_json(&report));
        let _ = fs::write(
            dir.join(format!("{}.csv", spec.name)),
            stream_to_csv(&report),
        );
    }
    report
}

/// Render a stream campaign as CSV (stable column order, grid rows).
#[must_use]
pub fn stream_to_csv(report: &StreamCampaignReport) -> String {
    let mut out = String::from(
        "substrate,policy,admission,rate_hz,arrivals,algorithm,model,n,wavelengths,\
         bucket_bytes,window_s,seed,admitted,rejected,completed,makespan_s,events,\
         mean_utilization,mean_slowdown,slowdown_p50,slowdown_p99,slowdown_p999,\
         fairness_index,peak_queue_depth,peak_in_service,windows,error\n",
    );
    for r in &report.results {
        let c = &r.cell;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            c.substrate.label(),
            c.policy.label(),
            csv_field(&c.admission.label()),
            c.rate_hz,
            c.arrivals,
            c.algorithm.label(),
            csv_field(&c.model),
            c.n,
            c.wavelengths,
            c.bucket_bytes,
            c.window_s,
            r.seed,
            r.admitted,
            r.rejected,
            r.completed,
            r.makespan_s,
            r.events,
            r.mean_utilization,
            r.mean_slowdown,
            r.slowdown_p50,
            r.slowdown_p99,
            r.slowdown_p999,
            r.fairness_index,
            r.peak_queue_depth,
            r.peak_in_service,
            r.windows,
            csv_field(r.error.as_deref().unwrap_or("")),
        ));
    }
    out
}

/// The `repro-figures serve` campaign: Poisson arrivals of the first
/// model's training iteration at an underload and an overload rate, under
/// every scheduling policy × immediate / queue-bounded / load-shedding
/// admission, on both substrates.
#[must_use]
pub fn serve_spec(cfg: &ExperimentConfig, models: &[Model], n: usize, seed: u64) -> StreamSweep {
    let first: Vec<&str> = models
        .first()
        .map(|m| m.name.as_str())
        .into_iter()
        .collect();
    let mut spec = StreamSweep::grid(
        "serve",
        cfg.clone(),
        &first,
        // Rates bracket one GoogLeNet-iteration service time at 16 nodes:
        // ~50/s keeps the fabric busy but stable, ~200/s overloads it so
        // queueing (and rejection, under `Reject`) becomes visible.
        &[50.0, 200.0],
        &SchedPolicy::ALL,
        &[
            Admission::Immediate,
            Admission::QueueDepth { limit: 2 },
            Admission::Reject { limit: 4 },
        ],
        &[n],
        &[SubstrateKind::Electrical, SubstrateKind::Optical],
        25 << 20,
        16,
        20e-3,
    );
    spec.seed = seed;
    spec
}

/// One grid point of a mixed-parallelism campaign: a transformer trained
/// with `tp × pp × dp` (+ optional MoE) on the composed hierarchical
/// substrate — optical rings inside every group, the electrical cluster
/// between groups ([`ExperimentConfig::try_composed`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParCellConfig {
    /// Zoo model name (resolved via [`dnn_models::model_by_name`]; the
    /// transformer tables are the intended workloads).
    pub model: String,
    /// Tensor-parallel degree (hosts per group).
    pub tp: usize,
    /// Pipeline stages.
    pub pp: usize,
    /// Data-parallel replicas per stage.
    pub dp: usize,
    /// MoE expert hosts (0 disables the all-to-all phase).
    pub moe_experts: usize,
    /// Microbatches per iteration.
    pub microbatches: usize,
    /// Activation bytes per microbatch at block/stage boundaries.
    pub activation_bytes: u64,
    /// Wavelength budget of each group's intra ring.
    pub wavelengths: usize,
    /// RWA strategy of the intra rings.
    pub strategy: Strategy,
}

/// Result of one executed (or failed) parallelism cell: the composed
/// run's scalar summary plus the per-domain traffic split (no wall-clock
/// fields, so rows are bit-stable and can be pinned by golden tests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParCellResult {
    /// The cell's configuration.
    pub cell: ParCellConfig,
    /// FNV-1a hash of the configuration (the sink key).
    pub config_hash: u64,
    /// Deterministic per-cell seed: campaign seed ⊕ config hash.
    pub seed: u64,
    /// Hosts the job occupies (`tp * pp * dp`).
    pub nodes: usize,
    /// Groups of the hierarchy (`pp * dp`).
    pub groups: usize,
    /// Transfers in the lowered iteration DAG.
    pub transfers: usize,
    /// Transfers tagged intra-group.
    pub intra_transfers: usize,
    /// Transfers tagged inter-group.
    pub inter_transfers: usize,
    /// Payload bytes on the intra fabrics.
    pub intra_bytes: u64,
    /// Payload bytes on the inter fabric.
    pub inter_bytes: u64,
    /// Iteration makespan on the composed substrate, seconds.
    pub makespan_s: f64,
    /// Highest wavelength index any group's ring used.
    pub peak_wavelength: usize,
    /// Max-min rate recomputations of the inter fabric.
    pub rate_recomputations: usize,
    /// Solver work units of the inter fabric.
    pub solver_work: usize,
    /// Kernel events across all engines.
    pub events: u64,
    /// Error string for infeasible cells.
    pub error: Option<String>,
}

/// A declarative mixed-parallelism campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelismSweep {
    /// Campaign name (names the combined sink files).
    pub name: String,
    /// Physical constants shared by every cell.
    pub base: ExperimentConfig,
    /// Campaign-level seed, mixed into every cell seed.
    pub seed: u64,
    /// The cells, in grid order.
    pub cells: Vec<ParCellConfig>,
}

impl ParallelismSweep {
    /// Expand a grid in deterministic nested order (model → shape), at
    /// the base config's wavelength budget. Shapes are
    /// `(tp, pp, dp, moe_experts)` tuples.
    #[must_use]
    pub fn grid(
        name: &str,
        base: ExperimentConfig,
        models: &[&str],
        shapes: &[(usize, usize, usize, usize)],
        microbatches: usize,
        activation_bytes: u64,
    ) -> Self {
        let wavelengths = base.wavelengths;
        let mut cells = Vec::new();
        for &model in models {
            for &(tp, pp, dp, moe_experts) in shapes {
                cells.push(ParCellConfig {
                    model: model.to_string(),
                    tp,
                    pp,
                    dp,
                    moe_experts,
                    microbatches,
                    activation_bytes,
                    wavelengths,
                    strategy: Strategy::FirstFit,
                });
            }
        }
        Self {
            name: name.to_string(),
            base,
            seed: 0,
            cells,
        }
    }
}

/// Executed parallelism campaign: results in the same order as
/// `spec.cells`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelismCampaignReport {
    /// Campaign name.
    pub name: String,
    /// One result per cell, in grid order.
    pub results: Vec<ParCellResult>,
}

/// Stable FNV-1a hash of a parallelism cell configuration.
#[must_use]
pub fn parallelism_config_hash(cell: &ParCellConfig) -> u64 {
    fnv1a(&serde_json::to_string(cell).expect("cell configs serialize"))
}

/// Execute one parallelism cell against the campaign's physical constants.
///
/// The model's gradients are split evenly over the pipeline stages
/// ([`wrht_core::parallelism::StageModel::split`]), the iteration is
/// lowered to one dependency DAG
/// ([`wrht_core::parallelism::lower_parallelism`]) and executed on the
/// composed substrate; the result keeps the makespan plus the per-domain
/// traffic split the hierarchy derived.
#[must_use]
pub fn run_parallelism_cell(
    base: &ExperimentConfig,
    seed: u64,
    cell: &ParCellConfig,
) -> ParCellResult {
    let hash = parallelism_config_hash(cell);
    let mut result = ParCellResult {
        cell: cell.clone(),
        config_hash: hash,
        seed: seed ^ hash,
        nodes: 0,
        groups: 0,
        transfers: 0,
        intra_transfers: 0,
        inter_transfers: 0,
        intra_bytes: 0,
        inter_bytes: 0,
        makespan_s: 0.0,
        peak_wavelength: 0,
        rate_recomputations: 0,
        solver_work: 0,
        events: 0,
        error: None,
    };

    let Some(model) = dnn_models::model_by_name(&cell.model) else {
        result.error = Some(format!("unknown model '{}'", cell.model));
        return result;
    };

    // Cell-local constants: the cell's wavelength budget overrides the base.
    let mut local = base.clone();
    local.wavelengths = cell.wavelengths;

    let outcome: wrht_core::error::Result<()> = (|| {
        let spec = ParallelismSpec::new(
            cell.tp,
            cell.pp,
            cell.dp,
            cell.moe_experts,
            cell.microbatches,
        )?;
        let stages = StageModel::split(model.gradient_bytes(), cell.pp, cell.activation_bytes);
        let dag = lower_parallelism(&spec, &stages)?;
        let hier = spec.hier()?;
        let domains = hier.domains(&dag)?;
        for (t, d) in dag.transfers().iter().zip(&domains) {
            match d {
                Domain::Intra { .. } => {
                    result.intra_transfers += 1;
                    result.intra_bytes += t.transfer.bytes;
                }
                Domain::Inter => {
                    result.inter_transfers += 1;
                    result.inter_bytes += t.transfer.bytes;
                }
            }
        }
        let mut sub = local.try_composed(hier, cell.strategy)?;
        let report = sub.execute_dag(&dag)?;
        result.nodes = spec.nodes();
        result.groups = spec.groups();
        result.transfers = dag.len();
        result.makespan_s = report.makespan_s;
        result.peak_wavelength = report.peak_wavelength;
        result.rate_recomputations = report.rate_recomputations;
        result.solver_work = report.solver_work;
        result.events = report.events;
        Ok(())
    })();

    if let Err(e) = outcome {
        result.error = Some(e.to_string());
    }
    result
}

/// Run a parallelism campaign over `threads` workers — deterministic and
/// resumable exactly like [`run_campaign`]: one `pcell-<hash>.json` per
/// finished cell, grid-ordered results, byte-identical serial/parallel
/// output, plus combined `<name>.json` / `<name>.csv` tables.
#[must_use]
pub fn run_parallelism_campaign(
    spec: &ParallelismSweep,
    threads: usize,
    sink: Option<&Path>,
) -> ParallelismCampaignReport {
    if let Some(dir) = sink {
        let _ = fs::create_dir_all(dir);
    }

    let ctx = context_hash(&spec.base, spec.seed);
    let keys: Vec<u64> = spec
        .cells
        .iter()
        .map(|c| parallelism_config_hash(c) ^ ctx)
        .collect();
    let mut prefilled: Vec<Option<ParCellResult>> = vec![None; spec.cells.len()];
    for (i, cell) in spec.cells.iter().enumerate() {
        let expected_seed = spec.seed ^ parallelism_config_hash(cell);
        prefilled[i] = sink.and_then(|dir| {
            load_finished(&cell_file(dir, "pcell", keys[i]), |r: &ParCellResult| {
                r.cell == *cell
                    && r.config_hash == parallelism_config_hash(cell)
                    && r.seed == expected_seed
            })
        });
    }

    let results = run_slots(
        threads,
        prefilled,
        |i| run_parallelism_cell(&spec.base, spec.seed, &spec.cells[i]),
        |i, result| {
            if let Some(dir) = sink {
                let _ = fs::write(cell_file(dir, "pcell", keys[i]), to_json(result));
            }
        },
    );

    let report = ParallelismCampaignReport {
        name: spec.name.clone(),
        results,
    };
    if let Some(dir) = sink {
        let _ = fs::write(dir.join(format!("{}.json", spec.name)), to_json(&report));
        let _ = fs::write(
            dir.join(format!("{}.csv", spec.name)),
            parallelism_to_csv(&report),
        );
    }
    report
}

/// Render a parallelism campaign as CSV (stable column order, grid rows).
#[must_use]
pub fn parallelism_to_csv(report: &ParallelismCampaignReport) -> String {
    let mut out = String::from(
        "model,tp,pp,dp,moe_experts,microbatches,activation_bytes,wavelengths,seed,\
         nodes,groups,transfers,intra_transfers,inter_transfers,intra_bytes,inter_bytes,\
         makespan_s,peak_wavelength,rate_recomputations,solver_work,events,error\n",
    );
    for r in &report.results {
        let c = &r.cell;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            csv_field(&c.model),
            c.tp,
            c.pp,
            c.dp,
            c.moe_experts,
            c.microbatches,
            c.activation_bytes,
            c.wavelengths,
            r.seed,
            r.nodes,
            r.groups,
            r.transfers,
            r.intra_transfers,
            r.inter_transfers,
            r.intra_bytes,
            r.inter_bytes,
            r.makespan_s,
            r.peak_wavelength,
            r.rate_recomputations,
            r.solver_work,
            r.events,
            csv_field(r.error.as_deref().unwrap_or("")),
        ));
    }
    out
}

/// The `repro-figures parallelism` campaign: both transformer tables over
/// mixed TP/PP/DP shapes with and without MoE — TP-only (flat collapse),
/// TP+DP, TP+PP+DP, and the full TP+PP+DP+MoE mix.
#[must_use]
pub fn parallelism_spec(cfg: &ExperimentConfig, seed: u64) -> ParallelismSweep {
    let mut spec = ParallelismSweep::grid(
        "parallelism",
        cfg.clone(),
        &["GPT2-small", "BERT-large"],
        // (tp, pp, dp, moe): one group (bit-exact flat collapse), DP rings
        // across groups, a pipeline mix, and the full MoE all-to-all mix.
        &[(4, 1, 1, 0), (2, 1, 4, 0), (2, 2, 2, 0), (2, 2, 2, 4)],
        2,
        8 << 20,
    );
    spec.seed = seed;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            scales: vec![8, 16],
            ..ExperimentConfig::default()
        }
    }

    fn tiny_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::grid(
            "tiny",
            tiny_cfg(),
            &[("toy", 1 << 20)],
            &[8, 16],
            &[64],
            &[
                Algorithm::Ring,
                Algorithm::RecursiveDoubling,
                Algorithm::Wrht,
            ],
            &[SubstrateKind::Electrical, SubstrateKind::Optical],
        );
        spec.seed = 7;
        spec
    }

    #[test]
    fn grid_expansion_is_a_cross_product_in_stable_order() {
        // Nested order: model → n → w → algorithm → substrate.
        let spec = tiny_spec();
        assert_eq!(spec.cells.len(), 2 * 3 * 2);
        assert_eq!(spec.cells[0].substrate, SubstrateKind::Electrical);
        assert_eq!(spec.cells[1].substrate, SubstrateKind::Optical);
        assert_eq!(spec.cells[0].n, 8);
        assert_eq!(spec.cells.last().unwrap().n, 16);
    }

    #[test]
    fn config_hash_is_stable_and_distinguishes_cells() {
        let spec = tiny_spec();
        let h0 = config_hash(&spec.cells[0]);
        assert_eq!(h0, config_hash(&spec.cells[0]));
        let mut seen: Vec<u64> = spec.cells.iter().map(config_hash).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), spec.cells.len(), "hash collision in tiny grid");
    }

    #[test]
    fn cells_execute_on_both_substrates_and_seed_is_derived() {
        let spec = tiny_spec();
        let report = run_campaign(&spec, 1, None);
        assert_eq!(report.results.len(), spec.cells.len());
        for r in &report.results {
            assert!(r.error.is_none(), "{:?}: {:?}", r.cell, r.error);
            assert!(r.time_s > 0.0);
            assert_eq!(r.seed, spec.seed ^ r.config_hash);
            match r.cell.substrate {
                SubstrateKind::Optical => assert!(r.peak_wavelengths >= 1),
                SubstrateKind::Electrical => assert_eq!(r.peak_wavelengths, 0),
            }
            if r.cell.algorithm == Algorithm::Wrht {
                assert!(r.wrht_m >= 2);
            }
        }
    }

    #[test]
    fn infeasible_cells_record_errors_instead_of_panicking() {
        let cell = CellConfig {
            substrate: SubstrateKind::Optical,
            algorithm: Algorithm::Wrht,
            model: "toy".into(),
            gradient_bytes: 1 << 20,
            n: 64,
            wavelengths: 2,
            strategy: Strategy::FirstFit,
            group_size: Some(63), // needs 31 wavelengths, only 2 available
            mode: ExecMode::Barrier,
        };
        let r = run_cell(&tiny_cfg(), 0, &cell);
        assert!(r.error.is_some());
        assert_eq!(r.time_s, 0.0);
    }

    #[test]
    fn invalid_substrate_parameters_record_errors_instead_of_panicking() {
        // A zero wavelength budget makes the optical config itself invalid;
        // the cell must fail soft, not tear down the worker.
        for algorithm in [Algorithm::Ring, Algorithm::Wrht] {
            let cell = CellConfig {
                substrate: SubstrateKind::Optical,
                algorithm,
                model: "toy".into(),
                gradient_bytes: 1 << 20,
                n: 8,
                wavelengths: 0,
                strategy: Strategy::FirstFit,
                group_size: None,
                mode: ExecMode::Barrier,
            };
            let r = run_cell(&tiny_cfg(), 0, &cell);
            assert!(r.error.is_some(), "{algorithm:?} must record an error");
        }
    }

    #[test]
    fn csv_escapes_fields_containing_delimiters() {
        let mut r = run_cell(&tiny_cfg(), 0, &tiny_spec().cells[0]);
        r.error = Some("step 3: could not place, only 2 available".into());
        r.cell.model = "net \"v2\", large".into();
        let csv = to_csv(&CampaignReport {
            name: "t".into(),
            results: vec![r],
        });
        let header_cols = csv.lines().next().unwrap().split(',').count();
        assert!(csv.contains("\"step 3: could not place, only 2 available\""));
        assert!(csv.contains("\"net \"\"v2\"\", large\""));
        // Quote-aware split: the quoted commas must not add columns.
        let row = csv.lines().nth(1).unwrap();
        let mut cols = 1;
        let mut in_quotes = false;
        for c in row.chars() {
            match c {
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => cols += 1,
                _ => {}
            }
        }
        assert_eq!(cols, header_cols);
    }

    #[test]
    fn resume_ignores_cells_computed_under_different_physics() {
        let dir = std::env::temp_dir().join(format!("wrht-campaign-phys-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let spec = tiny_spec();
        let first = run_campaign(&spec, 1, Some(&dir));

        // Same cells, different physical constants: nothing may be reused.
        let mut faster = spec.clone();
        faster.base.lambda_bandwidth_bps *= 2.0;
        let recomputed = run_campaign(&faster, 1, Some(&dir));
        for (a, b) in first.results.iter().zip(&recomputed.results) {
            if a.cell.substrate == SubstrateKind::Optical {
                assert!(
                    b.time_s < a.time_s,
                    "{:?}: stale sink cell reused across a physics change",
                    a.cell
                );
            }
        }

        // A different seed must also invalidate the sink (seeds are stamped
        // into results, so reuse would break run determinism).
        let mut reseeded = spec.clone();
        reseeded.seed = spec.seed + 1;
        let r = run_campaign(&reseeded, 1, Some(&dir));
        for res in &r.results {
            assert_eq!(res.seed, reseeded.seed ^ res.config_hash);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ablation_cells_never_leak_into_fig2_rows() {
        // A grid whose Wrht fig2 cell is infeasible (w = 1 starves the
        // tree) plus a feasible fixed-m "ablation" cell at a richer budget:
        // fig2 reassembly must skip the row, not substitute the ablation.
        let base = tiny_cfg();
        let mut spec = CampaignSpec::grid(
            "leak",
            base,
            &[("toy", 1 << 20)],
            &[8],
            &[1],
            &[
                Algorithm::Ring,
                Algorithm::RecursiveDoubling,
                Algorithm::Wrht,
            ],
            &[SubstrateKind::Electrical, SubstrateKind::Optical],
        );
        spec.cells.push(CellConfig {
            substrate: SubstrateKind::Optical,
            algorithm: Algorithm::Wrht,
            model: "toy".into(),
            gradient_bytes: 1 << 20,
            n: 8,
            wavelengths: 64,
            strategy: Strategy::FirstFit,
            group_size: Some(4),
            mode: ExecMode::Barrier,
        });
        let report = run_campaign(&spec, 1, None);
        // The w=1 auto-Wrht grid cell is feasible (m=2,3 need 1 lambda), so
        // instead check the sharper property: fig2 at w=64 finds nothing,
        // because the only w=64 cell is a fixed-m ablation cell.
        let series = fig2_from_campaign(&report.results, &[("toy", 1 << 20)], &[8], 64);
        assert!(series.is_empty(), "ablation cell leaked into fig2");
    }

    #[test]
    fn parallel_run_is_byte_identical_to_serial() {
        let spec = tiny_spec();
        let serial = run_campaign(&spec, 1, None);
        let parallel = run_campaign(&spec, 8, None);
        assert_eq!(to_json(&serial), to_json(&parallel));
    }

    #[test]
    fn sink_resumes_interrupted_campaigns() {
        let dir = std::env::temp_dir().join(format!("wrht-campaign-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let spec = tiny_spec();
        let first = run_campaign(&spec, 2, Some(&dir));
        // All cell files exist; a resumed run must reuse them byte-for-byte.
        let cells = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("cell-")
            })
            .count();
        assert_eq!(cells, spec.cells.len());
        let resumed = run_campaign(&spec, 2, Some(&dir));
        assert_eq!(to_json(&first), to_json(&resumed));
        // Combined tables were written.
        assert!(dir.join("tiny.json").exists());
        assert!(dir.join("tiny.csv").exists());
        let csv = fs::read_to_string(dir.join("tiny.csv")).unwrap();
        assert_eq!(csv.lines().count(), spec.cells.len() + 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fig2_is_reassembled_from_campaign_cells() {
        let spec = tiny_spec();
        let report = run_campaign(&spec, 2, None);
        let series = fig2_from_campaign(&report.results, &[("toy", 1 << 20)], &[8, 16], 64);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].rows.len(), 2);
        for row in &series[0].rows {
            assert!(row.wrht_s > 0.0 && row.wrht_s < row.o_ring_s);
            assert!(row.wrht_m >= 2);
        }
    }

    fn tiny_timeline_spec() -> TimelineSpec {
        let mut spec = TimelineSpec::grid(
            "tiny-train",
            tiny_cfg(),
            &["GoogLeNet"],
            &[4 << 20, 25 << 20],
            &[8, 16],
            &[Algorithm::Wrht, Algorithm::Ring],
            &[ExecMode::Barrier],
            &[SubstrateKind::Electrical, SubstrateKind::Optical],
        );
        spec.seed = 11;
        spec
    }

    #[test]
    fn timeline_grid_expands_the_cross_product() {
        let spec = tiny_timeline_spec();
        assert_eq!(spec.cells.len(), 2 * 2 * 2 * 2);
        assert_eq!(spec.cells[0].substrate, SubstrateKind::Electrical);
        assert_eq!(spec.cells[0].bucket_bytes, 4 << 20);
        assert_eq!(spec.cells.last().unwrap().bucket_bytes, 25 << 20);
        let mut hashes: Vec<u64> = spec.cells.iter().map(timeline_config_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), spec.cells.len(), "hash collision");
    }

    #[test]
    fn timeline_cells_execute_and_derive_seeds() {
        let spec = tiny_timeline_spec();
        let report = run_timeline_campaign(&spec, 2, None);
        assert_eq!(report.results.len(), spec.cells.len());
        for r in &report.results {
            assert!(r.error.is_none(), "{:?}: {:?}", r.cell, r.error);
            assert_eq!(r.seed, spec.seed ^ r.config_hash);
            assert!(r.buckets >= 1);
            assert!(r.overlapped_s >= r.compute_s);
            assert!(r.overlapped_s > 0.0);
            assert!((0.0..=1.0).contains(&r.hidden_fraction));
            assert!(r.steps > 0);
        }
    }

    #[test]
    fn timeline_parallel_run_is_byte_identical_to_serial() {
        let spec = tiny_timeline_spec();
        let serial = run_timeline_campaign(&spec, 1, None);
        let parallel = run_timeline_campaign(&spec, 8, None);
        assert_eq!(to_json(&serial), to_json(&parallel));
    }

    #[test]
    fn timeline_sink_resumes_and_rejects_unknown_models() {
        let dir = std::env::temp_dir().join(format!("wrht-tl-campaign-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut spec = tiny_timeline_spec();
        spec.cells.truncate(4);
        spec.cells.push(TimelineCellConfig {
            substrate: SubstrateKind::Optical,
            algorithm: Algorithm::Wrht,
            model: "NotANet".into(),
            bucket_bytes: 1 << 20,
            n: 8,
            wavelengths: 64,
            strategy: Strategy::FirstFit,
            mode: ExecMode::Barrier,
        });
        let first = run_timeline_campaign(&spec, 2, Some(&dir));
        assert!(first.results.last().unwrap().error.is_some());
        let resumed = run_timeline_campaign(&spec, 2, Some(&dir));
        assert_eq!(to_json(&first), to_json(&resumed));
        assert!(dir.join("tiny-train.json").exists());
        let csv = fs::read_to_string(dir.join("tiny-train.csv")).unwrap();
        assert_eq!(csv.lines().count(), spec.cells.len() + 1);
        // Timeline sink files use their own prefix, so the two campaign
        // kinds can share a directory without key collisions.
        let tcells = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("tcell-")
            })
            .count();
        assert_eq!(tcells, spec.cells.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn train_spec_covers_every_model_on_both_substrates() {
        let models = dnn_models::paper_models();
        let spec = train_spec(&tiny_cfg(), &models, 16, 7, &[ExecMode::Barrier]);
        assert_eq!(spec.cells.len(), models.len() * 2);
        assert!(spec
            .cells
            .iter()
            .all(|c| c.algorithm == Algorithm::Wrht && c.n == 16));
        assert_eq!(spec.seed, 7);
    }

    fn tiny_tenancy_spec() -> TenancySweep {
        let mut spec = TenancySweep::grid(
            "tiny-tenants",
            tiny_cfg(),
            &["GoogLeNet"],
            &[1, 2],
            &SchedPolicy::ALL,
            &[8],
            &[SubstrateKind::Electrical, SubstrateKind::Optical],
            25 << 20,
            1e-3,
        );
        spec.seed = 13;
        spec
    }

    #[test]
    fn tenancy_grid_expands_the_cross_product_with_unique_hashes() {
        let spec = tiny_tenancy_spec();
        assert_eq!(spec.cells.len(), 2 * 3 * 2);
        assert_eq!(spec.cells[0].substrate, SubstrateKind::Electrical);
        assert_eq!(spec.cells[0].jobs, 1);
        assert_eq!(spec.cells.last().unwrap().jobs, 2);
        let mut hashes: Vec<u64> = spec.cells.iter().map(tenancy_config_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), spec.cells.len(), "hash collision");
    }

    #[test]
    fn tenancy_cells_execute_and_single_job_cells_are_unslowed() {
        let spec = tiny_tenancy_spec();
        let report = run_tenancy_campaign(&spec, 2, None);
        assert_eq!(report.results.len(), spec.cells.len());
        for r in &report.results {
            assert!(r.error.is_none(), "{:?}: {:?}", r.cell, r.error);
            assert_eq!(r.seed, spec.seed ^ r.config_hash);
            assert!(r.makespan_s > 0.0);
            assert!(r.transfers > 0);
            assert!(r.fairness_index > 0.0 && r.fairness_index <= 1.0 + 1e-12);
            assert!(r.max_slowdown >= r.mean_slowdown - 1e-12);
            if r.cell.jobs == 1 {
                // A lone tenant is never slowed by the cluster.
                assert!((r.mean_slowdown - 1.0).abs() < 1e-9, "{r:?}");
                assert!((r.fairness_index - 1.0).abs() < 1e-9);
            } else {
                assert!(r.mean_slowdown >= 1.0 - 1e-9);
            }
        }
    }

    #[test]
    fn tenancy_parallel_run_is_byte_identical_to_serial() {
        let spec = tiny_tenancy_spec();
        let serial = run_tenancy_campaign(&spec, 1, None);
        let parallel = run_tenancy_campaign(&spec, 8, None);
        assert_eq!(to_json(&serial), to_json(&parallel));
    }

    #[test]
    fn tenancy_sink_resumes_and_rejects_unknown_models() {
        let dir = std::env::temp_dir().join(format!("wrht-tn-campaign-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut spec = tiny_tenancy_spec();
        spec.cells.truncate(4);
        spec.cells.push(TenancyCellConfig {
            substrate: SubstrateKind::Optical,
            policy: SchedPolicy::Fifo,
            jobs: 2,
            algorithm: Algorithm::Wrht,
            model: "NotANet".into(),
            bucket_bytes: 1 << 20,
            arrival_stagger_s: 0.0,
            n: 8,
            wavelengths: 64,
            strategy: Strategy::FirstFit,
        });
        let first = run_tenancy_campaign(&spec, 2, Some(&dir));
        assert!(first.results.last().unwrap().error.is_some());
        let resumed = run_tenancy_campaign(&spec, 2, Some(&dir));
        assert_eq!(to_json(&first), to_json(&resumed));
        assert!(dir.join("tiny-tenants.json").exists());
        let csv = fs::read_to_string(dir.join("tiny-tenants.csv")).unwrap();
        assert_eq!(csv.lines().count(), spec.cells.len() + 1);
        // Tenancy sink files use their own prefix, so all three campaign
        // kinds can share a directory without key collisions.
        let jcells = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("jcell-")
            })
            .count();
        assert_eq!(jcells, spec.cells.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tenants_spec_covers_every_policy_on_both_substrates() {
        let models = dnn_models::paper_models();
        let spec = tenants_spec(&tiny_cfg(), &models, 16, 7);
        assert_eq!(spec.cells.len(), 3 * 3 * 2);
        assert!(spec.cells.iter().all(|c| c.n == 16));
        for policy in SchedPolicy::ALL {
            assert!(spec.cells.iter().any(|c| c.policy == policy));
        }
        assert_eq!(spec.seed, 7);
    }

    fn tiny_fault_spec() -> FaultSweep {
        let scenarios = [
            FaultScenario::None,
            FaultScenario::WavelengthDown {
                lane: 0,
                at_frac: 0.25,
            },
            FaultScenario::LinkDegrade {
                link: 0,
                factor: 0.25,
                at_frac: 0.25,
            },
            FaultScenario::NodeDown {
                node: 4,
                at_frac: 0.25,
            },
        ];
        let mut spec = FaultSweep::grid(
            "tiny-faults",
            tiny_cfg(),
            &["GoogLeNet"],
            &[2],
            &scenarios,
            &[RecoveryPolicy::Replan, RecoveryPolicy::FailJob],
            SchedPolicy::Fifo,
            &[8],
            &[SubstrateKind::Electrical, SubstrateKind::Optical],
            25 << 20,
            1e-3,
        );
        spec.seed = 17;
        spec
    }

    #[test]
    fn fault_grid_expands_the_cross_product_with_unique_hashes() {
        let spec = tiny_fault_spec();
        assert_eq!(spec.cells.len(), 4 * 2 * 2);
        assert_eq!(spec.cells[0].substrate, SubstrateKind::Electrical);
        assert_eq!(spec.cells[0].scenario, FaultScenario::None);
        let mut hashes: Vec<u64> = spec.cells.iter().map(fault_config_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), spec.cells.len(), "hash collision");
    }

    #[test]
    fn fault_cells_execute_and_empty_scripts_have_zero_blast_radius() {
        let spec = tiny_fault_spec();
        let report = run_fault_campaign(&spec, 2, None);
        assert_eq!(report.results.len(), spec.cells.len());
        for r in &report.results {
            assert!(r.error.is_none(), "{:?}: {:?}", r.cell, r.error);
            assert_eq!(r.seed, spec.seed ^ r.config_hash);
            assert!(r.clean_makespan_s > 0.0);
            assert!(r.transfers > 0);
            if r.cell.scenario == FaultScenario::None {
                // The no-fault cell pins the bit-exactness contract: the
                // faulted entry point with an empty script must reproduce
                // the clean run exactly.
                assert_eq!(r.makespan_s, r.clean_makespan_s, "{r:?}");
                assert_eq!(r.degraded_ratio, 1.0);
                assert_eq!(
                    (r.delayed, r.aborted, r.failed, r.failed_jobs),
                    (0, 0, 0, 0)
                );
                assert_eq!(r.recovery_s, 0.0);
                assert_eq!(r.first_impact_s, None);
            }
        }
        // The campaign must exercise at least one cell with real impact on
        // each substrate (wavelength loss optically, node loss electrically).
        for kind in [SubstrateKind::Optical, SubstrateKind::Electrical] {
            assert!(
                report
                    .results
                    .iter()
                    .any(|r| r.cell.substrate == kind && (r.aborted > 0 || r.failed > 0)),
                "no impacted cell on {kind:?}"
            );
        }
    }

    #[test]
    fn fault_parallel_run_is_byte_identical_to_serial() {
        let spec = tiny_fault_spec();
        let serial = run_fault_campaign(&spec, 1, None);
        let parallel = run_fault_campaign(&spec, 8, None);
        assert_eq!(to_json(&serial), to_json(&parallel));
    }

    #[test]
    fn fault_sink_resumes_and_rejects_unknown_models() {
        let dir = std::env::temp_dir().join(format!("wrht-ft-campaign-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut spec = tiny_fault_spec();
        spec.cells.truncate(4);
        spec.cells.push(FaultCellConfig {
            substrate: SubstrateKind::Optical,
            policy: SchedPolicy::Fifo,
            fault_policy: RecoveryPolicy::Replan,
            scenario: FaultScenario::None,
            jobs: 2,
            algorithm: Algorithm::Wrht,
            model: "NotANet".into(),
            bucket_bytes: 1 << 20,
            arrival_stagger_s: 0.0,
            n: 8,
            wavelengths: 64,
            strategy: Strategy::FirstFit,
        });
        let first = run_fault_campaign(&spec, 2, Some(&dir));
        assert!(first.results.last().unwrap().error.is_some());
        let resumed = run_fault_campaign(&spec, 2, Some(&dir));
        assert_eq!(to_json(&first), to_json(&resumed));
        assert!(dir.join("tiny-faults.json").exists());
        let csv = fs::read_to_string(dir.join("tiny-faults.csv")).unwrap();
        assert_eq!(csv.lines().count(), spec.cells.len() + 1);
        // Fault sink files use their own prefix, so all four campaign kinds
        // can share a directory without key collisions.
        let fcells = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("fcell-")
            })
            .count();
        assert_eq!(fcells, spec.cells.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faults_spec_covers_all_scenarios_under_both_policies() {
        let models = dnn_models::paper_models();
        let spec = faults_spec(&tiny_cfg(), &models, 16, 7);
        // 3 scenarios × 2 recovery policies × 2 substrates.
        assert_eq!(spec.cells.len(), 3 * 2 * 2);
        assert!(spec.cells.iter().all(|c| c.n == 16 && c.jobs == 2));
        assert!(spec
            .cells
            .iter()
            .any(|c| matches!(c.scenario, FaultScenario::WavelengthDown { .. })));
        assert!(spec
            .cells
            .iter()
            .any(|c| matches!(c.scenario, FaultScenario::LinkDegrade { .. })));
        assert!(spec
            .cells
            .iter()
            .any(|c| matches!(c.scenario, FaultScenario::NodeDown { node: 8, .. })));
        assert_eq!(spec.seed, 7);
    }

    fn tiny_stream_spec() -> StreamSweep {
        let mut spec = StreamSweep::grid(
            "tiny-serve",
            tiny_cfg(),
            &["GoogLeNet"],
            &[2000.0],
            &SchedPolicy::ALL,
            &[
                Admission::Immediate,
                Admission::QueueDepth { limit: 2 },
                Admission::Reject { limit: 4 },
            ],
            &[8],
            &[SubstrateKind::Electrical, SubstrateKind::Optical],
            25 << 20,
            6,
            20e-3,
        );
        spec.seed = 19;
        spec
    }

    #[test]
    fn stream_grid_expands_the_cross_product_with_unique_hashes() {
        let spec = tiny_stream_spec();
        assert_eq!(spec.cells.len(), 3 * 3 * 2);
        assert_eq!(spec.cells[0].substrate, SubstrateKind::Electrical);
        assert_eq!(spec.cells[0].admission, Admission::Immediate);
        let mut hashes: Vec<u64> = spec.cells.iter().map(stream_config_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), spec.cells.len(), "hash collision");
    }

    #[test]
    fn stream_cells_execute_and_account_for_every_arrival() {
        let spec = tiny_stream_spec();
        let report = run_stream_campaign(&spec, 2, None);
        assert_eq!(report.results.len(), spec.cells.len());
        for r in &report.results {
            assert!(r.error.is_none(), "{:?}: {:?}", r.cell, r.error);
            assert_eq!(r.seed, spec.seed ^ r.config_hash);
            assert_eq!(r.arrivals, r.cell.arrivals);
            assert_eq!(r.admitted + r.rejected, r.arrivals);
            assert_eq!(r.completed, r.admitted);
            assert!(r.makespan_s > 0.0);
            assert!(r.events > 0);
            assert!(r.windows >= 1);
            assert!(r.fairness_index > 0.0 && r.fairness_index <= 1.0 + 1e-12);
            assert!(r.mean_slowdown >= 1.0 - 1e-9);
            match r.cell.admission {
                Admission::Reject { .. } => {}
                _ => assert_eq!(r.rejected, 0, "{:?}", r.cell),
            }
        }
        // The overload rate must actually shed load somewhere under Reject.
        assert!(
            report
                .results
                .iter()
                .any(|r| matches!(r.cell.admission, Admission::Reject { .. }) && r.rejected > 0),
            "no Reject cell shed load at the overload rate"
        );
    }

    #[test]
    fn stream_parallel_run_is_byte_identical_to_serial() {
        let spec = tiny_stream_spec();
        let serial = run_stream_campaign(&spec, 1, None);
        let parallel = run_stream_campaign(&spec, 8, None);
        assert_eq!(to_json(&serial), to_json(&parallel));
    }

    #[test]
    fn stream_sink_resumes_and_rejects_unknown_models() {
        let dir = std::env::temp_dir().join(format!("wrht-st-campaign-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut spec = tiny_stream_spec();
        spec.cells.truncate(4);
        spec.cells.push(StreamCellConfig {
            substrate: SubstrateKind::Optical,
            policy: SchedPolicy::Fifo,
            admission: Admission::Immediate,
            rate_hz: 100.0,
            arrivals: 4,
            algorithm: Algorithm::Wrht,
            model: "NotANet".into(),
            bucket_bytes: 1 << 20,
            window_s: 20e-3,
            n: 8,
            wavelengths: 64,
            strategy: Strategy::FirstFit,
        });
        let first = run_stream_campaign(&spec, 2, Some(&dir));
        assert!(first.results.last().unwrap().error.is_some());
        let resumed = run_stream_campaign(&spec, 2, Some(&dir));
        assert_eq!(to_json(&first), to_json(&resumed));
        assert!(dir.join("tiny-serve.json").exists());
        let csv = fs::read_to_string(dir.join("tiny-serve.csv")).unwrap();
        assert_eq!(csv.lines().count(), spec.cells.len() + 1);
        // Stream sink files use their own prefix, so all five campaign
        // kinds can share a directory without key collisions.
        let scells = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("scell-")
            })
            .count();
        assert_eq!(scells, spec.cells.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_spec_covers_rates_policies_and_admissions() {
        let models = dnn_models::paper_models();
        let spec = serve_spec(&tiny_cfg(), &models, 16, 7);
        // 2 rates × 3 policies × 3 admissions × 2 substrates.
        assert_eq!(spec.cells.len(), 2 * 3 * 3 * 2);
        assert!(spec.cells.iter().all(|c| c.n == 16));
        for policy in SchedPolicy::ALL {
            assert!(spec.cells.iter().any(|c| c.policy == policy));
        }
        assert!(spec
            .cells
            .iter()
            .any(|c| matches!(c.admission, Admission::QueueDepth { .. })));
        assert!(spec
            .cells
            .iter()
            .any(|c| matches!(c.admission, Admission::Reject { .. })));
        assert_eq!(spec.seed, 7);
    }

    fn tiny_parallelism_spec() -> ParallelismSweep {
        let mut spec = ParallelismSweep::grid(
            "tiny-par",
            tiny_cfg(),
            &["GPT2-small"],
            &[(2, 1, 1, 0), (2, 1, 2, 0), (2, 2, 2, 4)],
            1,
            1 << 20,
        );
        spec.seed = 7;
        spec
    }

    #[test]
    fn parallelism_cells_execute_on_the_composed_substrate() {
        let spec = tiny_parallelism_spec();
        let report = run_parallelism_campaign(&spec, 1, None);
        assert_eq!(report.results.len(), 3);
        for r in &report.results {
            assert!(r.error.is_none(), "{:?}: {:?}", r.cell, r.error);
            assert!(r.makespan_s > 0.0);
            assert_eq!(r.nodes, r.cell.tp * r.cell.pp * r.cell.dp);
            assert_eq!(r.transfers, r.intra_transfers + r.inter_transfers);
            assert_eq!(r.seed, spec.seed ^ r.config_hash);
        }
        // One group: every transfer is intra and runs on the flat ring.
        assert_eq!(report.results[0].inter_transfers, 0);
        // DP across groups: inter traffic appears.
        assert!(report.results[1].inter_transfers > 0);
        // The MoE mix exercises both fabrics and both solver counters.
        let moe = &report.results[2];
        assert!(moe.intra_transfers > 0 && moe.inter_transfers > 0);
        assert!(moe.peak_wavelength >= 1);
        assert!(moe.rate_recomputations > 0);
    }

    #[test]
    fn parallelism_campaign_is_parallel_deterministic_and_resumable() {
        let spec = tiny_parallelism_spec();
        let serial = run_parallelism_campaign(&spec, 1, None);
        let parallel = run_parallelism_campaign(&spec, 8, None);
        assert_eq!(to_json(&serial), to_json(&parallel));

        let dir = std::env::temp_dir().join(format!("wrht-par-campaign-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let first = run_parallelism_campaign(&spec, 2, Some(&dir));
        let resumed = run_parallelism_campaign(&spec, 2, Some(&dir));
        assert_eq!(to_json(&first), to_json(&resumed));
        assert!(dir.join("tiny-par.json").exists());
        let csv = fs::read_to_string(dir.join("tiny-par.csv")).unwrap();
        assert_eq!(csv.lines().count(), spec.cells.len() + 1);
        let pcells = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("pcell-")
            })
            .count();
        assert_eq!(pcells, spec.cells.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallelism_rejects_unknown_models_and_bad_shapes() {
        let mut cell = tiny_parallelism_spec().cells[0].clone();
        cell.model = "NotANet".into();
        let r = run_parallelism_cell(&tiny_cfg(), 7, &cell);
        assert!(r.error.as_deref().unwrap().contains("unknown model"));
        let mut bad = tiny_parallelism_spec().cells[0].clone();
        bad.tp = 1;
        let r = run_parallelism_cell(&tiny_cfg(), 7, &bad);
        assert!(r.error.is_some());
    }

    #[test]
    fn parallelism_spec_covers_transformers_and_the_moe_mix() {
        let spec = parallelism_spec(&tiny_cfg(), 7);
        assert_eq!(spec.cells.len(), 2 * 4);
        assert!(spec.cells.iter().any(|c| c.model == "BERT-large"));
        assert!(spec.cells.iter().any(|c| c.moe_experts > 0));
        assert!(spec.cells.iter().any(|c| c.pp == 1 && c.dp == 1));
        assert_eq!(spec.seed, 7);
    }

    #[test]
    fn fault_scenarios_resolve_against_the_clean_makespan() {
        let s = FaultScenario::WavelengthDown {
            lane: 3,
            at_frac: 0.5,
        };
        let script = s.script(8.0);
        assert_eq!(script.len(), 1);
        assert_eq!(script.events()[0].at_s, 4.0);
        assert!(FaultScenario::None.script(8.0).is_empty());
        let flap = FaultScenario::LinkFlap {
            link: 1,
            at_frac: 0.25,
            down_frac: 0.0,
        }
        .script(8.0);
        // A zero-duration flap still validates: the outage is floored.
        assert!(matches!(
            flap.events()[0].kind,
            FaultKind::LinkFlap { down_s, .. } if down_s > 0.0
        ));
        assert_eq!(
            RecoveryPolicy::RetryAfter { backoff_s: 0.5 }.label(),
            "retry-after:0.5"
        );
    }

    #[test]
    fn sweep_spec_covers_fig2_and_the_ablation_axes() {
        let models = vec![dnn_models::googlenet()];
        let spec = sweep_spec(&tiny_cfg(), &models, 1);
        // Fig2 grid: 1 model × 2 scales × 5 algorithms × 2 substrates.
        assert!(spec.cells.len() > 2 * 5 * 2);
        assert!(spec
            .cells
            .iter()
            .any(|c| c.group_size.is_some() && c.algorithm == Algorithm::Wrht));
        assert!(spec.cells.iter().any(|c| c.wavelengths == 1));
        assert!(spec
            .cells
            .iter()
            .any(|c| c.strategy == Strategy::BestFit && c.algorithm == Algorithm::Wrht));
    }
}
