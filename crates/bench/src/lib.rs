//! # wrht-bench — the experiment harness
//!
//! Every table and figure of the paper's evaluation is regenerated from
//! here; the Criterion benches and the `repro-figures` binary are thin
//! wrappers over these functions.
//!
//! * [`config::ExperimentConfig`] — the physical constants of both
//!   platforms (documented substitutions for the paper's unstated values);
//! * [`fig2`] — Figure 2: E-Ring / RD / O-Ring / WRHT across the four DNN
//!   models and 128–1024 nodes, plus the headline reduction percentages;
//! * [`ablations`] — group-size, wavelength-count, RWA-strategy and
//!   overlap extension studies;
//! * [`campaign`] — the declarative, parallel campaign-sweep engine over
//!   the unified [`wrht_core::substrate::Substrate`] API, including the
//!   timeline experiment axis (model × bucket size × algorithm ×
//!   substrate);
//! * [`timeline`] — simulator-backed training iterations of the zoo
//!   models (the `repro-figures train` workload);
//! * [`report`] — table/JSON rendering.
//!
//! ```
//! use wrht_bench::{fig2_row, ExperimentConfig};
//!
//! let cfg = ExperimentConfig::small();
//! let row = fig2_row(&cfg, 32, dnn_models::googlenet().gradient_bytes());
//! assert!(row.wrht_s > 0.0 && row.wrht_s.is_finite());
//! assert!(row.wrht_s < row.o_ring_s, "Wrht beats O-Ring in every cell");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod campaign;
pub mod config;
pub mod contention;
pub mod fig2;
pub mod perf;
pub mod report;
pub mod timeline;

pub use campaign::{
    parallelism_spec, run_campaign, run_parallelism_campaign, run_tenancy_campaign,
    run_timeline_campaign, sweep_spec, tenants_spec, train_spec, Algorithm, CampaignReport,
    CampaignSpec, ParallelismCampaignReport, ParallelismSweep, TenancyCampaignReport, TenancySweep,
    TimelineReport, TimelineSpec,
};
pub use config::{ExperimentConfig, SubstrateKind};
pub use fig2::{fig2_row, fig2_series, headline, Fig2Row, Fig2Series, Headline};
pub use timeline::{model_timeline, timeline_table, TimelineRow};
