//! Experiment-wide physical constants.
//!
//! The poster does not publish its simulator constants; these defaults are
//! the documented substitution (DESIGN.md §3/§6):
//!
//! * **Optical** — TeraRack-flavoured: 64 wavelengths × 25 Gb/s, 50 ns
//!   per-message SerDes + E/O + O/E overhead, 5 ns/hop propagation.
//! * **Electrical** — a switched cluster with 100 Gb/s full-duplex host
//!   ports, 500 ns per-link latency and a 5 µs per-step protocol/launch
//!   overhead (NIC + MPI-level costs SimGrid platforms typically encode).

use optical_sim::OpticalConfig;
use serde::{Deserialize, Serialize};

/// All constants of one experiment campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Wavelengths per waveguide.
    pub wavelengths: usize,
    /// Bandwidth per wavelength, bytes/s.
    pub lambda_bandwidth_bps: f64,
    /// Optical per-message overhead, seconds.
    pub optical_overhead_s: f64,
    /// Optical per-hop propagation, seconds.
    pub optical_hop_s: f64,
    /// Electrical host-port bandwidth, bytes/s.
    pub electrical_port_bps: f64,
    /// Electrical per-link latency, seconds.
    pub electrical_latency_s: f64,
    /// Electrical per-step protocol overhead, seconds.
    pub electrical_step_overhead_s: f64,
    /// Node counts swept in Figure 2.
    pub scales: Vec<usize>,
    /// Bytes per gradient element (fp32).
    pub bytes_per_elem: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            wavelengths: 64,
            lambda_bandwidth_bps: 25.0e9 / 8.0,
            optical_overhead_s: 50e-9,
            optical_hop_s: 5e-9,
            electrical_port_bps: 100.0e9 / 8.0,
            electrical_latency_s: 500e-9,
            electrical_step_overhead_s: 5e-6,
            scales: vec![128, 256, 512, 1024],
            bytes_per_elem: 4,
        }
    }
}

impl ExperimentConfig {
    /// A reduced-scale configuration for fast tests and CI.
    #[must_use]
    pub fn small() -> Self {
        Self {
            scales: vec![16, 32, 64],
            ..Self::default()
        }
    }

    /// Optical ring configuration for `n` nodes.
    #[must_use]
    pub fn optical(&self, n: usize) -> OpticalConfig {
        OpticalConfig::new(n, self.wavelengths)
            .with_lambda_bandwidth(self.lambda_bandwidth_bps)
            .with_message_overhead(self.optical_overhead_s)
            .with_hop_propagation(self.optical_hop_s)
    }

    /// Electrical switched-cluster network for `n` hosts.
    #[must_use]
    pub fn electrical(&self, n: usize) -> electrical_sim::Network {
        electrical_sim::topology::star_cluster(
            n,
            self.electrical_port_bps,
            self.electrical_latency_s,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_terarack_like() {
        let c = ExperimentConfig::default();
        assert_eq!(c.wavelengths, 64);
        assert_eq!(c.scales, vec![128, 256, 512, 1024]);
        let opt = c.optical(128);
        assert_eq!(opt.nodes, 128);
        assert_eq!(opt.wavelengths, 64);
        let net = c.electrical(16);
        assert_eq!(net.hosts(), 16);
    }

    #[test]
    fn small_config_shrinks_scales_only() {
        let c = ExperimentConfig::small();
        assert_eq!(c.wavelengths, ExperimentConfig::default().wavelengths);
        assert!(c.scales.iter().all(|&n| n <= 64));
    }
}
