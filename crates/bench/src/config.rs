//! Experiment-wide physical constants.
//!
//! The poster does not publish its simulator constants; these defaults are
//! the documented substitution (DESIGN.md §3/§6):
//!
//! * **Optical** — TeraRack-flavoured: 64 wavelengths × 25 Gb/s, 50 ns
//!   per-message SerDes + E/O + O/E overhead, 5 ns/hop propagation.
//! * **Electrical** — a switched cluster with 100 Gb/s full-duplex host
//!   ports, 500 ns per-link latency and a 5 µs per-step protocol/launch
//!   overhead (NIC + MPI-level costs SimGrid platforms typically encode).

use optical_sim::{OpticalConfig, Strategy};
use serde::{Deserialize, Serialize};
use wrht_core::hierarchy::{ComposedSubstrate, FabricSpec, HierSpec};
use wrht_core::substrate::{ElectricalSubstrate, OpticalSubstrate, Substrate};

/// Which simulated fabric executes a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubstrateKind {
    /// The WDM optical ring (stepped model, RWA per step).
    Optical,
    /// The electrical switched cluster (max-min fluid model).
    Electrical,
}

impl SubstrateKind {
    /// Stable lowercase label used in reports, hashes and CSV rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SubstrateKind::Optical => "optical",
            SubstrateKind::Electrical => "electrical",
        }
    }
}

/// All constants of one experiment campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Wavelengths per waveguide.
    pub wavelengths: usize,
    /// Bandwidth per wavelength, bytes/s.
    pub lambda_bandwidth_bps: f64,
    /// Optical per-message overhead, seconds.
    pub optical_overhead_s: f64,
    /// Optical per-hop propagation, seconds.
    pub optical_hop_s: f64,
    /// Electrical host-port bandwidth, bytes/s.
    pub electrical_port_bps: f64,
    /// Electrical per-link latency, seconds.
    pub electrical_latency_s: f64,
    /// Electrical per-step protocol overhead, seconds.
    pub electrical_step_overhead_s: f64,
    /// Node counts swept in Figure 2.
    pub scales: Vec<usize>,
    /// Bytes per gradient element (fp32).
    pub bytes_per_elem: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            wavelengths: 64,
            lambda_bandwidth_bps: 25.0e9 / 8.0,
            optical_overhead_s: 50e-9,
            optical_hop_s: 5e-9,
            electrical_port_bps: 100.0e9 / 8.0,
            electrical_latency_s: 500e-9,
            electrical_step_overhead_s: 5e-6,
            scales: vec![128, 256, 512, 1024],
            bytes_per_elem: 4,
        }
    }
}

impl ExperimentConfig {
    /// A reduced-scale configuration for fast tests and CI.
    #[must_use]
    pub fn small() -> Self {
        Self {
            scales: vec![16, 32, 64],
            ..Self::default()
        }
    }

    /// Optical ring configuration for `n` nodes.
    #[must_use]
    pub fn optical(&self, n: usize) -> OpticalConfig {
        OpticalConfig::new(n, self.wavelengths)
            .with_lambda_bandwidth(self.lambda_bandwidth_bps)
            .with_message_overhead(self.optical_overhead_s)
            .with_hop_propagation(self.optical_hop_s)
    }

    /// Electrical switched-cluster network for `n` hosts.
    #[must_use]
    pub fn electrical(&self, n: usize) -> electrical_sim::Network {
        electrical_sim::topology::star_cluster(
            n,
            self.electrical_port_bps,
            self.electrical_latency_s,
        )
    }

    /// Build an execution [`Substrate`] of the given kind for `n` nodes,
    /// using this campaign's physical constants and RWA `strategy`
    /// (ignored by the electrical fabric). Fails instead of panicking on
    /// invalid parameters (e.g. `n < 2` or a zero wavelength budget), so
    /// campaign cells can record the error.
    pub fn try_substrate(
        &self,
        kind: SubstrateKind,
        n: usize,
        strategy: Strategy,
    ) -> wrht_core::error::Result<Box<dyn Substrate>> {
        Ok(match kind {
            SubstrateKind::Optical => {
                Box::new(OpticalSubstrate::with_strategy(self.optical(n), strategy)?)
            }
            SubstrateKind::Electrical => Box::new(ElectricalSubstrate::new(
                self.electrical(n),
                self.electrical_step_overhead_s,
            )),
        })
    }

    /// Build the canonical hierarchical substrate for `spec`: one optical
    /// ring per group (this campaign's optical constants at
    /// [`HierSpec::group_size`] nodes, RWA `strategy`) stitched by the
    /// electrical switched cluster over all [`HierSpec::nodes`] hosts.
    ///
    /// # Errors
    /// Propagates invalid hierarchy shapes and optical configurations so
    /// campaign cells can record the failure.
    pub fn try_composed(
        &self,
        spec: HierSpec,
        strategy: Strategy,
    ) -> wrht_core::error::Result<ComposedSubstrate> {
        ComposedSubstrate::new(
            spec,
            FabricSpec::optical_with(self.optical(spec.group_size), strategy),
            FabricSpec::electrical(
                self.electrical(spec.nodes()),
                self.electrical_step_overhead_s,
            ),
        )
    }

    /// Infallible [`ExperimentConfig::try_substrate`] for the known-valid
    /// experiment grids (panics on invalid parameters).
    #[must_use]
    pub fn substrate(
        &self,
        kind: SubstrateKind,
        n: usize,
        strategy: Strategy,
    ) -> Box<dyn Substrate> {
        self.try_substrate(kind, n, strategy)
            .expect("experiment substrate configs are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_terarack_like() {
        let c = ExperimentConfig::default();
        assert_eq!(c.wavelengths, 64);
        assert_eq!(c.scales, vec![128, 256, 512, 1024]);
        let opt = c.optical(128);
        assert_eq!(opt.nodes, 128);
        assert_eq!(opt.wavelengths, 64);
        let net = c.electrical(16);
        assert_eq!(net.hosts(), 16);
    }

    #[test]
    fn small_config_shrinks_scales_only() {
        let c = ExperimentConfig::small();
        assert_eq!(c.wavelengths, ExperimentConfig::default().wavelengths);
        assert!(c.scales.iter().all(|&n| n <= 64));
    }

    #[test]
    fn composed_factory_spans_the_hierarchy() {
        let c = ExperimentConfig::small();
        let spec = HierSpec::new(4, 4).unwrap();
        let sub = c.try_composed(spec, Strategy::FirstFit).unwrap();
        assert_eq!(wrht_core::substrate::Substrate::nodes(&sub), 16);
        assert_eq!(sub.intra().nodes(), 4);
        assert_eq!(sub.inter().nodes(), 16);
    }

    #[test]
    fn substrate_factory_builds_both_fabrics() {
        let c = ExperimentConfig::small();
        let optical = c.substrate(SubstrateKind::Optical, 16, Strategy::FirstFit);
        let electrical = c.substrate(SubstrateKind::Electrical, 16, Strategy::FirstFit);
        assert_eq!(optical.nodes(), 16);
        assert_eq!(electrical.nodes(), 16);
        assert_eq!(optical.name(), SubstrateKind::Optical.label());
        assert_eq!(electrical.name(), SubstrateKind::Electrical.label());
    }
}
