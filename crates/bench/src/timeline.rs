//! Simulator-backed training timelines for the zoo models.
//!
//! [`crate::ablations::overlap_study`] prices every bucket with the
//! *analytic* Wrht cost model; this module instead drives the same
//! bucket-overlap iteration through an actual
//! [`wrht_core::substrate::Substrate`]: each bucket's all-reduce is lowered
//! to the substrate IR and executed on the optical ring or the electrical
//! cluster, producing an [`IterationTimeline`] with per-bucket
//! ready/start/finish instants and the substrate's own step timings. The
//! differential suite (`tests/timeline_differential.rs`) pins the two
//! models against each other wherever their cost models coincide.

use crate::ablations::BACKWARD_S_PER_PARAM;
use crate::campaign::Algorithm;
use crate::config::{ExperimentConfig, SubstrateKind};
use collectives::halving_doubling::halving_doubling;
use collectives::rd::recursive_doubling;
use collectives::ring::ring_allreduce;
use collectives::tree::binomial_tree;
use dnn_models::bucket::bucketize;
use dnn_models::training::{bucket_ready_times, IterationModel};
use dnn_models::Model;
use optical_sim::sim::StepSchedule;
use optical_sim::Strategy;
use serde::{Deserialize, Serialize};
use wrht_core::baselines::lower_collective_to_optical;
use wrht_core::dag::ExecMode;
use wrht_core::lower::to_optical_schedule;
use wrht_core::timeline::{
    execute_timeline, execute_timeline_pipelined, IterationTimeline, TimelineBucket,
};
use wrht_core::{choose_group_size, WrhtParams};

/// Compute-side model for one zoo model: backward time proportional to the
/// parameter count ([`BACKWARD_S_PER_PARAM`]), forward at half backward.
#[must_use]
pub fn iteration_model(model: &Model) -> IterationModel {
    let params = model.params() as f64;
    IterationModel {
        backward_s: params * BACKWARD_S_PER_PARAM,
        forward_s: params * BACKWARD_S_PER_PARAM * 0.5,
    }
}

/// Lower one all-reduce of `bytes` over `n` nodes to the substrate IR.
///
/// Wrht plans with the optimizer (auto group size) against the optical
/// cost model at the given wavelength budget — also when the schedule will
/// execute electrically, mirroring the campaign's Wrht cells. Returns the
/// schedule plus the chosen group size (0 for the classic algorithms).
pub fn lower_allreduce(
    cfg: &ExperimentConfig,
    algorithm: Algorithm,
    n: usize,
    bytes: u64,
) -> wrht_core::error::Result<(StepSchedule, usize)> {
    if let Algorithm::Wrht = algorithm {
        let (m, plan, _) = choose_group_size(
            &WrhtParams::auto(n, cfg.wavelengths),
            &cfg.optical(n),
            bytes,
        )?;
        return Ok((to_optical_schedule(&plan, bytes), m));
    }
    let elems = (bytes as usize).div_ceil(cfg.bytes_per_elem);
    let schedule = match algorithm {
        Algorithm::Ring => ring_allreduce(n, elems),
        Algorithm::RecursiveDoubling => recursive_doubling(n, elems),
        Algorithm::HalvingDoubling => halving_doubling(n, elems),
        Algorithm::Tree => binomial_tree(n, elems),
        Algorithm::Wrht => unreachable!("handled above"),
    };
    Ok((
        lower_collective_to_optical(&schedule, cfg.bytes_per_elem, 1),
        0,
    ))
}

/// Buckets of a model as timeline inputs: payloads from
/// [`bucketize`], ready times from [`bucket_ready_times`], labelled with
/// the earliest fused layer.
#[must_use]
pub fn timeline_buckets(model: &Model, bucket_bytes: u64) -> Vec<TimelineBucket> {
    let buckets = bucketize(&model.layers, bucket_bytes);
    let ready = bucket_ready_times(&model.layers, &buckets, iteration_model(model));
    buckets
        .iter()
        .zip(&ready)
        .map(|(b, &ready_s)| {
            TimelineBucket::new(b.bytes, ready_s)
                .with_label(b.layers.last().cloned().unwrap_or_default())
        })
        .collect()
}

/// Execute one data-parallel training iteration of `model` on the given
/// substrate: the first workload where the optimizer, bucketing and the
/// simulators compose end to end.
///
/// `mode` selects the executor: [`ExecMode::Barrier`] serializes bucket
/// all-reduces on the network (one collective at a time), while
/// [`ExecMode::Pipelined`] chains the bucket schedules into one
/// dependency-aware DAG so consecutive buckets overlap on the wire.
#[allow(clippy::too_many_arguments)] // one axis per campaign dimension
pub fn model_timeline(
    cfg: &ExperimentConfig,
    model: &Model,
    n: usize,
    bucket_bytes: u64,
    algorithm: Algorithm,
    kind: SubstrateKind,
    strategy: Strategy,
    mode: ExecMode,
) -> wrht_core::error::Result<IterationTimeline> {
    let buckets = timeline_buckets(model, bucket_bytes);
    let im = iteration_model(model);
    let mut substrate = cfg.try_substrate(kind, n, strategy)?;
    let compute_s = im.forward_s + im.backward_s;
    let lower =
        |bytes: u64| lower_allreduce(cfg, algorithm, n, bytes).map(|(schedule, _)| schedule);
    match mode {
        ExecMode::Barrier => execute_timeline(substrate.as_mut(), &buckets, compute_s, lower),
        ExecMode::Pipelined => {
            execute_timeline_pipelined(substrate.as_mut(), &buckets, compute_s, lower)
        }
    }
}

/// One row of the `repro-figures train` table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineRow {
    /// Model name.
    pub model: String,
    /// Substrate label.
    pub substrate: String,
    /// Number of gradient buckets.
    pub buckets: usize,
    /// End of compute (forward + backward), seconds.
    pub compute_s: f64,
    /// Overlapped iteration time, seconds.
    pub overlapped_s: f64,
    /// Sequential (fused post-backward all-reduce) iteration time, seconds.
    pub sequential_s: f64,
    /// Total communication time over all buckets, seconds.
    pub total_comm_s: f64,
    /// Communication exposed past the end of backward, seconds.
    pub exposed_comm_s: f64,
    /// Fraction of communication hidden behind compute.
    pub hidden_fraction: f64,
    /// Total substrate steps over all buckets.
    pub steps: usize,
}

impl TimelineRow {
    /// Condense a full timeline into a table row.
    #[must_use]
    pub fn from_timeline(model: &str, t: &IterationTimeline) -> Self {
        Self {
            model: model.to_string(),
            substrate: t.substrate.clone(),
            buckets: t.bucket_count(),
            compute_s: t.compute_s,
            overlapped_s: t.overlapped_s,
            sequential_s: t.sequential_s,
            total_comm_s: t.total_comm_s,
            exposed_comm_s: t.exposed_comm_s,
            hidden_fraction: t.hidden_fraction,
            steps: t.total_steps(),
        }
    }
}

/// The `train` table: every model's Wrht-backed iteration on **both**
/// substrates at `n` nodes. Infeasible cells are skipped.
#[must_use]
pub fn timeline_table(
    cfg: &ExperimentConfig,
    models: &[Model],
    n: usize,
    bucket_bytes: u64,
) -> Vec<TimelineRow> {
    let mut rows = Vec::new();
    for model in models {
        for kind in [SubstrateKind::Electrical, SubstrateKind::Optical] {
            if let Ok(t) = model_timeline(
                cfg,
                model,
                n,
                bucket_bytes,
                Algorithm::Wrht,
                kind,
                Strategy::FirstFit,
                ExecMode::Barrier,
            ) {
                rows.push(TimelineRow::from_timeline(&model.name, &t));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            scales: vec![16],
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn wrht_timeline_runs_on_both_substrates() {
        let cfg = tiny_cfg();
        let model = dnn_models::googlenet();
        for kind in [SubstrateKind::Optical, SubstrateKind::Electrical] {
            let t = model_timeline(
                &cfg,
                &model,
                16,
                4 << 20,
                Algorithm::Wrht,
                kind,
                Strategy::FirstFit,
                ExecMode::Barrier,
            )
            .unwrap();
            assert!(t.bucket_count() > 1);
            assert!(t.overlapped_s >= t.compute_s);
            assert!(t.total_comm_s > 0.0);
            assert!((0.0..=1.0).contains(&t.hidden_fraction));
            // Buckets serialize on the network.
            for w in t.buckets.windows(2) {
                assert!(w[1].start_s >= w[0].finish_s - 1e-15);
            }
            // Every bucket carries real substrate step timings.
            for b in &t.buckets {
                assert!(b.report.step_count() >= 1);
                assert!((b.comm_s() - b.report.total_time_s).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn pipelined_timeline_is_never_slower_on_either_substrate() {
        let cfg = tiny_cfg();
        let model = dnn_models::googlenet();
        for kind in [SubstrateKind::Optical, SubstrateKind::Electrical] {
            let run = |mode| {
                model_timeline(
                    &cfg,
                    &model,
                    16,
                    4 << 20,
                    Algorithm::Wrht,
                    kind,
                    Strategy::FirstFit,
                    mode,
                )
                .unwrap()
            };
            let barrier = run(ExecMode::Barrier);
            let pipelined = run(ExecMode::Pipelined);
            assert_eq!(barrier.bucket_count(), pipelined.bucket_count());
            assert!(
                pipelined.overlapped_s <= barrier.overlapped_s + 1e-12,
                "{kind:?}: pipelined {} vs barrier {}",
                pipelined.overlapped_s,
                barrier.overlapped_s
            );
            // Same fused-all-reduce sequential baseline.
            assert!((pipelined.sequential_s - barrier.sequential_s).abs() < 1e-15);
            // Pipelined buckets may overlap: start before the predecessor
            // finishes, never before their own gradient is ready.
            for b in &pipelined.buckets {
                assert!(b.start_s >= b.ready_s - 1e-15);
            }
        }
    }

    #[test]
    fn timeline_buckets_cover_the_gradient_in_ready_order() {
        let model = dnn_models::resnet50();
        let buckets = timeline_buckets(&model, 4 << 20);
        let total: u64 = buckets.iter().map(|b| b.bytes).sum();
        assert_eq!(total, model.gradient_bytes());
        for w in buckets.windows(2) {
            assert!(w[1].ready_s >= w[0].ready_s);
        }
        assert!(!buckets[0].label.is_empty());
    }

    #[test]
    fn classic_algorithms_lower_without_wrht_planning() {
        let cfg = tiny_cfg();
        for alg in [
            Algorithm::Ring,
            Algorithm::RecursiveDoubling,
            Algorithm::HalvingDoubling,
            Algorithm::Tree,
        ] {
            let (schedule, m) = lower_allreduce(&cfg, alg, 16, 1 << 20).unwrap();
            assert_eq!(m, 0);
            assert!(!schedule.is_empty());
        }
        let (_, m) = lower_allreduce(&cfg, Algorithm::Wrht, 16, 1 << 20).unwrap();
        assert!(m >= 2);
    }

    #[test]
    fn timeline_table_covers_every_model_on_both_substrates() {
        let cfg = tiny_cfg();
        let models = [dnn_models::googlenet(), dnn_models::alexnet()];
        let rows = timeline_table(&cfg, &models, 16, 25 << 20);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.overlapped_s > 0.0);
            assert!(row.overlapped_s >= row.compute_s);
            assert!(row.steps > 0);
        }
        assert!(rows.iter().any(|r| r.substrate == "optical"));
        assert!(rows.iter().any(|r| r.substrate == "electrical"));
    }
}
