//! Ablation and extension studies beyond Figure 2.
//!
//! * [`group_size_sweep`] — sensitivity of Wrht to the group size `m`
//!   (the design choice its optimizer automates);
//! * [`wavelength_sweep`] — how the win over O-Ring scales with the
//!   wavelength budget `w`;
//! * [`rwa_strategy_compare`] — First Fit vs Best Fit wavelength footprint;
//! * [`overlap_study`] — the layer-wise bucketed all-reduce extension with
//!   compute/communication overlap.

use crate::config::{ExperimentConfig, SubstrateKind};
use dnn_models::bucket::bucketize;
use dnn_models::training::{simulate_iteration, IterationModel};
use dnn_models::Model;
use optical_sim::Strategy;
use serde::{Deserialize, Serialize};
use wrht_core::baselines::oring_schedule;
use wrht_core::cost::predict_time_s;
use wrht_core::lower::{to_optical_schedule, to_optical_schedule_with, BroadcastMode};
use wrht_core::pipeline::optimal_segments;
use wrht_core::plan::{build_plan, StopPolicy};
use wrht_core::{choose_group_size, plan_and_simulate, WrhtParams};

/// One point of the group-size ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSizePoint {
    /// Group size.
    pub m: usize,
    /// Predicted time, seconds.
    pub predicted_s: f64,
    /// Simulated time, seconds.
    pub simulated_s: f64,
    /// Steps of the plan.
    pub steps: usize,
    /// Tree depth.
    pub depth: usize,
}

/// Sweep fixed group sizes for `n` nodes moving `bytes`.
pub fn group_size_sweep(
    cfg: &ExperimentConfig,
    n: usize,
    bytes: u64,
    group_sizes: &[usize],
) -> Vec<GroupSizePoint> {
    let optical = cfg.optical(n);
    let mut substrate = cfg.substrate(SubstrateKind::Optical, n, Strategy::FirstFit);
    group_sizes
        .iter()
        .filter_map(|&m| {
            let plan = build_plan(n, m, cfg.wavelengths).ok()?;
            let predicted = predict_time_s(&plan, &optical, bytes);
            let sched = to_optical_schedule(&plan, bytes);
            let report = substrate.execute(&sched).ok()?;
            Some(GroupSizePoint {
                m,
                predicted_s: predicted.total_s(),
                simulated_s: report.total_time_s,
                steps: plan.step_count(),
                depth: plan.depth(),
            })
        })
        .collect()
}

/// One point of the wavelength ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WavelengthPoint {
    /// Wavelengths per waveguide.
    pub w: usize,
    /// Wrht time with the optimizer's `m`, seconds.
    pub wrht_s: f64,
    /// The chosen group size.
    pub chosen_m: usize,
    /// O-Ring time (independent of `w` by construction), seconds.
    pub o_ring_s: f64,
}

/// Sweep the wavelength budget for `n` nodes moving `bytes`.
pub fn wavelength_sweep(
    cfg: &ExperimentConfig,
    n: usize,
    bytes: u64,
    wavelengths: &[usize],
) -> Vec<WavelengthPoint> {
    let elems = (bytes as usize).div_ceil(cfg.bytes_per_elem);
    wavelengths
        .iter()
        .filter_map(|&w| {
            let mut local = cfg.clone();
            local.wavelengths = w;
            let optical = local.optical(n);
            let wrht = plan_and_simulate(&WrhtParams::auto(n, w), &optical, bytes).ok()?;
            let mut substrate = local.substrate(SubstrateKind::Optical, n, Strategy::FirstFit);
            let o_ring = substrate
                .execute(&oring_schedule(n, elems, cfg.bytes_per_elem))
                .ok()?;
            Some(WavelengthPoint {
                w,
                wrht_s: wrht.simulated_time_s,
                chosen_m: wrht.m,
                o_ring_s: o_ring.total_time_s,
            })
        })
        .collect()
}

/// First-Fit vs Best-Fit comparison on one Wrht schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitCompare {
    /// Step-schedule time under First Fit, seconds.
    pub first_fit_s: f64,
    /// Step-schedule time under Best Fit, seconds.
    pub best_fit_s: f64,
    /// Peak wavelength index + 1 used by First Fit.
    pub first_fit_peak: usize,
    /// Peak wavelength index + 1 used by Best Fit.
    pub best_fit_peak: usize,
    /// Group size used.
    pub m: usize,
}

/// Compare the two RWA heuristics of the paper on the Wrht schedule for
/// `n` nodes and `bytes` per message.
pub fn rwa_strategy_compare(cfg: &ExperimentConfig, n: usize, bytes: u64) -> FitCompare {
    let optical = cfg.optical(n);
    let (m, plan, _) = choose_group_size(&WrhtParams::auto(n, cfg.wavelengths), &optical, bytes)
        .expect("feasible plan");
    let sched = to_optical_schedule(&plan, bytes);
    let ff = cfg
        .substrate(SubstrateKind::Optical, n, Strategy::FirstFit)
        .execute(&sched)
        .expect("first-fit run");
    let bf = cfg
        .substrate(SubstrateKind::Optical, n, Strategy::BestFit)
        .execute(&sched)
        .expect("best-fit run");
    FitCompare {
        first_fit_s: ff.total_time_s,
        best_fit_s: bf.total_time_s,
        first_fit_peak: ff.peak_wavelengths(),
        best_fit_peak: bf.peak_wavelengths(),
        m,
    }
}

/// One point of the overlap extension study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapPoint {
    /// Model name.
    pub model: String,
    /// Number of gradient buckets.
    pub buckets: usize,
    /// Iteration time with layer-wise overlapped Wrht all-reduces, seconds.
    pub overlapped_s: f64,
    /// Iteration time with one fused post-backward all-reduce, seconds.
    pub sequential_s: f64,
    /// Fraction of communication hidden behind backward compute.
    pub hidden_fraction: f64,
}

/// Per-parameter backward compute cost used by the overlap model
/// (a fitted constant standing in for the paper's unspecified GPUs).
pub const BACKWARD_S_PER_PARAM: f64 = 6e-10;

/// Simulate one data-parallel iteration with bucketed Wrht all-reduces.
pub fn overlap_study(
    cfg: &ExperimentConfig,
    model: &Model,
    n: usize,
    bucket_bytes: u64,
) -> OverlapPoint {
    let optical = cfg.optical(n);
    let buckets = bucketize(&model.layers, bucket_bytes);
    let params = model.params() as f64;
    let iteration = IterationModel {
        backward_s: params * BACKWARD_S_PER_PARAM,
        forward_s: params * BACKWARD_S_PER_PARAM * 0.5,
    };
    let allreduce = |bytes: u64| -> f64 {
        choose_group_size(&WrhtParams::auto(n, cfg.wavelengths), &optical, bytes)
            .map(|(_, _, cost)| cost.total_s())
            .unwrap_or(f64::INFINITY)
    };
    let report = simulate_iteration(&model.layers, &buckets, iteration, allreduce);
    OverlapPoint {
        model: model.name.clone(),
        buckets: buckets.len(),
        overlapped_s: report.overlapped_s,
        sequential_s: report.sequential_s,
        hidden_fraction: report.hidden_fraction,
    }
}

/// Comparison of the paper's stop rule against the Wrht⁺ extensions
/// (depth-optimal stop, multicast broadcast, segmentation) for one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantPoint {
    /// Model name.
    pub model: String,
    /// Paper Wrht (earliest-feasible stop, unicast broadcast), seconds.
    pub paper_s: f64,
    /// Depth-optimal stop level, seconds.
    pub best_depth_s: f64,
    /// Depth-optimal + multicast broadcast, seconds.
    pub multicast_s: f64,
    /// Depth-optimal + segmentation (modelled), seconds.
    pub segmented_s: f64,
    /// Segment count the segmentation solver picked.
    pub segments: usize,
}

/// Evaluate the Wrht⁺ variants on one model at `n` nodes.
pub fn variant_study(cfg: &ExperimentConfig, model: &Model, n: usize) -> VariantPoint {
    let optical = cfg.optical(n);
    let bytes = model.gradient_bytes();
    let w = cfg.wavelengths;

    let paper = plan_and_simulate(&WrhtParams::auto(n, w), &optical, bytes).expect("paper plan");

    let plus_params = WrhtParams::auto(n, w).with_stop_policy(StopPolicy::BestDepth);
    let plus = plan_and_simulate(&plus_params, &optical, bytes).expect("best-depth plan");

    let mc = cfg
        .substrate(SubstrateKind::Optical, n, Strategy::FirstFit)
        .execute(&to_optical_schedule_with(
            &plus.plan,
            bytes,
            BroadcastMode::Multicast,
        ))
        .expect("multicast lowering fits");

    let seg = optimal_segments(&plus.plan, &optical, bytes, 32);

    VariantPoint {
        model: model.name.clone(),
        paper_s: paper.simulated_time_s,
        best_depth_s: plus.simulated_time_s,
        multicast_s: mc.total_time_s,
        segmented_s: seg.time_s,
        segments: seg.segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_size_sweep_prediction_matches_simulation() {
        let cfg = ExperimentConfig::small();
        let points = group_size_sweep(&cfg, 64, 4 << 20, &[2, 4, 8, 16]);
        assert_eq!(points.len(), 4);
        for p in &points {
            let rel = (p.predicted_s - p.simulated_s).abs() / p.simulated_s;
            assert!(rel < 1e-9, "m={}", p.m);
        }
    }

    #[test]
    fn wavelength_sweep_is_monotone_for_wrht() {
        let cfg = ExperimentConfig::small();
        let points = wavelength_sweep(&cfg, 64, 16 << 20, &[2, 8, 32, 64]);
        for w in points.windows(2) {
            assert!(
                w[1].wrht_s <= w[0].wrht_s * 1.001,
                "more wavelengths should not hurt: w={} {} vs w={} {}",
                w[0].w,
                w[0].wrht_s,
                w[1].w,
                w[1].wrht_s
            );
        }
        // O-Ring never benefits from extra wavelengths.
        let o: Vec<f64> = points.iter().map(|p| p.o_ring_s).collect();
        for v in &o {
            assert!((v - o[0]).abs() / o[0] < 1e-9);
        }
    }

    #[test]
    fn rwa_strategies_agree_on_time_fit_within_budget() {
        let cfg = ExperimentConfig::small();
        let c = rwa_strategy_compare(&cfg, 64, 1 << 20);
        assert!((c.first_fit_s - c.best_fit_s).abs() < 1e-12);
        assert!(c.first_fit_peak <= cfg.wavelengths);
        assert!(c.best_fit_peak <= cfg.wavelengths);
    }

    #[test]
    fn variants_never_lose_to_the_paper_plan() {
        let cfg = ExperimentConfig::small();
        let model = dnn_models::googlenet();
        let p = variant_study(&cfg, &model, 64);
        assert!(p.best_depth_s <= p.paper_s * (1.0 + 1e-9));
        assert!(p.multicast_s <= p.best_depth_s * (1.0 + 1e-9));
        assert!(p.segments >= 1);
        assert!(p.segmented_s.is_finite());
    }

    #[test]
    fn overlap_hides_some_communication() {
        let cfg = ExperimentConfig::small();
        let model = dnn_models::googlenet();
        let p = overlap_study(&cfg, &model, 32, 4 << 20);
        assert!(p.buckets > 1);
        assert!(p.overlapped_s <= p.sequential_s * 1.05);
        assert!(p.hidden_fraction >= 0.0 && p.hidden_fraction <= 1.0);
    }
}
