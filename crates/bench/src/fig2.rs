//! Figure 2: communication time of E-Ring, RD, O-Ring and WRHT for the
//! four DNN models across node scales, plus the headline reductions.

use crate::config::{ExperimentConfig, SubstrateKind};
use collectives::rd::recursive_doubling;
use collectives::ring::ring_allreduce;
use dnn_models::Model;
use optical_sim::Strategy;
use serde::{Deserialize, Serialize};
use wrht_core::baselines::run_collective;
use wrht_core::{plan_and_simulate, WrhtParams};

/// One (model, node-count) grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Row {
    /// Node count.
    pub n: usize,
    /// Ring all-reduce on the electrical cluster, seconds.
    pub e_ring_s: f64,
    /// Recursive doubling on the electrical cluster, seconds.
    pub rd_s: f64,
    /// Ring all-reduce on the optical ring (1 wavelength), seconds.
    pub o_ring_s: f64,
    /// Wrht on the optical ring, seconds.
    pub wrht_s: f64,
    /// Group size Wrht's optimizer chose.
    pub wrht_m: usize,
    /// Wrht step count.
    pub wrht_steps: usize,
}

/// A full sub-figure (one DNN model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Series {
    /// Model name.
    pub model: String,
    /// Gradient size in bytes.
    pub gradient_bytes: u64,
    /// One row per node count.
    pub rows: Vec<Fig2Row>,
}

/// The paper's headline numbers: mean communication-time reduction of Wrht
/// versus the electrical algorithms and versus O-Ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Headline {
    /// Mean reduction vs the electrical baselines (E-Ring & RD), percent.
    pub vs_electrical_pct: f64,
    /// Mean reduction vs O-Ring, percent.
    pub vs_oring_pct: f64,
    /// Number of (model, scale) cells aggregated.
    pub cells: usize,
}

/// Compute one grid cell. All four measurements run through the unified
/// [`wrht_core::substrate::Substrate`] API.
pub fn fig2_row(cfg: &ExperimentConfig, n: usize, gradient_bytes: u64) -> Fig2Row {
    let elems = (gradient_bytes as usize).div_ceil(cfg.bytes_per_elem);
    let mut electrical = cfg.substrate(SubstrateKind::Electrical, n, Strategy::FirstFit);
    let mut optical = cfg.substrate(SubstrateKind::Optical, n, Strategy::FirstFit);

    // E-Ring: chunked ring all-reduce over the switched cluster.
    let ring = ring_allreduce(n, elems);
    let e_ring = run_collective(electrical.as_mut(), &ring, cfg.bytes_per_elem, 1)
        .expect("E-Ring fluid run");

    // RD: recursive doubling over the same cluster.
    let rd = run_collective(
        electrical.as_mut(),
        &recursive_doubling(n, elems),
        cfg.bytes_per_elem,
        1,
    )
    .expect("RD fluid run");

    // O-Ring: the same ring all-reduce over the optical ring, 1 wavelength.
    let o_ring =
        run_collective(optical.as_mut(), &ring, cfg.bytes_per_elem, 1).expect("O-Ring optical run");

    // WRHT with optimizer-chosen group size.
    let wrht = plan_and_simulate(
        &WrhtParams::auto(n, cfg.wavelengths),
        &cfg.optical(n),
        gradient_bytes,
    )
    .expect("Wrht plan");

    Fig2Row {
        n,
        e_ring_s: e_ring.total_time_s,
        rd_s: rd.total_time_s,
        o_ring_s: o_ring.total_time_s,
        wrht_s: wrht.simulated_time_s,
        wrht_m: wrht.m,
        wrht_steps: wrht.plan.step_count(),
    }
}

/// Compute a full sub-figure for one model.
pub fn fig2_series(cfg: &ExperimentConfig, model: &Model) -> Fig2Series {
    let gradient_bytes = model.gradient_bytes();
    Fig2Series {
        model: model.name.clone(),
        gradient_bytes,
        rows: cfg
            .scales
            .iter()
            .map(|&n| fig2_row(cfg, n, gradient_bytes))
            .collect(),
    }
}

/// Aggregate the headline reductions over a set of series.
#[must_use]
pub fn headline(series: &[Fig2Series]) -> Headline {
    let mut vs_e = 0.0;
    let mut vs_o = 0.0;
    let mut cells = 0usize;
    for s in series {
        for r in &s.rows {
            let electrical_mean = 0.5 * (r.e_ring_s + r.rd_s);
            vs_e += 1.0 - r.wrht_s / electrical_mean;
            vs_o += 1.0 - r.wrht_s / r.o_ring_s;
            cells += 1;
        }
    }
    let c = cells.max(1) as f64;
    Headline {
        vs_electrical_pct: 100.0 * vs_e / c,
        vs_oring_pct: 100.0 * vs_o / c,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrht_beats_oring_every_cell_and_electrical_at_scale() {
        let cfg = ExperimentConfig::small();
        let model = dnn_models::googlenet();
        let series = fig2_series(&cfg, &model);
        for r in &series.rows {
            assert!(
                r.wrht_s < r.o_ring_s,
                "n={}: wrht {} >= o-ring {}",
                r.n,
                r.wrht_s,
                r.o_ring_s
            );
        }
        // Wrht's advantage over the electrical algorithms needs enough
        // nodes for the tree to build (the paper evaluates N >= 128; at
        // tiny N with w ~ N^2/8 the one-shot all-to-all is bandwidth-bound
        // and the 100 Gb/s electrical ring can win).
        let last = series.rows.last().unwrap();
        assert!(
            last.wrht_s < last.e_ring_s.min(last.rd_s),
            "n={}: wrht {} >= electrical best {}",
            last.n,
            last.wrht_s,
            last.e_ring_s.min(last.rd_s)
        );
    }

    #[test]
    fn headline_aggregates_reductions() {
        let cfg = ExperimentConfig::small();
        let series = vec![fig2_series(&cfg, &dnn_models::googlenet())];
        let h = headline(&series);
        assert_eq!(h.cells, cfg.scales.len());
        assert!(h.vs_oring_pct > 0.0 && h.vs_oring_pct < 100.0);
        assert!(h.vs_electrical_pct > 0.0 && h.vs_electrical_pct < 100.0);
    }

    #[test]
    fn oring_grows_with_n_but_eringbandwidth_saturates() {
        // Shape check: O-Ring's per-step overheads accumulate with n while
        // E-Ring's bandwidth term is n-independent.
        let cfg = ExperimentConfig::small();
        let s = fig2_series(&cfg, &dnn_models::googlenet());
        let first = &s.rows[0];
        let last = &s.rows[s.rows.len() - 1];
        assert!(last.o_ring_s >= first.o_ring_s * 0.9);
        // RD sends log2(n) full buffers: grows with n.
        assert!(last.rd_s > first.rd_s);
    }
}
