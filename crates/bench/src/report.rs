//! Human-readable tables and machine-readable JSON for every experiment.

use crate::ablations::{FitCompare, GroupSizePoint, OverlapPoint, VariantPoint, WavelengthPoint};
use crate::contention::ContentionReport;
use crate::fig2::{Fig2Series, Headline};
use crate::timeline::TimelineRow;
use std::fmt::Write as _;

/// Format seconds as engineering-friendly milliseconds.
#[must_use]
pub fn ms(t: f64) -> String {
    format!("{:10.3}", t * 1e3)
}

/// Render one Figure-2 sub-figure as an aligned table.
///
/// The `norm` column matches the paper's "normalized time" axis: every cell
/// divided by the Wrht value at the smallest scale of the same model.
#[must_use]
pub fn render_fig2(series: &Fig2Series) -> String {
    let mut out = String::new();
    let unit = series.rows.first().map_or(1.0, |r| r.wrht_s);
    let _ = writeln!(
        out,
        "== Figure 2 — {} ({:.1} MB gradient) ==",
        series.model,
        series.gradient_bytes as f64 / 1e6
    );
    let _ = writeln!(
        out,
        "{:>6} | {:>10} {:>8} | {:>10} {:>8} | {:>10} {:>8} | {:>10} {:>8} {:>4} {:>6}",
        "nodes",
        "E-Ring ms",
        "norm",
        "RD ms",
        "norm",
        "O-Ring ms",
        "norm",
        "WRHT ms",
        "norm",
        "m",
        "steps"
    );
    for r in &series.rows {
        let _ = writeln!(
            out,
            "{:>6} | {} {:>8.2} | {} {:>8.2} | {} {:>8.2} | {} {:>8.2} {:>4} {:>6}",
            r.n,
            ms(r.e_ring_s),
            r.e_ring_s / unit,
            ms(r.rd_s),
            r.rd_s / unit,
            ms(r.o_ring_s),
            r.o_ring_s / unit,
            ms(r.wrht_s),
            r.wrht_s / unit,
            r.wrht_m,
            r.wrht_steps
        );
    }
    out
}

/// Render the headline reductions.
#[must_use]
pub fn render_headline(h: &Headline) -> String {
    format!(
        "== Headline (paper: 75.76% vs electrical, 91.86% vs O-Ring) ==\n\
         Wrht reduces communication time by {:.2}% vs the electrical \
         algorithms (mean of E-Ring & RD)\n\
         and by {:.2}% vs Ring all-reduce on the optical ring, over {} \
         (model, scale) cells.\n",
        h.vs_electrical_pct, h.vs_oring_pct, h.cells
    )
}

/// Render the group-size ablation.
#[must_use]
pub fn render_group_size(points: &[GroupSizePoint], n: usize) -> String {
    let mut out = format!("== Ablation: group size m (n = {n}) ==\n");
    let _ = writeln!(
        out,
        "{:>4} {:>12} {:>12} {:>6} {:>6}",
        "m", "predicted ms", "simulated ms", "steps", "depth"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>4} {:>12.3} {:>12.3} {:>6} {:>6}",
            p.m,
            p.predicted_s * 1e3,
            p.simulated_s * 1e3,
            p.steps,
            p.depth
        );
    }
    out
}

/// Render the wavelength ablation.
#[must_use]
pub fn render_wavelengths(points: &[WavelengthPoint], n: usize) -> String {
    let mut out = format!("== Ablation: wavelength budget w (n = {n}) ==\n");
    let _ = writeln!(
        out,
        "{:>4} {:>12} {:>6} {:>12} {:>10}",
        "w", "WRHT ms", "m", "O-Ring ms", "speedup"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>4} {:>12.3} {:>6} {:>12.3} {:>9.1}x",
            p.w,
            p.wrht_s * 1e3,
            p.chosen_m,
            p.o_ring_s * 1e3,
            p.o_ring_s / p.wrht_s
        );
    }
    out
}

/// Render the RWA-strategy comparison.
#[must_use]
pub fn render_fit(c: &FitCompare, n: usize) -> String {
    format!(
        "== Ablation: RWA strategy (n = {n}, m = {}) ==\n\
         first-fit: {:.3} ms using {} wavelengths peak\n\
         best-fit : {:.3} ms using {} wavelengths peak\n",
        c.m,
        c.first_fit_s * 1e3,
        c.first_fit_peak,
        c.best_fit_s * 1e3,
        c.best_fit_peak
    )
}

/// Render the overlap extension study.
#[must_use]
pub fn render_overlap(points: &[OverlapPoint], n: usize) -> String {
    let mut out = format!("== Extension: layer-wise overlap (n = {n}) ==\n");
    let _ = writeln!(
        out,
        "{:>10} {:>8} {:>14} {:>14} {:>8}",
        "model", "buckets", "overlapped ms", "sequential ms", "hidden"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>10} {:>8} {:>14.3} {:>14.3} {:>7.1}%",
            p.model,
            p.buckets,
            p.overlapped_s * 1e3,
            p.sequential_s * 1e3,
            p.hidden_fraction * 100.0
        );
    }
    out
}

/// Render the simulator-backed training timeline table.
#[must_use]
pub fn render_timeline(rows: &[TimelineRow], n: usize, bucket_bytes: u64) -> String {
    let mut out = format!(
        "== Training timelines: Wrht-backed iteration (n = {n}, {:.0} MB buckets) ==\n",
        bucket_bytes as f64 / (1 << 20) as f64
    );
    let _ = writeln!(
        out,
        "{:>10} {:>11} {:>8} {:>11} {:>14} {:>14} {:>11} {:>8} {:>6}",
        "model",
        "substrate",
        "buckets",
        "compute ms",
        "overlapped ms",
        "sequential ms",
        "exposed ms",
        "hidden",
        "steps"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>10} {:>11} {:>8} {:>11.3} {:>14.3} {:>14.3} {:>11.3} {:>7.1}% {:>6}",
            r.model,
            r.substrate,
            r.buckets,
            r.compute_s * 1e3,
            r.overlapped_s * 1e3,
            r.sequential_s * 1e3,
            r.exposed_comm_s * 1e3,
            r.hidden_fraction * 100.0,
            r.steps
        );
    }
    out
}

/// Render the Wrht⁺ variant comparison.
#[must_use]
pub fn render_variants(points: &[VariantPoint], n: usize) -> String {
    let mut out = format!("== Extension: Wrht+ variants (n = {n}) ==\n");
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>12} {:>12} {:>14} {:>5}",
        "model", "paper ms", "bestdep ms", "mcast ms", "segmented ms", "k"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>10} {:>10.3} {:>12.3} {:>12.3} {:>14.3} {:>5}",
            p.model,
            p.paper_s * 1e3,
            p.best_depth_s * 1e3,
            p.multicast_s * 1e3,
            p.segmented_s * 1e3,
            p.segments
        );
    }
    out
}

/// Render contention study reports.
#[must_use]
pub fn render_contention(reports: &[ContentionReport], n: usize, w: usize) -> String {
    let mut out = format!("== Extension: event-driven contention (n = {n}, w = {w}) ==\n");
    let _ = writeln!(
        out,
        "{:>14} {:>10} {:>12} {:>10} {:>14}",
        "pattern", "transfers", "makespan ms", "peak conc", "longest ms"
    );
    for r in reports {
        let _ = writeln!(
            out,
            "{:>14} {:>10} {:>12.3} {:>10} {:>14.3}",
            format!("{:?}", r.pattern),
            r.transfers,
            r.makespan_s * 1e3,
            r.peak_concurrency,
            r.longest_transfer_s * 1e3
        );
    }
    out
}

/// Render the multi-job tenancy campaign as an aligned table. Failed cells
/// are skipped (their errors live in the campaign CSV/JSON).
#[must_use]
pub fn render_tenants(results: &[crate::campaign::TenancyCellResult], n: usize) -> String {
    let mut out = format!("== Multi-job tenancy (n = {n}) ==\n");
    let _ = writeln!(
        out,
        "{:>11} {:>9} {:>5} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "substrate",
        "policy",
        "jobs",
        "makespan ms",
        "mean slow",
        "max slow",
        "slow p50",
        "slow p99",
        "fairness",
        "hidden"
    );
    for r in results.iter().filter(|r| r.error.is_none()) {
        let _ = writeln!(
            out,
            "{:>11} {:>9} {:>5} {:>12.3} {:>11.2}x {:>9.2}x {:>9.2}x {:>9.2}x {:>10.3} {:>7.1}%",
            r.cell.substrate.label(),
            r.cell.policy.label(),
            r.cell.jobs,
            r.makespan_s * 1e3,
            r.mean_slowdown,
            r.max_slowdown,
            r.slowdown_p50,
            r.slowdown_p99,
            r.fairness_index,
            r.mean_hidden_fraction * 100.0
        );
    }
    out
}

/// Render the open-loop stream campaign as an aligned table. Failed cells
/// are skipped (their errors live in the campaign CSV/JSON).
#[must_use]
pub fn render_streams(results: &[crate::campaign::StreamCellResult], n: usize) -> String {
    let mut out = format!("== Open-loop cluster service (n = {n}) ==\n");
    let _ = writeln!(
        out,
        "{:>11} {:>9} {:>11} {:>8} {:>8} {:>8} {:>12} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "substrate",
        "policy",
        "admission",
        "rate/s",
        "admit",
        "reject",
        "makespan ms",
        "slow p50",
        "slow p99",
        "slow p999",
        "peak q",
        "fair"
    );
    for r in results.iter().filter(|r| r.error.is_none()) {
        let _ = writeln!(
            out,
            "{:>11} {:>9} {:>11} {:>8} {:>8} {:>8} {:>12.3} {:>9.2}x {:>9.2}x {:>9.2}x {:>8} {:>8.3}",
            r.cell.substrate.label(),
            r.cell.policy.label(),
            r.cell.admission.label(),
            r.cell.rate_hz,
            r.admitted,
            r.rejected,
            r.makespan_s * 1e3,
            r.slowdown_p50,
            r.slowdown_p99,
            r.slowdown_p999,
            r.peak_queue_depth,
            r.fairness_index
        );
    }
    out
}

/// Render the fault campaign as a fixed-width table: one row per cell with
/// the degraded-vs-clean makespan ratio, blast radius (delayed / aborted /
/// failed transfers) and recovery time.
#[must_use]
pub fn render_faults(results: &[crate::campaign::FaultCellResult], n: usize) -> String {
    let mut out = format!("== Fault & degradation dynamics (n = {n}) ==\n");
    let _ = writeln!(
        out,
        "{:>11} {:>24} {:>10} {:>12} {:>9} {:>8} {:>8} {:>7} {:>12}",
        "substrate",
        "scenario",
        "recovery",
        "makespan ms",
        "degraded",
        "delayed",
        "aborted",
        "failed",
        "recovery ms"
    );
    for r in results.iter().filter(|r| r.error.is_none()) {
        let _ = writeln!(
            out,
            "{:>11} {:>24} {:>10} {:>12.3} {:>8.2}x {:>8} {:>8} {:>7} {:>12.3}",
            r.cell.substrate.label(),
            r.cell.scenario.label(),
            r.cell.fault_policy.label(),
            r.makespan_s * 1e3,
            r.degraded_ratio,
            r.delayed,
            r.aborted,
            r.failed,
            r.recovery_s * 1e3
        );
    }
    out
}

/// Render the mixed-parallelism campaign as an aligned table: one row per
/// cell with the parallelism shape, the intra/inter traffic split and the
/// composed-run makespan. Failed cells are skipped (their errors live in
/// the campaign CSV/JSON).
#[must_use]
pub fn render_parallelism(results: &[crate::campaign::ParCellResult]) -> String {
    let mut out = String::from("== Mixed-parallelism lowering on the composed hierarchy ==\n");
    let _ = writeln!(
        out,
        "{:>10} {:>3} {:>3} {:>3} {:>4} {:>3} {:>6} {:>7} {:>9} {:>9} {:>10} {:>10} {:>12} {:>6}",
        "model",
        "tp",
        "pp",
        "dp",
        "moe",
        "mb",
        "nodes",
        "xfers",
        "intra",
        "inter",
        "intra MB",
        "inter MB",
        "makespan ms",
        "peak λ"
    );
    for r in results.iter().filter(|r| r.error.is_none()) {
        let _ = writeln!(
            out,
            "{:>10} {:>3} {:>3} {:>3} {:>4} {:>3} {:>6} {:>7} {:>9} {:>9} {:>10.1} {:>10.1} {:>12.3} {:>6}",
            r.cell.model,
            r.cell.tp,
            r.cell.pp,
            r.cell.dp,
            r.cell.moe_experts,
            r.cell.microbatches,
            r.nodes,
            r.transfers,
            r.intra_transfers,
            r.inter_transfers,
            r.intra_bytes as f64 / 1e6,
            r.inter_bytes as f64 / 1e6,
            r.makespan_s * 1e3,
            r.peak_wavelength
        );
    }
    out
}

/// Serialize any experiment payload as pretty JSON.
pub fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("experiment types serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig2::Fig2Row;

    fn series() -> Fig2Series {
        Fig2Series {
            model: "TestNet".into(),
            gradient_bytes: 4_000_000,
            rows: vec![Fig2Row {
                n: 16,
                e_ring_s: 4e-3,
                rd_s: 8e-3,
                o_ring_s: 12e-3,
                wrht_s: 1e-3,
                wrht_m: 4,
                wrht_steps: 5,
            }],
        }
    }

    #[test]
    fn fault_table_lists_scenario_policy_and_blast_radius() {
        use crate::campaign::{
            Algorithm, FaultCellConfig, FaultCellResult, FaultScenario, RecoveryPolicy,
        };
        use crate::config::SubstrateKind;
        let r = FaultCellResult {
            cell: FaultCellConfig {
                substrate: SubstrateKind::Optical,
                policy: wrht_core::SchedPolicy::Fifo,
                fault_policy: RecoveryPolicy::Replan,
                scenario: FaultScenario::WavelengthDown {
                    lane: 0,
                    at_frac: 0.25,
                },
                jobs: 2,
                algorithm: Algorithm::Wrht,
                model: "TestNet".into(),
                bucket_bytes: 1 << 20,
                arrival_stagger_s: 0.0,
                n: 16,
                wavelengths: 64,
                strategy: optical_sim::Strategy::FirstFit,
            },
            config_hash: 1,
            seed: 1,
            clean_makespan_s: 1.0,
            makespan_s: 1.5,
            degraded_ratio: 1.5,
            recovery_s: 0.5,
            first_impact_s: Some(0.25),
            delayed: 3,
            aborted: 2,
            failed: 0,
            failed_jobs: 0,
            transfers: 10,
            peak_wavelengths: 4,
            error: None,
        };
        let t = render_faults(&[r], 16);
        assert!(t.contains("optical"));
        assert!(t.contains("wavelength-down:0@0.25"));
        assert!(t.contains("replan"));
        assert!(t.contains("degraded"));
        assert!(t.contains("1.50x"));
    }

    #[test]
    fn fig2_table_contains_all_columns() {
        let t = render_fig2(&series());
        assert!(t.contains("TestNet"));
        assert!(t.contains("E-Ring"));
        assert!(t.contains("WRHT"));
        assert!(t.contains("16"));
    }

    #[test]
    fn headline_mentions_paper_targets() {
        let h = Headline {
            vs_electrical_pct: 70.0,
            vs_oring_pct: 90.0,
            cells: 16,
        };
        let t = render_headline(&h);
        assert!(t.contains("75.76%"));
        assert!(t.contains("70.00%"));
    }

    #[test]
    fn json_round_trips() {
        let s = series();
        let json = to_json(&s);
        let back: Fig2Series = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn variants_table_renders_all_columns() {
        let p = VariantPoint {
            model: "TestNet".into(),
            paper_s: 10e-3,
            best_depth_s: 8e-3,
            multicast_s: 7e-3,
            segmented_s: 6e-3,
            segments: 4,
        };
        let t = render_variants(&[p], 256);
        assert!(t.contains("TestNet"));
        assert!(t.contains("10.000"));
        assert!(t.contains("n = 256"));
    }

    #[test]
    fn contention_table_renders() {
        use crate::contention::{ContentionReport, Pattern};
        let r = ContentionReport {
            pattern: Pattern::Incast,
            transfers: 12,
            makespan_s: 3e-3,
            peak_concurrency: 2,
            longest_transfer_s: 1e-3,
        };
        let t = render_contention(&[r], 64, 4);
        assert!(t.contains("Incast"));
        assert!(t.contains("12"));
        assert!(t.contains("w = 4"));
    }

    #[test]
    fn ms_formats_fixed_width() {
        assert_eq!(ms(1.0).trim(), "1000.000");
        assert_eq!(ms(0.0005).trim(), "0.500");
    }
}
