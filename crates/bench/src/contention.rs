//! Wavelength-contention studies on the event-driven engine.
//!
//! The stepped model (used by the paper) hides contention behind barriers;
//! the event-driven engine exposes it. This module generates synthetic
//! traffic — random permutations, uniform random pairs and incast — and
//! measures how First-Fit wavelength allocation behaves without step
//! barriers, plus how Wrht schedules behave when steps are released
//! without global synchronization.

use optical_sim::{NodeId, OpticalConfig, RingSimulator, Strategy, Transfer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wrht_core::lower::to_optical_schedule;
use wrht_core::plan::WrhtPlan;

/// Synthetic traffic patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// A random permutation: every node sends to a distinct target.
    Permutation,
    /// Uniform random (src, dst) pairs, possibly colliding.
    UniformRandom,
    /// Everyone sends to node 0.
    Incast,
}

/// Result of one contention run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionReport {
    /// Traffic pattern.
    pub pattern: Pattern,
    /// Number of transfers.
    pub transfers: usize,
    /// Event-driven makespan, seconds.
    pub makespan_s: f64,
    /// Peak concurrent transfers achieved.
    pub peak_concurrency: usize,
    /// Lower bound: the longest single transfer, seconds.
    pub longest_transfer_s: f64,
}

/// Generate `count` transfers of `bytes` each over `n` nodes.
#[must_use]
pub fn generate_traffic(
    pattern: Pattern,
    n: usize,
    count: usize,
    bytes: u64,
    seed: u64,
) -> Vec<(f64, Transfer)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    match pattern {
        Pattern::Permutation => {
            let mut targets: Vec<usize> = (0..n).collect();
            // Re-shuffle until derangement-ish: just skip self-sends.
            targets.shuffle(&mut rng);
            for (src, &dst) in targets.iter().enumerate().take(count.min(n)) {
                if src != dst {
                    out.push((0.0, Transfer::shortest(NodeId(src), NodeId(dst), bytes)));
                }
            }
        }
        Pattern::UniformRandom => {
            while out.len() < count {
                let src = rng.random_range(0..n);
                let dst = rng.random_range(0..n);
                if src != dst {
                    out.push((0.0, Transfer::shortest(NodeId(src), NodeId(dst), bytes)));
                }
            }
        }
        Pattern::Incast => {
            for src in 1..=count.min(n - 1) {
                out.push((0.0, Transfer::shortest(NodeId(src), NodeId(0), bytes)));
            }
        }
    }
    out
}

/// Run a traffic pattern through the event-driven engine.
pub fn run_contention(
    config: &OpticalConfig,
    pattern: Pattern,
    count: usize,
    bytes: u64,
    seed: u64,
) -> ContentionReport {
    let released = generate_traffic(pattern, config.nodes, count, bytes, seed);
    let timing = config.timing();
    let topo = optical_sim::RingTopology::new(config.nodes);
    let longest = released
        .iter()
        .map(|(_, t)| timing.transfer_time(t.bytes, t.lanes, topo.min_hops(t.src, t.dst)))
        .fold(0.0f64, f64::max);
    let mut sim = RingSimulator::new(config.clone());
    let report = sim
        .run_event_driven(&released)
        .expect("synthetic traffic is valid");
    ContentionReport {
        pattern,
        transfers: released.len(),
        makespan_s: report.makespan_s,
        peak_concurrency: report.peak_concurrency,
        longest_transfer_s: longest,
    }
}

/// Barrier-free Wrht: release every step's transfers the moment the
/// previous step *would* have finished under ideal timing, and let the
/// event engine resolve residual wavelength contention. Returns
/// `(stepped_s, event_driven_s)` — equal when barriers cost nothing.
pub fn wrht_barrier_sensitivity(config: &OpticalConfig, plan: &WrhtPlan, bytes: u64) -> (f64, f64) {
    let sched = to_optical_schedule(plan, bytes);
    let mut sim = RingSimulator::new(config.clone());
    let stepped = sim
        .run_stepped(&sched, Strategy::FirstFit)
        .expect("plan fits by construction");
    let mut released = Vec::new();
    let mut t = 0.0;
    for (i, step) in sched.steps().iter().enumerate() {
        for tr in step {
            released.push((t, tr.clone()));
        }
        t += stepped.stats.steps[i].duration_s;
    }
    let event = sim
        .run_event_driven(&released)
        .expect("released schedule is valid");
    (stepped.total_time_s, event.makespan_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrht_core::plan::build_plan;

    fn cfg(n: usize, w: usize) -> OpticalConfig {
        OpticalConfig::new(n, w)
            .with_message_overhead(0.0)
            .with_hop_propagation(0.0)
    }

    #[test]
    fn permutation_traffic_parallelizes_well() {
        let c = cfg(32, 8);
        let r = run_contention(&c, Pattern::Permutation, 32, 1 << 20, 7);
        assert!(r.transfers > 0);
        // A permutation on 8 wavelengths should overlap heavily.
        assert!(r.peak_concurrency > 1);
        assert!(r.makespan_s >= r.longest_transfer_s);
    }

    #[test]
    fn incast_serializes_on_the_receiver_arc() {
        let c = cfg(16, 1);
        let r = run_contention(&c, Pattern::Incast, 8, 1 << 20, 7);
        // One wavelength: neighbouring senders' nested paths serialize.
        assert_eq!(r.peak_concurrency, 2.min(r.transfers).max(1));
        assert!(r.makespan_s > r.longest_transfer_s);
    }

    #[test]
    fn traffic_generation_is_seed_deterministic() {
        let a = generate_traffic(Pattern::UniformRandom, 16, 20, 100, 42);
        let b = generate_traffic(Pattern::UniformRandom, 16, 20, 100, 42);
        assert_eq!(a, b);
        let c = generate_traffic(Pattern::UniformRandom, 16, 20, 100, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn wrht_without_barriers_is_no_slower() {
        let n = 64;
        let w = 8;
        let c = cfg(n, w);
        let plan = build_plan(n, 4, w).unwrap();
        let (stepped, event) = wrht_barrier_sensitivity(&c, &plan, 4 << 20);
        // Released at the stepped boundaries, the event engine can only
        // match the stepped time (it cannot start earlier).
        assert!((event - stepped).abs() / stepped < 1e-9);
    }
}
