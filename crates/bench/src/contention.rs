//! Wavelength-contention studies on the event-driven engine.
//!
//! The stepped model (used by the paper) hides contention behind barriers;
//! the event-driven engine exposes it. This module generates synthetic
//! traffic — random permutations, uniform random pairs and incast — and
//! measures how First-Fit wavelength allocation behaves without step
//! barriers, plus how Wrht schedules behave when steps are released
//! without global synchronization.

use optical_sim::{NodeId, OpticalConfig, RingSimulator, Strategy, Transfer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wrht_core::lower::to_optical_schedule;
use wrht_core::plan::WrhtPlan;

/// Synthetic traffic patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// A random permutation: every node sends to a distinct target.
    Permutation,
    /// Uniform random (src, dst) pairs, possibly colliding.
    UniformRandom,
    /// Everyone sends to node 0.
    Incast,
}

/// Result of one contention run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionReport {
    /// Traffic pattern.
    pub pattern: Pattern,
    /// Number of transfers.
    pub transfers: usize,
    /// Event-driven makespan, seconds.
    pub makespan_s: f64,
    /// Peak concurrent transfers achieved.
    pub peak_concurrency: usize,
    /// Lower bound: the longest single transfer, seconds.
    pub longest_transfer_s: f64,
}

/// Generate transfers of `bytes` each over `n` nodes.
///
/// The count contract is exact: [`Pattern::Permutation`] produces
/// `count.min(n)` transfers (a node sends at most once, and the shuffled
/// target map is repaired into a derangement so no slot is lost to a
/// self-send); [`Pattern::UniformRandom`] and [`Pattern::Incast`] produce
/// exactly `count` (incast saturates with round-robin repeat senders once
/// every other node already targets node 0). With `n < 2` no valid
/// transfer exists and the result is empty.
#[must_use]
pub fn generate_traffic(
    pattern: Pattern,
    n: usize,
    count: usize,
    bytes: u64,
    seed: u64,
) -> Vec<(f64, Transfer)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    if n < 2 {
        return out;
    }
    match pattern {
        Pattern::Permutation => {
            let mut targets: Vec<usize> = (0..n).collect();
            targets.shuffle(&mut rng);
            // Repair the shuffle into a derangement: swap fixed points
            // pairwise (two fixed points resolve each other); a leftover
            // odd one swaps with its neighbour, which cannot re-create a
            // fixed point because value `a` only ever sat at index `a`.
            let fixed: Vec<usize> = (0..n).filter(|&i| targets[i] == i).collect();
            let mut i = 0;
            while i + 1 < fixed.len() {
                targets.swap(fixed[i], fixed[i + 1]);
                i += 2;
            }
            if i < fixed.len() {
                let a = fixed[i];
                targets.swap(a, (a + 1) % n);
            }
            for (src, &dst) in targets.iter().enumerate().take(count.min(n)) {
                debug_assert_ne!(src, dst, "derangement repair left a self-send");
                out.push((0.0, Transfer::shortest(NodeId(src), NodeId(dst), bytes)));
            }
        }
        Pattern::UniformRandom => {
            while out.len() < count {
                let src = rng.random_range(0..n);
                let dst = rng.random_range(0..n);
                if src != dst {
                    out.push((0.0, Transfer::shortest(NodeId(src), NodeId(dst), bytes)));
                }
            }
        }
        Pattern::Incast => {
            for k in 0..count {
                let src = 1 + (k % (n - 1));
                out.push((0.0, Transfer::shortest(NodeId(src), NodeId(0), bytes)));
            }
        }
    }
    out
}

/// Run a traffic pattern through the event-driven engine.
pub fn run_contention(
    config: &OpticalConfig,
    pattern: Pattern,
    count: usize,
    bytes: u64,
    seed: u64,
) -> ContentionReport {
    let released = generate_traffic(pattern, config.nodes, count, bytes, seed);
    let timing = config.timing();
    let topo = optical_sim::RingTopology::new(config.nodes);
    let longest = released
        .iter()
        .map(|(_, t)| timing.transfer_time(t.bytes, t.lanes, topo.min_hops(t.src, t.dst)))
        .fold(0.0f64, f64::max);
    let mut sim = RingSimulator::new(config.clone());
    let report = sim
        .run_event_driven(&released)
        .expect("synthetic traffic is valid");
    ContentionReport {
        pattern,
        transfers: released.len(),
        makespan_s: report.makespan_s,
        peak_concurrency: report.peak_concurrency,
        longest_transfer_s: longest,
    }
}

/// Barrier-free Wrht: release every step's transfers the moment the
/// previous step *would* have finished under ideal timing, and let the
/// event engine resolve residual wavelength contention. Returns
/// `(stepped_s, event_driven_s)` — equal when barriers cost nothing.
pub fn wrht_barrier_sensitivity(config: &OpticalConfig, plan: &WrhtPlan, bytes: u64) -> (f64, f64) {
    let sched = to_optical_schedule(plan, bytes);
    // One fresh simulator per run: the two measurements must not share any
    // state, so neither call order nor earlier runs can bias the other.
    let stepped = RingSimulator::new(config.clone())
        .run_stepped(&sched, Strategy::FirstFit)
        .expect("plan fits by construction");
    let mut released = Vec::new();
    let mut t = 0.0;
    for (i, step) in sched.steps().iter().enumerate() {
        for tr in step {
            released.push((t, tr.clone()));
        }
        t += stepped.stats.steps[i].duration_s;
    }
    let event = RingSimulator::new(config.clone())
        .run_event_driven(&released)
        .expect("released schedule is valid");
    (stepped.total_time_s, event.makespan_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrht_core::plan::build_plan;

    fn cfg(n: usize, w: usize) -> OpticalConfig {
        OpticalConfig::new(n, w)
            .with_message_overhead(0.0)
            .with_hop_propagation(0.0)
    }

    #[test]
    fn permutation_traffic_parallelizes_well() {
        let c = cfg(32, 8);
        let r = run_contention(&c, Pattern::Permutation, 32, 1 << 20, 7);
        assert!(r.transfers > 0);
        // A permutation on 8 wavelengths should overlap heavily.
        assert!(r.peak_concurrency > 1);
        assert!(r.makespan_s >= r.longest_transfer_s);
    }

    #[test]
    fn incast_serializes_on_the_receiver_arc() {
        let c = cfg(16, 1);
        let r = run_contention(&c, Pattern::Incast, 8, 1 << 20, 7);
        // One wavelength: neighbouring senders' nested paths serialize.
        assert_eq!(r.peak_concurrency, 2.min(r.transfers).max(1));
        assert!(r.makespan_s > r.longest_transfer_s);
    }

    /// Satellite regression: the shuffle used to drop self-send slots, so
    /// permutation traffic could silently return fewer transfers than
    /// requested. The repaired derangement must always deliver exactly
    /// `count.min(n)` transfers with no self-sends, for every seed.
    #[test]
    fn permutation_traffic_always_honours_the_requested_count() {
        for n in [2usize, 3, 5, 16, 33] {
            for seed in 0..50 {
                for count in [1usize, n / 2, n, 2 * n] {
                    let t = generate_traffic(Pattern::Permutation, n, count, 100, seed);
                    assert_eq!(t.len(), count.min(n), "n={n} seed={seed} count={count}");
                    assert!(t.iter().all(|(_, tr)| tr.src != tr.dst));
                    // Still a (partial) permutation: distinct targets.
                    let mut dsts: Vec<usize> = t.iter().map(|(_, tr)| tr.dst.0).collect();
                    dsts.sort_unstable();
                    dsts.dedup();
                    assert_eq!(dsts.len(), t.len(), "duplicate target");
                }
            }
        }
    }

    /// Satellite regression: incast used to truncate `count` to `n - 1`, so
    /// a sweep asking for 64 transfers on 16 nodes quietly measured 15.
    /// Round-robin repeat senders must saturate the requested count.
    #[test]
    fn incast_traffic_saturates_with_repeat_senders() {
        let t = generate_traffic(Pattern::Incast, 16, 64, 100, 7);
        assert_eq!(t.len(), 64);
        assert!(t.iter().all(|(_, tr)| tr.dst.0 == 0 && tr.src.0 != 0));
        // Round-robin: senders cycle 1..=15 evenly.
        let mut per_src = [0usize; 16];
        for (_, tr) in &t {
            per_src[tr.src.0] += 1;
        }
        assert!(per_src[1..].iter().all(|&c| c == 4 || c == 5));
        // The report reflects the full requested count too.
        let c = cfg(16, 4);
        let r = run_contention(&c, Pattern::Incast, 64, 1 << 16, 7);
        assert_eq!(r.transfers, 64);
    }

    #[test]
    fn every_pattern_reports_the_requested_transfer_count() {
        let c = cfg(16, 8);
        for pattern in [
            Pattern::Permutation,
            Pattern::UniformRandom,
            Pattern::Incast,
        ] {
            let r = run_contention(&c, pattern, 16, 1 << 16, 11);
            assert_eq!(r.transfers, 16, "{pattern:?}");
        }
        // Degenerate rings produce no traffic instead of looping/panicking.
        for pattern in [
            Pattern::Permutation,
            Pattern::UniformRandom,
            Pattern::Incast,
        ] {
            assert!(generate_traffic(pattern, 1, 4, 100, 0).is_empty());
        }
    }

    /// Satellite regression: the stepped and event-driven barrier runs now
    /// use one fresh simulator each; permuting the call order must be
    /// bit-identical.
    #[test]
    fn barrier_sensitivity_is_call_order_independent() {
        let n = 32;
        let c = cfg(n, 8);
        let plan = build_plan(n, 4, 8).unwrap();
        let bytes = 1 << 20;
        // Order 1: the production helper (stepped first, then event).
        let (stepped_a, event_a) = wrht_barrier_sensitivity(&c, &plan, bytes);
        // Order 2: event first on its own simulator, then stepped.
        let sched = to_optical_schedule(&plan, bytes);
        let reference = RingSimulator::new(c.clone())
            .run_stepped(&sched, Strategy::FirstFit)
            .unwrap();
        let mut released = Vec::new();
        let mut t = 0.0;
        for (i, step) in sched.steps().iter().enumerate() {
            for tr in step {
                released.push((t, tr.clone()));
            }
            t += reference.stats.steps[i].duration_s;
        }
        let event_b = RingSimulator::new(c.clone())
            .run_event_driven(&released)
            .unwrap()
            .makespan_s;
        let stepped_b = RingSimulator::new(c.clone())
            .run_stepped(&sched, Strategy::FirstFit)
            .unwrap()
            .total_time_s;
        assert_eq!(stepped_a.to_bits(), stepped_b.to_bits());
        assert_eq!(event_a.to_bits(), event_b.to_bits());
    }

    #[test]
    fn traffic_generation_is_seed_deterministic() {
        let a = generate_traffic(Pattern::UniformRandom, 16, 20, 100, 42);
        let b = generate_traffic(Pattern::UniformRandom, 16, 20, 100, 42);
        assert_eq!(a, b);
        let c = generate_traffic(Pattern::UniformRandom, 16, 20, 100, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn wrht_without_barriers_is_no_slower() {
        let n = 64;
        let w = 8;
        let c = cfg(n, w);
        let plan = build_plan(n, 4, w).unwrap();
        let (stepped, event) = wrht_barrier_sensitivity(&c, &plan, 4 << 20);
        // Released at the stepped boundaries, the event engine can only
        // match the stepped time (it cannot start earlier).
        assert!((event - stepped).abs() / stepped < 1e-9);
    }
}
