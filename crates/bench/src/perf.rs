//! The fixed perf suite behind the `BENCH_*.json` trajectory.
//!
//! Every PR that touches the simulators re-runs this suite (`repro-figures
//! bench`) so the repo carries a measured wall-clock / events-per-second
//! history instead of anecdotes. The workloads are deliberately frozen:
//!
//! 1. **`tenancy/<substrate>`** — a large multi-job run: two bucketed
//!    GoogLeNet training iterations arriving 2 ms apart plus a background
//!    incast flood, composed into one shared DAG under fair-share
//!    arbitration (the PR-5 tenancy path).
//! 2. **`incast128/electrical`** — staggered waves of a 127-into-1 incast on
//!    a 128-host star, driven strictly through the event-driven max-min
//!    engine (the worst case for next-event selection: one giant contention
//!    component).
//! 3. **`pipelined-vgg16/<substrate>`** — one pipelined VGG16 training
//!    iteration at 32 nodes: bucket all-reduces chained into a single
//!    dependency-aware DAG (the PR-4 pipelined path).
//! 4. **`stream-poisson/optical`** — one million Poisson arrivals of
//!    single-transfer jobs served open-loop on a 10k-node optical ring
//!    through `Substrate::execute_stream` (the PR-8 online path): stresses
//!    per-arrival injection into the *running* kernel, slot reuse and the
//!    bounded-memory windowed aggregator.
//! 5. **`hier-gpt2/composed`** — one GPT-2 small TP+PP+DP+MoE iteration
//!    lowered to a single mixed-domain DAG and executed on the composed
//!    hierarchical substrate (per-group optical rings + the electrical
//!    inter-group cluster co-simulated in one event loop — the PR-10
//!    hierarchy path).
//!
//! Each case is run `iters` times and the **minimum** wall time is kept
//! (the usual micro-bench convention: the minimum is the least noisy
//! estimator of the true cost). `events_per_sec` divides the simulator's
//! own event count (`events` on the run reports) by that wall time, so the
//! metric is robust against workload edits: if a later PR makes a case
//! bigger, events and wall time grow together.

use std::time::Instant; // wrht-analyze: allow(r2, reason = "the perf harness is the one sanctioned wall-clock site; wall time is measured, never fed back into simulation state")

use optical_sim::sim::StepSchedule;
use optical_sim::{NodeId, Transfer};
use serde::{Deserialize, Serialize};
use wrht_core::dag::DepSchedule;
use wrht_core::error::Result;
use wrht_core::stream::{ArrivalProcess, StreamSpec, StreamTemplate};
use wrht_core::tenancy::{Job, JobWorkload, SchedPolicy, TenancySpec};

use wrht_core::hierarchy::HierSpec;
use wrht_core::parallelism::{lower_parallelism, ParallelismSpec, StageModel};
use wrht_core::substrate::Substrate as _;

use crate::campaign::Algorithm;
use crate::contention::{generate_traffic, Pattern};
use crate::timeline::{iteration_model, lower_allreduce, timeline_buckets};
use crate::{ExperimentConfig, SubstrateKind};

/// Format version of the emitted JSON (bump on breaking layout changes).
pub const BENCH_FORMAT: &str = "v6";

/// One measured case of the fixed suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseResult {
    /// Stable case name (`workload/substrate`).
    pub name: String,
    /// Nodes/hosts in the workload (suite-dependent).
    pub nodes: usize,
    /// Transfers in the executed DAG.
    pub transfers: usize,
    /// Timed repetitions (minimum wall time is reported).
    pub iters: u32,
    /// Best wall-clock time for one run, seconds.
    pub wall_s: f64,
    /// Simulated makespan of the workload, seconds (a determinism canary:
    /// this must not drift between runs on the same code).
    pub makespan_s: f64,
    /// Events processed by the simulator's event kernel in one run.
    pub sim_events: u64,
    /// `sim_events / wall_s`.
    pub events_per_sec: f64,
}

/// The whole suite: what `BENCH_v6.json` holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSuiteResult {
    /// JSON layout version ([`BENCH_FORMAT`]).
    pub format: String,
    /// `"full"` or `"small"`.
    pub suite: String,
    /// Free-text provenance of the run (which PR / milestone produced it).
    pub milestone: String,
    /// The measured cases.
    pub cases: Vec<CaseResult>,
}

impl BenchSuiteResult {
    /// Total events per second across the suite (sum of events over sum of
    /// wall time — the headline trajectory number).
    #[must_use]
    pub fn aggregate_events_per_sec(&self) -> f64 {
        let events: u64 = self.cases.iter().map(|c| c.sim_events).sum();
        let wall: f64 = self.cases.iter().map(|c| c.wall_s).sum();
        if wall > 0.0 {
            events as f64 / wall
        } else {
            0.0
        }
    }

    /// Compare against a committed baseline: any case whose
    /// `events_per_sec` fell below `threshold` times the baseline's is a
    /// regression. Cases present on only one side are ignored (workloads
    /// may be added over time); returns human-readable violations.
    #[must_use]
    pub fn regressions_vs(&self, baseline: &BenchSuiteResult, threshold: f64) -> Vec<String> {
        let mut violations = Vec::new();
        for case in &self.cases {
            let Some(base) = baseline.cases.iter().find(|b| b.name == case.name) else {
                continue;
            };
            if base.events_per_sec > 0.0 && case.events_per_sec < threshold * base.events_per_sec {
                violations.push(format!(
                    "{}: {:.0} events/s < {:.0}% of baseline {:.0} events/s",
                    case.name,
                    case.events_per_sec,
                    threshold * 100.0,
                    base.events_per_sec
                ));
            }
        }
        violations
    }
}

/// Scale knobs of the fixed suite.
#[derive(Debug, Clone, Copy)]
pub struct SuiteScale {
    /// Nodes in the tenancy workload.
    pub tenancy_nodes: usize,
    /// Incast waves (127 flows each) in the incast workload.
    pub incast_waves: usize,
    /// Bytes per incast flow.
    pub incast_bytes: u64,
    /// Nodes in the pipelined-training workload.
    pub pipeline_nodes: usize,
    /// Nodes in the open-loop stream workload.
    pub stream_nodes: usize,
    /// Poisson arrivals in the open-loop stream workload.
    pub stream_arrivals: u64,
    /// Tensor-parallel degree of the hierarchical GPT-2 workload.
    pub hier_tp: usize,
    /// Microbatches per iteration of the hierarchical GPT-2 workload.
    pub hier_microbatches: usize,
    /// Timed repetitions per case.
    pub iters: u32,
}

impl SuiteScale {
    /// The full suite (committed as `BENCH_v6.json`).
    #[must_use]
    pub fn full() -> Self {
        Self {
            tenancy_nodes: 64,
            incast_waves: 4,
            incast_bytes: 16 << 20,
            pipeline_nodes: 32,
            stream_nodes: 10_000,
            stream_arrivals: 1_000_000,
            hier_tp: 4,
            hier_microbatches: 4,
            iters: 5,
        }
    }

    /// The CI suite (`repro-figures bench --small`, committed as
    /// `BENCH_v6.small.json`): same workload shapes, smaller scales.
    #[must_use]
    pub fn small() -> Self {
        Self {
            tenancy_nodes: 16,
            incast_waves: 1,
            incast_bytes: 4 << 20,
            pipeline_nodes: 16,
            stream_nodes: 1_000,
            stream_arrivals: 50_000,
            hier_tp: 2,
            hier_microbatches: 2,
            iters: 3,
        }
    }
}

/// The frozen tenancy workload: two GoogLeNet trainings + incast background
/// on a narrow wavelength budget. Returns the spec; callers compose it.
#[must_use]
pub fn tenancy_workload(n: usize) -> (ExperimentConfig, TenancySpec) {
    let cfg = ExperimentConfig {
        wavelengths: 8, // narrow budget keeps the fabric contended
        ..ExperimentConfig::default()
    };
    let model = dnn_models::googlenet();
    let im = iteration_model(&model);
    let compute_s = im.forward_s + im.backward_s;
    let buckets: Vec<_> = timeline_buckets(&model, 25 << 20)
        .iter()
        .map(|b| {
            let (schedule, _) =
                lower_allreduce(&cfg, Algorithm::Wrht, n, b.bytes).expect("lowerable bucket");
            (b.ready_s, schedule)
        })
        .collect();
    let incast = generate_traffic(Pattern::Incast, n, 2 * n, 4 << 20, 2023);
    let spec = TenancySpec::new(SchedPolicy::FairShare)
        .with_job(
            Job::training("train-a", 0.0, buckets.clone())
                .with_compute(compute_s)
                .with_priority(2),
        )
        .with_job(
            Job::training("train-b", 2e-3, buckets)
                .with_compute(compute_s)
                .with_priority(1),
        )
        .with_job(Job::dag(
            "incast-bg",
            1e-3,
            DepSchedule::from_released(&incast),
        ));
    (cfg, spec)
}

/// The frozen incast workload: `waves` staggered waves of 127 flows into
/// host 0 on a 128-host star.
#[must_use]
pub fn incast_flows(waves: usize, bytes: u64) -> Vec<electrical_sim::runner::DagFlow> {
    let hosts = 128usize;
    let mut flows = Vec::with_capacity(waves * (hosts - 1));
    for w in 0..waves {
        for src in 1..hosts {
            flows.push(electrical_sim::runner::DagFlow {
                src,
                dst: 0,
                bytes,
                // Waves 20 ms apart; sources staggered 100 us within a wave
                // so arrivals trickle in instead of coalescing to one event.
                release_s: w as f64 * 20e-3 + (src - 1) as f64 * 100e-6,
                deps: Vec::new(),
                stage: w,
            });
        }
    }
    flows
}

/// The frozen pipelined-training workload: one VGG16 iteration's bucket
/// all-reduces chained into a single dependency-aware DAG.
pub fn pipelined_train_dag(n: usize) -> Result<(ExperimentConfig, DepSchedule)> {
    let cfg = ExperimentConfig::default();
    let model = dnn_models::vgg16();
    let mut lowered = Vec::new();
    for b in timeline_buckets(&model, 25 << 20) {
        let (schedule, _) = lower_allreduce(&cfg, Algorithm::Wrht, n, b.bytes)?;
        lowered.push((b.ready_s, schedule));
    }
    let (dag, _) = DepSchedule::chain(&lowered);
    Ok((cfg, dag))
}

/// The frozen open-loop stream workload: `arrivals` Poisson arrivals of a
/// single one-hop 4 KB transfer each, spread round-robin over up to 64
/// disjoint neighbour pairs of an `nodes`-node optical ring. At 200k
/// arrivals/s the offered load stays far below capacity, so the stream
/// drains online and the case measures engine overhead — per-arrival
/// injection into the running kernel, grant-slot reuse and the windowed
/// aggregator — rather than queueing.
#[must_use]
pub fn stream_workload(nodes: usize, arrivals: u64) -> (ExperimentConfig, StreamSpec) {
    let cfg = ExperimentConfig::default();
    let mut spec = StreamSpec::new(
        ArrivalProcess::Poisson {
            rate_hz: 200_000.0,
            count: arrivals,
            seed: 2023,
        },
        SchedPolicy::Fifo,
    )
    .with_window(50e-3)
    .with_reference_bps(cfg.lambda_bandwidth_bps);
    let pairs = 64.min(nodes / 2);
    for p in 0..pairs {
        let schedule = StepSchedule::from_steps(vec![vec![Transfer::shortest(
            NodeId(2 * p),
            NodeId(2 * p + 1),
            4 << 10,
        )]]);
        spec = spec.with_template(StreamTemplate::new(
            format!("ping-{p}"),
            JobWorkload::Steps(schedule),
        ));
    }
    (cfg, spec)
}

/// The frozen hierarchical workload: one GPT-2 small iteration under
/// `tp × 2 stages × 2 replicas` with a 4-expert MoE phase, lowered to one
/// mixed-domain DAG for the composed substrate.
pub fn hier_gpt2_workload(
    tp: usize,
    microbatches: usize,
) -> Result<(ExperimentConfig, HierSpec, DepSchedule)> {
    let cfg = ExperimentConfig::default();
    let model = dnn_models::gpt2_small();
    let spec = ParallelismSpec::new(tp, 2, 2, 4, microbatches)?;
    let stages = StageModel::split(model.gradient_bytes(), spec.pp, 8 << 20);
    let dag = lower_parallelism(&spec, &stages)?;
    Ok((cfg, spec.hier()?, dag))
}

/// Time `run` over `iters` repetitions, returning (min wall seconds, last
/// run's output).
#[allow(clippy::disallowed_methods)] // the sanctioned wall-clock site (see clippy.toml / wrht-analyze R2)
fn time_best<T>(iters: u32, mut run: impl FnMut() -> T) -> (f64, T) {
    assert!(iters > 0);
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters {
        // wrht-analyze: allow(r2, reason = "measurement-only clock read inside the perf harness")
        let t0 = Instant::now();
        let out = run();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("iters > 0"))
}

/// Run the fixed suite at the given scale.
///
/// # Errors
/// Propagates simulator errors; the fixed workloads are valid by
/// construction, so an error here means a simulator bug.
pub fn run_suite(scale: SuiteScale, suite: &str, milestone: &str) -> Result<BenchSuiteResult> {
    let mut cases = Vec::new();

    // Case family 1: the composed tenancy run, both substrates.
    let (cfg, spec) = tenancy_workload(scale.tenancy_nodes);
    let composed = spec.compose()?;
    let arb = spec.arbitration(&composed.job_of);
    for kind in [SubstrateKind::Optical, SubstrateKind::Electrical] {
        let mut substrate =
            cfg.substrate(kind, scale.tenancy_nodes, optical_sim::Strategy::FirstFit);
        let (wall_s, run) = time_best(scale.iters, || {
            substrate
                .execute_dag_jobs(&composed.dag, &arb)
                .expect("frozen tenancy workload executes")
        });
        cases.push(case_result(
            format!("tenancy/{}", kind.label()),
            scale.tenancy_nodes,
            composed.dag.transfers().len(),
            scale.iters,
            wall_s,
            run.dag.makespan_s,
            run.dag.events,
        ));
    }

    // Case family 2: the 128-host incast, event-driven electrical engine.
    {
        let cfg = ExperimentConfig::default();
        let net = cfg.electrical(128);
        let flows = incast_flows(scale.incast_waves, scale.incast_bytes);
        let (wall_s, report) = time_best(scale.iters, || {
            electrical_sim::runner::run_dag_event_driven(
                &net,
                &flows,
                cfg.electrical_step_overhead_s,
            )
            .expect("frozen incast workload executes")
        });
        cases.push(case_result(
            "incast128/electrical".to_string(),
            128,
            flows.len(),
            scale.iters,
            wall_s,
            report.makespan_s,
            report.events,
        ));
    }

    // Case family 3: the pipelined training DAG, both substrates.
    let (cfg, dag) = pipelined_train_dag(scale.pipeline_nodes)?;
    for kind in [SubstrateKind::Optical, SubstrateKind::Electrical] {
        let mut substrate =
            cfg.substrate(kind, scale.pipeline_nodes, optical_sim::Strategy::FirstFit);
        let (wall_s, report) = time_best(scale.iters, || {
            substrate
                .execute_dag(&dag)
                .expect("frozen pipelined workload executes")
        });
        cases.push(case_result(
            format!("pipelined-vgg16/{}", kind.label()),
            scale.pipeline_nodes,
            dag.transfers().len(),
            scale.iters,
            wall_s,
            report.makespan_s,
            report.events,
        ));
    }

    // Case family 4: the open-loop Poisson stream on the optical engine
    // (grant-slot reuse keeps memory bounded at a million arrivals).
    {
        let (cfg, spec) = stream_workload(scale.stream_nodes, scale.stream_arrivals);
        let mut substrate = cfg.substrate(
            SubstrateKind::Optical,
            scale.stream_nodes,
            optical_sim::Strategy::FirstFit,
        );
        let (wall_s, report) = time_best(scale.iters, || {
            substrate
                .execute_stream(&spec)
                .expect("frozen stream workload executes")
        });
        cases.push(case_result(
            "stream-poisson/optical".to_string(),
            scale.stream_nodes,
            report.completed as usize,
            scale.iters,
            wall_s,
            report.makespan_s,
            report.events,
        ));
    }

    // Case family 5: the mixed-parallelism GPT-2 iteration on the
    // composed hierarchical substrate (both engine families in one loop).
    {
        let (cfg, hier, dag) = hier_gpt2_workload(scale.hier_tp, scale.hier_microbatches)?;
        let mut substrate = cfg.try_composed(hier, optical_sim::Strategy::FirstFit)?;
        let (wall_s, report) = time_best(scale.iters, || {
            substrate
                .execute_dag(&dag)
                .expect("frozen hierarchical workload executes")
        });
        cases.push(case_result(
            "hier-gpt2/composed".to_string(),
            hier.nodes(),
            dag.transfers().len(),
            scale.iters,
            wall_s,
            report.makespan_s,
            report.events,
        ));
    }

    Ok(BenchSuiteResult {
        format: BENCH_FORMAT.to_string(),
        suite: suite.to_string(),
        milestone: milestone.to_string(),
        cases,
    })
}

fn case_result(
    name: String,
    nodes: usize,
    transfers: usize,
    iters: u32,
    wall_s: f64,
    makespan_s: f64,
    sim_events: u64,
) -> CaseResult {
    CaseResult {
        name,
        nodes,
        transfers,
        iters,
        wall_s,
        makespan_s,
        sim_events,
        events_per_sec: if wall_s > 0.0 {
            sim_events as f64 / wall_s
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_runs_and_reports_events() {
        let mut scale = SuiteScale::small();
        scale.iters = 1;
        let suite = run_suite(scale, "small", "unit-test").expect("suite runs");
        assert_eq!(suite.cases.len(), 7);
        assert!(suite.cases.iter().any(|c| c.name == "hier-gpt2/composed"));
        for case in &suite.cases {
            assert!(case.wall_s > 0.0, "{}: wall time measured", case.name);
            assert!(case.makespan_s > 0.0, "{}: simulated time", case.name);
            assert!(case.sim_events > 0, "{}: events counted", case.name);
            assert!(case.events_per_sec > 0.0);
        }
        assert!(suite.aggregate_events_per_sec() > 0.0);
    }

    #[test]
    fn regression_check_flags_slowdowns_only() {
        let case = |name: &str, eps: f64| CaseResult {
            name: name.to_string(),
            nodes: 16,
            transfers: 10,
            iters: 1,
            wall_s: 1.0,
            makespan_s: 1.0,
            sim_events: 1000,
            events_per_sec: eps,
        };
        let baseline = BenchSuiteResult {
            format: BENCH_FORMAT.to_string(),
            suite: "small".to_string(),
            milestone: "base".to_string(),
            cases: vec![case("a", 1000.0), case("b", 1000.0), case("only-base", 1.0)],
        };
        let current = BenchSuiteResult {
            cases: vec![case("a", 900.0), case("b", 700.0), case("only-new", 1.0)],
            ..baseline.clone()
        };
        let violations = current.regressions_vs(&baseline, 0.8);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].starts_with("b:"), "{violations:?}");
    }

    #[test]
    fn suite_is_deterministic_in_simulated_time() {
        let mut scale = SuiteScale::small();
        scale.iters = 1;
        let a = run_suite(scale, "small", "det").expect("suite runs");
        let b = run_suite(scale, "small", "det").expect("suite runs");
        for (ca, cb) in a.cases.iter().zip(&b.cases) {
            assert_eq!(
                ca.makespan_s.to_bits(),
                cb.makespan_s.to_bits(),
                "{}",
                ca.name
            );
            assert_eq!(ca.sim_events, cb.sim_events, "{}", ca.name);
        }
    }
}
