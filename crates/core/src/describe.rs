//! Human-readable plan summaries.

use crate::plan::WrhtPlan;
use std::fmt::Write as _;

/// Render a plan as an indented per-level summary (used by examples and
/// debugging sessions; stable enough to grep, not a serialization format).
#[must_use]
pub fn describe_plan(plan: &WrhtPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Wrht plan: n={} m={} w={} -> {} steps ({} levels{})",
        plan.n,
        plan.m,
        plan.wavelengths,
        plan.step_count(),
        plan.depth(),
        if plan.alltoall.is_some() {
            " + all-to-all"
        } else {
            ""
        }
    );
    for (i, level) in plan.levels.iter().enumerate() {
        let sizes: Vec<usize> = level.groups.iter().map(|g| g.members.len()).collect();
        let (min, max) = (
            sizes.iter().copied().min().unwrap_or(0),
            sizes.iter().copied().max().unwrap_or(0),
        );
        let _ = writeln!(
            out,
            "  level {i}: {} groups (sizes {min}..{max}), lambda_req {}, lanes {}",
            level.groups.len(),
            level.lambda_requirement,
            level.lanes
        );
    }
    if let Some(ata) = &plan.alltoall {
        let _ = writeln!(
            out,
            "  all-to-all: {} reps, lambda_req {} (Liang-Shen bound {}), lanes {}",
            ata.reps.len(),
            ata.lambda_requirement,
            crate::steps::alltoall_wavelength_requirement(ata.reps.len()),
            ata.lanes
        );
    } else {
        let _ = writeln!(
            out,
            "  reduce runs to a single root: node {}",
            plan.final_reps[0]
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_plan;

    #[test]
    fn describes_a_fused_plan() {
        let plan = build_plan(64, 4, 8).unwrap();
        let d = describe_plan(&plan);
        assert!(d.contains("n=64 m=4 w=8"));
        assert!(d.contains("all-to-all"));
        assert!(d.contains("level 0"));
        assert!(d.lines().count() >= 3);
    }

    #[test]
    fn describes_a_root_plan() {
        // w=1 + all-to-all infeasible beyond 2 reps still fuses at 2;
        // force a root plan via a candidate: use n=2^k, m=2, w=1 -> fuses.
        // A genuine root plan needs the measured requirement to exceed w at
        // every stop — rare; emulate with the trivial single-node plan.
        let plan = build_plan(1, 2, 1).unwrap();
        let d = describe_plan(&plan);
        assert!(d.contains("single root"));
    }
}
