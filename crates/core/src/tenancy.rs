//! Multi-job tenancy: concurrent jobs sharing one substrate.
//!
//! Every other entry point in this workspace times a **single** workload on
//! an otherwise-idle fabric. A production cluster is never idle: training
//! jobs, inference bursts and background traffic arrive independently and
//! contend for the same wavelengths or links. This module models that as a
//! first-class object:
//!
//! * a [`Job`] is an arrival time plus a workload — a raw [`DepSchedule`],
//!   a step-synchronous [`StepSchedule`], or a bucketed training iteration
//!   (gradient-ready releases per bucket);
//! * a [`TenancySpec`] is a job set plus a [`SchedPolicy`] deciding how
//!   jobs are ordered when they compete for the fabric;
//! * [`crate::substrate::Substrate::execute_jobs`] composes all jobs'
//!   transfers into **one shared DAG run** — each transfer tagged with its
//!   [`JobId`], releases offset by arrival — and returns a
//!   [`ClusterReport`] with per-job makespans, exposed-vs-hidden
//!   communication, slowdown against an isolated run, per-tenant bandwidth
//!   attribution (electrical) and a Jain fairness index.
//!
//! The two fabrics honour the policy differently. The **optical** grant
//! loop arbitrates contended wavelengths across jobs: FIFO and priority
//! order jobs statically, fair share serves the least-served job first
//! (see [`optical_sim::JobArbitration`]). Waiters from different jobs are
//! only ranked in the *same* arbitration scan when their release instants
//! are **bit-identical** `f64`s — the event kernel coalesces same-instant
//! events by bit equality, not by epsilon — so policies tie-break across
//! jobs exactly when releases are derived through identical float
//! expressions (e.g. the same arrival offset); instants one ulp apart are
//! served strictly in time order. The **electrical** fluid model is
//! inherently fair-shared — max-min rates are policy-independent — but the
//! incremental solver attributes its rate solution to tenants so the report
//! can price each job's bandwidth share.
//!
//! A single job is the degenerate cluster: under **every** policy,
//! `execute_jobs` reproduces a direct
//! [`crate::substrate::Substrate::execute_dag`] of the job's own schedule
//! **bit-exactly** on both substrates — the tenancy differential suite
//! pins it.
//!
//! ```
//! use wrht_core::substrate::{OpticalSubstrate, Substrate};
//! use wrht_core::tenancy::{Job, SchedPolicy, TenancySpec};
//! use wrht_core::baselines::oring_schedule;
//! use optical_sim::OpticalConfig;
//!
//! let sched = oring_schedule(8, 8_000, 4);
//! let spec = TenancySpec::new(SchedPolicy::FairShare)
//!     .with_job(Job::steps("a", 0.0, sched.clone()))
//!     .with_job(Job::steps("b", 1e-4, sched));
//! let mut substrate = OpticalSubstrate::new(OpticalConfig::new(8, 4)).unwrap();
//! let report = substrate.execute_jobs(&spec).unwrap();
//! assert_eq!(report.jobs.len(), 2);
//! assert!(report.fairness_index > 0.0 && report.fairness_index <= 1.0);
//! ```

use crate::dag::{DepSchedule, DepTransfer};
use crate::error::Result;
use crate::substrate::DagRunReport;
use crate::timeline::hidden_comm_fraction;
use optical_sim::sim::StepSchedule;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Identifier of a job inside a [`TenancySpec`]: its index in the job list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub usize);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// How concurrent jobs are ordered when they compete for the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// First come, first served: jobs ranked by arrival time (ties by job
    /// index); an earlier job's waiters always win contended wavelengths.
    Fifo,
    /// Deterministic fair share: the job with the least accumulated service
    /// (granted lane-seconds) is served first; arrival breaks ties.
    FairShare,
    /// Strict priority: higher [`Job::priority`] wins; arrival, then job
    /// index, break ties.
    Priority,
}

impl SchedPolicy {
    /// Every policy, in stable order (campaign axes iterate this).
    pub const ALL: [SchedPolicy; 3] = [
        SchedPolicy::Fifo,
        SchedPolicy::FairShare,
        SchedPolicy::Priority,
    ];

    /// Stable lowercase label used in reports, hashes and CSV rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::FairShare => "fair",
            SchedPolicy::Priority => "priority",
        }
    }
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What a [`Job`] executes.
#[derive(Debug, Clone, PartialEq)]
pub enum JobWorkload {
    /// An explicit dependency-aware schedule (e.g. background traffic from
    /// [`DepSchedule::from_released`], or a pipelined lowering).
    Dag(DepSchedule),
    /// A step-synchronous schedule, lowered with full barrier edges.
    Steps(StepSchedule),
    /// A bucketed training iteration: per-bucket `(gradient_ready_s,
    /// schedule)` pairs, chained like
    /// [`crate::timeline::execute_timeline_pipelined`] — each bucket keeps
    /// internal barriers, buckets share no edges and release at their
    /// ready instants (relative to the job's arrival).
    Buckets(Vec<(f64, StepSchedule)>),
}

impl JobWorkload {
    /// Lower to the dependency-aware IR (releases relative to the job's
    /// arrival instant).
    #[must_use]
    pub fn lower(&self) -> DepSchedule {
        match self {
            JobWorkload::Dag(dag) => dag.clone(),
            JobWorkload::Steps(schedule) => DepSchedule::from_steps(schedule),
            JobWorkload::Buckets(buckets) => DepSchedule::chain(buckets).0,
        }
    }
}

/// One tenant: an arrival instant plus a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Display name (carried into [`JobReport`]).
    pub name: String,
    /// Cluster-clock arrival instant, seconds. Every release inside the
    /// workload is offset by this when the job is composed into the shared
    /// run.
    pub arrival_s: f64,
    /// End of the job's own compute relative to arrival, seconds (e.g.
    /// forward + backward of a training iteration); communication past
    /// `arrival_s + compute_s` counts as exposed. 0 for pure-communication
    /// jobs, for which all communication is exposed.
    pub compute_s: f64,
    /// Scheduling priority under [`SchedPolicy::Priority`] — higher wins.
    pub priority: u32,
    /// The communication workload.
    pub workload: JobWorkload,
}

impl Job {
    /// A job executing an explicit dependency-aware schedule.
    #[must_use]
    pub fn dag(name: impl Into<String>, arrival_s: f64, dag: DepSchedule) -> Self {
        Self {
            name: name.into(),
            arrival_s,
            compute_s: 0.0,
            priority: 0,
            workload: JobWorkload::Dag(dag),
        }
    }

    /// A job executing a step-synchronous schedule.
    #[must_use]
    pub fn steps(name: impl Into<String>, arrival_s: f64, schedule: StepSchedule) -> Self {
        Self {
            name: name.into(),
            arrival_s,
            compute_s: 0.0,
            priority: 0,
            workload: JobWorkload::Steps(schedule),
        }
    }

    /// A bucketed training iteration: `(gradient_ready_s, schedule)` per
    /// bucket, ready times relative to the job's arrival.
    #[must_use]
    pub fn training(
        name: impl Into<String>,
        arrival_s: f64,
        buckets: Vec<(f64, StepSchedule)>,
    ) -> Self {
        Self {
            name: name.into(),
            arrival_s,
            compute_s: 0.0,
            priority: 0,
            workload: JobWorkload::Buckets(buckets),
        }
    }

    /// Set the scheduling priority ([`SchedPolicy::Priority`]).
    #[must_use]
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Set the end of the job's own compute (relative to arrival).
    #[must_use]
    pub fn with_compute(mut self, compute_s: f64) -> Self {
        self.compute_s = compute_s;
        self
    }
}

/// A set of concurrent jobs plus the policy arbitrating their contention.
#[derive(Debug, Clone, PartialEq)]
pub struct TenancySpec {
    /// The tenants, indexed by [`JobId`].
    pub jobs: Vec<Job>,
    /// Cross-job scheduling policy.
    pub policy: SchedPolicy,
}

/// The shared multi-job DAG produced by [`TenancySpec::compose`].
#[derive(Debug, Clone, PartialEq)]
pub struct ComposedTenancy {
    /// All jobs' transfers in one schedule: deps re-indexed, stages
    /// offset per job, releases offset by each job's arrival.
    pub dag: DepSchedule,
    /// Owning job of every transfer, parallel to the schedule.
    pub job_of: Vec<JobId>,
    /// Transfer range of each job inside the composed schedule.
    pub ranges: Vec<Range<usize>>,
    /// Each job's own lowered schedule (releases relative to its arrival)
    /// — the isolation-run input, kept so callers do not lower twice.
    pub lowered: Vec<DepSchedule>,
}

/// Cross-job arbitration handed to
/// [`crate::substrate::Substrate::execute_dag_jobs`]. The optical grant
/// loop consumes it directly; the electrical substrate reads the job tags
/// and job count for rate attribution (max-min rates are policy-free).
/// One shared definition — the workload IR is already the optical crate's.
pub use optical_sim::JobArbitration;

/// Result of a raw multi-job DAG run: per-transfer windows plus per-job
/// bandwidth attribution (all zeros on fabrics without rate attribution —
/// the optical ring, and the electrical barrier fast path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantDagRun {
    /// The composed run's transfer windows and solver metrics.
    pub dag: DagRunReport,
    /// Per job: time with at least one transmitting flow, seconds.
    pub job_active_s: Vec<f64>,
    /// Per job: bytes delivered over the fabric.
    pub job_service_bytes: Vec<f64>,
    /// Per job: peak aggregate allocated bandwidth, bytes/s.
    pub job_peak_rate_bps: Vec<f64>,
}

impl TenancySpec {
    /// Empty spec under `policy`.
    #[must_use]
    pub fn new(policy: SchedPolicy) -> Self {
        Self {
            jobs: Vec::new(),
            policy,
        }
    }

    /// Append a job (builder style).
    #[must_use]
    pub fn with_job(mut self, job: Job) -> Self {
        self.jobs.push(job);
        self
    }

    /// Compose all jobs into one shared [`DepSchedule`]: each job's
    /// transfers keep their internal edges (re-indexed), stages are offset
    /// per job so the combined list stays stage-monotone, and every release
    /// is offset by the job's arrival. Jobs share **no** edges — only the
    /// fabric couples them.
    pub fn compose(&self) -> Result<ComposedTenancy> {
        for job in &self.jobs {
            if !job.arrival_s.is_finite() || job.arrival_s < 0.0 {
                return Err(optical_sim::OpticalError::BadConfig(
                    "job arrival must be finite and >= 0",
                )
                .into());
            }
        }
        let mut transfers: Vec<DepTransfer> = Vec::new();
        let mut job_of: Vec<JobId> = Vec::new();
        let mut ranges: Vec<Range<usize>> = Vec::with_capacity(self.jobs.len());
        let mut lowered_jobs: Vec<DepSchedule> = Vec::with_capacity(self.jobs.len());
        let mut stage_base = 0usize;
        for (j, job) in self.jobs.iter().enumerate() {
            let lowered = job.workload.lower();
            let index_base = transfers.len();
            for t in lowered.transfers() {
                transfers.push(DepTransfer {
                    transfer: t.transfer.clone(),
                    deps: t.deps.iter().map(|&d| d + index_base).collect(),
                    release_s: job.arrival_s + t.release_s,
                    stage: stage_base + t.stage,
                });
                job_of.push(JobId(j));
            }
            stage_base += lowered.stage_count();
            ranges.push(index_base..transfers.len());
            lowered_jobs.push(lowered);
        }
        Ok(ComposedTenancy {
            dag: DepSchedule::from_transfers(transfers)?,
            job_of,
            ranges,
            lowered: lowered_jobs,
        })
    }

    /// The policy's arbitration inputs for a composed run: per-job grant
    /// ranks (FIFO: by arrival; priority: by descending priority) and the
    /// fair-share flag, plus the per-transfer job tags.
    #[must_use]
    pub fn arbitration(&self, job_of: &[JobId]) -> JobArbitration {
        let mut order: Vec<usize> = (0..self.jobs.len()).collect();
        let by_arrival = |a: usize, b: usize| {
            self.jobs[a]
                .arrival_s
                .total_cmp(&self.jobs[b].arrival_s)
                .then(a.cmp(&b))
        };
        match self.policy {
            SchedPolicy::Fifo | SchedPolicy::FairShare => order.sort_by(|&a, &b| by_arrival(a, b)),
            SchedPolicy::Priority => order.sort_by(|&a, &b| {
                self.jobs[b]
                    .priority
                    .cmp(&self.jobs[a].priority)
                    .then(by_arrival(a, b))
            }),
        }
        let mut rank = vec![0u64; self.jobs.len()];
        for (r, &j) in order.iter().enumerate() {
            rank[j] = r as u64;
        }
        JobArbitration {
            job_of: job_of.iter().map(|id| id.0).collect(),
            rank,
            fair_share: self.policy == SchedPolicy::FairShare,
        }
    }
}

/// Per-job outcome inside a [`ClusterReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// The job's identifier (index into the spec's job list).
    pub job: JobId,
    /// Display name copied from the spec.
    pub name: String,
    /// Arrival instant, seconds (cluster clock).
    pub arrival_s: f64,
    /// First transfer start (arrival for empty jobs), seconds.
    pub start_s: f64,
    /// Last transfer finish (arrival for empty jobs), seconds.
    pub finish_s: f64,
    /// Job makespan: `finish_s - arrival_s`.
    pub makespan_s: f64,
    /// Makespan of the job run **alone** on an idle substrate.
    pub isolated_s: f64,
    /// `makespan_s / isolated_s` (1.0 for empty jobs) — how much the other
    /// tenants cost this one.
    pub slowdown: f64,
    /// Sum of the job's per-transfer wire durations, seconds.
    pub total_comm_s: f64,
    /// Communication past the job's own compute
    /// (`finish - arrival - compute`), clamped at 0, seconds.
    pub exposed_comm_s: f64,
    /// Fraction of communication hidden behind the job's compute, `[0, 1]`.
    pub hidden_fraction: f64,
    /// Number of transfers.
    pub transfers: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// Mean allocated bandwidth while transmitting, bytes/s (electrical
    /// event engine only; 0 elsewhere).
    pub mean_rate_bps: f64,
    /// Peak aggregate allocated bandwidth, bytes/s (electrical event
    /// engine only; 0 elsewhere).
    pub peak_rate_bps: f64,
    /// The job's fraction of all bytes the fabric delivered (its bandwidth
    /// bill under proportional pricing); 0 when nothing moved.
    pub bandwidth_share: f64,
}

/// Result of a multi-job run on one substrate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Name of the substrate that executed the cluster.
    pub substrate: String,
    /// The scheduling policy in force.
    pub policy: SchedPolicy,
    /// Completion of the last transfer of any job, seconds.
    pub makespan_s: f64,
    /// Per-job outcomes, indexed by [`JobId`].
    pub jobs: Vec<JobReport>,
    /// Jain fairness index over per-job slowdowns, `(0, 1]`: 1 when every
    /// tenant is slowed equally, `1/n` when one tenant absorbs all of it.
    pub fairness_index: f64,
    /// Per-job slowdown percentiles (streaming P², exact for <= 5 jobs),
    /// computed by the same [`crate::quantile::PercentileSet`] the
    /// open-loop stream reports use.
    pub slowdown: crate::quantile::Percentiles,
    /// Per-job makespan percentiles, seconds (same estimator).
    pub job_makespan: crate::quantile::Percentiles,
    /// Highest wavelength index in use at any instant + 1 (0 without WDM).
    pub peak_wavelength: usize,
    /// Fluid-solver invocations (0 on the optical substrate).
    pub rate_recomputations: usize,
    /// Progressive-filling work units (0 on the optical substrate).
    pub solver_work: usize,
    /// Discrete events processed by the shared event kernel.
    pub events: u64,
}

impl ClusterReport {
    /// Mean per-job slowdown (1.0 for an empty cluster).
    #[must_use]
    pub fn mean_slowdown(&self) -> f64 {
        if self.jobs.is_empty() {
            1.0
        } else {
            self.jobs.iter().map(|j| j.slowdown).sum::<f64>() / self.jobs.len() as f64
        }
    }

    /// Worst per-job slowdown (1.0 for an empty cluster).
    #[must_use]
    pub fn max_slowdown(&self) -> f64 {
        self.jobs.iter().map(|j| j.slowdown).fold(1.0f64, f64::max)
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over non-negative values; 1.0
/// for empty or all-zero inputs.
#[must_use]
pub fn jain_index(values: &[f64]) -> f64 {
    let n = values.len();
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|v| v * v).sum();
    if n == 0 || sq <= 0.0 {
        1.0
    } else {
        (sum * sum) / (n as f64 * sq)
    }
}

/// Assemble the [`ClusterReport`] from a composed run plus per-job
/// isolation makespans. Shared by both substrates (called from the
/// provided [`crate::substrate::Substrate::execute_jobs`]).
#[must_use]
pub fn cluster_report(
    spec: &TenancySpec,
    composed: &ComposedTenancy,
    run: &TenantDagRun,
    isolated_s: &[f64],
) -> ClusterReport {
    let total_service: f64 = run.job_service_bytes.iter().sum();
    let mut jobs = Vec::with_capacity(spec.jobs.len());
    for (j, job) in spec.jobs.iter().enumerate() {
        let range = composed.ranges[j].clone();
        let windows = &run.dag.transfers[range.clone()];
        let bytes: u64 = composed.dag.transfers()[range]
            .iter()
            .map(|t| t.transfer.bytes)
            .sum();
        let (start_s, finish_s) = if windows.is_empty() {
            (job.arrival_s, job.arrival_s)
        } else {
            let start = windows
                .iter()
                .map(|w| w.start_s)
                .fold(f64::INFINITY, f64::min);
            let finish = windows.iter().map(|w| w.finish_s).fold(0.0f64, f64::max);
            (start, finish.max(start))
        };
        let makespan_s = (finish_s - job.arrival_s).max(0.0);
        let isolated = isolated_s[j];
        let slowdown = if isolated > 0.0 {
            makespan_s / isolated
        } else {
            1.0
        };
        let total_comm_s: f64 = windows.iter().map(|w| w.finish_s - w.start_s).sum();
        let exposed_comm_s = (finish_s - job.arrival_s - job.compute_s).max(0.0);
        let active = run.job_active_s.get(j).copied().unwrap_or(0.0);
        let service = run.job_service_bytes.get(j).copied().unwrap_or(0.0);
        jobs.push(JobReport {
            job: JobId(j),
            name: job.name.clone(),
            arrival_s: job.arrival_s,
            start_s,
            finish_s,
            makespan_s,
            isolated_s: isolated,
            slowdown,
            total_comm_s,
            exposed_comm_s,
            hidden_fraction: hidden_comm_fraction(total_comm_s, exposed_comm_s),
            transfers: windows.len(),
            bytes,
            mean_rate_bps: if active > 0.0 { service / active } else { 0.0 },
            peak_rate_bps: run.job_peak_rate_bps.get(j).copied().unwrap_or(0.0),
            bandwidth_share: if total_service > 0.0 {
                service / total_service
            } else {
                0.0
            },
        });
    }
    let slowdowns: Vec<f64> = jobs.iter().map(|j| j.slowdown).collect();
    // Percentiles via the same streaming estimator the open-loop stream
    // reports use (crate::quantile), fed in job-index order so closed
    // reports are deterministic. Exact for up to five tenants.
    let mut slow_pcts = crate::quantile::PercentileSet::new();
    let mut make_pcts = crate::quantile::PercentileSet::new();
    for j in &jobs {
        slow_pcts.observe(j.slowdown);
        make_pcts.observe(j.makespan_s);
    }
    ClusterReport {
        substrate: run.dag.substrate.clone(),
        policy: spec.policy,
        makespan_s: run.dag.makespan_s,
        jobs,
        fairness_index: jain_index(&slowdowns),
        slowdown: slow_pcts.summary(),
        job_makespan: make_pcts.summary(),
        peak_wavelength: run.dag.peak_wavelength,
        rate_recomputations: run.dag.rate_recomputations,
        solver_work: run.dag.solver_work,
        events: run.dag.events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::oring_schedule;
    use crate::substrate::{ElectricalSubstrate, OpticalSubstrate, Substrate};
    use optical_sim::{NodeId, OpticalConfig, Transfer};

    fn optical(n: usize, w: usize) -> OpticalSubstrate {
        OpticalSubstrate::new(
            OpticalConfig::new(n, w)
                .with_lambda_bandwidth(1e9)
                .with_message_overhead(0.0)
                .with_hop_propagation(0.0),
        )
        .unwrap()
    }

    fn electrical(n: usize) -> ElectricalSubstrate {
        ElectricalSubstrate::new(electrical_sim::topology::star_cluster(n, 1e9, 0.0), 0.0)
    }

    #[test]
    fn compose_offsets_releases_stages_and_deps() {
        let sched = StepSchedule::from_steps(vec![
            vec![Transfer::shortest(NodeId(0), NodeId(1), 10)],
            vec![Transfer::shortest(NodeId(1), NodeId(2), 20)],
        ]);
        let spec = TenancySpec::new(SchedPolicy::Fifo)
            .with_job(Job::steps("a", 0.0, sched.clone()))
            .with_job(Job::steps("b", 2e-3, sched));
        let c = spec.compose().unwrap();
        assert_eq!(c.dag.len(), 4);
        assert_eq!(c.ranges, vec![0..2, 2..4]);
        assert_eq!(c.job_of, vec![JobId(0), JobId(0), JobId(1), JobId(1)]);
        // Job b's root is released at its arrival; its internal edge is
        // re-indexed, and its stages are offset past job a's.
        assert_eq!(c.dag.transfers()[2].release_s, 2e-3);
        assert_eq!(c.dag.transfers()[2].deps, Vec::<usize>::new());
        assert_eq!(c.dag.transfers()[3].deps, vec![2]);
        assert_eq!(c.dag.transfers()[3].stage, 3);
        // Jobs share no edges.
        assert!(c.dag.transfers()[2..]
            .iter()
            .all(|t| t.deps.iter().all(|&d| d >= 2)));
    }

    #[test]
    fn compose_rejects_bad_arrivals() {
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let spec = TenancySpec::new(SchedPolicy::Fifo).with_job(Job::dag(
                "x",
                bad,
                DepSchedule::default(),
            ));
            assert!(spec.compose().is_err(), "arrival {bad} must be rejected");
        }
    }

    #[test]
    fn arbitration_ranks_follow_the_policy() {
        let mk = |policy| {
            TenancySpec::new(policy)
                .with_job(Job::dag("late", 2.0, DepSchedule::default()).with_priority(5))
                .with_job(Job::dag("early", 1.0, DepSchedule::default()).with_priority(1))
        };
        let fifo = mk(SchedPolicy::Fifo);
        let arb = fifo.arbitration(&[]);
        assert_eq!(arb.rank, vec![1, 0]); // early job ranked first
        assert!(!arb.fair_share);
        let prio = mk(SchedPolicy::Priority);
        let arb = prio.arbitration(&[]);
        assert_eq!(arb.rank, vec![0, 1]); // high priority ranked first
        let fair = mk(SchedPolicy::FairShare);
        assert!(fair.arbitration(&[]).fair_share);
    }

    #[test]
    fn cluster_percentiles_match_the_exact_reference() {
        let sched = StepSchedule::from_steps(vec![vec![Transfer::shortest(
            NodeId(0),
            NodeId(1),
            1 << 20,
        )]]);
        let mut spec = TenancySpec::new(SchedPolicy::Fifo);
        for j in 0..4 {
            spec = spec.with_job(Job::steps(format!("j{j}"), j as f64 * 1e-4, sched.clone()));
        }
        for report in [
            optical(8, 4).execute_jobs(&spec).unwrap(),
            electrical(8).execute_jobs(&spec).unwrap(),
        ] {
            let slowdowns: Vec<f64> = report.jobs.iter().map(|j| j.slowdown).collect();
            let makespans: Vec<f64> = report.jobs.iter().map(|j| j.makespan_s).collect();
            // Four tenants: the streaming estimator is still in its exact
            // phase, so the percentiles equal the nearest-rank reference.
            assert_eq!(
                report.slowdown,
                crate::quantile::exact_percentiles(&slowdowns),
                "{}",
                report.substrate
            );
            assert_eq!(
                report.job_makespan,
                crate::quantile::exact_percentiles(&makespans)
            );
        }
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One tenant absorbing everything: 1/n.
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn single_job_cluster_matches_execute_dag_bit_exactly_on_both() {
        let sched = oring_schedule(8, 8_000, 4);
        for policy in SchedPolicy::ALL {
            let spec = TenancySpec::new(policy).with_job(Job::steps("solo", 0.0, sched.clone()));
            let dag = DepSchedule::from_steps(&sched);

            let mut o = optical(8, 4);
            let direct = o.execute_dag(&dag).unwrap();
            let cluster = o.execute_jobs(&spec).unwrap();
            assert_eq!(cluster.makespan_s.to_bits(), direct.makespan_s.to_bits());
            assert_eq!(cluster.jobs[0].slowdown, 1.0);

            let mut e = electrical(8);
            let direct = e.execute_dag(&dag).unwrap();
            let cluster = e.execute_jobs(&spec).unwrap();
            assert_eq!(cluster.makespan_s.to_bits(), direct.makespan_s.to_bits());
            assert_eq!(cluster.jobs[0].slowdown, 1.0);
            assert_eq!(cluster.fairness_index, 1.0);
        }
    }

    #[test]
    fn two_disjoint_jobs_run_unslowed() {
        // Jobs on disjoint node pairs with ample wavelengths: no mutual
        // slowdown, perfect fairness, on both substrates.
        let a = StepSchedule::from_steps(vec![vec![Transfer::shortest(
            NodeId(0),
            NodeId(1),
            1_000_000,
        )]]);
        let b = StepSchedule::from_steps(vec![vec![Transfer::shortest(
            NodeId(4),
            NodeId(5),
            1_000_000,
        )]]);
        let spec = TenancySpec::new(SchedPolicy::Fifo)
            .with_job(Job::steps("a", 0.0, a))
            .with_job(Job::steps("b", 0.0, b));
        for report in [
            optical(8, 4).execute_jobs(&spec).unwrap(),
            electrical(8).execute_jobs(&spec).unwrap(),
        ] {
            assert!((report.makespan_s - 1e-3).abs() < 1e-12, "{report:?}");
            for j in &report.jobs {
                assert!((j.slowdown - 1.0).abs() < 1e-9);
            }
            assert!((report.fairness_index - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn priority_beats_fifo_order_for_the_favoured_job_under_scarcity() {
        // One wavelength, two jobs on the same arc: under FIFO job 0 goes
        // first; under Priority (job 1 favoured) job 1 goes first.
        let t = |_| {
            StepSchedule::from_steps(vec![vec![Transfer::directed(
                NodeId(0),
                NodeId(2),
                1_000_000,
                optical_sim::Direction::Clockwise,
            )]])
        };
        let spec = |policy| {
            TenancySpec::new(policy)
                .with_job(Job::steps("a", 0.0, t(0)))
                .with_job(Job::steps("b", 0.0, t(1)).with_priority(9))
        };
        let mut sub = optical(8, 1);
        let fifo = sub.execute_jobs(&spec(SchedPolicy::Fifo)).unwrap();
        assert!(fifo.jobs[0].finish_s < fifo.jobs[1].finish_s);
        let prio = sub.execute_jobs(&spec(SchedPolicy::Priority)).unwrap();
        assert!(prio.jobs[1].finish_s < prio.jobs[0].finish_s);
        // The fabric does the same total work either way.
        assert_eq!(fifo.makespan_s.to_bits(), prio.makespan_s.to_bits());
    }

    #[test]
    fn identical_fair_share_jobs_finish_together() {
        let sched = oring_schedule(8, 8_000, 4);
        let spec = TenancySpec::new(SchedPolicy::FairShare)
            .with_job(Job::steps("a", 0.0, sched.clone()))
            .with_job(Job::steps("b", 0.0, sched));
        for report in [
            optical(8, 8).execute_jobs(&spec).unwrap(),
            electrical(8).execute_jobs(&spec).unwrap(),
        ] {
            let (f0, f1) = (report.jobs[0].finish_s, report.jobs[1].finish_s);
            assert!(
                (f0 - f1).abs() <= 1e-9 * f0.max(f1),
                "{}: {f0} vs {f1}",
                report.substrate
            );
            assert!(report.fairness_index > 0.999);
        }
    }

    #[test]
    fn electrical_cluster_attributes_bandwidth_shares() {
        // Two jobs share one uplink: max-min halves the rate, each gets
        // half the delivered bytes and a positive mean rate.
        let s = |dst| {
            StepSchedule::from_steps(vec![vec![Transfer::shortest(NodeId(0), dst, 1_000_000)]])
        };
        let spec = TenancySpec::new(SchedPolicy::FairShare)
            .with_job(Job::steps("a", 0.0, s(NodeId(1))))
            .with_job(Job::steps("b", 0.0, s(NodeId(2))));
        let report = electrical(4).execute_jobs(&spec).unwrap();
        for j in &report.jobs {
            assert!((j.bandwidth_share - 0.5).abs() < 1e-9, "{j:?}");
            assert!(j.mean_rate_bps > 0.0);
            assert!(j.peak_rate_bps >= j.mean_rate_bps - 1e-6);
        }
        assert!(report.rate_recomputations > 0);
    }

    #[test]
    fn empty_cluster_and_empty_jobs_are_total() {
        let spec = TenancySpec::new(SchedPolicy::Fifo);
        let report = optical(8, 4).execute_jobs(&spec).unwrap();
        assert_eq!(report.makespan_s, 0.0);
        assert!(report.jobs.is_empty());
        assert_eq!(report.fairness_index, 1.0);
        assert_eq!(report.mean_slowdown(), 1.0);
        assert_eq!(report.max_slowdown(), 1.0);

        let spec = TenancySpec::new(SchedPolicy::Fifo).with_job(Job::dag(
            "idle",
            5e-3,
            DepSchedule::default(),
        ));
        let report = electrical(4).execute_jobs(&spec).unwrap();
        assert_eq!(report.jobs[0].start_s, 5e-3);
        assert_eq!(report.jobs[0].makespan_s, 0.0);
        assert_eq!(report.jobs[0].slowdown, 1.0);
        assert_eq!(report.jobs[0].hidden_fraction, 1.0);
    }

    #[test]
    fn training_jobs_expose_comm_past_their_compute() {
        let bucket = StepSchedule::from_steps(vec![vec![Transfer::shortest(
            NodeId(0),
            NodeId(1),
            2_000_000,
        )]]);
        // Bucket ready at 1 ms, compute ends at 1.5 ms, transfer lasts 2 ms
        // → 1.5 ms exposed of 2 ms total.
        let job = Job::training("t", 0.0, vec![(1e-3, bucket.clone())]).with_compute(1.5e-3);
        let spec = TenancySpec::new(SchedPolicy::Fifo).with_job(job);
        let report = optical(8, 4).execute_jobs(&spec).unwrap();
        let j = &report.jobs[0];
        assert!((j.finish_s - 3e-3).abs() < 1e-12);
        assert!((j.exposed_comm_s - 1.5e-3).abs() < 1e-12);
        assert!((j.hidden_fraction - 0.25).abs() < 1e-9);
        assert!((j.total_comm_s - 2e-3).abs() < 1e-12);
    }
}
