//! Streaming quantile estimation (the P² algorithm).
//!
//! The open-loop stream engine ([`crate::stream`]) must report slowdown
//! percentiles over runs with millions of arrivals without materializing
//! per-job reports, so quantiles are estimated online with Jain & Chlamtac's
//! **P² algorithm**: five markers track the running min, max, the target
//! quantile and its two flanking quantiles, adjusted with a piecewise
//! parabolic fit on every observation — O(1) memory, O(1) per observation.
//!
//! Until five observations arrive the estimator is *exact* (it holds the
//! sorted sample); afterwards accuracy is the classic P² trade-off, easily
//! sufficient for p50/p99/p999 of slowdown distributions. Estimates are
//! insertion-order-sensitive (like upstream P² implementations), so callers
//! that need reproducible values must feed observations in a deterministic
//! order — everything in this workspace does.
//!
//! The closed-set tenancy report reuses the same estimator
//! ([`crate::tenancy::cluster_report`] feeds per-job slowdowns in job-index
//! order), so closed and streaming percentiles are computed by one code
//! path.
//!
//! ```
//! use wrht_core::quantile::P2Quantile;
//!
//! let mut q = P2Quantile::new(0.5);
//! for i in 1..=1000 {
//!     q.observe(f64::from(i));
//! }
//! let p50 = q.value();
//! assert!((p50 - 500.0).abs() < 20.0, "p50={p50}");
//! ```

use serde::{Deserialize, Serialize};

/// Streaming estimator of a single quantile (P² algorithm).
///
/// State is five marker heights plus five marker positions — fully
/// serializable, so a checkpointed stream resumes its percentile estimates
/// byte-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    /// Target quantile in `(0, 1)`.
    q: f64,
    /// Observations seen so far.
    n: u64,
    /// Marker heights; the first `min(n, 5)` entries are meaningful, kept
    /// sorted while `n <= 5`.
    heights: [f64; 5],
    /// Actual marker positions (1-based observation counts).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
}

impl P2Quantile {
    /// Estimator for quantile `q` (clamped into `[0, 1]`).
    #[must_use]
    pub fn new(q: f64) -> Self {
        let q = q.clamp(0.0, 1.0);
        Self {
            q,
            n: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
        }
    }

    /// Observations seen so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Feed one observation. Non-finite observations are ignored (they
    /// would poison every marker).
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.n < 5 {
            // Exact phase: insert into the sorted prefix.
            let mut i = self.n as usize;
            self.heights[i] = x;
            while i > 0 && self.heights[i - 1] > self.heights[i] {
                self.heights.swap(i - 1, i);
                i -= 1;
            }
            self.n += 1;
            return;
        }

        // Find the marker cell containing x, extending the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k + 1]
            let mut k = 0;
            while x >= self.heights[k + 1] {
                k += 1;
            }
            k
        };
        self.n += 1;

        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        let inc = [0.0, self.q / 2.0, self.q, (1.0 + self.q) / 2.0, 1.0];
        for (d, step) in self.desired.iter_mut().zip(inc) {
            *d += step;
        }

        // Adjust the three interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    /// Piecewise-parabolic (PP) height prediction for marker `i` moved by
    /// `d` (±1).
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (h, p) = (&self.heights, &self.positions);
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    /// Linear fallback when the parabolic prediction is not monotone.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate: 0 before any observation, the exact
    /// sample quantile (nearest-rank) while `n <= 5`, the P² middle marker
    /// afterwards.
    #[must_use]
    pub fn value(&self) -> f64 {
        match self.n {
            0 => 0.0,
            n if n <= 5 => {
                // Nearest-rank on the sorted exact prefix.
                let rank = (self.q * n as f64).ceil().max(1.0) as usize;
                self.heights[rank.min(n as usize) - 1]
            }
            _ => self.heights[2],
        }
    }
}

/// The three percentile levels every report in this workspace exposes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl Percentiles {
    /// All-zero percentiles (the empty-sample value).
    #[must_use]
    pub fn zero() -> Self {
        Self {
            p50: 0.0,
            p99: 0.0,
            p999: 0.0,
        }
    }
}

/// A bundle of P² estimators for p50 / p99 / p999 — the shared helper both
/// the closed [`crate::tenancy::ClusterReport`] and the streaming
/// [`crate::stream::StreamReport`] compute their percentiles with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PercentileSet {
    p50: P2Quantile,
    p99: P2Quantile,
    p999: P2Quantile,
}

impl Default for PercentileSet {
    fn default() -> Self {
        Self::new()
    }
}

impl PercentileSet {
    /// Fresh estimators.
    #[must_use]
    pub fn new() -> Self {
        Self {
            p50: P2Quantile::new(0.5),
            p99: P2Quantile::new(0.99),
            p999: P2Quantile::new(0.999),
        }
    }

    /// Feed one observation into all three estimators.
    pub fn observe(&mut self, x: f64) {
        self.p50.observe(x);
        self.p99.observe(x);
        self.p999.observe(x);
    }

    /// Observations seen so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.p50.count()
    }

    /// Current estimates.
    #[must_use]
    pub fn summary(&self) -> Percentiles {
        Percentiles {
            p50: self.p50.value(),
            p99: self.p99.value(),
            p999: self.p999.value(),
        }
    }
}

/// Exact percentiles of a small sample (used by tests as the reference for
/// the streaming estimator, and total on empty input).
#[must_use]
pub fn exact_percentiles(values: &[f64]) -> Percentiles {
    if values.is_empty() {
        return Percentiles::zero();
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pick = |q: f64| {
        let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank.min(sorted.len()) - 1]
    };
    Percentiles {
        p50: pick(0.5),
        p99: pick(0.99),
        p999: pick(0.999),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimator_reports_zero() {
        let q = P2Quantile::new(0.5);
        assert_eq!(q.value(), 0.0);
        assert_eq!(PercentileSet::new().summary(), Percentiles::zero());
    }

    #[test]
    fn small_samples_are_exact() {
        let mut q = P2Quantile::new(0.5);
        for x in [5.0, 1.0, 3.0] {
            q.observe(x);
        }
        assert_eq!(q.value(), 3.0);
        let mut q = P2Quantile::new(0.99);
        for x in [2.0, 4.0] {
            q.observe(x);
        }
        assert_eq!(q.value(), 4.0);
    }

    #[test]
    fn uniform_stream_percentiles_land_near_truth() {
        let mut set = PercentileSet::new();
        // Deterministic pseudo-uniform insertion order.
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        for _ in 0..100_000 {
            x = x.wrapping_mul(0xd129_0d3b_3249_01cb).wrapping_add(1);
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            set.observe(u);
        }
        let p = set.summary();
        assert!((p.p50 - 0.5).abs() < 0.02, "p50={}", p.p50);
        assert!((p.p99 - 0.99).abs() < 0.01, "p99={}", p.p99);
        assert!((p.p999 - 0.999).abs() < 0.005, "p999={}", p.p999);
        assert_eq!(set.count(), 100_000);
    }

    #[test]
    fn sorted_and_constant_streams_are_handled() {
        let mut q = P2Quantile::new(0.9);
        for i in 0..1000 {
            q.observe(f64::from(i));
        }
        assert!((q.value() - 900.0).abs() < 30.0, "p90={}", q.value());
        let mut c = P2Quantile::new(0.5);
        for _ in 0..100 {
            c.observe(7.0);
        }
        assert_eq!(c.value(), 7.0);
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut q = P2Quantile::new(0.5);
        q.observe(f64::NAN);
        q.observe(f64::INFINITY);
        q.observe(2.0);
        assert_eq!(q.count(), 1);
        assert_eq!(q.value(), 2.0);
    }

    #[test]
    fn estimator_state_round_trips_through_json() {
        let mut set = PercentileSet::new();
        for i in 0..50 {
            set.observe(f64::from(i) * 0.13);
        }
        let json = serde_json::to_string(&set).unwrap();
        let back: PercentileSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, set);
        let a = serde_json::to_string(&back.summary()).unwrap();
        let b = serde_json::to_string(&set.summary()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn exact_percentiles_match_nearest_rank() {
        let p = exact_percentiles(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(p.p50, 2.0);
        assert_eq!(p.p99, 4.0);
        assert_eq!(exact_percentiles(&[]), Percentiles::zero());
    }
}
