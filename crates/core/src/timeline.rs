//! Simulator-backed training timelines.
//!
//! [`crate::substrate::Substrate`] times a *single* communication schedule;
//! a data-parallel training iteration interleaves many of them: each
//! gradient bucket becomes ready part-way through backward and its
//! all-reduce serializes on the network behind earlier buckets. This module
//! executes that interleaving **on an actual substrate** — every bucket is
//! lowered to a [`StepSchedule`], executed on the optical or electrical
//! fabric, and the resulting [`RunReport`]s are merged with the
//! gradient-ready times into an [`IterationTimeline`]: per-bucket
//! ready/start/finish instants, exposed vs hidden communication, and the
//! substrate's own per-step timings for every bucket.
//!
//! The analytic counterpart is `dnn_models::training::simulate_iteration`,
//! which prices buckets with a closed-form callback; differential tests
//! assert the two agree whenever the callback matches the substrate.
//!
//! ```
//! use wrht_core::substrate::{OpticalSubstrate, Substrate};
//! use wrht_core::timeline::{execute_timeline, TimelineBucket};
//! use wrht_core::baselines::oring_schedule;
//! use optical_sim::OpticalConfig;
//!
//! let mut substrate = OpticalSubstrate::new(OpticalConfig::new(8, 4)).unwrap();
//! let buckets = [
//!     TimelineBucket::new(8_000, 2e-3),
//!     TimelineBucket::new(8_000, 1e-3),
//! ];
//! let t = execute_timeline(&mut substrate, &buckets, 4e-3, |bytes| {
//!     Ok(oring_schedule(8, bytes as usize / 4, 4))
//! })
//! .unwrap();
//! assert_eq!(t.buckets.len(), 2);
//! assert!(t.overlapped_s >= 4e-3);
//! assert!(t.hidden_fraction >= 0.0 && t.hidden_fraction <= 1.0);
//! ```

use crate::dag::DepSchedule;
use crate::error::Result;
use crate::substrate::{RunReport, StepTiming, Substrate};
use optical_sim::sim::StepSchedule;
use serde::{Deserialize, Serialize};

/// One gradient bucket to execute: payload plus the instant its gradient
/// is ready (typically from `dnn_models::training::bucket_ready_times`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineBucket {
    /// Payload bytes of the fused bucket.
    pub bytes: u64,
    /// Gradient-ready time, seconds from iteration start.
    pub ready_s: f64,
    /// Display label (e.g. the earliest fused layer's name).
    pub label: String,
}

impl TimelineBucket {
    /// Unlabelled bucket.
    #[must_use]
    pub fn new(bytes: u64, ready_s: f64) -> Self {
        Self {
            bytes,
            ready_s,
            label: String::new(),
        }
    }

    /// Attach a display label.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// One executed bucket of an [`IterationTimeline`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketTimeline {
    /// Display label carried over from the input bucket.
    pub label: String,
    /// Payload bytes.
    pub bytes: u64,
    /// Gradient-ready instant, seconds.
    pub ready_s: f64,
    /// All-reduce launch instant (ready, or later if the network was
    /// busy with an earlier bucket), seconds.
    pub start_s: f64,
    /// All-reduce completion instant, seconds.
    pub finish_s: f64,
    /// The substrate's execution report for this bucket's schedule.
    pub report: RunReport,
}

impl BucketTimeline {
    /// Communication duration of the bucket, seconds.
    #[must_use]
    pub fn comm_s(&self) -> f64 {
        self.finish_s - self.start_s
    }

    /// Time the ready bucket waited for the network, seconds.
    #[must_use]
    pub fn wait_s(&self) -> f64 {
        self.start_s - self.ready_s
    }

    /// Absolute finish instant of every substrate step of this bucket,
    /// assuming the steps run back-to-back from `start_s`.
    ///
    /// Exact for [`execute_timeline`] buckets (steps are contiguous by
    /// construction). For [`execute_timeline_pipelined`] buckets the
    /// report stores per-step *spans* only, and a step may additionally
    /// wait on wavelengths or links held by an overlapping bucket, so the
    /// cumulative sum can under-report the true absolute instants — use
    /// the [`crate::substrate::DagRunReport`] transfer windows when exact
    /// cross-bucket timing matters.
    #[must_use]
    pub fn step_finish_times_s(&self) -> Vec<f64> {
        let mut at = self.start_s;
        self.report
            .steps
            .iter()
            .map(|s| {
                at += s.duration_s;
                at
            })
            .collect()
    }
}

/// A full simulator-backed training iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationTimeline {
    /// Name of the substrate that executed the buckets.
    pub substrate: String,
    /// End of compute (forward + backward), seconds.
    pub compute_s: f64,
    /// Iteration time with bucket-wise overlap, seconds.
    pub overlapped_s: f64,
    /// Iteration time with one fused post-backward all-reduce, seconds.
    pub sequential_s: f64,
    /// Sum of per-bucket communication durations, seconds.
    pub total_comm_s: f64,
    /// Communication sticking out past the end of backward, seconds.
    pub exposed_comm_s: f64,
    /// Fraction of communication hidden behind compute, in `[0, 1]`.
    pub hidden_fraction: f64,
    /// Per-bucket timelines in launch order.
    pub buckets: Vec<BucketTimeline>,
}

impl IterationTimeline {
    /// Number of executed buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Total substrate steps over all buckets.
    #[must_use]
    pub fn total_steps(&self) -> usize {
        self.buckets.iter().map(|b| b.report.step_count()).sum()
    }

    /// Speedup of the overlapped iteration over the sequential one
    /// (1.0 for empty/zero-time iterations).
    #[must_use]
    pub fn overlap_speedup(&self) -> f64 {
        if self.overlapped_s > 0.0 {
            self.sequential_s / self.overlapped_s
        } else {
            1.0
        }
    }
}

/// Fraction of communication hidden behind compute (mirrors
/// `dnn_models::training::hidden_comm_fraction`; kept dependency-free here
/// and pinned equal by the differential suite). `NaN`-free and in `[0, 1]`
/// for every input.
#[must_use]
pub fn hidden_comm_fraction(total_comm_s: f64, exposed_s: f64) -> f64 {
    if total_comm_s.is_finite() && total_comm_s > 0.0 {
        ((total_comm_s - exposed_s.min(total_comm_s)) / total_comm_s).clamp(0.0, 1.0)
    } else if exposed_s > 0.0 {
        0.0
    } else {
        1.0
    }
}

/// Execute one data-parallel iteration on `substrate`.
///
/// Buckets launch in list order and serialize on the network (one
/// collective at a time, as NCCL/Horovod do): bucket `i` starts at
/// `max(ready_s, finish of bucket i-1)` and runs for the simulated
/// duration of `lower(bytes)` on the substrate. `compute_s` is the end of
/// the backward pass; `lower` maps a payload to the substrate IR (e.g. a
/// Wrht plan lowering or a ring all-reduce).
///
/// The sequential baseline executes one fused `lower(total_bytes)`
/// schedule after compute; an empty bucket list (or all-zero payloads)
/// yields a compute-only timeline.
pub fn execute_timeline(
    substrate: &mut dyn Substrate,
    buckets: &[TimelineBucket],
    compute_s: f64,
    mut lower: impl FnMut(u64) -> Result<StepSchedule>,
) -> Result<IterationTimeline> {
    let mut network_free = 0.0f64;
    let mut executed = Vec::with_capacity(buckets.len());
    let mut total_comm = 0.0f64;
    for b in buckets {
        let schedule = lower(b.bytes)?;
        let report = substrate.execute(&schedule)?;
        let start = b.ready_s.max(network_free);
        let finish = start + report.total_time_s;
        total_comm += report.total_time_s;
        network_free = finish;
        executed.push(BucketTimeline {
            label: b.label.clone(),
            bytes: b.bytes,
            ready_s: b.ready_s,
            start_s: start,
            finish_s: finish,
            report,
        });
    }

    let overlapped_s = executed
        .last()
        .map_or(compute_s, |b| b.finish_s.max(compute_s));

    let total_bytes: u64 = buckets.iter().map(|b| b.bytes).sum();
    let sequential_comm_s = if total_bytes > 0 {
        substrate.execute(&lower(total_bytes)?)?.total_time_s
    } else {
        0.0
    };

    let exposed_comm_s = (overlapped_s - compute_s).max(0.0);
    Ok(IterationTimeline {
        substrate: substrate.name().to_string(),
        compute_s,
        overlapped_s,
        sequential_s: compute_s + sequential_comm_s,
        total_comm_s: total_comm,
        exposed_comm_s,
        hidden_fraction: hidden_comm_fraction(total_comm, exposed_comm_s),
        buckets: executed,
    })
}

/// Execute one data-parallel iteration with **pipelined** bucket
/// all-reduces: the lowered bucket schedules are chained into one
/// [`DepSchedule`] (internal barrier edges per bucket, release at each
/// bucket's gradient-ready time, no cross-bucket edges) and executed
/// event-driven in a single [`Substrate::execute_dag`] run. Consecutive
/// buckets overlap on the wire wherever links and wavelengths allow,
/// instead of serializing behind a global network lock as
/// [`execute_timeline`] (and NCCL-style runtimes) do.
///
/// The sequential baseline and all derived fractions are computed exactly
/// as in [`execute_timeline`]. Per-bucket `report`s are reconstructed from
/// the transfer windows: step durations are each stage's first-start to
/// last-finish span (stages of different buckets may overlap in time), and
/// per-step wavelength footprints are not tracked in this mode (the DAG
/// report only carries the run-wide peak).
pub fn execute_timeline_pipelined(
    substrate: &mut dyn Substrate,
    buckets: &[TimelineBucket],
    compute_s: f64,
    mut lower: impl FnMut(u64) -> Result<StepSchedule>,
) -> Result<IterationTimeline> {
    let mut lowered: Vec<(f64, StepSchedule)> = Vec::with_capacity(buckets.len());
    for b in buckets {
        lowered.push((b.ready_s, lower(b.bytes)?));
    }
    let (dag, ranges) = DepSchedule::chain(&lowered);
    let report = substrate.execute_dag(&dag)?;
    let substrate_name = report.substrate.clone();

    let mut executed = Vec::with_capacity(buckets.len());
    let mut total_comm = 0.0f64;
    let mut last_finish = 0.0f64;
    for ((b, range), (_, schedule)) in buckets.iter().zip(&ranges).zip(&lowered) {
        let windows = &report.transfers[range.clone()];
        let start = windows
            .iter()
            .map(|w| w.start_s)
            .fold(f64::INFINITY, f64::min);
        let finish = windows.iter().map(|w| w.finish_s).fold(0.0f64, f64::max);
        let (start, finish) = if windows.is_empty() {
            (b.ready_s, b.ready_s)
        } else {
            (start, finish.max(start))
        };
        // Reconstruct per-step timings from the windows: transfers of the
        // bucket appear in schedule order, so chunk them by step.
        let mut steps = Vec::with_capacity(schedule.len());
        let mut offset = 0usize;
        for step in schedule.steps() {
            let step_windows = &windows[offset..offset + step.len()];
            offset += step.len();
            let s0 = step_windows
                .iter()
                .map(|w| w.start_s)
                .fold(f64::INFINITY, f64::min);
            let s1 = step_windows
                .iter()
                .map(|w| w.finish_s)
                .fold(0.0f64, f64::max);
            steps.push(StepTiming {
                duration_s: if step_windows.is_empty() {
                    0.0
                } else {
                    (s1 - s0).max(0.0)
                },
                transfers: step.len(),
                bytes: step.iter().map(|t| t.bytes).sum(),
                peak_wavelength: 0,
            });
        }
        total_comm += finish - start;
        last_finish = last_finish.max(finish);
        executed.push(BucketTimeline {
            label: b.label.clone(),
            bytes: b.bytes,
            ready_s: b.ready_s,
            start_s: start,
            finish_s: finish,
            report: RunReport {
                substrate: substrate_name.clone(),
                total_time_s: finish - start,
                steps,
            },
        });
    }

    let overlapped_s = if executed.is_empty() {
        compute_s
    } else {
        last_finish.max(compute_s)
    };

    let total_bytes: u64 = buckets.iter().map(|b| b.bytes).sum();
    let sequential_comm_s = if total_bytes > 0 {
        substrate.execute(&lower(total_bytes)?)?.total_time_s
    } else {
        0.0
    };

    let exposed_comm_s = (overlapped_s - compute_s).max(0.0);
    Ok(IterationTimeline {
        substrate: substrate.name().to_string(),
        compute_s,
        overlapped_s,
        sequential_s: compute_s + sequential_comm_s,
        total_comm_s: total_comm,
        exposed_comm_s,
        hidden_fraction: hidden_comm_fraction(total_comm, exposed_comm_s),
        buckets: executed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::{ElectricalSubstrate, OpticalSubstrate};
    use optical_sim::request::Transfer;
    use optical_sim::{NodeId, OpticalConfig};

    /// 1 GB/s per lambda, no overheads: a one-transfer schedule of `bytes`
    /// lasts exactly `bytes / 1e9` seconds.
    fn optical() -> OpticalSubstrate {
        OpticalSubstrate::new(
            OpticalConfig::new(8, 4)
                .with_lambda_bandwidth(1e9)
                .with_message_overhead(0.0)
                .with_hop_propagation(0.0),
        )
        .unwrap()
    }

    fn one_transfer(bytes: u64) -> Result<StepSchedule> {
        Ok(StepSchedule::from_steps(vec![vec![Transfer::shortest(
            NodeId(0),
            NodeId(1),
            bytes,
        )]]))
    }

    #[test]
    fn buckets_serialize_on_the_network() {
        let mut sub = optical();
        let buckets = [
            TimelineBucket::new(2_000_000, 1e-3), // 2 ms transfer, ready at 1 ms
            TimelineBucket::new(1_000_000, 2e-3), // ready before net is free
        ];
        let t = execute_timeline(&mut sub, &buckets, 10e-3, one_transfer).unwrap();
        assert_eq!(t.buckets[0].start_s, 1e-3);
        assert!((t.buckets[0].finish_s - 3e-3).abs() < 1e-12);
        // Second bucket was ready at 2 ms but waits for the network.
        assert!((t.buckets[1].start_s - 3e-3).abs() < 1e-12);
        assert!((t.buckets[1].wait_s() - 1e-3).abs() < 1e-12);
        assert!((t.buckets[1].finish_s - 4e-3).abs() < 1e-12);
        // Fully hidden behind the 10 ms compute.
        assert_eq!(t.overlapped_s, 10e-3);
        assert_eq!(t.hidden_fraction, 1.0);
        assert_eq!(t.exposed_comm_s, 0.0);
        assert!((t.total_comm_s - 3e-3).abs() < 1e-12);
    }

    #[test]
    fn exposed_communication_extends_the_iteration() {
        let mut sub = optical();
        let buckets = [TimelineBucket::new(5_000_000, 1e-3)]; // 5 ms transfer
        let t = execute_timeline(&mut sub, &buckets, 2e-3, one_transfer).unwrap();
        assert!((t.overlapped_s - 6e-3).abs() < 1e-12);
        assert!((t.exposed_comm_s - 4e-3).abs() < 1e-12);
        // 1 of 5 ms hidden.
        assert!((t.hidden_fraction - 0.2).abs() < 1e-9);
        // Sequential: compute + fused 5 MB transfer.
        assert!((t.sequential_s - 7e-3).abs() < 1e-12);
        assert!(t.overlap_speedup() > 1.0);
    }

    #[test]
    fn empty_bucket_list_is_compute_only() {
        let mut sub = optical();
        let t = execute_timeline(&mut sub, &[], 3e-3, one_transfer).unwrap();
        assert_eq!(t.overlapped_s, 3e-3);
        assert_eq!(t.sequential_s, 3e-3);
        assert_eq!(t.total_comm_s, 0.0);
        assert_eq!(t.hidden_fraction, 1.0);
        assert_eq!(t.bucket_count(), 0);
        assert_eq!(t.overlap_speedup(), 1.0);
    }

    #[test]
    fn reports_carry_substrate_step_timings() {
        let mut sub = optical();
        let two_steps = |bytes: u64| -> Result<StepSchedule> {
            let half = bytes / 2;
            Ok(StepSchedule::from_steps(vec![
                vec![Transfer::shortest(NodeId(0), NodeId(1), half)],
                vec![Transfer::shortest(NodeId(1), NodeId(2), bytes - half)],
            ]))
        };
        let buckets = [TimelineBucket::new(2_000_000, 0.0).with_label("fc")];
        let t = execute_timeline(&mut sub, &buckets, 0.0, two_steps).unwrap();
        assert_eq!(t.total_steps(), 2);
        assert_eq!(t.buckets[0].label, "fc");
        assert_eq!(t.substrate, "optical");
        let finishes = t.buckets[0].step_finish_times_s();
        assert_eq!(finishes.len(), 2);
        assert!((finishes[0] - 1e-3).abs() < 1e-12);
        assert!((finishes[1] - 2e-3).abs() < 1e-12);
        assert_eq!(finishes[1], t.buckets[0].finish_s);
    }

    #[test]
    fn lowering_errors_propagate() {
        let mut sub = optical();
        let buckets = [TimelineBucket::new(100, 0.0)];
        let r = execute_timeline(&mut sub, &buckets, 0.0, |_| {
            Err(crate::error::WrhtError::NoNodes)
        });
        assert!(r.is_err());
    }

    #[test]
    fn pipelined_overlaps_disjoint_buckets() {
        // Two buckets on disjoint node pairs, both ready at t=0. Barrier
        // mode serializes them behind the network lock (2 ms); pipelined
        // mode runs them concurrently (1 ms).
        let schedules = [
            |bytes| -> Result<StepSchedule> {
                Ok(StepSchedule::from_steps(vec![vec![Transfer::shortest(
                    NodeId(0),
                    NodeId(1),
                    bytes,
                )]]))
            },
            |bytes| -> Result<StepSchedule> {
                Ok(StepSchedule::from_steps(vec![vec![Transfer::shortest(
                    NodeId(4),
                    NodeId(5),
                    bytes,
                )]]))
            },
        ];
        let buckets = [
            TimelineBucket::new(1_000_000, 0.0),
            TimelineBucket::new(1_000_000, 0.0),
        ];
        let mut calls = 0usize;
        let lower = |bytes: u64| {
            let f = schedules[calls.min(1)];
            calls += 1;
            f(bytes)
        };
        let mut sub = optical();
        let t = execute_timeline_pipelined(&mut sub, &buckets, 0.0, lower).unwrap();
        assert!((t.overlapped_s - 1e-3).abs() < 1e-12, "{}", t.overlapped_s);
        assert_eq!(t.bucket_count(), 2);
        assert!((t.buckets[1].finish_s - 1e-3).abs() < 1e-12);
        // Both bucket windows start at 0: truly overlapped.
        assert_eq!(t.buckets[0].start_s, 0.0);
        assert_eq!(t.buckets[1].start_s, 0.0);
    }

    #[test]
    fn pipelined_is_never_slower_than_barrier_on_shared_links() {
        for electrical in [false, true] {
            let buckets = [
                TimelineBucket::new(2_000_000, 1e-3),
                TimelineBucket::new(1_000_000, 2e-3),
            ];
            let run = |pipelined: bool| {
                let mut optical_sub;
                let mut electrical_sub;
                let sub: &mut dyn Substrate = if electrical {
                    electrical_sub = ElectricalSubstrate::new(
                        electrical_sim::topology::star_cluster(8, 1e9, 0.0),
                        0.0,
                    );
                    &mut electrical_sub
                } else {
                    optical_sub = optical();
                    &mut optical_sub
                };
                if pipelined {
                    execute_timeline_pipelined(sub, &buckets, 10e-3, one_transfer).unwrap()
                } else {
                    execute_timeline(sub, &buckets, 10e-3, one_transfer).unwrap()
                }
            };
            let barrier = run(false);
            let pipelined = run(true);
            assert!(
                pipelined.buckets[1].finish_s <= barrier.buckets[1].finish_s + 1e-12,
                "electrical={electrical}: pipelined {} vs barrier {}",
                pipelined.buckets[1].finish_s,
                barrier.buckets[1].finish_s
            );
            assert!(pipelined.overlapped_s <= barrier.overlapped_s + 1e-12);
            // Same fused sequential baseline in both modes.
            assert_eq!(
                pipelined.sequential_s.to_bits(),
                barrier.sequential_s.to_bits()
            );
        }
    }

    #[test]
    fn pipelined_empty_bucket_list_is_compute_only() {
        let mut sub = optical();
        let t = execute_timeline_pipelined(&mut sub, &[], 3e-3, one_transfer).unwrap();
        assert_eq!(t.overlapped_s, 3e-3);
        assert_eq!(t.sequential_s, 3e-3);
        assert_eq!(t.total_comm_s, 0.0);
        assert_eq!(t.hidden_fraction, 1.0);
    }

    #[test]
    fn pipelined_reconstructs_per_step_timings() {
        let two_steps = |bytes: u64| -> Result<StepSchedule> {
            let half = bytes / 2;
            Ok(StepSchedule::from_steps(vec![
                vec![Transfer::shortest(NodeId(0), NodeId(1), half)],
                vec![Transfer::shortest(NodeId(1), NodeId(2), bytes - half)],
            ]))
        };
        let buckets = [TimelineBucket::new(2_000_000, 0.0).with_label("fc")];
        let mut sub = optical();
        let t = execute_timeline_pipelined(&mut sub, &buckets, 0.0, two_steps).unwrap();
        assert_eq!(t.total_steps(), 2);
        let b = &t.buckets[0];
        assert!((b.report.steps[0].duration_s - 1e-3).abs() < 1e-12);
        assert!((b.report.steps[1].duration_s - 1e-3).abs() < 1e-12);
        assert!((b.comm_s() - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn works_on_the_electrical_substrate_too() {
        let mut sub =
            ElectricalSubstrate::new(electrical_sim::topology::star_cluster(8, 1e9, 0.0), 0.0);
        let buckets = [
            TimelineBucket::new(1_000_000, 0.0),
            TimelineBucket::new(1_000_000, 0.0),
        ];
        let t = execute_timeline(&mut sub, &buckets, 1e-3, one_transfer).unwrap();
        assert_eq!(t.substrate, "electrical");
        // Two serialized 1 ms transfers, 1 ms of compute.
        assert!((t.overlapped_s - 2e-3).abs() < 1e-12);
        assert!((t.sequential_s - 3e-3).abs() < 1e-12);
    }
}
