//! Optical baselines: O-Ring and a generic collectives→optical lowering.
//!
//! **O-Ring** is the paper's optical baseline: the classic ring all-reduce
//! run over the optical ring with a *single wavelength per transmission* —
//! exactly the deficiency Wrht is designed to fix.

use crate::error::Result;
use crate::substrate::{RunReport, Substrate};
use collectives::ring::ring_allreduce;
use collectives::Schedule;
use optical_sim::request::Transfer;
use optical_sim::sim::StepSchedule;

/// Lower any logical collective schedule to the substrate IR: shortest
/// paths, `lanes` wavelengths per transfer, `bytes_per_elem` element width.
/// The resulting [`StepSchedule`] executes on any [`Substrate`] (the
/// electrical fabric ignores the optical-only routing fields).
#[must_use]
pub fn lower_collective_to_optical(
    schedule: &Schedule,
    bytes_per_elem: usize,
    lanes: usize,
) -> StepSchedule {
    let mut out = StepSchedule::default();
    for step in &schedule.steps {
        let transfers: Vec<Transfer> = step
            .transfers
            .iter()
            .filter(|t| !t.range.is_empty())
            .map(|t| {
                Transfer::shortest(
                    optical_sim::NodeId(t.src),
                    optical_sim::NodeId(t.dst),
                    (t.range.len() * bytes_per_elem) as u64,
                )
                .with_lanes(lanes)
            })
            .collect();
        out.push_step(transfers);
    }
    out
}

/// The O-Ring schedule: ring all-reduce over `n` optical nodes, moving
/// `elems * bytes_per_elem` bytes in total, one wavelength per transfer.
#[must_use]
pub fn oring_schedule(n: usize, elems: usize, bytes_per_elem: usize) -> StepSchedule {
    lower_collective_to_optical(&ring_allreduce(n, elems), bytes_per_elem, 1)
}

/// Lower a logical collective schedule and execute it on `substrate` —
/// the one-call path every baseline measurement goes through.
pub fn run_collective(
    substrate: &mut dyn Substrate,
    schedule: &Schedule,
    bytes_per_elem: usize,
    lanes: usize,
) -> Result<RunReport> {
    substrate.execute(&lower_collective_to_optical(
        schedule,
        bytes_per_elem,
        lanes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use optical_sim::{OpticalConfig, RingSimulator, Strategy};

    #[test]
    fn oring_uses_one_wavelength() {
        let n = 16;
        let sched = oring_schedule(n, 1600, 4);
        let mut sim = RingSimulator::new(OpticalConfig::new(n, 8));
        let report = sim.run_stepped(&sched, Strategy::FirstFit).unwrap();
        assert_eq!(report.stats.peak_wavelengths(), 1);
        assert_eq!(report.stats.step_count(), 2 * (n - 1));
    }

    #[test]
    fn oring_time_matches_closed_form() {
        // T = 2(n-1) * (alpha + (S/n)/B + P) for divisible payloads.
        let n = 8;
        let elems = 8_000;
        let bpe = 4;
        let cfg = OpticalConfig::new(n, 4)
            .with_lambda_bandwidth(1e9)
            .with_message_overhead(1e-6)
            .with_hop_propagation(1e-8);
        let sched = oring_schedule(n, elems, bpe);
        let mut sim = RingSimulator::new(cfg);
        let t = sim
            .run_stepped(&sched, Strategy::FirstFit)
            .unwrap()
            .total_time_s;
        let chunk = (elems / n * bpe) as f64;
        let expected = (2 * (n - 1)) as f64 * (1e-6 + chunk / 1e9 + 1e-8);
        assert!(
            (t - expected).abs() / expected < 1e-9,
            "t={t} exp={expected}"
        );
    }

    #[test]
    fn lowering_skips_empty_ranges() {
        // Ring with more nodes than elements produces some empty chunks
        // which must not turn into zero-byte optical transfers.
        let sched = oring_schedule(8, 5, 4);
        let mut sim = RingSimulator::new(OpticalConfig::new(8, 2));
        sim.run_stepped(&sched, Strategy::FirstFit).unwrap();
    }

    #[test]
    fn lane_parameter_is_applied() {
        let logical = ring_allreduce(4, 400);
        let sched = lower_collective_to_optical(&logical, 4, 3);
        for step in sched.steps() {
            for t in step {
                assert_eq!(t.lanes, 3);
            }
        }
    }

    #[test]
    fn run_collective_agrees_across_substrates_on_matched_physics() {
        use crate::substrate::{ElectricalSubstrate, OpticalSubstrate};
        let n = 8;
        let sched = ring_allreduce(n, 8_000);
        let mut optical = OpticalSubstrate::new(
            OpticalConfig::new(n, 1)
                .with_lambda_bandwidth(1e9)
                .with_message_overhead(0.0)
                .with_hop_propagation(0.0),
        )
        .unwrap();
        let mut electrical =
            ElectricalSubstrate::new(electrical_sim::topology::ring(n, 1e9, 0.0), 0.0);
        let o = run_collective(&mut optical, &sched, 4, 1).unwrap();
        let e = run_collective(&mut electrical, &sched, 4, 1).unwrap();
        assert!((o.total_time_s - e.total_time_s).abs() / e.total_time_s < 1e-9);
    }

    #[test]
    fn run_collective_on_empty_schedule_is_zero() {
        use crate::substrate::OpticalSubstrate;
        let mut optical = OpticalSubstrate::new(OpticalConfig::new(4, 2)).unwrap();
        let report = run_collective(&mut optical, &ring_allreduce(1, 10), 4, 1).unwrap();
        assert_eq!(report.total_time_s, 0.0);
        assert_eq!(report.step_count(), 0);
    }
}
