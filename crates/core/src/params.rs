//! Wrht deployment parameters.

use crate::plan::StopPolicy;
use serde::{Deserialize, Serialize};

/// How the group size `m` is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupSize {
    /// Use a fixed `m`.
    Fixed(usize),
    /// Let [`crate::optimizer::choose_group_size`] pick the `m` minimizing
    /// predicted communication time.
    Auto,
}

/// Parameters of a Wrht all-reduce deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WrhtParams {
    /// Number of ring nodes.
    pub n: usize,
    /// Wavelengths per waveguide.
    pub wavelengths: usize,
    /// Group-size policy.
    pub group_size: GroupSize,
    /// Recursion stop rule (paper default: earliest feasible all-to-all).
    pub stop_policy: StopPolicy,
}

impl WrhtParams {
    /// Fixed group size, paper stop rule.
    #[must_use]
    pub fn fixed(n: usize, wavelengths: usize, m: usize) -> Self {
        Self {
            n,
            wavelengths,
            group_size: GroupSize::Fixed(m),
            stop_policy: StopPolicy::EarliestFeasible,
        }
    }

    /// Optimizer-chosen group size, paper stop rule.
    #[must_use]
    pub fn auto(n: usize, wavelengths: usize) -> Self {
        Self {
            n,
            wavelengths,
            group_size: GroupSize::Auto,
            stop_policy: StopPolicy::EarliestFeasible,
        }
    }

    /// Override the stop policy (Wrht⁺ depth optimization), builder style.
    #[must_use]
    pub fn with_stop_policy(mut self, policy: StopPolicy) -> Self {
        self.stop_policy = policy;
        self
    }

    /// Largest group size whose tree step fits the wavelength budget:
    /// `⌊m/2⌋ <= w`, i.e. `m <= 2w + 1` (and never beyond `n`).
    #[must_use]
    pub fn max_group_size(&self) -> usize {
        (2 * self.wavelengths + 1).min(self.n.max(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_group_size_respects_wavelengths_and_n() {
        assert_eq!(WrhtParams::auto(1024, 4).max_group_size(), 9);
        assert_eq!(WrhtParams::auto(6, 64).max_group_size(), 6);
        assert_eq!(WrhtParams::auto(2, 1).max_group_size(), 2);
    }

    #[test]
    fn constructors() {
        assert_eq!(WrhtParams::fixed(8, 4, 3).group_size, GroupSize::Fixed(3));
        assert_eq!(WrhtParams::auto(8, 4).group_size, GroupSize::Auto);
        assert_eq!(
            WrhtParams::auto(8, 4).stop_policy,
            StopPolicy::EarliestFeasible
        );
        assert_eq!(
            WrhtParams::auto(8, 4)
                .with_stop_policy(StopPolicy::BestDepth)
                .stop_policy,
            StopPolicy::BestDepth
        );
    }
}
