//! Lowering Wrht plans to executable schedules.
//!
//! * [`to_optical_schedule`] — concrete optical transfers (directions,
//!   striping lanes, payload bytes) for [`optical_sim::RingSimulator`];
//! * [`to_logical_schedule`] — a [`collectives::Schedule`] over element
//!   ranges, executable by the logical executor to *prove* the plan
//!   computes an all-reduce.

use crate::plan::WrhtPlan;
use collectives::{Op, Schedule, Step, TransferSpec};
use optical_sim::request::Transfer;
use optical_sim::sim::StepSchedule;
use optical_sim::topology::Direction;
use serde::{Deserialize, Serialize};

/// How the broadcast stage is realized on the optical ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BroadcastMode {
    /// The paper's model: the representative unicasts a copy to every
    /// member, mirroring the reduce stage (`⌊m/2⌋` wavelength groups).
    #[default]
    Unicast,
    /// Extension: optical *drop-and-continue* multicast — one transmission
    /// per group side; intermediate members tap the passing wavelengths, so
    /// each side needs a single wavelength group and can stripe across the
    /// whole budget. Physically this is what micro-ring drop filters allow.
    Multicast,
}

/// Lower a plan to optical transfers moving `bytes` per message.
///
/// Reduce stage: group sides transmit toward the middle representative in
/// opposite directions. All-to-all: shortest paths. Broadcast stage: the
/// mirror image of the reduce stage.
#[must_use]
pub fn to_optical_schedule(plan: &WrhtPlan, bytes: u64) -> StepSchedule {
    to_optical_schedule_with(plan, bytes, BroadcastMode::Unicast)
}

/// [`to_optical_schedule`] with an explicit broadcast realization.
#[must_use]
pub fn to_optical_schedule_with(
    plan: &WrhtPlan,
    bytes: u64,
    broadcast: BroadcastMode,
) -> StepSchedule {
    let mut sched = StepSchedule::default();

    // Reduce stage.
    for (li, level) in plan.levels.iter().enumerate() {
        let mut step = Vec::new();
        for group in &level.groups {
            for &member in &group.left_side() {
                step.push(
                    Transfer::directed(
                        optical_sim::NodeId(member),
                        optical_sim::NodeId(group.rep),
                        bytes,
                        Direction::Clockwise,
                    )
                    .with_lanes(level.lanes)
                    .with_tag(li as u32),
                );
            }
            for &member in &group.right_side() {
                step.push(
                    Transfer::directed(
                        optical_sim::NodeId(member),
                        optical_sim::NodeId(group.rep),
                        bytes,
                        Direction::CounterClockwise,
                    )
                    .with_lanes(level.lanes)
                    .with_tag(li as u32),
                );
            }
        }
        sched.push_step(step);
    }

    // Fused all-to-all among the survivors.
    if let Some(ata) = &plan.alltoall {
        let mut step = Vec::new();
        for &src in &ata.reps {
            for &dst in &ata.reps {
                if src != dst {
                    step.push(
                        Transfer::shortest(
                            optical_sim::NodeId(src),
                            optical_sim::NodeId(dst),
                            bytes,
                        )
                        .with_lanes(ata.lanes)
                        .with_tag(u32::MAX),
                    );
                }
            }
        }
        sched.push_step(step);
    }

    // Broadcast stage: mirror.
    for (li, level) in plan.levels.iter().enumerate().rev() {
        let mut step = Vec::new();
        for group in &level.groups {
            match broadcast {
                BroadcastMode::Unicast => {
                    for &member in &group.left_side() {
                        step.push(
                            Transfer::directed(
                                optical_sim::NodeId(group.rep),
                                optical_sim::NodeId(member),
                                bytes,
                                Direction::CounterClockwise,
                            )
                            .with_lanes(level.lanes)
                            .with_tag(li as u32),
                        );
                    }
                    for &member in &group.right_side() {
                        step.push(
                            Transfer::directed(
                                optical_sim::NodeId(group.rep),
                                optical_sim::NodeId(member),
                                bytes,
                                Direction::Clockwise,
                            )
                            .with_lanes(level.lanes)
                            .with_tag(li as u32),
                        );
                    }
                }
                BroadcastMode::Multicast => {
                    // One drop-and-continue transmission per side, spanning
                    // to the farthest member; intermediate members tap the
                    // passing signal at no extra wavelength cost. Each side
                    // is the only occupant of its direction within the
                    // group's arc, so it can stripe across the full budget.
                    let lanes = plan.wavelengths.max(1);
                    if let Some(&farthest) = group.left_side().first() {
                        step.push(
                            Transfer::directed(
                                optical_sim::NodeId(group.rep),
                                optical_sim::NodeId(farthest),
                                bytes,
                                Direction::CounterClockwise,
                            )
                            .with_lanes(lanes)
                            .with_tag(li as u32),
                        );
                    }
                    if let Some(&farthest) = group.right_side().last() {
                        step.push(
                            Transfer::directed(
                                optical_sim::NodeId(group.rep),
                                optical_sim::NodeId(farthest),
                                bytes,
                                Direction::Clockwise,
                            )
                            .with_lanes(lanes)
                            .with_tag(li as u32),
                        );
                    }
                }
            }
        }
        sched.push_step(step);
    }

    sched
}

/// Lower a plan to a logical schedule over `elems` elements.
#[must_use]
pub fn to_logical_schedule(plan: &WrhtPlan, elems: usize) -> Schedule {
    let mut sched = Schedule::new(plan.n.max(1), elems, format!("wrht(m={})", plan.m));

    for level in &plan.levels {
        let mut step = Step::default();
        for group in &level.groups {
            for &member in group.members.iter().filter(|&&p| p != group.rep) {
                step.transfers.push(TransferSpec::new(
                    member,
                    group.rep,
                    0..elems,
                    Op::ReduceInto,
                ));
            }
        }
        sched.push_step(step);
    }

    if let Some(ata) = &plan.alltoall {
        let mut step = Step::default();
        for &src in &ata.reps {
            for &dst in &ata.reps {
                if src != dst {
                    step.transfers
                        .push(TransferSpec::new(src, dst, 0..elems, Op::ReduceInto));
                }
            }
        }
        sched.push_step(step);
    }

    for level in plan.levels.iter().rev() {
        let mut step = Step::default();
        for group in &level.groups {
            for &member in group.members.iter().filter(|&&p| p != group.rep) {
                step.transfers
                    .push(TransferSpec::new(group.rep, member, 0..elems, Op::Copy));
            }
        }
        sched.push_step(step);
    }

    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_plan;
    use collectives::verify_allreduce;
    use optical_sim::{OpticalConfig, RingSimulator, Strategy};

    #[test]
    fn logical_schedule_is_a_correct_allreduce() {
        for (n, m, w) in [
            (2usize, 2usize, 1usize),
            (7, 2, 1),
            (16, 4, 4),
            (33, 3, 8),
            (64, 8, 16),
            (100, 7, 64),
            (128, 2, 64),
        ] {
            let plan = build_plan(n, m, w).unwrap();
            let sched = to_logical_schedule(&plan, 12);
            verify_allreduce(&sched).unwrap_or_else(|e| panic!("n={n} m={m} w={w}: {e}"));
        }
    }

    #[test]
    fn optical_schedule_fits_wavelength_budget() {
        for (n, m, w) in [(64usize, 4usize, 8usize), (128, 8, 16), (256, 2, 4)] {
            let plan = build_plan(n, m, w).unwrap();
            let sched = to_optical_schedule(&plan, 1 << 20);
            let cfg = OpticalConfig::new(n, w);
            let mut sim = RingSimulator::new(cfg);
            let report = sim
                .run_stepped(&sched, Strategy::FirstFit)
                .unwrap_or_else(|e| panic!("n={n} m={m} w={w}: {e}"));
            assert!(report.stats.peak_wavelengths() <= w);
        }
    }

    #[test]
    fn step_counts_agree_between_lowerings() {
        let plan = build_plan(81, 3, 4).unwrap();
        let optical = to_optical_schedule(&plan, 100);
        let logical = to_logical_schedule(&plan, 10);
        assert_eq!(optical.len(), plan.step_count());
        assert_eq!(logical.step_count(), plan.step_count());
    }

    #[test]
    fn reduce_and_broadcast_mirror_transfer_counts() {
        let plan = build_plan(60, 5, 8).unwrap();
        let sched = to_optical_schedule(&plan, 10);
        let steps = sched.steps();
        let depth = plan.depth();
        for l in 0..depth {
            let reduce = &steps[l];
            let bcast = &steps[steps.len() - 1 - l];
            assert_eq!(reduce.len(), bcast.len(), "level {l}");
        }
    }

    #[test]
    fn single_node_lowering_is_empty() {
        let plan = build_plan(1, 2, 4).unwrap();
        assert!(to_optical_schedule(&plan, 10).is_empty());
        assert_eq!(to_logical_schedule(&plan, 4).step_count(), 0);
    }

    #[test]
    fn transfers_carry_level_lanes() {
        let plan = build_plan(1024, 8, 64).unwrap();
        let sched = to_optical_schedule(&plan, 100);
        for t in &sched.steps()[0] {
            assert_eq!(t.lanes, plan.levels[0].lanes);
        }
    }

    #[test]
    fn multicast_broadcast_has_at_most_two_transfers_per_group() {
        let plan = build_plan(100, 7, 16).unwrap();
        let uni = to_optical_schedule_with(&plan, 100, BroadcastMode::Unicast);
        let mc = to_optical_schedule_with(&plan, 100, BroadcastMode::Multicast);
        assert_eq!(uni.len(), mc.len());
        for (li, level) in plan.levels.iter().enumerate() {
            // Level li's broadcast step is li steps before the end.
            let bcast_idx = uni.len() - 1 - li;
            let uni_step = &uni.steps()[bcast_idx];
            let mc_step = &mc.steps()[bcast_idx];
            assert!(mc_step.len() <= 2 * level.groups.len());
            assert!(mc_step.len() <= uni_step.len());
        }
    }

    #[test]
    fn multicast_broadcast_fits_budget_and_is_faster() {
        use optical_sim::{OpticalConfig, RingSimulator, Strategy};
        let n = 256;
        let w = 16;
        let bytes = 64 << 20;
        let plan = build_plan(n, 8, w).unwrap();
        let cfg = OpticalConfig::new(n, w);
        let mut sim = RingSimulator::new(cfg);
        let uni = sim
            .run_stepped(
                &to_optical_schedule_with(&plan, bytes, BroadcastMode::Unicast),
                Strategy::FirstFit,
            )
            .unwrap();
        let mc = sim
            .run_stepped(
                &to_optical_schedule_with(&plan, bytes, BroadcastMode::Multicast),
                Strategy::FirstFit,
            )
            .unwrap();
        assert!(mc.stats.peak_wavelengths() <= w);
        assert!(
            mc.total_time_s < uni.total_time_s,
            "multicast {} vs unicast {}",
            mc.total_time_s,
            uni.total_time_s
        );
    }

    #[test]
    fn multicast_reduce_stage_is_unchanged() {
        let plan = build_plan(64, 4, 8).unwrap();
        let uni = to_optical_schedule_with(&plan, 10, BroadcastMode::Unicast);
        let mc = to_optical_schedule_with(&plan, 10, BroadcastMode::Multicast);
        for li in 0..=plan.depth() {
            if li < uni.steps().len() {
                // Reduce levels + all-to-all are byte-identical.
                let is_reduce_or_ata = li <= plan.depth();
                if is_reduce_or_ata {
                    assert_eq!(uni.steps()[li], mc.steps()[li], "step {li}");
                }
            }
        }
    }
}
