//! Fault and degradation dynamics as first-class events.
//!
//! Both substrate simulators accept a [`FaultScript`] — typed, timestamped
//! fault events scheduled through the same
//! [`wrht_kernel::EventKernel`] as ordinary transfer events — plus a
//! [`FaultPolicy`] deciding how affected work recovers. This module is the
//! substrate-independent surface: the script/policy types re-exported from
//! the kernel crate, the per-run [`FaultRunReport`], and the cluster-level
//! [`FaultClusterReport`] with per-job **blast radius** (transfers aborted,
//! delayed or failed), recovery time and the degraded-vs-clean makespan
//! ratio.
//!
//! Substrate semantics (each fabric reacts only to the event kinds that
//! exist on it; the rest are no-ops):
//!
//! | Event | Optical ring | Electrical cluster |
//! |---|---|---|
//! | `WavelengthDown`/`Up` | masks the lane; in-flight holders abort and re-enter the grant loop | ignored |
//! | `LinkDegrade { factor }` | ignored | scales link capacity; incremental re-solve at the fault instant |
//! | `LinkFlap { down_s }` | ignored | capacity-zero interval; crossing flows suspend, resume on restore |
//! | `NodeStraggle { slowdown }` | grant durations stretched | flows touching the node capped at `1/slowdown` share |
//! | `NodeDown` | permanently fails unfinished endpoint transfers | permanently fails unfinished endpoint flows |
//!
//! Same-instant ordering is pinned by the kernel batching contract: a
//! completion at a bit-identical instant applies **before** the fault, so a
//! transfer finishing at exactly `t` is finished, not aborted, by a fault
//! at `t` (see [`wrht_kernel::fault`] module docs).
//!
//! With an empty (or substrate-irrelevant) script, the faulted entry points
//! delegate to the clean ones and are **bit-exact** with
//! [`crate::substrate::Substrate::execute_dag`] /
//! [`crate::substrate::Substrate::execute_dag_jobs`] — the fault
//! differential suite pins this on both substrates.

use crate::substrate::DagRunReport;
use crate::tenancy::{ComposedTenancy, JobId, SchedPolicy, TenancySpec};
use serde::{Deserialize, Serialize};

pub use wrht_kernel::{FaultError, FaultEvent, FaultKind, FaultLimits, FaultPolicy, FaultScript};

/// Per-transfer outcome of a faulted run, common to both substrates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultTiming {
    /// Instant of the (last) start, seconds; 0 if never started.
    pub start_s: f64,
    /// Completion instant, seconds; 0 if the transfer never completed.
    pub finish_s: f64,
    /// Times the transfer was aborted mid-flight by a fault.
    pub aborts: u32,
    /// Did the transfer complete?
    pub completed: bool,
}

/// Substrate-independent result of executing a [`crate::dag::DepSchedule`]
/// under a [`FaultScript`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRunReport {
    /// Name of the substrate that produced the report.
    pub substrate: String,
    /// Completion time of the last **completed** transfer, seconds.
    /// Failed transfers are excluded — see
    /// [`FaultRunReport::effective_makespan_s`] for the pessimistic view.
    pub makespan_s: f64,
    /// Per-transfer outcomes in [`crate::dag::DepSchedule`] order.
    pub transfers: Vec<FaultTiming>,
    /// Highest wavelength index in use at any instant + 1 (0 without WDM).
    pub peak_wavelength: usize,
    /// Discrete events processed by the shared event kernel.
    pub events: u64,
    /// Instant the first transfer was aborted or failed by a fault, if any.
    pub first_impact_s: Option<f64>,
}

impl FaultRunReport {
    /// Number of transfers that never completed.
    #[must_use]
    pub fn failed_transfers(&self) -> usize {
        self.transfers.iter().filter(|t| !t.completed).count()
    }

    /// Total mid-flight aborts across all transfers.
    #[must_use]
    pub fn total_aborts(&self) -> u64 {
        self.transfers.iter().map(|t| u64::from(t.aborts)).sum()
    }

    /// The makespan treating any permanent failure as unbounded:
    /// [`f64::INFINITY`] when at least one transfer never completed, the
    /// completed-transfer makespan otherwise. Kept as an accessor (not a
    /// serialized field) because JSON cannot round-trip infinities.
    #[must_use]
    pub fn effective_makespan_s(&self) -> f64 {
        if self.failed_transfers() > 0 {
            f64::INFINITY
        } else {
            self.makespan_s
        }
    }
}

/// Per-job blast radius inside a [`FaultClusterReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobBlastRadius {
    /// The job's identifier (index into the spec's job list).
    pub job: JobId,
    /// Display name copied from the spec.
    pub name: String,
    /// Number of transfers the job contributed to the composed run.
    pub transfers: usize,
    /// Mid-flight aborts suffered by the job's transfers.
    pub aborted: u64,
    /// Transfers that completed later than in the clean run.
    pub delayed: usize,
    /// Transfers that never completed.
    pub failed: usize,
    /// Last completed-transfer finish in the **clean** run, seconds
    /// (the job's arrival for empty jobs).
    pub clean_finish_s: f64,
    /// Last completed-transfer finish in the **faulted** run, seconds
    /// (the job's arrival when nothing completed).
    pub finish_s: f64,
    /// Did every transfer of the job complete?
    pub completed: bool,
}

/// Cluster-level outcome of a faulted multi-job run: the clean run's
/// makespan against the faulted one, the fault's blast radius per job, and
/// how long the fabric took to absorb it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultClusterReport {
    /// Name of the substrate that executed the cluster.
    pub substrate: String,
    /// The cross-job scheduling policy in force.
    pub sched_policy: SchedPolicy,
    /// Stable label of the recovery [`FaultPolicy`]
    /// (`"fail-job"`, `"retry-after:<backoff>"`, `"replan"`).
    pub fault_policy: String,
    /// Makespan of the same composed run with **no** faults, seconds.
    pub clean_makespan_s: f64,
    /// Completion of the last **completed** transfer under faults, seconds.
    pub makespan_s: f64,
    /// `makespan_s / clean_makespan_s` over completed transfers (1.0 for
    /// empty runs). Failures are reported via `transfers_failed`, not
    /// folded into this ratio, so it stays finite and JSON-serializable.
    pub degraded_ratio: f64,
    /// Recovery time: last *impacted* completed-transfer finish minus the
    /// first fault impact, seconds; 0 when no transfer was impacted (a
    /// transfer is impacted when it was aborted, delayed past its clean
    /// finish, or failed).
    pub recovery_s: f64,
    /// Instant the first transfer was aborted or failed, if any.
    pub first_impact_s: Option<f64>,
    /// Transfers delayed past their clean finish, cluster-wide.
    pub transfers_delayed: usize,
    /// Mid-flight aborts, cluster-wide.
    pub transfers_aborted: u64,
    /// Transfers that never completed, cluster-wide.
    pub transfers_failed: usize,
    /// Per-job blast radius, indexed by [`JobId`].
    pub jobs: Vec<JobBlastRadius>,
    /// Peak wavelength footprint of the faulted run (0 electrically).
    pub peak_wavelength: usize,
    /// Discrete events processed by the faulted run's event kernel.
    pub events: u64,
}

impl FaultClusterReport {
    /// Jobs that lost at least one transfer permanently.
    #[must_use]
    pub fn failed_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| !j.completed).count()
    }
}

/// Assemble the [`FaultClusterReport`] from a composed clean run and its
/// faulted counterpart. Shared by both substrates (called from the provided
/// [`crate::substrate::Substrate::execute_jobs_faulted`]).
#[must_use]
pub fn fault_cluster_report(
    spec: &TenancySpec,
    composed: &ComposedTenancy,
    clean: &DagRunReport,
    faulted: &FaultRunReport,
    policy: FaultPolicy,
) -> FaultClusterReport {
    debug_assert_eq!(clean.transfers.len(), faulted.transfers.len());
    let mut jobs = Vec::with_capacity(spec.jobs.len());
    let mut last_impacted_finish = f64::NEG_INFINITY;
    for (j, job) in spec.jobs.iter().enumerate() {
        let range = composed.ranges[j].clone();
        let mut aborted = 0u64;
        let mut delayed = 0usize;
        let mut failed = 0usize;
        let mut clean_finish = f64::NEG_INFINITY;
        let mut finish = f64::NEG_INFINITY;
        for i in range.clone() {
            let (c, f) = (&clean.transfers[i], &faulted.transfers[i]);
            aborted += u64::from(f.aborts);
            clean_finish = clean_finish.max(c.finish_s);
            let is_delayed = f.completed && f.finish_s > c.finish_s;
            if is_delayed {
                delayed += 1;
            }
            if f.completed {
                finish = finish.max(f.finish_s);
                if is_delayed || f.aborts > 0 {
                    last_impacted_finish = last_impacted_finish.max(f.finish_s);
                }
            } else {
                failed += 1;
            }
        }
        jobs.push(JobBlastRadius {
            job: JobId(j),
            name: job.name.clone(),
            transfers: range.len(),
            aborted,
            delayed,
            failed,
            clean_finish_s: if clean_finish.is_finite() {
                clean_finish
            } else {
                job.arrival_s
            },
            finish_s: if finish.is_finite() {
                finish
            } else {
                job.arrival_s
            },
            completed: failed == 0,
        });
    }
    let recovery_s = match faulted.first_impact_s {
        Some(t0) if last_impacted_finish.is_finite() => (last_impacted_finish - t0).max(0.0),
        _ => 0.0,
    };
    FaultClusterReport {
        substrate: faulted.substrate.clone(),
        sched_policy: spec.policy,
        fault_policy: policy.label(),
        clean_makespan_s: clean.makespan_s,
        makespan_s: faulted.makespan_s,
        degraded_ratio: if clean.makespan_s > 0.0 {
            faulted.makespan_s / clean.makespan_s
        } else {
            1.0
        },
        recovery_s,
        first_impact_s: faulted.first_impact_s,
        transfers_delayed: jobs.iter().map(|j| j.delayed).sum(),
        transfers_aborted: jobs.iter().map(|j| j.aborted).sum(),
        transfers_failed: jobs.iter().map(|j| j.failed).sum(),
        jobs,
        peak_wavelength: faulted.peak_wavelength,
        events: faulted.events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::DagTiming;

    fn clean_of(finishes: &[f64]) -> DagRunReport {
        DagRunReport {
            substrate: "optical".into(),
            makespan_s: finishes.iter().copied().fold(0.0, f64::max),
            transfers: finishes
                .iter()
                .map(|&f| DagTiming {
                    start_s: 0.0,
                    finish_s: f,
                })
                .collect(),
            peak_wavelength: 1,
            rate_recomputations: 0,
            solver_work: 0,
            events: 1,
        }
    }

    #[test]
    fn effective_makespan_is_infinite_on_any_failure() {
        let mut r = FaultRunReport {
            substrate: "optical".into(),
            makespan_s: 2.0,
            transfers: vec![FaultTiming {
                start_s: 0.0,
                finish_s: 2.0,
                aborts: 1,
                completed: true,
            }],
            peak_wavelength: 1,
            events: 3,
            first_impact_s: Some(1.0),
        };
        assert_eq!(r.effective_makespan_s(), 2.0);
        assert_eq!(r.total_aborts(), 1);
        r.transfers.push(FaultTiming {
            start_s: 0.0,
            finish_s: 0.0,
            aborts: 0,
            completed: false,
        });
        assert_eq!(r.failed_transfers(), 1);
        assert!(r.effective_makespan_s().is_infinite());
    }

    #[test]
    fn blast_radius_counts_delays_aborts_failures_and_recovery() {
        use crate::tenancy::Job;
        use optical_sim::sim::StepSchedule;
        use optical_sim::{NodeId, Transfer};

        // Two single-transfer jobs composed; job 0 is delayed by an abort,
        // job 1 fails outright.
        let step = |src: usize| {
            StepSchedule::from_steps(vec![vec![Transfer::shortest(
                NodeId(src),
                NodeId(src + 1),
                1_000,
            )]])
        };
        let spec = TenancySpec::new(SchedPolicy::Fifo)
            .with_job(Job::steps("a", 0.0, step(0)))
            .with_job(Job::steps("b", 0.0, step(2)));
        let composed = spec.compose().unwrap();
        let clean = clean_of(&[1.0, 1.0]);
        let faulted = FaultRunReport {
            substrate: "optical".into(),
            makespan_s: 3.0,
            transfers: vec![
                FaultTiming {
                    start_s: 0.5,
                    finish_s: 3.0,
                    aborts: 1,
                    completed: true,
                },
                FaultTiming {
                    start_s: 0.0,
                    finish_s: 0.0,
                    aborts: 0,
                    completed: false,
                },
            ],
            peak_wavelength: 1,
            events: 7,
            first_impact_s: Some(0.5),
        };
        let report = fault_cluster_report(
            &spec,
            &composed,
            &clean,
            &faulted,
            FaultPolicy::RetryAfter(0.25),
        );
        assert_eq!(report.fault_policy, "retry-after:0.25");
        assert_eq!(report.transfers_delayed, 1);
        assert_eq!(report.transfers_aborted, 1);
        assert_eq!(report.transfers_failed, 1);
        assert_eq!(report.failed_jobs(), 1);
        assert!((report.degraded_ratio - 3.0).abs() < 1e-12);
        assert!((report.recovery_s - 2.5).abs() < 1e-12);
        let (a, b) = (&report.jobs[0], &report.jobs[1]);
        assert!(a.completed && a.delayed == 1 && a.aborted == 1);
        assert!(!b.completed && b.failed == 1);
        // Job b completed nothing: its faulted finish anchors at arrival.
        assert_eq!(b.finish_s, 0.0);
        assert_eq!(b.clean_finish_s, 1.0);
    }

    #[test]
    fn clean_faulted_pair_reports_zero_blast_radius() {
        use crate::tenancy::Job;
        use optical_sim::sim::StepSchedule;
        use optical_sim::{NodeId, Transfer};

        let sched =
            StepSchedule::from_steps(vec![vec![Transfer::shortest(NodeId(0), NodeId(1), 1_000)]]);
        let spec =
            TenancySpec::new(SchedPolicy::FairShare).with_job(Job::steps("solo", 0.0, sched));
        let composed = spec.compose().unwrap();
        let clean = clean_of(&[1.0]);
        let faulted = FaultRunReport {
            substrate: "optical".into(),
            makespan_s: 1.0,
            transfers: vec![FaultTiming {
                start_s: 0.0,
                finish_s: 1.0,
                aborts: 0,
                completed: true,
            }],
            peak_wavelength: 1,
            events: 1,
            first_impact_s: None,
        };
        let report = fault_cluster_report(&spec, &composed, &clean, &faulted, FaultPolicy::FailJob);
        assert_eq!(report.degraded_ratio, 1.0);
        assert_eq!(report.recovery_s, 0.0);
        assert_eq!(report.transfers_delayed, 0);
        assert_eq!(report.transfers_failed, 0);
        assert_eq!(report.first_impact_s, None);
        assert!(report.jobs[0].completed);
    }
}
