//! The final all-to-all step among surviving representatives.
//!
//! Each representative sends its partial sum to every other representative
//! in a single step; with snapshot semantics every receiver then holds the
//! global sum. Liang & Shen bound the wavelength requirement of ring
//! all-to-all by `⌈k²/8⌉`; we additionally *measure* the requirement of the
//! concrete shortest-path First-Fit assignment, so plans never rely on the
//! bound alone.

use crate::error::Result;
use optical_sim::path::LightPath;
use optical_sim::rwa::{Occupancy, Strategy};
use optical_sim::topology::{NodeId, RingTopology};

/// All ordered pairs among `reps`.
#[must_use]
pub fn alltoall_pairs(reps: &[usize]) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(reps.len().saturating_mul(reps.len().saturating_sub(1)));
    for &a in reps {
        for &b in reps {
            if a != b {
                pairs.push((a, b));
            }
        }
    }
    pairs
}

/// Measure how many wavelengths a unit-lane shortest-path First-Fit
/// assignment of `pairs` needs on `topo`.
///
/// The trial occupancy is sized generously (beyond `w`) so the measurement
/// is exact even when the requirement exceeds the budget; the caller
/// compares the result against `w`.
pub fn measured_alltoall_wavelengths(
    topo: &RingTopology,
    pairs: &[(usize, usize)],
    w: usize,
) -> Result<usize> {
    if pairs.is_empty() {
        return Ok(0);
    }
    // Upper bound: every pair on its own wavelength.
    let headroom = w.max(pairs.len()) + 1;
    let mut occ = Occupancy::new(topo.nodes(), headroom);
    for &(src, dst) in pairs {
        let path = LightPath::shortest(topo, NodeId(src), NodeId(dst));
        occ.assign(&path, 1, Strategy::FirstFit)?;
    }
    Ok(occ.peak_wavelengths_used())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steps::alltoall_wavelength_requirement;

    #[test]
    fn pairs_are_all_ordered_pairs() {
        let pairs = alltoall_pairs(&[3, 7, 11]);
        assert_eq!(pairs.len(), 6);
        assert!(pairs.contains(&(3, 7)));
        assert!(pairs.contains(&(7, 3)));
        assert!(!pairs.contains(&(3, 3)));
    }

    #[test]
    fn two_reps_need_one_wavelength() {
        let topo = RingTopology::new(16);
        let pairs = alltoall_pairs(&[2, 10]);
        let need = measured_alltoall_wavelengths(&topo, &pairs, 4).unwrap();
        assert_eq!(need, 1);
    }

    #[test]
    fn measured_requirement_tracks_liang_shen_bound() {
        // Evenly spaced representatives: First Fit should stay within a
        // small constant factor of the ceil(k^2/8) bound.
        for k in [4usize, 6, 8, 12, 16] {
            let n = k * 8;
            let topo = RingTopology::new(n);
            let reps: Vec<usize> = (0..k).map(|i| i * 8).collect();
            let pairs = alltoall_pairs(&reps);
            let measured = measured_alltoall_wavelengths(&topo, &pairs, 64).unwrap();
            let bound = alltoall_wavelength_requirement(k);
            assert!(
                measured <= 2 * bound,
                "k={k}: measured {measured} vs bound {bound}"
            );
            // And never below the bisection-congestion floor of ~k^2/8 / 2.
            assert!(measured >= bound / 4, "k={k}: measured {measured}");
        }
    }

    #[test]
    fn empty_pairs_need_nothing() {
        let topo = RingTopology::new(8);
        assert_eq!(measured_alltoall_wavelengths(&topo, &[], 4).unwrap(), 0);
    }
}
