//! The final all-to-all step among surviving representatives.
//!
//! Each representative sends its partial sum to every other representative
//! in a single step; with snapshot semantics every receiver then holds the
//! global sum. Liang & Shen bound the wavelength requirement of ring
//! all-to-all by `⌈k²/8⌉`; we additionally *measure* the requirement of the
//! concrete shortest-path First-Fit assignment, so plans never rely on the
//! bound alone.

use crate::error::Result;
use optical_sim::path::LightPath;
use optical_sim::rwa::{Occupancy, Strategy};
use optical_sim::topology::{NodeId, RingTopology};

/// All ordered `(src, dst)` pairs among `reps` — the transfer set of one
/// all-to-all step.
///
/// Contract (pinned by unit tests and proptests below):
///
/// * exactly `k * (k - 1)` pairs for `k` distinct representatives — every
///   ordered pair appears **exactly once**;
/// * no self-sends: `src != dst` for every pair (duplicate entries in
///   `reps` would break this, so callers pass distinct ids);
/// * deterministic order: pairs are emitted grouped by source in `reps`
///   order, destinations in `reps` order — the same slice always yields
///   the identical vector, which downstream lowerings
///   ([`crate::parallelism::lower_parallelism`]'s MoE phase) rely on for
///   bit-reproducible DAGs.
#[must_use]
pub fn alltoall_pairs(reps: &[usize]) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(reps.len().saturating_mul(reps.len().saturating_sub(1)));
    for &a in reps {
        for &b in reps {
            if a != b {
                pairs.push((a, b));
            }
        }
    }
    pairs
}

/// Measure how many wavelengths a unit-lane shortest-path First-Fit
/// assignment of `pairs` needs on `topo`.
///
/// Contract:
///
/// * the result is the **exact** peak wavelength index First-Fit reaches
///   when the pairs are assigned in slice order, each as one unit-lane
///   lightpath on its shortest arc — not the Liang–Shen `⌈k²/8⌉` bound,
///   which [`crate::steps::alltoall_wavelength_requirement`] provides;
/// * `w` is only a sizing hint: the trial occupancy is sized beyond
///   `max(w, pairs.len())`, so the measurement stays exact even when the
///   requirement exceeds the budget, and the caller compares the result
///   against `w` to decide feasibility;
/// * assignment order matters to First-Fit, so callers must pass pairs in
///   a canonical order ([`alltoall_pairs`] output) for reproducible
///   measurements;
/// * empty `pairs` need zero wavelengths.
///
/// # Errors
/// Only if the generously-sized trial occupancy still cannot place a path
/// (unreachable for unit lanes, kept as an error rather than a panic to
/// honor the crate's no-panic rule).
pub fn measured_alltoall_wavelengths(
    topo: &RingTopology,
    pairs: &[(usize, usize)],
    w: usize,
) -> Result<usize> {
    if pairs.is_empty() {
        return Ok(0);
    }
    // Upper bound: every pair on its own wavelength.
    let headroom = w.max(pairs.len()) + 1;
    let mut occ = Occupancy::new(topo.nodes(), headroom);
    for &(src, dst) in pairs {
        let path = LightPath::shortest(topo, NodeId(src), NodeId(dst));
        occ.assign(&path, 1, Strategy::FirstFit)?;
    }
    Ok(occ.peak_wavelengths_used())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steps::alltoall_wavelength_requirement;

    #[test]
    fn pairs_are_all_ordered_pairs() {
        let pairs = alltoall_pairs(&[3, 7, 11]);
        assert_eq!(pairs.len(), 6);
        assert!(pairs.contains(&(3, 7)));
        assert!(pairs.contains(&(7, 3)));
        assert!(!pairs.contains(&(3, 3)));
    }

    #[test]
    fn two_reps_need_one_wavelength() {
        let topo = RingTopology::new(16);
        let pairs = alltoall_pairs(&[2, 10]);
        let need = measured_alltoall_wavelengths(&topo, &pairs, 4).unwrap();
        assert_eq!(need, 1);
    }

    #[test]
    fn measured_requirement_tracks_liang_shen_bound() {
        // Evenly spaced representatives: First Fit should stay within a
        // small constant factor of the ceil(k^2/8) bound.
        for k in [4usize, 6, 8, 12, 16] {
            let n = k * 8;
            let topo = RingTopology::new(n);
            let reps: Vec<usize> = (0..k).map(|i| i * 8).collect();
            let pairs = alltoall_pairs(&reps);
            let measured = measured_alltoall_wavelengths(&topo, &pairs, 64).unwrap();
            let bound = alltoall_wavelength_requirement(k);
            assert!(
                measured <= 2 * bound,
                "k={k}: measured {measured} vs bound {bound}"
            );
            // And never below the bisection-congestion floor of ~k^2/8 / 2.
            assert!(measured >= bound / 4, "k={k}: measured {measured}");
        }
    }

    #[test]
    fn empty_pairs_need_nothing() {
        let topo = RingTopology::new(8);
        assert_eq!(measured_alltoall_wavelengths(&topo, &[], 4).unwrap(), 0);
    }

    #[test]
    fn pair_count_is_exactly_k_times_k_minus_one() {
        for k in 0..10usize {
            let reps: Vec<usize> = (0..k).map(|i| i * 3 + 1).collect();
            assert_eq!(alltoall_pairs(&reps).len(), k * k.saturating_sub(1));
        }
    }

    mod props {
        use super::super::{alltoall_pairs, measured_alltoall_wavelengths};
        use optical_sim::topology::RingTopology;
        use proptest::prelude::*;

        fn distinct_reps(max_size: usize) -> impl Strategy<Value = Vec<usize>> {
            proptest::collection::vec(0usize..64, 0..max_size).prop_map(|mut v| {
                v.sort_unstable();
                v.dedup();
                v
            })
        }

        proptest! {
            #[test]
            fn every_ordered_pair_exactly_once(reps in distinct_reps(9)) {
                let pairs = alltoall_pairs(&reps);
                let k = reps.len();
                prop_assert_eq!(pairs.len(), k * k.saturating_sub(1));
                // Exactly once: no duplicates and full coverage.
                let mut sorted = pairs.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), pairs.len());
                for &a in &reps {
                    for &b in &reps {
                        if a != b {
                            prop_assert!(pairs.contains(&(a, b)));
                        }
                    }
                }
            }

            #[test]
            fn no_self_sends_and_deterministic(reps in distinct_reps(9)) {
                let pairs = alltoall_pairs(&reps);
                prop_assert!(pairs.iter().all(|&(a, b)| a != b));
                prop_assert_eq!(pairs, alltoall_pairs(&reps));
            }

            #[test]
            fn measurement_is_exact_and_order_sized(
                reps in distinct_reps(7),
                n in 8usize..32,
            ) {
                let reps: Vec<usize> = reps.into_iter().filter(|&r| r < n).collect();
                let topo = RingTopology::new(n);
                let pairs = alltoall_pairs(&reps);
                // The sizing hint must not change the measurement.
                let lo = measured_alltoall_wavelengths(&topo, &pairs, 1).unwrap();
                let hi = measured_alltoall_wavelengths(&topo, &pairs, 256).unwrap();
                prop_assert_eq!(lo, hi);
                // Never more than one wavelength per pair, none for none.
                prop_assert!(lo <= pairs.len());
                prop_assert_eq!(lo == 0, pairs.is_empty());
            }
        }
    }
}
