//! Analytic communication-time model for Wrht plans.
//!
//! Mirrors the stepped optical simulator exactly: a step lasts
//! `α + S/(lanes·B) + P·hops_max`, the reduce and broadcast stages are
//! symmetric, and the all-to-all step (if any) is paid once. The optimizer
//! uses this model to search group sizes without running the simulator.

use crate::plan::WrhtPlan;
use optical_sim::OpticalConfig;
use serde::{Deserialize, Serialize};

/// Per-stage breakdown of predicted communication time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Reduce-stage time, seconds.
    pub reduce_s: f64,
    /// All-to-all step time, seconds (0 when the plan has none).
    pub alltoall_s: f64,
    /// Broadcast-stage time, seconds.
    pub broadcast_s: f64,
    /// Per-step durations in execution order, seconds.
    pub per_step_s: Vec<f64>,
}

impl CostBreakdown {
    /// Total predicted time, seconds.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.reduce_s + self.alltoall_s + self.broadcast_s
    }
}

/// Predict the communication time of `plan` moving `bytes` per message on
/// the ring described by `config`.
#[must_use]
pub fn predict_time_s(plan: &WrhtPlan, config: &OpticalConfig, bytes: u64) -> CostBreakdown {
    let timing = config.timing();
    let mut per_step_s = Vec::with_capacity(plan.step_count());

    let mut reduce_s = 0.0;
    for level in &plan.levels {
        let hops = level.max_hop_span();
        let t = if level.groups.iter().all(|g| g.members.len() == 1) {
            0.0 // degenerate level: nothing to send
        } else {
            timing.transfer_time(bytes, level.lanes, hops)
        };
        reduce_s += t;
        per_step_s.push(t);
    }

    let mut alltoall_s = 0.0;
    if let Some(ata) = &plan.alltoall {
        alltoall_s = timing.transfer_time(bytes, ata.lanes, plan.alltoall_hop_span());
        per_step_s.push(alltoall_s);
    }

    // Broadcast mirrors the reduce stage, root-most level first.
    let broadcast_s = reduce_s;
    for level in plan.levels.iter().rev() {
        let hops = level.max_hop_span();
        let t = if level.groups.iter().all(|g| g.members.len() == 1) {
            0.0
        } else {
            timing.transfer_time(bytes, level.lanes, hops)
        };
        per_step_s.push(t);
    }

    CostBreakdown {
        reduce_s,
        alltoall_s,
        broadcast_s,
        per_step_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::to_optical_schedule;
    use crate::plan::build_plan;
    use optical_sim::{RingSimulator, Strategy};

    fn check_prediction_matches_simulation(n: usize, m: usize, w: usize, bytes: u64) {
        let plan = build_plan(n, m, w).unwrap();
        let cfg = OpticalConfig::new(n, w);
        let predicted = predict_time_s(&plan, &cfg, bytes);
        let sched = to_optical_schedule(&plan, bytes);
        let mut sim = RingSimulator::new(cfg);
        let report = sim.run_stepped(&sched, Strategy::FirstFit).unwrap();
        let rel =
            (predicted.total_s() - report.total_time_s).abs() / report.total_time_s.max(1e-30);
        assert!(
            rel < 1e-9,
            "n={n} m={m} w={w}: predicted {} vs simulated {}",
            predicted.total_s(),
            report.total_time_s
        );
    }

    #[test]
    fn prediction_matches_simulation() {
        check_prediction_matches_simulation(16, 4, 4, 1 << 20);
        check_prediction_matches_simulation(64, 2, 2, 1 << 16);
        check_prediction_matches_simulation(100, 7, 16, 123_456);
        check_prediction_matches_simulation(128, 8, 64, 1 << 22);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let plan = build_plan(64, 4, 8).unwrap();
        let cfg = OpticalConfig::new(64, 8);
        let c = predict_time_s(&plan, &cfg, 1 << 20);
        let sum: f64 = c.per_step_s.iter().sum();
        assert!((sum - c.total_s()).abs() < 1e-15);
        assert_eq!(c.per_step_s.len(), plan.step_count());
        // Mirror symmetry.
        assert!((c.reduce_s - c.broadcast_s).abs() < 1e-15);
    }

    #[test]
    fn more_lanes_cost_less() {
        let bytes = 1 << 24;
        let plan_narrow = build_plan(1024, 8, 4).unwrap();
        let plan_wide = build_plan(1024, 8, 64).unwrap();
        let cfg_narrow = OpticalConfig::new(1024, 4);
        let cfg_wide = OpticalConfig::new(1024, 64);
        let narrow = predict_time_s(&plan_narrow, &cfg_narrow, bytes).total_s();
        let wide = predict_time_s(&plan_wide, &cfg_wide, bytes).total_s();
        assert!(wide < narrow, "wide {wide} narrow {narrow}");
    }

    #[test]
    fn single_node_costs_nothing() {
        let plan = build_plan(1, 2, 4).unwrap();
        let cfg = OpticalConfig::new(2, 4);
        assert_eq!(predict_time_s(&plan, &cfg, 100).total_s(), 0.0);
    }
}
